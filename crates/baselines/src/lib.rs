//! # phpsafe-baselines
//!
//! Capability-faithful reimplementations of the two free analyzers the
//! phpSAFE paper compares against — **RIPS** and **Pixy** — plus the common
//! [`AnalysisTool`] trait the evaluation harness drives.
//!
//! Both baselines share the same parsing/taint substrate as phpSAFE; what
//! differs is exactly what the paper says differs: the configuration each
//! tool knows (Pixy's 2007-era function model, RIPS' PHP-only model versus
//! phpSAFE's WordPress profile) and the capability switches (OOP
//! resolution, include splicing, uncalled-function coverage,
//! `register_globals`, OOP file rejection). The comparison therefore
//! isolates tool *capability*, which is what the paper's evaluation
//! measures.
//!
//! ```
//! use phpsafe_baselines::{AnalysisTool, Rips, Pixy};
//! use phpsafe::{PluginProject, SourceFile};
//!
//! let plugin = PluginProject::new("demo").with_file(SourceFile::new(
//!     "demo.php",
//!     "<?php $rows = $wpdb->get_results('SELECT * FROM t');
//!      foreach ($rows as $r) { echo $r->name; }",
//! ));
//! assert!(Rips::new().analyze(&plugin).vulns.is_empty());  // OOP-blind
//! assert_eq!(Pixy::new().analyze(&plugin).stats.files_failed, 1);
//! ```

#![warn(missing_docs)]

pub mod pixy;
pub mod rips;
mod tool;

pub use pixy::{pixy_config, Pixy};
pub use rips::Rips;
pub use tool::{paper_tools, paper_tools_graph, AnalysisTool};
