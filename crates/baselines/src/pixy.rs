//! A capability-faithful reimplementation of **Pixy** (Jovanovic, Kruegel &
//! Kirda, S&P 2006) as described and measured by the phpSAFE paper:
//!
//! * flow-sensitive, inter-procedural, context-sensitive taint analysis for
//!   XSS and SQLi — shared with our engine;
//! * **cannot parse OOP**: files containing classes, objects or method
//!   calls fail outright (the paper counts 32 failed files), and post-2007
//!   syntax such as closures raises parser errors (1 error in the 2012
//!   runs, 37 in 2014);
//! * models the legacy `register_globals = 1` directive — "half of the
//!   vulnerabilities it found were due to this directive" (§V.A) — which on
//!   modern, safely-configured deployments shows up mostly as noise;
//! * does **not** analyze functions that are never called from the code
//!   (§V.A: "Pixy is unable to do so");
//! * unmaintained since 2007: its function model predates `mysqli_*`,
//!   `filter_var` and the whole WordPress API.

use crate::tool::AnalysisTool;
use phpsafe::{AnalysisOutcome, AnalyzerOptions, PhpSafe, PluginProject};
use taint_config::{
    FuncName, RevertSpec, SanitizerSpec, SinkSpec, SourceKind, SourceSpec, TaintConfig, VulnClass,
};

/// Builds Pixy's 2007-era configuration: classic superglobals and `mysql_*`
/// functions only — no `mysqli`, no WordPress.
pub fn pixy_config() -> TaintConfig {
    let mut c = TaintConfig::empty("pixy-2007");
    for (var, kind) in [
        ("$_GET", SourceKind::Get),
        ("$_POST", SourceKind::Post),
        ("$_COOKIE", SourceKind::Cookie),
        ("$_REQUEST", SourceKind::Request),
        ("$_SERVER", SourceKind::Server),
        ("$HTTP_GET_VARS", SourceKind::Get),
        ("$HTTP_POST_VARS", SourceKind::Post),
        ("$HTTP_COOKIE_VARS", SourceKind::Cookie),
    ] {
        c.add_source(SourceSpec::Superglobal {
            var: var.into(),
            kind,
        });
    }
    for f in ["fgets", "fread", "file", "file_get_contents"] {
        c.add_source(SourceSpec::Callable {
            name: FuncName::function(f),
            kind: SourceKind::File,
        });
    }
    for f in [
        "mysql_fetch_array",
        "mysql_fetch_assoc",
        "mysql_fetch_row",
        "mysql_result",
    ] {
        c.add_source(SourceSpec::Callable {
            name: FuncName::function(f),
            kind: SourceKind::Database,
        });
    }
    for f in ["htmlentities", "htmlspecialchars", "strip_tags"] {
        c.add_sanitizer(SanitizerSpec {
            name: FuncName::function(f),
            protects: vec![VulnClass::Xss],
        });
    }
    for f in ["intval", "floatval", "count", "md5", "urlencode"] {
        c.add_sanitizer(SanitizerSpec {
            name: FuncName::function(f),
            protects: vec![VulnClass::Xss, VulnClass::Sqli],
        });
    }
    for f in [
        "addslashes",
        "mysql_escape_string",
        "mysql_real_escape_string",
    ] {
        c.add_sanitizer(SanitizerSpec {
            name: FuncName::function(f),
            protects: vec![VulnClass::Sqli],
        });
    }
    for f in ["stripslashes", "urldecode", "html_entity_decode"] {
        c.add_revert(RevertSpec {
            name: FuncName::function(f),
        });
    }
    for f in ["printf", "print_r"] {
        c.add_sink(SinkSpec {
            name: FuncName::function(f),
            class: VulnClass::Xss,
            args: None,
        });
    }
    for f in ["mysql_query", "mysql_db_query"] {
        c.add_sink(SinkSpec {
            name: FuncName::function(f),
            class: VulnClass::Sqli,
            args: Some(vec![0, 1]),
        });
    }
    c
}

/// The Pixy-like baseline analyzer.
#[derive(Debug, Clone)]
pub struct Pixy {
    engine: PhpSafe,
}

impl Default for Pixy {
    fn default() -> Self {
        Self::new()
    }
}

impl Pixy {
    /// Builds Pixy with its documented capability set (including the `-A`
    /// alias-analysis flag behaviour the paper enabled, which our engine's
    /// reference assignments cover).
    pub fn new() -> Self {
        let options = AnalyzerOptions {
            oop: false,
            resolve_includes: false,
            analyze_uncalled: false,
            register_globals: true,
            reject_oop_files: true,
            reject_closures: true,
            summaries: true,
            max_include_depth: 0,
            work_limit: 10_000_000,
            trace_limit: 12,
            taint_graph: false,
            function_jobs: 1,
        };
        Pixy {
            engine: PhpSafe::new()
                .with_tool_name("Pixy")
                .with_config(pixy_config())
                .with_options(options),
        }
    }

    /// Access to the underlying engine (for ablation benches).
    pub fn engine(&self) -> &PhpSafe {
        &self.engine
    }

    /// The same baseline with the whole-program taint-graph path toggled.
    pub fn with_taint_graph(mut self, enabled: bool) -> Self {
        self.engine = self.engine.with_taint_graph(enabled);
        self
    }
}

impl AnalysisTool for Pixy {
    fn name(&self) -> &str {
        "Pixy"
    }

    fn analyze(&self, project: &PluginProject) -> AnalysisOutcome {
        self.engine.analyze(project)
    }

    fn analyze_cached(
        &self,
        project: &PluginProject,
        caches: &phpsafe::EngineCaches,
    ) -> AnalysisOutcome {
        self.engine.analyze_with_caches(project, Some(caches))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phpsafe::SourceFile;
    use taint_config::SourceKind;

    fn plugin(src: &str) -> PluginProject {
        PluginProject::new("t").with_file(SourceFile::new("t.php", src))
    }

    #[test]
    fn finds_classic_procedural_xss() {
        let o = Pixy::new().analyze(&plugin("<?php echo $_GET['q'];"));
        assert_eq!(o.vulns.len(), 1);
        assert_eq!(o.tool, "Pixy");
    }

    #[test]
    fn fails_files_with_oop() {
        let o = Pixy::new().analyze(&plugin("<?php class C { } echo $_GET['q'];"));
        assert_eq!(o.stats.files_failed, 1);
        assert!(o.vulns.is_empty(), "rejected file yields nothing");
    }

    #[test]
    fn fails_files_with_method_calls_even_without_classes() {
        let o = Pixy::new().analyze(&plugin(
            "<?php $r = $wpdb->get_results('x'); echo $_GET['q'];",
        ));
        assert_eq!(o.stats.files_failed, 1);
    }

    #[test]
    fn fails_files_with_closures() {
        let o = Pixy::new().analyze(&plugin(
            "<?php add_action('init', function () { echo 1; }); echo $_GET['q'];",
        ));
        assert_eq!(o.stats.files_failed, 1);
    }

    #[test]
    fn register_globals_noise() {
        // Undefined globals are treated as attacker-controlled — the
        // behaviour that dominates Pixy's reports on modern code.
        let o = Pixy::new().analyze(&plugin("<?php echo $theme_header;"));
        assert_eq!(o.vulns.len(), 1);
        assert_eq!(o.vulns[0].source_kind, SourceKind::Request);
    }

    #[test]
    fn does_not_analyze_uncalled_functions() {
        let o = Pixy::new().analyze(&plugin("<?php function handler() { echo $_POST['x']; }"));
        assert!(o.vulns.is_empty(), "{:?}", o.vulns);
    }

    #[test]
    fn era_gap_mysqli_unknown() {
        // mysqli escaping is unknown to a 2007 tool → false positive.
        let o = Pixy::new().analyze(&plugin(
            "<?php $q = mysqli_real_escape_string($l, $_GET['q']);
             mysql_query(\"SELECT '$q'\");",
        ));
        assert_eq!(o.vulns.len(), 1, "{:?}", o.vulns);
    }

    #[test]
    fn knows_classic_sanitizers() {
        let o = Pixy::new().analyze(&plugin("<?php echo htmlentities($_GET['q']);"));
        assert!(o.vulns.is_empty());
    }
}
