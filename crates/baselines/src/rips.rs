//! A capability-faithful reimplementation of **RIPS** (Dahse & Holz,
//! NDSS'14) as described and measured by the phpSAFE paper:
//!
//! * AST-based, intra- and inter-procedural taint analysis with a rich
//!   model of PHP built-in functions — shared with our engine;
//! * analyzes every file of the plugin **one file at a time through its web
//!   interface** (the paper's methodology step 4), so it does *not* splice
//!   `include`s — which is also why it never blows up on include-heavy
//!   files and "succeeded in completing the analysis of all files";
//! * **does not parse PHP objects** (§II): method calls are opaque,
//!   property flows are invisible — it "misses encapsulated vulnerabilities
//!   in modern OOP based web applications and plugins";
//! * knows nothing about the WordPress API: `esc_html`/`$wpdb` are just
//!   unknown identifiers, causing both false positives (unknown sanitizers)
//!   and false negatives (unseen sources/sinks);
//! * does analyze functions that are never called (the paper observes both
//!   phpSAFE and RIPS do).

use crate::tool::AnalysisTool;
use phpsafe::{AnalysisOutcome, AnalyzerOptions, PhpSafe, PluginProject};
use taint_config::generic_php;

/// The RIPS-like baseline analyzer.
#[derive(Debug, Clone)]
pub struct Rips {
    engine: PhpSafe,
}

impl Default for Rips {
    fn default() -> Self {
        Self::new()
    }
}

impl Rips {
    /// Builds RIPS with its documented capability set.
    pub fn new() -> Self {
        let options = AnalyzerOptions {
            oop: false,
            resolve_includes: false,
            analyze_uncalled: true,
            register_globals: false,
            reject_oop_files: false,
            reject_closures: false,
            summaries: true,
            max_include_depth: 0,
            // RIPS finished every file in the paper's runs.
            work_limit: 50_000_000,
            trace_limit: 12,
            taint_graph: false,
            function_jobs: 1,
        };
        Rips {
            engine: PhpSafe::new()
                .with_tool_name("RIPS")
                .with_config(generic_php())
                .with_options(options),
        }
    }

    /// Access to the underlying engine (for ablation benches).
    pub fn engine(&self) -> &PhpSafe {
        &self.engine
    }

    /// The same baseline with the whole-program taint-graph path toggled.
    pub fn with_taint_graph(mut self, enabled: bool) -> Self {
        self.engine = self.engine.with_taint_graph(enabled);
        self
    }
}

impl AnalysisTool for Rips {
    fn name(&self) -> &str {
        "RIPS"
    }

    fn analyze(&self, project: &PluginProject) -> AnalysisOutcome {
        self.engine.analyze(project)
    }

    fn analyze_cached(
        &self,
        project: &PluginProject,
        caches: &phpsafe::EngineCaches,
    ) -> AnalysisOutcome {
        self.engine.analyze_with_caches(project, Some(caches))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phpsafe::SourceFile;
    use taint_config::VulnClass;

    fn plugin(src: &str) -> PluginProject {
        PluginProject::new("t").with_file(SourceFile::new("t.php", src))
    }

    #[test]
    fn finds_plain_php_xss() {
        let o = Rips::new().analyze(&plugin("<?php echo $_GET['q'];"));
        assert_eq!(o.vulns.len(), 1);
        assert_eq!(o.tool, "RIPS");
    }

    #[test]
    fn respects_php_builtin_sanitizers() {
        let o = Rips::new().analyze(&plugin("<?php echo htmlentities($_GET['q']);"));
        assert!(o.vulns.is_empty());
    }

    #[test]
    fn misses_wpdb_oop_source() {
        // The paper's key observation: RIPS finds none of the WordPress
        // object vulnerabilities.
        let o = Rips::new().analyze(&plugin(
            "<?php
            $rows = $wpdb->get_results('SELECT * FROM t');
            foreach ($rows as $r) { echo $r->name; }",
        ));
        assert!(o.vulns.is_empty(), "{:?}", o.vulns);
    }

    #[test]
    fn misses_wpdb_sqli_sink() {
        let o = Rips::new().analyze(&plugin(
            "<?php $t = $_GET['t']; $wpdb->query(\"DELETE FROM x WHERE t='$t'\");",
        ));
        assert!(o.vulns.is_empty());
    }

    #[test]
    fn unknown_wp_sanitizer_causes_false_positive() {
        // esc_html is unknown to RIPS → taint propagates → FP.
        let o = Rips::new().analyze(&plugin("<?php echo esc_html($_GET['q']);"));
        assert_eq!(o.vulns.len(), 1, "RIPS reports the escaped echo");
        assert_eq!(o.vulns[0].class, VulnClass::Xss);
    }

    #[test]
    fn no_include_resolution() {
        let p = PluginProject::new("multi")
            .with_file(SourceFile::new(
                "main.php",
                "<?php $v = $_GET['v']; include 'show.php';",
            ))
            .with_file(SourceFile::new("show.php", "<?php echo $v;"));
        let o = Rips::new().analyze(&p);
        assert!(
            o.vulns.is_empty(),
            "per-file analysis cannot connect the files: {:?}",
            o.vulns
        );
    }

    #[test]
    fn analyzes_uncalled_functions() {
        let o = Rips::new().analyze(&plugin("<?php function handler() { echo $_POST['x']; }"));
        assert_eq!(o.vulns.len(), 1);
    }

    #[test]
    fn completes_include_heavy_files_phpsafe_fails() {
        let mut p = PluginProject::new("deep");
        for i in 0..20 {
            p.push_file(SourceFile::new(
                format!("f{i}.php"),
                format!("<?php include 'f{}.php';", i + 1),
            ));
        }
        p.push_file(SourceFile::new("f20.php", "<?php echo 1;"));
        let o = Rips::new().analyze(&p);
        assert_eq!(o.stats.files_failed, 0, "RIPS completes all files");
    }
}
