//! The common tool abstraction the evaluation harness runs: phpSAFE, the
//! RIPS-like baseline and the Pixy-like baseline all implement
//! [`AnalysisTool`].

use phpsafe::{AnalysisOutcome, PhpSafe, PluginProject};

/// A static analysis tool that can be pointed at a plugin project.
pub trait AnalysisTool {
    /// Tool display name (`phpSAFE`, `RIPS`, `Pixy`).
    fn name(&self) -> &str;

    /// Analyzes a plugin and returns its findings.
    fn analyze(&self, project: &PluginProject) -> AnalysisOutcome;
}

impl AnalysisTool for PhpSafe {
    fn name(&self) -> &str {
        "phpSAFE"
    }

    fn analyze(&self, project: &PluginProject) -> AnalysisOutcome {
        PhpSafe::analyze(self, project)
    }
}

/// Builds the three tools of the paper's evaluation, in table order.
pub fn paper_tools() -> Vec<Box<dyn AnalysisTool>> {
    vec![
        Box::new(PhpSafe::new()),
        Box::new(crate::rips::Rips::new()),
        Box::new(crate::pixy::Pixy::new()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_tools_have_expected_names() {
        let tools = paper_tools();
        let names: Vec<&str> = tools.iter().map(|t| t.name()).collect();
        assert_eq!(names, vec!["phpSAFE", "RIPS", "Pixy"]);
    }
}
