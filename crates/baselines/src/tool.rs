//! The common tool abstraction the evaluation harness runs: phpSAFE, the
//! RIPS-like baseline and the Pixy-like baseline all implement
//! [`AnalysisTool`].

use phpsafe::{AnalysisOutcome, EngineCaches, PhpSafe, PluginProject};

/// A static analysis tool that can be pointed at a plugin project.
///
/// `Send + Sync` so the engine's worker pool can fan jobs referencing one
/// tool instance across threads.
pub trait AnalysisTool: Send + Sync {
    /// Tool display name (`phpSAFE`, `RIPS`, `Pixy`).
    fn name(&self) -> &str;

    /// Analyzes a plugin and returns its findings.
    fn analyze(&self, project: &PluginProject) -> AnalysisOutcome;

    /// [`AnalysisTool::analyze`] sharing parse results and call summaries
    /// through the engine caches. Must return exactly what `analyze`
    /// returns — only faster.
    fn analyze_cached(&self, project: &PluginProject, caches: &EngineCaches) -> AnalysisOutcome;
}

impl AnalysisTool for PhpSafe {
    fn name(&self) -> &str {
        "phpSAFE"
    }

    fn analyze(&self, project: &PluginProject) -> AnalysisOutcome {
        PhpSafe::analyze(self, project)
    }

    fn analyze_cached(&self, project: &PluginProject, caches: &EngineCaches) -> AnalysisOutcome {
        self.analyze_with_caches(project, Some(caches))
    }
}

/// Builds the three tools of the paper's evaluation, in table order.
pub fn paper_tools() -> Vec<Box<dyn AnalysisTool>> {
    vec![
        Box::new(PhpSafe::new()),
        Box::new(crate::rips::Rips::new()),
        Box::new(crate::pixy::Pixy::new()),
    ]
}

/// [`paper_tools`] with the whole-program taint-graph analysis path
/// enabled on every tool. Must produce byte-identical outcomes; only the
/// analysis mechanics (one recorded walk, then per-class graph queries)
/// differ.
pub fn paper_tools_graph() -> Vec<Box<dyn AnalysisTool>> {
    vec![
        Box::new(PhpSafe::new().with_taint_graph(true)),
        Box::new(crate::rips::Rips::new().with_taint_graph(true)),
        Box::new(crate::pixy::Pixy::new().with_taint_graph(true)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_tools_have_expected_names() {
        let tools = paper_tools();
        let names: Vec<&str> = tools.iter().map(|t| t.name()).collect();
        assert_eq!(names, vec!["phpSAFE", "RIPS", "Pixy"]);
    }
}
