//! Ablation benches: timing impact of phpSAFE's design choices (function
//! summaries, include resolution, OOP resolution). The detection impact of
//! the same switches is printed by `repro -- ablations`.

use criterion::{criterion_group, criterion_main, Criterion};
use phpsafe::{AnalyzerOptions, PhpSafe};
use phpsafe_corpus::{Corpus, Version};
use std::sync::OnceLock;
use std::time::Duration;

fn corpus() -> &'static Corpus {
    static C: OnceLock<Corpus> = OnceLock::new();
    C.get_or_init(Corpus::generate)
}

fn variants() -> Vec<(&'static str, PhpSafe)> {
    vec![
        ("full", PhpSafe::new()),
        (
            "no_summaries",
            PhpSafe::new().with_options(AnalyzerOptions {
                summaries: false,
                ..AnalyzerOptions::default()
            }),
        ),
        (
            "no_includes",
            PhpSafe::new().with_options(AnalyzerOptions {
                resolve_includes: false,
                ..AnalyzerOptions::default()
            }),
        ),
        (
            "no_oop",
            PhpSafe::new().with_options(AnalyzerOptions {
                oop: false,
                ..AnalyzerOptions::default()
            }),
        ),
    ]
}

fn bench_ablations(c: &mut Criterion) {
    // An OOP-heavy plugin exercises summaries and method resolution.
    let plugin = corpus()
        .plugins()
        .iter()
        .find(|p| p.name == "mail-subscribe-list")
        .expect("plugin");
    let project = plugin.project(Version::V2014);
    let mut group = c.benchmark_group("ablations/mail_subscribe_list_2014");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(5));
    for (name, tool) in variants() {
        group.bench_function(name, |b| {
            b.iter(|| std::hint::black_box(tool.analyze(project)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
