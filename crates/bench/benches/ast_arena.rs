//! Measures the flat-AST hot paths introduced for the arena work: how
//! fast files parse into per-file arenas, how fast a full visitor walk
//! traverses the contiguous node pools (the memory-order access pattern
//! the taint interpreter rides), and what the end-to-end serial analysis
//! costs on both corpus versions — the Table III configuration. Run with
//! `cargo bench --bench ast_arena`; the `ast.*` allocation counters
//! (nodes, arena bytes, slice ranges) print after the groups so the
//! footprint numbers land next to the timings.

use criterion::{criterion_group, criterion_main, Criterion};
use php_ast::visit::{self, Visitor};
use php_ast::{Arena, ExprId, ParsedFile, StmtId};
use phpsafe_corpus::{Corpus, Version};
use std::sync::OnceLock;
use std::time::Duration;

fn corpus() -> &'static Corpus {
    static C: OnceLock<Corpus> = OnceLock::new();
    C.get_or_init(Corpus::generate)
}

/// Every file source in the 2014 corpus (the larger of the two).
fn corpus_sources() -> &'static Vec<String> {
    static S: OnceLock<Vec<String>> = OnceLock::new();
    S.get_or_init(|| {
        let mut out = Vec::new();
        for plugin in corpus().plugins() {
            for file in plugin.project(Version::V2014).files() {
                out.push(file.content.clone());
            }
        }
        out
    })
}

/// A visitor that touches every node — the traversal shape the analysis
/// stage repeats thousands of times per plugin.
#[derive(Default)]
struct Touch {
    nodes: u64,
}

impl Visitor for Touch {
    fn visit_expr(&mut self, a: &Arena, e: ExprId) {
        self.nodes += 1;
        visit::walk_expr(self, a, e);
    }
    fn visit_stmt(&mut self, a: &Arena, s: StmtId) {
        self.nodes += 1;
        visit::walk_stmt(self, a, s);
    }
}

fn bench_parse(c: &mut Criterion) {
    let sources = corpus_sources();
    println!("corpus files: {}", sources.len());
    let mut group = c.benchmark_group("ast_arena/parse");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(5));
    group.bench_function("parse_2014", |b| {
        b.iter(|| {
            let mut nodes = 0usize;
            for src in sources {
                let f = php_ast::parse(src);
                nodes += f.node_count();
            }
            std::hint::black_box(nodes)
        })
    });
    group.finish();
}

fn bench_walk(c: &mut Criterion) {
    let parsed: Vec<ParsedFile> = corpus_sources().iter().map(|s| php_ast::parse(s)).collect();
    let mut group = c.benchmark_group("ast_arena/walk");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(5));
    group.bench_function("visit_all_nodes", |b| {
        b.iter(|| {
            let mut v = Touch::default();
            for f in &parsed {
                visit::walk_file(&mut v, f);
            }
            std::hint::black_box(v.nodes)
        })
    });
    group.finish();
}

/// End-to-end: one serial phpSAFE pass per corpus version — the numbers
/// the Table III methodology times, now over index-based nodes.
fn bench_serial_analysis(c: &mut Criterion) {
    let corpus = corpus();
    let mut group = c.benchmark_group("ast_arena/serial_analysis");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    for (label, version) in [
        ("phpsafe_2012", Version::V2012),
        ("phpsafe_2014", Version::V2014),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                for plugin in corpus.plugins() {
                    std::hint::black_box(phpsafe::PhpSafe::new().analyze(plugin.project(version)));
                }
            })
        });
    }
    group.finish();

    // Counter snapshot so the arena footprint prints beside timings.
    phpsafe_obs::reset();
    phpsafe_obs::set_enabled(true);
    for plugin in corpus.plugins() {
        std::hint::black_box(phpsafe::PhpSafe::new().analyze(plugin.project(Version::V2014)));
    }
    let snap = phpsafe_obs::snapshot();
    phpsafe_obs::set_enabled(false);
    println!("{}", snap.render(&["ast."]));
}

criterion_group!(benches, bench_parse, bench_walk, bench_serial_analysis);
criterion_main!(benches);
