//! `engine_scaling` — the full 3 tools × 2 versions × 35 plugins
//! evaluation through the engine scheduler at 1/2/4/8 workers, against the
//! serial (uncached, single-thread) baseline.
//!
//! Two effects are measured at once: thread-level parallelism (bounded by
//! the machine's cores) and shared-cache reuse (one parse per distinct
//! file content across all six tool×version passes, plus cross-run
//! pure-leaf call summaries), which pays off even on a single core.

use criterion::{criterion_group, criterion_main, Criterion};
use phpsafe_corpus::Corpus;
use phpsafe_eval::Evaluation;
use std::sync::OnceLock;
use std::time::Duration;

fn corpus() -> &'static Corpus {
    static C: OnceLock<Corpus> = OnceLock::new();
    C.get_or_init(Corpus::generate)
}

fn bench_engine_scaling(c: &mut Criterion) {
    let corpus = corpus();
    let mut group = c.benchmark_group("engine_scaling");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));

    group.bench_function("serial", |b| {
        b.iter(|| std::hint::black_box(Evaluation::run_with(corpus.clone())))
    });
    for workers in [1usize, 2, 4, 8] {
        group.bench_function(&format!("jobs/{workers}"), |b| {
            b.iter(|| std::hint::black_box(Evaluation::run_engine_with(corpus.clone(), workers)))
        });
    }
    group.finish();

    // One instrumented run so the report shows what the caches did.
    phpsafe_obs::set_enabled(true);
    let (_, snapshot) = Evaluation::run_engine_with(corpus.clone(), 4);
    phpsafe_obs::set_enabled(false);
    println!(
        "{}",
        snapshot.render(&["engine.", "cache.", "stage.", "intern.", "cow."])
    );
}

criterion_group!(benches, bench_engine_scaling);
criterion_main!(benches);
