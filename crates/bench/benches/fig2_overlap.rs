//! Regenerates **Fig. 2** (the detection-overlap Venn diagram, as region
//! counts) and benchmarks the overlap computation.

use criterion::{criterion_group, criterion_main, Criterion};
use phpsafe_corpus::Version;
use phpsafe_eval::{tables, Evaluation};
use std::sync::OnceLock;

fn evaluation() -> &'static Evaluation {
    static E: OnceLock<Evaluation> = OnceLock::new();
    E.get_or_init(Evaluation::run)
}

fn bench_fig2(c: &mut Criterion) {
    let e = evaluation();
    println!("{}", tables::fig2(e));
    c.bench_function("fig2/venn_2012", |b| {
        b.iter(|| tables::venn_counts(std::hint::black_box(e), Version::V2012))
    });
    c.bench_function("fig2/venn_2014", |b| {
        b.iter(|| tables::venn_counts(std::hint::black_box(e), Version::V2014))
    });
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
