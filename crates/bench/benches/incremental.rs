//! `incremental` — what dependency-graph invalidation buys on the warm
//! daemon path, through the same service layer `phpsafe serve` dispatches
//! to, over the dumped 2014 corpus:
//!
//! 1. **Cold corpus**: a fresh `--cache-dir` server analyzes every plugin
//!    directory (one request per root, as an editor client would).
//! 2. **Warm steady state**: the resident server re-asked per plugin —
//!    every reply must be `fully_cached`; the per-plugin median must stay
//!    under 10 ms.
//! 3. **Edit + invalidate**: one file of the largest plugin is edited on
//!    disk and `invalidate` is sent. The reply's `reparsed` count (the
//!    AST-cache miss delta measured during the eager re-warm) must stay
//!    under 5% of the corpus's total file count — the paper-scale
//!    incrementality claim.
//! 4. **Post-invalidate analyze**: the next analyze of the edited plugin
//!    must be a pure cache hit, under 10 ms, byte-identical to a cold
//!    batch run over the edited tree.
//!
//! Results land in `BENCH_incremental.json` (smoke mode writes to a temp
//! dir instead).
//!
//! Run: `cargo bench -p phpsafe-bench --bench incremental [-- --smoke]`

use phpsafe::{load_project, AnalysisServer, EngineCaches, PhpSafe};
use phpsafe_corpus::{Corpus, Version};
use phpsafe_engine::DiskCache;
use phpsafe_obs::write_atomic;
use phpsafe_serve::{AnalyzeRequest, InvalidateRequest, Json, RequestCtx, Service};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

fn ctx() -> RequestCtx {
    RequestCtx::detached()
}

fn analyze_one(dir: &Path) -> AnalyzeRequest {
    AnalyzeRequest {
        paths: vec![dir.display().to_string()],
        tools: Vec::new(),
        jobs: Some(1),
        buffers: Vec::new(),
    }
}

fn num(v: &Json, key: &str) -> u64 {
    v.get(key).and_then(Json::as_num).unwrap_or(-1.0) as u64
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let root = std::env::temp_dir().join(format!("phpsafe-incremental-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();

    // Dump the 2014 corpus: one directory per plugin.
    let corpus = Corpus::generate();
    let mut plugin_dirs: Vec<PathBuf> = Vec::new();
    let mut total_files = 0usize;
    for plugin in corpus.plugins() {
        let project = plugin.project(Version::V2014);
        let dir = root.join("plugins").join(project.name());
        for f in project.files() {
            let p = dir.join(&f.path);
            std::fs::create_dir_all(p.parent().unwrap()).unwrap();
            std::fs::write(&p, &f.content).unwrap();
        }
        total_files += project.files().len();
        plugin_dirs.push(dir);
    }

    let cache_dir = root.join("cache");
    let disk = Arc::new(DiskCache::open(&cache_dir).unwrap());
    let server = AnalysisServer::with_caches(EngineCaches::with_disk(disk)).with_default_jobs(1);

    // --- 1. cold corpus, one request per root ---
    let t = Instant::now();
    for dir in &plugin_dirs {
        server.analyze(&ctx(), &analyze_one(dir)).unwrap();
    }
    let cold_us = t.elapsed().as_micros() as u64;
    println!(
        "cold corpus: {} plugins / {total_files} files in {cold_us}us",
        plugin_dirs.len()
    );

    // --- 2. warm steady state, per-plugin ---
    let mut warm_samples: Vec<u64> = Vec::new();
    for dir in &plugin_dirs {
        let t = Instant::now();
        let reply = server.analyze(&ctx(), &analyze_one(dir)).unwrap();
        warm_samples.push(t.elapsed().as_micros() as u64);
        assert_eq!(
            reply.get("fully_cached"),
            Some(&Json::Bool(true)),
            "warm steady state must answer from the outcome tier"
        );
    }
    warm_samples.sort_unstable();
    let warm_median_us = warm_samples[warm_samples.len() / 2];
    let warm_worst_us = *warm_samples.last().unwrap();
    println!("warm per-plugin: median={warm_median_us}us worst={warm_worst_us}us");
    assert!(
        warm_median_us < 10_000,
        "warm per-plugin analyze must stay under 10ms, median {warm_median_us}us"
    );

    // --- 3. edit + invalidate cycles on the largest plugin ---
    let victim = plugin_dirs
        .iter()
        .zip(corpus.plugins())
        .max_by_key(|(_, p)| p.project(Version::V2014).files().len())
        .map(|(d, _)| d.clone())
        .unwrap();
    let victim_files = load_project(&victim).unwrap().files().len();
    let edited_rel = load_project(&victim).unwrap().files()[0].path.clone();
    let edited_path = victim.join(&edited_rel);
    let pristine = std::fs::read_to_string(&edited_path).unwrap();

    let cycles = if smoke { 3 } else { 15 };
    let mut invalidate_samples: Vec<u64> = Vec::new();
    let mut post_samples: Vec<u64> = Vec::new();
    let mut last = (0u64, 0u64, 0u64); // (dirty, affected, reparsed)
    for i in 0..cycles {
        std::fs::write(
            &edited_path,
            format!("{pristine}\n// incremental bench edit {i}\n"),
        )
        .unwrap();
        let req = InvalidateRequest {
            paths: vec![edited_path.display().to_string()],
        };
        let t = Instant::now();
        let reply = server.invalidate(&ctx(), &req).unwrap();
        invalidate_samples.push(t.elapsed().as_micros() as u64);
        let project = &reply.get("projects").and_then(Json::as_arr).unwrap()[0];
        last = (
            num(project, "dirty"),
            num(project, "affected"),
            num(project, "reparsed"),
        );
        assert_eq!(last.0, 1, "exactly one file was edited");
        assert!(
            (last.2 as usize) * 20 < total_files,
            "a one-file edit re-parsed {} of {total_files} corpus files",
            last.2
        );

        // --- 4. post-invalidate analyze: pre-warmed, pure cache hit ---
        let t = Instant::now();
        let warm = server.analyze(&ctx(), &analyze_one(&victim)).unwrap();
        post_samples.push(t.elapsed().as_micros() as u64);
        assert_eq!(
            warm.get("fully_cached"),
            Some(&Json::Bool(true)),
            "invalidate must pre-warm the edited project"
        );
        if i == 0 {
            let got = warm.get("reports").and_then(Json::as_arr).unwrap()[0]
                .get("report")
                .and_then(Json::as_str)
                .unwrap()
                .to_owned();
            let batch = PhpSafe::new()
                .analyze(&load_project(&victim).unwrap())
                .to_json()
                .unwrap();
            assert_eq!(got, batch, "post-invalidate reply diverged from batch");
        }
    }
    invalidate_samples.sort_unstable();
    post_samples.sort_unstable();
    let invalidate_median_us = invalidate_samples[invalidate_samples.len() / 2];
    let post_median_us = post_samples[post_samples.len() / 2];
    let (dirty, affected, reparsed) = last;
    println!(
        "edit+invalidate: median={invalidate_median_us}us dirty={dirty} affected={affected} reparsed={reparsed}"
    );
    println!("post-invalidate analyze: median={post_median_us}us");
    assert!(
        post_median_us < 10_000,
        "post-invalidate analyze must stay under 10ms, median {post_median_us}us"
    );

    // --- render the artifact ---
    let reanalyzed_pct = reparsed as f64 * 100.0 / total_files as f64;
    let mut doc = String::new();
    let _ = writeln!(doc, "{{");
    let _ = writeln!(doc, "  \"bench\": \"incremental\",");
    let _ = writeln!(doc, "  \"smoke\": {smoke},");
    let _ = writeln!(
        doc,
        "  \"corpus\": {{\"plugins\": {}, \"files\": {total_files}}},",
        plugin_dirs.len()
    );
    let _ = writeln!(doc, "  \"cold_corpus_us\": {cold_us},");
    let _ = writeln!(
        doc,
        "  \"warm_per_plugin\": {{\"median_us\": {warm_median_us}, \"worst_us\": {warm_worst_us}, \"under_10ms\": {}}},",
        warm_median_us < 10_000
    );
    let _ = writeln!(
        doc,
        "  \"single_edit_invalidate\": {{\"cycles\": {cycles}, \"median_us\": {invalidate_median_us}, \"victim_files\": {victim_files}, \"dirty\": {dirty}, \"affected\": {affected}, \"reparsed\": {reparsed}, \"reanalyzed_pct_of_corpus\": {reanalyzed_pct:.2}, \"under_5pct\": {}}},",
        (reparsed as usize) * 20 < total_files
    );
    let _ = writeln!(
        doc,
        "  \"post_invalidate_analyze\": {{\"median_us\": {post_median_us}, \"under_10ms\": {}}}",
        post_median_us < 10_000
    );
    let _ = writeln!(doc, "}}");

    let out = if smoke {
        root.join("BENCH_incremental.json")
    } else {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_incremental.json")
    };
    write_atomic(&out, doc.as_bytes()).expect("write BENCH_incremental.json");
    println!("wrote {}", out.display());

    let _ = std::fs::remove_dir_all(&root);
}
