//! Measures the symbol-interning hot path introduced for the PR-3
//! perf work: how fast names intern (hit path), how much faster a
//! `Symbol`-keyed FNV map is than the `String`-keyed `SipHash` map it
//! replaced, and what the end-to-end serial analysis costs with the
//! copy-on-write environments in place. Run with
//! `cargo bench --bench interning`; counters (`intern.*`, `cow.*`)
//! print after the groups so the numbers land next to the timings.

use criterion::{criterion_group, criterion_main, Criterion};
use phpsafe_corpus::{Corpus, Version};
use phpsafe_intern::{fnv1a_64, FnvHashMap, Symbol};
use std::collections::HashMap;
use std::sync::OnceLock;
use std::time::Duration;

fn corpus() -> &'static Corpus {
    static C: OnceLock<Corpus> = OnceLock::new();
    C.get_or_init(Corpus::generate)
}

/// Every identifier/variable token text in the 2014 corpus, with the
/// natural duplication of real plugin code (the interner's hit path).
fn corpus_names() -> &'static Vec<String> {
    static N: OnceLock<Vec<String>> = OnceLock::new();
    N.get_or_init(|| {
        let mut names = Vec::new();
        for plugin in corpus().plugins() {
            for file in plugin.project(Version::V2014).files() {
                for tok in php_lexer::tokenize(&file.content) {
                    if matches!(
                        tok.kind,
                        php_lexer::TokenKind::Identifier | php_lexer::TokenKind::Variable
                    ) {
                        names.push(tok.text);
                    }
                }
            }
        }
        names
    })
}

fn bench_intern_path(c: &mut Criterion) {
    let names = corpus_names();
    println!("corpus names: {} (with duplicates)", names.len());
    let mut group = c.benchmark_group("interning/lookup");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(5));

    // Hit path: all names are already in the arena after the first pass.
    group.bench_function("intern_hit", |b| {
        b.iter(|| {
            let mut last = Symbol::default();
            for n in names {
                last = std::hint::black_box(Symbol::intern(n));
            }
            last
        })
    });

    // The one-shot hash the interner's table pays per probe, as a floor.
    group.bench_function("fnv1a_64", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for n in names {
                acc ^= std::hint::black_box(fnv1a_64(n.as_bytes()));
            }
            acc
        })
    });
    group.finish();
}

fn bench_map_keys(c: &mut Criterion) {
    let names = corpus_names();
    let syms: Vec<Symbol> = names.iter().map(Symbol::from).collect();

    // Pre-built environments of the same shape the interpreter keeps.
    let mut string_map: HashMap<String, u64> = HashMap::new();
    let mut symbol_map: FnvHashMap<Symbol, u64> = FnvHashMap::default();
    for (i, (n, s)) in names.iter().zip(&syms).enumerate() {
        string_map.insert(n.clone(), i as u64);
        symbol_map.insert(*s, i as u64);
    }

    let mut group = c.benchmark_group("interning/env_key");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(5));
    group.bench_function("string_siphash", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for n in names {
                acc ^= string_map.get(n).copied().unwrap_or(0);
            }
            std::hint::black_box(acc)
        })
    });
    group.bench_function("symbol_fnv", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for s in &syms {
                acc ^= symbol_map.get(s).copied().unwrap_or(0);
            }
            std::hint::black_box(acc)
        })
    });
    group.finish();
}

/// End-to-end: one serial phpSAFE pass over the 2014 corpus — the
/// configuration the Table III methodology times — exercising interned
/// tokens, Symbol-keyed environments and CoW branch snapshots together.
fn bench_serial_analysis(c: &mut Criterion) {
    let corpus = corpus();
    let mut group = c.benchmark_group("interning/serial_analysis");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    group.bench_function("phpsafe_2014", |b| {
        b.iter(|| {
            for plugin in corpus.plugins() {
                std::hint::black_box(
                    phpsafe::PhpSafe::new().analyze(plugin.project(Version::V2014)),
                );
            }
        })
    });
    group.finish();

    // Counter snapshot so the intern/CoW numbers print beside timings.
    phpsafe_obs::reset();
    phpsafe_obs::set_enabled(true);
    for plugin in corpus.plugins() {
        std::hint::black_box(phpsafe::PhpSafe::new().analyze(plugin.project(Version::V2014)));
    }
    let snap = phpsafe_obs::snapshot();
    phpsafe_obs::set_enabled(false);
    println!("{}", snap.render(&["intern.", "cow."]));
}

criterion_group!(
    benches,
    bench_intern_path,
    bench_map_keys,
    bench_serial_analysis
);
criterion_main!(benches);
