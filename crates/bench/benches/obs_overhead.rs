//! `obs_overhead` — what the observability layer costs the analyzer.
//!
//! Three configurations over the same corpus plugin, single-threaded:
//!
//! * `disabled` — the default: every `count`/`time`/`span!` call is a
//!   relaxed atomic load and an early return. This is the price every
//!   production run pays and it must stay within noise (<2%) of an
//!   uninstrumented build.
//! * `metrics` — counters, histograms and the span tree recording.
//! * `metrics+events` — additionally streaming taint events into the
//!   ring buffer, the `--explain` configuration.

use criterion::{criterion_group, criterion_main, Criterion};
use phpsafe::PhpSafe;
use phpsafe_corpus::{Corpus, Version};
use std::sync::OnceLock;
use std::time::Duration;

fn corpus() -> &'static Corpus {
    static C: OnceLock<Corpus> = OnceLock::new();
    C.get_or_init(Corpus::generate)
}

fn bench_obs_overhead(c: &mut Criterion) {
    let corpus = corpus();
    let plugin = &corpus.plugins()[0];
    let tool = PhpSafe::new();

    let mut group = c.benchmark_group("obs_overhead");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(5));

    phpsafe_obs::set_enabled(false);
    phpsafe_obs::set_events_enabled(false);
    group.bench_function("disabled", |b| {
        b.iter(|| std::hint::black_box(tool.analyze(plugin.project(Version::V2014))))
    });

    phpsafe_obs::set_enabled(true);
    group.bench_function("metrics", |b| {
        b.iter(|| std::hint::black_box(tool.analyze(plugin.project(Version::V2014))))
    });

    phpsafe_obs::set_events_enabled(true);
    group.bench_function("metrics+events", |b| {
        b.iter(|| {
            phpsafe_obs::drain_events();
            std::hint::black_box(tool.analyze(plugin.project(Version::V2014)))
        })
    });

    phpsafe_obs::set_enabled(false);
    phpsafe_obs::set_events_enabled(false);
    phpsafe_obs::drain_events();
    group.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
