//! `obs_overhead` — what the observability layer costs the analyzer.
//!
//! Four configurations over the same corpus plugin, single-threaded:
//!
//! * `disabled` — the default: every `count`/`time`/`span!` call is a
//!   relaxed atomic load and an early return. This is the price every
//!   production run pays and it must stay within noise (<2%) of an
//!   uninstrumented build.
//! * `metrics` — counters, histograms and the span tree recording.
//! * `metrics+wide_events` — additionally the daemon's per-request
//!   telemetry: a `RequestCtx` scratchpad, one `WideEvent` serialized to
//!   NDJSON and offered to the tail sampler. This is what `--telemetry-out`
//!   adds on top of plain metrics and must stay within a few percent.
//! * `metrics+events` — additionally streaming taint events into the
//!   ring buffer, the `--explain` configuration.

use criterion::{criterion_group, criterion_main, Criterion};
use phpsafe::PhpSafe;
use phpsafe_corpus::{Corpus, Version};
use phpsafe_obs::{TailSampler, WideEvent};
use phpsafe_serve::RequestCtx;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

fn corpus() -> &'static Corpus {
    static C: OnceLock<Corpus> = OnceLock::new();
    C.get_or_init(Corpus::generate)
}

fn bench_obs_overhead(c: &mut Criterion) {
    let corpus = corpus();
    let plugin = &corpus.plugins()[0];
    let tool = PhpSafe::new();

    let mut group = c.benchmark_group("obs_overhead");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(5));

    phpsafe_obs::set_enabled(false);
    phpsafe_obs::set_events_enabled(false);
    group.bench_function("disabled", |b| {
        b.iter(|| std::hint::black_box(tool.analyze(plugin.project(Version::V2014))))
    });

    phpsafe_obs::set_enabled(true);
    group.bench_function("metrics", |b| {
        b.iter(|| std::hint::black_box(tool.analyze(plugin.project(Version::V2014))))
    });

    let sampler = TailSampler::new(8);
    let mut seq = 0u64;
    group.bench_function("metrics+wide_events", |b| {
        b.iter(|| {
            seq += 1;
            let t0 = Instant::now();
            let ctx = RequestCtx::detached();
            let out = std::hint::black_box(tool.analyze(plugin.project(Version::V2014)));
            ctx.mark("analyze_us", t0.elapsed());
            let event = WideEvent {
                seq,
                method: "analyze".into(),
                outcome: "ok".into(),
                total_us: t0.elapsed().as_micros() as u64,
                marks: ctx.marks(),
                ..WideEvent::default()
            };
            sampler.offer(&event);
            std::hint::black_box(event.to_ndjson());
            out
        })
    });

    phpsafe_obs::set_events_enabled(true);
    group.bench_function("metrics+events", |b| {
        b.iter(|| {
            phpsafe_obs::drain_events();
            std::hint::black_box(tool.analyze(plugin.project(Version::V2014)))
        })
    });

    phpsafe_obs::set_enabled(false);
    phpsafe_obs::set_events_enabled(false);
    phpsafe_obs::drain_events();
    group.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
