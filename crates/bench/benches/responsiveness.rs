//! §V.E responsiveness: seconds per KLOC for each tool on a single large
//! plugin, plus front-end (lexer/parser) throughput. The paper reports
//! ~0.2 s/KLOC for phpSAFE and ~0.8-1.0 s/KLOC for RIPS on 2012 code.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use phpsafe_baselines::paper_tools;
use phpsafe_corpus::{Corpus, Version};
use std::sync::OnceLock;
use std::time::Duration;

fn corpus() -> &'static Corpus {
    static C: OnceLock<Corpus> = OnceLock::new();
    C.get_or_init(Corpus::generate)
}

fn bench_responsiveness(c: &mut Criterion) {
    let plugin = corpus()
        .plugins()
        .iter()
        .find(|p| p.name == "wp-symposium")
        .expect("plugin");
    let project = plugin.project(Version::V2014);
    let loc = project.total_loc() as u64;

    let mut group = c.benchmark_group("responsiveness/analyze_wp_symposium_2014");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(5))
        .throughput(Throughput::Elements(loc));
    for tool in paper_tools() {
        group.bench_function(tool.name(), |b| {
            b.iter(|| std::hint::black_box(tool.analyze(project)))
        });
    }
    group.finish();

    // Front-end throughput on the whole 2014 corpus text.
    let all_src: Vec<&str> = corpus()
        .plugins()
        .iter()
        .flat_map(|p| p.project(Version::V2014).files())
        .map(|f| f.content.as_str())
        .collect();
    let bytes: u64 = all_src.iter().map(|s| s.len() as u64).sum();
    let mut fe = c.benchmark_group("responsiveness/front_end");
    fe.sample_size(10)
        .measurement_time(Duration::from_secs(5))
        .throughput(Throughput::Bytes(bytes));
    fe.bench_function("lexer", |b| {
        b.iter(|| {
            for s in &all_src {
                std::hint::black_box(php_lexer::tokenize(s));
            }
        })
    });
    fe.bench_function("parser", |b| {
        b.iter(|| {
            for s in &all_src {
                std::hint::black_box(php_ast::parse(s));
            }
        })
    });
    fe.finish();
}

criterion_group!(benches, bench_responsiveness);
criterion_main!(benches);
