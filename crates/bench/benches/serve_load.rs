//! `serve_load` — replay mixed traffic against a *live* daemon and
//! extract the latency distribution.
//!
//! The warm-start bench times the service layer in isolation; this one
//! exercises the whole serving path — TCP transport, NDJSON protocol,
//! bounded queue, worker pool, wide-event telemetry — the way a fleet
//! client would see it:
//!
//! 1. **Warm + invariance pass**: every 2014-corpus plugin is analyzed
//!    once over the socket and the embedded report must be byte-identical
//!    to a direct batch analysis.
//! 2. **Stepped load**: closed-loop clients at increasing concurrency
//!    replay a mixed analyze/status/metrics stream; client-side
//!    histograms yield interpolated p50/p95/p99 and throughput per step.
//! 3. **Overload probe**: a deliberately tiny daemon (one worker, one
//!    queue slot) is hammered so the 429 shedding path is measured, not
//!    just unit-tested.
//!
//! Every response is checked for the `seq` echo and (on analyze) the
//! client-chosen `id`; the daemon's `--telemetry-out` stream must carry
//! exactly one wide event per request. Results land in
//! `BENCH_serve_load.json` (smoke mode writes to a temp dir instead).
//!
//! Run: `cargo bench -p phpsafe-bench --bench serve_load [-- --smoke]`

use phpsafe::{load_project, AnalysisServer, PhpSafe};
use phpsafe_corpus::{Corpus, Version};
use phpsafe_obs::{write_atomic, Histogram, Percentiles};
use phpsafe_serve::{bind, run_tcp, Daemon, Json, ServerConfig};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write as _};
use std::net::TcpStream;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// One NDJSON client connection to the daemon under test.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to daemon");
        // Nagle + delayed ACK add ~40ms stalls to the one-line
        // request/response pattern; disable so we time the daemon.
        stream.set_nodelay(true).expect("set TCP_NODELAY");
        Client {
            writer: stream.try_clone().unwrap(),
            reader: BufReader::new(stream),
        }
    }

    fn ask(&mut self, line: &str) -> Json {
        writeln!(self.writer, "{line}").expect("send request");
        let mut response = String::new();
        self.reader.read_line(&mut response).expect("read response");
        phpsafe_serve::parse(response.trim())
            .unwrap_or_else(|e| panic!("unparseable response `{response}`: {e}"))
    }
}

fn analyze_line(path: &str, id: &str) -> String {
    Json::Obj(vec![
        ("cmd".to_owned(), Json::Str("analyze".into())),
        ("paths".to_owned(), Json::Arr(vec![Json::Str(path.into())])),
        ("jobs".to_owned(), Json::Num(1.0)),
        ("id".to_owned(), Json::Str(id.into())),
    ])
    .emit()
}

fn dump_2014(root: &Path) -> Vec<String> {
    let corpus = Corpus::generate();
    let mut dirs = Vec::new();
    for plugin in corpus.plugins() {
        let project = plugin.project(Version::V2014);
        let dir = root.join(project.name());
        for f in project.files() {
            let path = dir.join(&f.path);
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &f.content).unwrap();
        }
        dirs.push(dir.display().to_string());
    }
    dirs
}

fn start_daemon(config: ServerConfig) -> (Arc<Daemon>, std::net::SocketAddr) {
    let server = AnalysisServer::new().with_default_jobs(1);
    let daemon = Daemon::start(Arc::new(server), config);
    let listener = bind(0).expect("bind loopback");
    let addr = listener.local_addr().unwrap();
    {
        let daemon = Arc::clone(&daemon);
        std::thread::spawn(move || run_tcp(&daemon, listener));
    }
    (daemon, addr)
}

/// Expects a successful envelope: `ok == true` and a positive seq.
fn expect_ok(v: &Json, what: &str) {
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "{what} failed: {v:?}");
    let seq = v.get("seq").and_then(Json::as_num).unwrap_or(0.0);
    assert!(seq >= 1.0, "{what}: response without a server seq: {v:?}");
}

struct StepResult {
    concurrency: usize,
    requests: u64,
    rejected_429: u64,
    analyze: Percentiles,
    all: Percentiles,
    throughput_rps: f64,
}

/// Runs one load step: `concurrency` closed-loop clients, each replaying
/// `per_client` requests of the mixed stream.
fn run_step(
    addr: std::net::SocketAddr,
    plugin_dirs: &[String],
    concurrency: usize,
    per_client: usize,
) -> StepResult {
    let analyze_hist = Arc::new(Histogram::new());
    let all_hist = Arc::new(Histogram::new());
    let rejected = Arc::new(AtomicU64::new(0));
    let t0 = Instant::now();
    let workers: Vec<_> = (0..concurrency)
        .map(|ci| {
            let dirs: Vec<String> = plugin_dirs.to_vec();
            let analyze_hist = Arc::clone(&analyze_hist);
            let all_hist = Arc::clone(&all_hist);
            let rejected = Arc::clone(&rejected);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                for i in 0..per_client {
                    let id = format!("c{ci}-{i}");
                    // Mixed stream: 3 analyze : 1 status : 1 metrics.
                    let line = match i % 5 {
                        4 => {
                            if (i / 5) % 2 == 0 {
                                r#"{"cmd":"metrics"}"#.to_owned()
                            } else {
                                r#"{"cmd":"metrics","format":"prometheus"}"#.to_owned()
                            }
                        }
                        3 => r#"{"cmd":"status"}"#.to_owned(),
                        n => analyze_line(&dirs[(ci + i + n) % dirs.len()], &id),
                    };
                    let is_analyze = i % 5 < 3;
                    let sent = Instant::now();
                    let v = client.ask(&line);
                    let us = sent.elapsed().as_micros() as u64;
                    all_hist.record_us(us);
                    if v.get("code") == Some(&Json::Num(429.0)) {
                        rejected.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    expect_ok(&v, "load request");
                    if is_analyze {
                        analyze_hist.record_us(us);
                        assert_eq!(
                            v.get("id"),
                            Some(&Json::Str(id.clone())),
                            "analyze response must echo the client id"
                        );
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread");
    }
    let wall = t0.elapsed();
    let requests = (concurrency * per_client) as u64;
    StepResult {
        concurrency,
        requests,
        rejected_429: rejected.load(Ordering::Relaxed),
        analyze: analyze_hist.snapshot().percentiles(),
        all: all_hist.snapshot().percentiles(),
        throughput_rps: requests as f64 / wall.as_secs_f64(),
    }
}

/// Hammers a one-worker/one-slot daemon with concurrent analyze traffic
/// so load shedding is exercised; returns (ok, rejected_429).
fn run_overload(plugin_dirs: &[String], clients: usize, per_client: usize) -> (u64, u64) {
    let (daemon, addr) = start_daemon(ServerConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServerConfig::default()
    });
    let ok = Arc::new(AtomicU64::new(0));
    let rejected = Arc::new(AtomicU64::new(0));
    let workers: Vec<_> = (0..clients)
        .map(|ci| {
            let dir = plugin_dirs[ci % plugin_dirs.len()].clone();
            let ok = Arc::clone(&ok);
            let rejected = Arc::clone(&rejected);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                for i in 0..per_client {
                    let v = client.ask(&analyze_line(&dir, &format!("o{ci}-{i}")));
                    if let Some(code) = v.get("code").and_then(Json::as_num) {
                        assert_eq!(code, 429.0, "unexpected error under overload: {v:?}");
                        assert!(
                            v.get("seq").and_then(Json::as_num).unwrap_or(0.0) >= 1.0,
                            "shed responses must still carry the seq"
                        );
                        rejected.fetch_add(1, Ordering::Relaxed);
                    } else {
                        expect_ok(&v, "overload analyze");
                        ok.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("overload client");
    }
    Client::connect(addr).ask(r#"{"cmd":"shutdown"}"#);
    daemon.join();
    (ok.load(Ordering::Relaxed), rejected.load(Ordering::Relaxed))
}

fn percentile_json(p: &Percentiles) -> String {
    format!(
        "{{\"count\": {}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \"max_us\": {}}}",
        p.count, p.p50_us, p.p95_us, p.p99_us, p.max_us
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // Criterion-style harness args (--bench, filters) are ignored.
    let root = std::env::temp_dir().join(format!("phpsafe-serve-load-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let plugin_dirs = dump_2014(&root.join("plugins"));
    let telemetry_out = root.join("telemetry.ndjson");

    // Steps and volumes: smoke keeps verify.sh fast, full measures.
    let steps: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };
    let per_client = if smoke { 10 } else { 30 };

    let (daemon, addr) = start_daemon(ServerConfig {
        workers: 2,
        queue_capacity: 64,
        telemetry_out: Some(telemetry_out.clone()),
        ..ServerConfig::default()
    });

    // Warm + invariance pass: daemon bytes == batch bytes, for every
    // plugin. This also warms the in-memory AST/summary caches so the
    // load steps measure the daemon's steady state.
    let tool = PhpSafe::new();
    let mut client = Client::connect(addr);
    let mut requests_sent = 0u64;
    for (i, dir) in plugin_dirs.iter().enumerate() {
        let id = format!("warm-{i}");
        let v = client.ask(&analyze_line(dir, &id));
        requests_sent += 1;
        expect_ok(&v, "warm analyze");
        assert_eq!(v.get("id"), Some(&Json::Str(id)));
        let reports = v
            .get("result")
            .and_then(|r| r.get("reports"))
            .and_then(Json::as_arr)
            .expect("reports array");
        let served = reports[0].get("report").and_then(Json::as_str).unwrap();
        let batch = tool
            .analyze(&load_project(Path::new(dir)).unwrap())
            .to_json()
            .unwrap();
        assert_eq!(served, batch, "daemon diverged from batch for {dir}");
    }
    println!(
        "invariance: {} daemon reports byte-identical to batch",
        plugin_dirs.len()
    );

    let mut results = Vec::new();
    for &concurrency in steps {
        let step = run_step(addr, &plugin_dirs, concurrency, per_client);
        requests_sent += step.requests;
        println!(
            "c={:<2} requests={:<4} p50={}us p95={}us p99={}us max={}us {:.1} req/s 429s={}",
            step.concurrency,
            step.requests,
            step.analyze.p50_us,
            step.analyze.p95_us,
            step.analyze.p99_us,
            step.analyze.max_us,
            step.throughput_rps,
            step.rejected_429,
        );
        results.push(step);
    }

    // The retained tail must answer over the wire.
    let telemetry = client.ask(r#"{"cmd":"telemetry"}"#);
    requests_sent += 1;
    expect_ok(&telemetry, "telemetry");
    let samples = telemetry
        .get("samples")
        .and_then(Json::as_arr)
        .expect("telemetry samples");
    assert!(!samples.is_empty(), "tail sampler retained nothing");

    client.ask(r#"{"cmd":"shutdown"}"#);
    requests_sent += 1;
    daemon.join();

    // One wide event per request, flushed atomically by shutdown/join.
    let stream = std::fs::read_to_string(&telemetry_out).expect("telemetry stream written");
    let events = stream.lines().count() as u64;
    assert_eq!(
        events, requests_sent,
        "telemetry stream must carry one wide event per request"
    );
    for line in stream.lines() {
        phpsafe_serve::parse(line).expect("wide event line is valid JSON");
    }
    println!(
        "telemetry: {events} wide events streamed to {}",
        telemetry_out.display()
    );

    let (overload_ok, overload_429) = run_overload(&plugin_dirs, 8, if smoke { 6 } else { 20 });
    assert!(overload_429 > 0, "overload probe never shed a request");
    println!("overload: {overload_ok} served, {overload_429} shed with 429");

    // Render the artifact.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut doc = String::new();
    let _ = writeln!(doc, "{{");
    let _ = writeln!(doc, "  \"bench\": \"serve_load\",");
    let _ = writeln!(doc, "  \"smoke\": {smoke},");
    let _ = writeln!(
        doc,
        "  \"machine\": {{\"cores\": {cores}, \"note\": \"closed-loop TCP clients against a live daemon (2 workers, queue 64, --jobs 1 per request); mixed 3 analyze : 1 status : 1 metrics stream; latency measured client-side, interpolated percentiles\"}},"
    );
    let _ = writeln!(
        doc,
        "  \"invariance\": {{\"reports_compared\": {}, \"byte_identical\": true}},",
        plugin_dirs.len()
    );
    let _ = writeln!(doc, "  \"steps\": [");
    for (i, s) in results.iter().enumerate() {
        let _ = writeln!(
            doc,
            "    {{\"concurrency\": {}, \"requests\": {}, \"throughput_rps\": {:.1}, \"rejected_429\": {}, \"rate_429\": {:.4}, \"analyze\": {}, \"all\": {}}}{}",
            s.concurrency,
            s.requests,
            s.throughput_rps,
            s.rejected_429,
            s.rejected_429 as f64 / s.requests as f64,
            percentile_json(&s.analyze),
            percentile_json(&s.all),
            if i + 1 < results.len() { "," } else { "" }
        );
    }
    let _ = writeln!(doc, "  ],");
    let _ = writeln!(
        doc,
        "  \"overload\": {{\"clients\": 8, \"workers\": 1, \"queue_capacity\": 1, \"served\": {overload_ok}, \"rejected_429\": {overload_429}, \"note\": \"dedicated tiny daemon; shed responses carry seq + id\"}},"
    );
    let _ = writeln!(
        doc,
        "  \"telemetry\": {{\"wide_events\": {events}, \"one_per_request\": true}}"
    );
    let _ = writeln!(doc, "}}");

    let out = if smoke {
        root.join("BENCH_serve_load.json")
    } else {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve_load.json")
    };
    write_atomic(&out, doc.as_bytes()).expect("write BENCH_serve_load.json");
    println!("wrote {}", out.display());

    let _ = std::fs::remove_dir_all(&root);
}
