//! `serve_warm_start` — what the daemon's cache tiers buy over the 2014
//! corpus, through the same service layer `phpsafe serve` dispatches to:
//!
//! * `cold_batch` — a fresh server with empty in-memory caches per
//!   iteration: the cost every batch CLI invocation pays today.
//! * `warm_disk_restart` — a *fresh* server per iteration over a
//!   populated `--cache-dir`: the daemon-restart (or `--cache-dir` batch
//!   rerun) path, answered from the persistent outcome/AST/summary tiers.
//! * `warm_memory` — one resident server asked repeatedly: the steady
//!   state of a long-running daemon.
//!
//! After the timing groups, the bench re-checks invariance: the warm
//! responses' reports must be byte-identical to the cold run's, and the
//! disk tier must actually have been hit. Results are recorded in
//! `BENCH_serve.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use phpsafe::{AnalysisServer, EngineCaches};
use phpsafe_corpus::{Corpus, Version};
use phpsafe_engine::DiskCache;
use phpsafe_serve::{AnalyzeRequest, Json, RequestCtx, Service};
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Writes the 2014 corpus to disk once and returns the plugin dirs.
fn plugin_paths() -> &'static Vec<String> {
    static P: OnceLock<Vec<String>> = OnceLock::new();
    P.get_or_init(|| {
        let root = std::env::temp_dir().join(format!(
            "phpsafe-serve-bench-plugins-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        let mut dirs = Vec::new();
        for plugin in Corpus::generate().plugins() {
            let project = plugin.project(Version::V2014);
            let dir = root.join(project.name());
            for f in project.files() {
                let path = dir.join(&f.path);
                std::fs::create_dir_all(path.parent().unwrap()).unwrap();
                std::fs::write(&path, &f.content).unwrap();
            }
            dirs.push(dir.display().to_string());
        }
        dirs
    })
}

fn ctx() -> RequestCtx {
    RequestCtx::detached()
}

fn request() -> AnalyzeRequest {
    AnalyzeRequest {
        paths: plugin_paths().clone(),
        tools: Vec::new(),
        jobs: Some(1),
        buffers: Vec::new(),
    }
}

fn disk_server(cache_dir: &Path) -> AnalysisServer {
    let disk = Arc::new(DiskCache::open(cache_dir).unwrap());
    AnalysisServer::with_caches(EngineCaches::with_disk(disk)).with_default_jobs(1)
}

/// The embedded report strings of one analyze response, in order.
fn reports_of(response: &Json) -> Vec<String> {
    response
        .get("reports")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .map(|item| {
            item.get("report")
                .and_then(Json::as_str)
                .unwrap()
                .to_owned()
        })
        .collect()
}

fn bench_warm_start(c: &mut Criterion) {
    let req = request();
    let cache_dir =
        std::env::temp_dir().join(format!("phpsafe-serve-bench-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);

    // Populate the disk tier once, and keep the cold reports as the
    // invariance reference.
    let cold_reports = reports_of(&disk_server(&cache_dir).analyze(&ctx(), &req).unwrap());

    let mut group = c.benchmark_group("serve_warm_start");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));

    group.bench_function("cold_batch", |b| {
        b.iter(|| {
            let server = AnalysisServer::new().with_default_jobs(1);
            std::hint::black_box(server.analyze(&ctx(), &req).unwrap())
        })
    });
    group.bench_function("warm_disk_restart", |b| {
        b.iter(|| {
            let server = disk_server(&cache_dir);
            std::hint::black_box(server.analyze(&ctx(), &req).unwrap())
        })
    });
    let resident = disk_server(&cache_dir);
    resident.analyze(&ctx(), &req).unwrap();
    group.bench_function("warm_memory", |b| {
        b.iter(|| std::hint::black_box(resident.analyze(&ctx(), &req).unwrap()))
    });
    group.finish();

    // Invariance: a warm restart must reproduce the cold bytes, from disk.
    let disk = Arc::new(DiskCache::open(&cache_dir).unwrap());
    let fresh = AnalysisServer::with_caches(EngineCaches::with_disk(Arc::clone(&disk)))
        .with_default_jobs(1);
    let warm = fresh.analyze(&ctx(), &req).unwrap();
    assert_eq!(
        warm.get("fully_cached"),
        Some(&Json::Bool(true)),
        "warm restart should answer from the outcome tier"
    );
    assert_eq!(
        reports_of(&warm),
        cold_reports,
        "warm-restart reports diverged from the cold run"
    );
    assert!(disk.counters().hits > 0, "disk tier never hit");
    println!(
        "invariance: {} reports byte-identical cold vs warm-restart; disk {:?}",
        cold_reports.len(),
        disk.counters()
    );
    report_cleanup(&cache_dir);
}

fn report_cleanup(cache_dir: &Path) {
    let _ = std::fs::remove_dir_all(cache_dir);
    let plugins: Option<PathBuf> = plugin_paths()
        .first()
        .map(|p| Path::new(p).parent().unwrap().to_path_buf());
    if let Some(root) = plugins {
        let _ = std::fs::remove_dir_all(root);
    }
}

criterion_group!(benches, bench_warm_start);
criterion_main!(benches);
