//! Regenerates **Table I** (TP/FP/Precision/Recall/F-score for phpSAFE,
//! RIPS and Pixy on both plugin versions) and benchmarks the evaluation
//! aggregation. The rows themselves are printed once so `cargo bench`
//! output doubles as the reproduction artifact.

use criterion::{criterion_group, criterion_main, Criterion};
use phpsafe_eval::{tables, Evaluation, RecallMode};
use std::sync::OnceLock;

fn evaluation() -> &'static Evaluation {
    static E: OnceLock<Evaluation> = OnceLock::new();
    E.get_or_init(Evaluation::run)
}

fn bench_table1(c: &mut Criterion) {
    let e = evaluation();
    println!("{}", tables::table1(e, RecallMode::PaperOptimistic));
    c.bench_function("table1/aggregate_and_render", |b| {
        b.iter(|| tables::table1(std::hint::black_box(e), RecallMode::PaperOptimistic))
    });
    c.bench_function("table1/full_ground_truth_mode", |b| {
        b.iter(|| tables::table1(std::hint::black_box(e), RecallMode::FullGroundTruth))
    });
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
