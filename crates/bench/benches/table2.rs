//! Regenerates **Table II** (malicious input-vector types of the confirmed
//! vulnerabilities) and benchmarks its computation.

use criterion::{criterion_group, criterion_main, Criterion};
use phpsafe_eval::{tables, Evaluation};
use std::sync::OnceLock;

fn evaluation() -> &'static Evaluation {
    static E: OnceLock<Evaluation> = OnceLock::new();
    E.get_or_init(Evaluation::run)
}

fn bench_table2(c: &mut Criterion) {
    let e = evaluation();
    println!("{}", tables::table2(e));
    println!("{}", tables::root_cause(e));
    println!("{}", tables::inertia(e));
    c.bench_function("table2/vector_classification", |b| {
        b.iter(|| tables::table2_counts(std::hint::black_box(e)))
    });
    c.bench_function("table2/inertia_counts", |b| {
        b.iter(|| tables::inertia_counts(std::hint::black_box(e)))
    });
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
