//! Regenerates **Table III** (detection time of all 35 plugins per tool
//! and version) — here the benchmark *is* the table: each Criterion group
//! measures one tool analyzing the full corpus for one version.

use criterion::{criterion_group, criterion_main, Criterion};
use phpsafe_baselines::paper_tools;
use phpsafe_corpus::{Corpus, Version};
use std::sync::OnceLock;
use std::time::Duration;

fn corpus() -> &'static Corpus {
    static C: OnceLock<Corpus> = OnceLock::new();
    C.get_or_init(Corpus::generate)
}

fn bench_table3(c: &mut Criterion) {
    let corpus = corpus();
    for version in Version::ALL {
        let (files, loc) = corpus.size_of(version);
        println!("{version}: {files} files, {loc} LOC");
        let mut group = c.benchmark_group(format!("table3/{version}"));
        group
            .sample_size(10)
            .measurement_time(Duration::from_secs(8));
        for tool in paper_tools() {
            group.bench_function(tool.name(), |b| {
                b.iter(|| {
                    for plugin in corpus.plugins() {
                        std::hint::black_box(tool.analyze(plugin.project(version)));
                    }
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
