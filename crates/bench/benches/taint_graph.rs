//! `taint_graph` — what the whole-program taint graph costs and buys
//! over the full 3-tool × 2-version evaluation matrix:
//!
//! * `serial_walker` — `Evaluation::run_with`: the Table III
//!   methodology, one uncached taint walk per (tool, version, plugin).
//! * `serial_graph` — `Evaluation::run_graph_with`: the same matrix on
//!   the `--taint-graph` path; each analysis records one graph during
//!   its walk and answers both vulnerability classes as reachability
//!   queries over it.
//! * `warm_walker_restart` / `warm_graph_restart` — fresh caches per
//!   iteration over a populated `--cache-dir`: the walker restarts from
//!   persisted ASTs and call summaries but re-walks every file; the
//!   graph path answers each (tool, plugin) from its persisted graph
//!   without re-walking — the amortization the subsystem exists for.
//!
//! After the timing groups the bench re-checks invariance (walker and
//! graph artifacts byte-identical, warm restart answered from stored
//! graphs). Results are recorded in `BENCH_taint_graph.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use phpsafe::EngineCaches;
use phpsafe_corpus::Corpus;
use phpsafe_engine::DiskCache;
use phpsafe_eval::{tables, Evaluation, RecallMode};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

/// Renders every timing-free artifact into one string.
fn artifacts(e: &Evaluation) -> String {
    let mut out = String::new();
    out.push_str(&tables::table1(e, RecallMode::PaperOptimistic));
    out.push_str(&tables::fig2(e));
    out.push_str(&tables::table2(e));
    out
}

fn disk_caches(dir: &Path) -> (Arc<DiskCache>, EngineCaches) {
    let disk = Arc::new(DiskCache::open(dir).unwrap());
    (Arc::clone(&disk), EngineCaches::with_disk(disk))
}

fn bench_taint_graph(c: &mut Criterion) {
    let corpus = Corpus::generate();

    let mut group = c.benchmark_group("taint_graph");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(10));

    // --- cold: walk-per-analysis vs record-then-query, serially ---
    group.bench_function("serial_walker", |b| {
        b.iter(|| std::hint::black_box(Evaluation::run_with(corpus.clone())))
    });
    group.bench_function("serial_graph", |b| {
        b.iter(|| std::hint::black_box(Evaluation::run_graph_with(corpus.clone())))
    });

    // --- warm restarts over a populated --cache-dir ---
    let walker_dir =
        std::env::temp_dir().join(format!("phpsafe-tg-bench-walk-{}", std::process::id()));
    let graph_dir =
        std::env::temp_dir().join(format!("phpsafe-tg-bench-graph-{}", std::process::id()));
    for dir in [&walker_dir, &graph_dir] {
        let _ = std::fs::remove_dir_all(dir);
        std::fs::create_dir_all(dir).unwrap();
    }
    // Populate both tiers once.
    Evaluation::run_engine_cached(corpus.clone(), 1, &disk_caches(&walker_dir).1);
    Evaluation::run_engine_cached_graph(corpus.clone(), 1, &disk_caches(&graph_dir).1);

    group.bench_function("warm_walker_restart", |b| {
        b.iter(|| {
            let (_, caches) = disk_caches(&walker_dir);
            std::hint::black_box(Evaluation::run_engine_cached(corpus.clone(), 1, &caches))
        })
    });
    group.bench_function("warm_graph_restart", |b| {
        b.iter(|| {
            let (_, caches) = disk_caches(&graph_dir);
            std::hint::black_box(Evaluation::run_engine_cached_graph(
                corpus.clone(),
                1,
                &caches,
            ))
        })
    });
    group.finish();

    // --- invariance: the graph path must not change a rendered byte ---
    let walked = artifacts(&Evaluation::run_with(corpus.clone()));
    let graphed = artifacts(&Evaluation::run_graph_with(corpus.clone()));
    assert_eq!(walked, graphed, "graph artifacts diverged from walker");

    phpsafe_obs::set_enabled(true);
    let (disk, caches) = disk_caches(&graph_dir);
    let (warm, snap) = Evaluation::run_engine_cached_graph(corpus, 1, &caches);
    phpsafe_obs::set_enabled(false);
    assert_eq!(walked, artifacts(&warm), "warm graph restart diverged");
    assert!(
        snap.counter("dataflow.graph_hits") > 0 && snap.counter("dataflow.builds") == 0,
        "warm restart must answer from stored graphs: {}",
        snap.to_json()
    );
    println!(
        "invariance: artifacts byte-identical walker vs graph vs warm restart; \
         graph_hits {} builds {} disk {:?}",
        snap.counter("dataflow.graph_hits"),
        snap.counter("dataflow.builds"),
        disk.counters()
    );

    for dir in [&walker_dir, &graph_dir] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

criterion_group!(benches, bench_taint_graph);
criterion_main!(benches);
