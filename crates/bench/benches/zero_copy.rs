//! `zero_copy` — what the ZAST v2 borrowed-view warm path and per-function
//! parallel pre-summarization buy:
//!
//! 1. **Load paths**: on the largest 2014-corpus file, a cold
//!    lex-and-parse vs the PAST v1 streaming decode vs the ZAST v2
//!    validate-and-thaw (one bounds-checked validation pass over the
//!    `Arc<[u8]>` payload, then a bulk pool relocation). All three must
//!    produce the same [`php_ast::ParsedFile`].
//! 2. **Warm daemon request**: a fresh server process (cold memory) over a
//!    populated `--cache-dir` answers one analyze request from the
//!    outcome tier; best-of-N must stay under 5 ms.
//! 3. **Per-function scaling**: the corpus plugin owning the largest
//!    single file, analyzed at `function_jobs` 1 / 2 / all cores. The
//!    outcome JSON must be byte-identical at every count, and at any
//!    count above 1 the largest file's analysis must split into many
//!    sub-file jobs (`engine.presummarize_jobs`) — the structural win;
//!    the wall-clock win on top of it requires more than one core.
//!
//! Results land in `BENCH_zero_copy.json` (smoke mode writes to a temp
//! dir instead).
//!
//! Run: `cargo bench -p phpsafe-bench --bench zero_copy [-- --smoke]`

use phpsafe::{AnalysisServer, EngineCaches, PhpSafe, PluginProject};
use phpsafe_corpus::{Corpus, Version};
use phpsafe_engine::DiskCache;
use phpsafe_obs::write_atomic;
use phpsafe_serve::{AnalyzeRequest, Json, RequestCtx, Service};
use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Median wall time of `iters` runs of `f`, in microseconds.
fn time_us(iters: usize, mut f: impl FnMut()) -> u64 {
    let mut samples: Vec<u64> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_micros() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// The largest source file (by bytes) across the 2014 corpus.
fn largest_corpus_file() -> (String, String) {
    let corpus = Corpus::generate();
    let mut best: Option<(String, String)> = None;
    for plugin in corpus.plugins() {
        for f in plugin.project(Version::V2014).files() {
            if best.as_ref().is_none_or(|(_, c)| f.content.len() > c.len()) {
                best = Some((f.path.clone(), f.content.clone()));
            }
        }
    }
    best.expect("corpus has files")
}

/// The corpus plugin whose largest single file is the largest across the
/// whole 2014 corpus — the file per-file jobs cannot split any further.
fn largest_file_plugin() -> PluginProject {
    let corpus = Corpus::generate();
    corpus
        .plugins()
        .iter()
        .map(|p| p.project(Version::V2014))
        .max_by_key(|proj| {
            proj.files()
                .iter()
                .map(|f| f.content.len())
                .max()
                .unwrap_or(0)
        })
        .expect("corpus has plugins")
        .clone()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let root = std::env::temp_dir().join(format!("phpsafe-zero-copy-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();

    let iters = if smoke { 20 } else { 200 };

    // --- 1. load paths on the largest corpus file ---
    let (path, src) = largest_corpus_file();
    let parsed = php_ast::parse(&src);
    let past = php_ast::codec::encode_file(&parsed);
    let zast: Arc<[u8]> = Arc::from(php_ast::zast::encode_file(&parsed));

    let decoded = php_ast::codec::decode_file(&past).expect("PAST round-trip");
    assert_eq!(decoded, parsed, "PAST decode must reproduce the parse");
    let view = php_ast::zast::ParsedFileRef::new(Arc::clone(&zast)).expect("ZAST validates");
    assert_eq!(view.thaw(), parsed, "ZAST thaw must reproduce the parse");

    let parse_us = time_us(iters, || {
        std::hint::black_box(php_ast::parse(&src));
    });
    let decode_us = time_us(iters, || {
        std::hint::black_box(php_ast::codec::decode_file(&past).unwrap());
    });
    let borrow_us = time_us(iters, || {
        let view = php_ast::zast::ParsedFileRef::new(Arc::clone(&zast)).unwrap();
        std::hint::black_box(view.thaw());
    });
    println!(
        "load paths ({path}, {} bytes, {} nodes): parse={parse_us}us decode={decode_us}us borrow={borrow_us}us",
        src.len(),
        parsed.arena.node_count(),
    );

    // --- 2. warm daemon request: cold memory, warm disk ---
    let cache_dir = root.join("cache");
    let plugin_dir = root.join("plugin");
    {
        let corpus = Corpus::generate();
        let project = corpus.plugins()[0].project(Version::V2014);
        for f in project.files() {
            let p = plugin_dir.join(&f.path);
            std::fs::create_dir_all(p.parent().unwrap()).unwrap();
            std::fs::write(&p, &f.content).unwrap();
        }
    }
    let req = AnalyzeRequest {
        paths: vec![plugin_dir.display().to_string()],
        tools: Vec::new(),
        jobs: Some(1),
        buffers: Vec::new(),
    };
    let open_server = || {
        let disk = Arc::new(DiskCache::open(&cache_dir).unwrap());
        AnalysisServer::with_caches(EngineCaches::with_disk(disk)).with_default_jobs(1)
    };
    // Seed the outcome/AST/summary tiers and keep the cold reports.
    let cold_response = open_server()
        .analyze(&RequestCtx::detached(), &req)
        .unwrap();
    let mut warm_samples_us: Vec<u64> = Vec::new();
    let warm_iters = if smoke { 5 } else { 20 };
    for _ in 0..warm_iters {
        let server = open_server(); // fresh process-equivalent: cold memory
        let t = Instant::now();
        let warm = server.analyze(&RequestCtx::detached(), &req).unwrap();
        warm_samples_us.push(t.elapsed().as_micros() as u64);
        assert_eq!(
            warm.get("fully_cached"),
            Some(&Json::Bool(true)),
            "warm request must answer from the outcome tier"
        );
        assert_eq!(
            warm.get("reports"),
            cold_response.get("reports"),
            "warm reports diverged from cold"
        );
    }
    warm_samples_us.sort_unstable();
    let warm_best_us = warm_samples_us[0];
    let warm_median_us = warm_samples_us[warm_samples_us.len() / 2];
    println!("warm daemon request: best={warm_best_us}us median={warm_median_us}us");
    assert!(
        warm_best_us < 5_000,
        "cold-memory/warm-disk request must answer in under 5ms, took {warm_best_us}us"
    );

    // --- 3. per-function scaling on the largest-file plugin ---
    phpsafe_obs::set_enabled(true);
    let subject = largest_file_plugin();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let job_counts: Vec<usize> = if cores > 2 {
        vec![1, 2, cores]
    } else {
        vec![1, 2]
    };
    let scale_iters = if smoke { 3 } else { 9 };
    let reference = PhpSafe::new()
        .analyze_with_caches(&subject, Some(&EngineCaches::new()))
        .to_json()
        .unwrap();
    let mut scaling = Vec::new();
    for &jobs in &job_counts {
        let tool = PhpSafe::new().with_function_jobs(jobs);
        let before = phpsafe_obs::snapshot();
        let us = time_us(scale_iters, || {
            // Fresh caches per run: a warm summary cache would make every
            // job count instant and measure nothing.
            let caches = EngineCaches::new();
            let out = tool
                .analyze_with_caches(&subject, Some(&caches))
                .to_json()
                .unwrap();
            assert_eq!(out, reference, "function_jobs={jobs} changed the outcome");
            caches.record();
        });
        let delta = phpsafe_obs::snapshot().since(&before);
        let split = delta.counter("engine.presummarize_jobs") / scale_iters as u64;
        let replays = delta.counter("cache.summary.hits") / scale_iters as u64;
        if jobs > 1 {
            // The structural gate: the file per-file jobs could never
            // split must now fan out into many sub-file units.
            assert!(
                split >= 2,
                "function_jobs={jobs} must split the plugin into sub-file jobs, got {split}"
            );
        }
        println!("function_jobs={jobs}: {us}us split={split} replays={replays}");
        scaling.push((jobs, us, split, replays));
    }

    // --- render the artifact ---
    let mut doc = String::new();
    let _ = writeln!(doc, "{{");
    let _ = writeln!(doc, "  \"bench\": \"zero_copy\",");
    let _ = writeln!(doc, "  \"smoke\": {smoke},");
    let _ = writeln!(
        doc,
        "  \"machine\": {{\"cores\": {cores}, \"note\": \"median of {iters} iterations per load path; warm daemon timed over a fresh server per request (cold memory, warm disk)\"}},"
    );
    let _ = writeln!(
        doc,
        "  \"load_paths\": {{\"file\": \"{path}\", \"bytes\": {}, \"nodes\": {}, \"cold_parse_us\": {parse_us}, \"past_decode_us\": {decode_us}, \"zast_borrow_us\": {borrow_us}, \"borrow_vs_parse\": {:.2}, \"borrow_vs_decode\": {:.2}}},",
        src.len(),
        parsed.arena.node_count(),
        parse_us as f64 / borrow_us.max(1) as f64,
        decode_us as f64 / borrow_us.max(1) as f64,
    );
    let _ = writeln!(
        doc,
        "  \"warm_daemon_request\": {{\"samples\": {warm_iters}, \"best_us\": {warm_best_us}, \"median_us\": {warm_median_us}, \"under_5ms\": {}}},",
        warm_best_us < 5_000
    );
    let _ = writeln!(
        doc,
        "  \"function_jobs_scaling\": {{\"subject\": \"largest-file 2014 corpus plugin\", \"note\": \"sub_file_jobs is the structural win (the largest file's analysis becomes divisible); the wall-clock win on top requires >1 core\", \"runs\": ["
    );
    for (i, (jobs, us, split, replays)) in scaling.iter().enumerate() {
        let _ = writeln!(
            doc,
            "    {{\"function_jobs\": {jobs}, \"median_us\": {us}, \"speedup_vs_serial\": {:.2}, \"sub_file_jobs\": {split}, \"summary_replays\": {replays}}}{}",
            scaling[0].1 as f64 / (*us).max(1) as f64,
            if i + 1 < scaling.len() { "," } else { "" }
        );
    }
    let _ = writeln!(doc, "  ]}}");
    let _ = writeln!(doc, "}}");

    let out = if smoke {
        root.join("BENCH_zero_copy.json")
    } else {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_zero_copy.json")
    };
    write_atomic(&out, doc.as_bytes()).expect("write BENCH_zero_copy.json");
    println!("wrote {}", out.display());

    let _ = std::fs::remove_dir_all(&root);
}
