//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! Usage:
//!
//! ```text
//! cargo run -p phpsafe-bench --bin repro --release            # everything
//! cargo run -p phpsafe-bench --bin repro --release -- table1  # one artifact
//! ```
//!
//! Artifacts: `table1`, `table1-full`, `fig2`, `table2`, `table3`, `oop`,
//! `inertia`, `rootcause`, `all` (default).

use phpsafe_eval::{tables, Evaluation, RecallMode};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().map(|s| s.as_str()).unwrap_or("all");
    eprintln!("generating corpus and running phpSAFE, RIPS and Pixy over 35 plugins x 2 versions...");
    let e = Evaluation::run();
    match what {
        "table1" => print!("{}", tables::table1(&e, RecallMode::PaperOptimistic)),
        "table1-full" => print!("{}", tables::table1(&e, RecallMode::FullGroundTruth)),
        "fig2" => print!("{}", tables::fig2(&e)),
        "table2" => print!("{}", tables::table2(&e)),
        "table3" => print!("{}", tables::table3(&e)),
        "oop" => print!("{}", tables::oop_breakdown(&e)),
        "inertia" => print!("{}", tables::inertia(&e)),
        "rootcause" => print!("{}", tables::root_cause(&e)),
        "ablations" => print!("{}", phpsafe_eval::ablation_report(e.corpus())),
        "evolution" => print!("{}", phpsafe_eval::evolution_report(e.corpus())),
        "confirm" => print!("{}", phpsafe_eval::confirmation_report(e.corpus())),
        "csv" => {
            print!("{}", phpsafe_eval::table1_csv(&e, RecallMode::PaperOptimistic));
            print!("{}", phpsafe_eval::per_plugin_csv(e.corpus()));
        }
        "all" => print!("{}", tables::full_report(&e)),
        other => {
            eprintln!("unknown artifact `{other}`; try table1|fig2|table2|table3|oop|inertia|rootcause|ablations|evolution|confirm|csv|all");
            std::process::exit(2);
        }
    }
}
