//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! Usage:
//!
//! ```text
//! cargo run -p phpsafe-bench --bin repro --release            # everything
//! cargo run -p phpsafe-bench --bin repro --release -- table1  # one artifact
//! ```
//!
//! Artifacts: `table1`, `table1-full`, `fig2`, `table2`, `table3`, `oop`,
//! `inertia`, `rootcause`, `taxonomy` (per-class precision/recall on the
//! taxonomy extension corpus), `all` (default).
//!
//! Options:
//!
//! * `--jobs N` — worker threads for the engine scheduler (default: the
//!   machine's available parallelism; 0 or an over-subscription clamps to
//!   it with a warning). Results are identical at any `N`.
//! * `--cache-dir DIR` — persist parsed ASTs and call summaries under
//!   `DIR`; a later run with the same flag warm-starts from disk. Tables
//!   are byte-identical either way.
//! * `--serial` — bypass the engine entirely: one thread, no shared
//!   caches, every tool meets every plugin cold. This is the paper's
//!   Table III timing methodology; use it when comparing `table3` seconds.
//! * `--engine-stats` — print scheduler/stage/cache statistics to stderr
//!   after the run.
//! * `--engine-stats-json FILE` — write the same statistics as JSON.
//! * `--metrics-out FILE` — write the full observability snapshot
//!   (all counters and timing histograms) as JSON.
//! * `--trace` — print the span self-profile tree to stderr after the run.
//! * `--explain` — after the run, re-analyze corpus plugins with taint
//!   events enabled and print the provenance chains of the first plugin
//!   with findings.
//! * `--taint-graph` — run every tool on the whole-program taint-graph
//!   path (record one graph per analysis, answer each vulnerability
//!   class as a reachability query). Tables are byte-identical to the
//!   default walker; with `--cache-dir`, warm reruns answer from the
//!   persisted graphs without re-walking.

use phpsafe::EngineCaches;
use phpsafe_corpus::{Corpus, Version};
use phpsafe_engine::{effective_jobs_reported, DiskCache};
use phpsafe_eval::{tables, Evaluation, RecallMode};
use std::sync::Arc;

/// Snapshot name prefixes that make up the engine-stats view.
const ENGINE_PREFIXES: &[&str] = &[
    "engine.",
    "cache.",
    "stage.",
    "intern.",
    "cow.",
    "ast.",
    "dataflow.",
    "diskcache.",
];

struct Opts {
    what: String,
    jobs: usize,
    cache_dir: Option<String>,
    serial: bool,
    engine_stats: bool,
    engine_stats_json: Option<String>,
    metrics_out: Option<String>,
    trace: bool,
    explain: bool,
    taint_graph: bool,
}

fn parse_opts() -> Result<Opts, String> {
    let mut opts = Opts {
        what: "all".to_string(),
        jobs: std::thread::available_parallelism().map_or(1, |n| n.get()),
        cache_dir: None,
        serial: false,
        engine_stats: false,
        engine_stats_json: None,
        metrics_out: None,
        trace: false,
        explain: false,
        taint_graph: false,
    };
    let mut what: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--serial" => opts.serial = true,
            "--engine-stats" => opts.engine_stats = true,
            "--trace" => opts.trace = true,
            "--explain" => opts.explain = true,
            "--taint-graph" => opts.taint_graph = true,
            "--engine-stats-json" => {
                let v = args.next().ok_or("--engine-stats-json requires a file")?;
                opts.engine_stats_json = Some(v);
            }
            "--metrics-out" => {
                let v = args.next().ok_or("--metrics-out requires a file")?;
                opts.metrics_out = Some(v);
            }
            "--jobs" => {
                let v = args.next().ok_or("--jobs requires a value")?;
                opts.jobs = v.parse().map_err(|_| format!("bad --jobs value `{v}`"))?;
            }
            "--cache-dir" => {
                let v = args.next().ok_or("--cache-dir requires a directory")?;
                opts.cache_dir = Some(v);
            }
            other if other.starts_with('-') => return Err(format!("unknown option `{other}`")),
            other => {
                if what.is_some() {
                    return Err("only one artifact may be requested".to_string());
                }
                what = Some(other.to_string());
            }
        }
    }
    if let Some(w) = what {
        opts.what = w;
    }
    Ok(opts)
}

fn main() {
    let opts = match parse_opts() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };
    let want_obs = opts.engine_stats
        || opts.engine_stats_json.is_some()
        || opts.metrics_out.is_some()
        || opts.trace;
    if want_obs {
        phpsafe_obs::set_enabled(true);
    }
    // The taxonomy artifact runs over its own extension corpus; the main
    // 35-plugin evaluation is not needed for it.
    if opts.what == "taxonomy" {
        eprintln!("generating taxonomy corpus and running the tools per vulnerability class...");
        let before = phpsafe_obs::snapshot();
        let e = phpsafe_eval::run_taxonomy();
        phpsafe_eval::record_taxonomy_metrics(&e);
        let snap = phpsafe_obs::snapshot().since(&before);
        if let Some(path) = &opts.metrics_out {
            if let Err(err) =
                phpsafe_obs::write_atomic(std::path::Path::new(path), snap.to_json().as_bytes())
            {
                eprintln!("error: cannot write {path}: {err}");
                std::process::exit(1);
            }
        }
        print!("{}", phpsafe_eval::taxonomy_report(&e));
        return;
    }
    eprintln!(
        "generating corpus and running phpSAFE, RIPS and Pixy over 35 plugins x 2 versions..."
    );
    let jobs = effective_jobs_reported(opts.jobs);
    let before = phpsafe_obs::snapshot();
    let e = if opts.serial {
        if opts.taint_graph {
            Evaluation::run_graph_with(Corpus::generate())
        } else {
            Evaluation::run()
        }
    } else {
        let caches = match &opts.cache_dir {
            Some(dir) => {
                let disk = match DiskCache::open(dir) {
                    Ok(d) => Arc::new(d),
                    Err(err) => {
                        eprintln!("error: cannot open cache dir {dir}: {err}");
                        std::process::exit(2);
                    }
                };
                EngineCaches::with_disk(disk)
            }
            None => EngineCaches::new(),
        };
        if opts.taint_graph {
            Evaluation::run_engine_cached_graph(Corpus::generate(), jobs, &caches).0
        } else {
            Evaluation::run_engine_cached(Corpus::generate(), jobs, &caches).0
        }
    };
    let snap = phpsafe_obs::snapshot().since(&before);
    if opts.engine_stats {
        eprintln!("{}", snap.render(ENGINE_PREFIXES));
    }
    if let Some(path) = &opts.engine_stats_json {
        if let Err(err) = phpsafe_obs::write_atomic(
            std::path::Path::new(path),
            snap.filtered(ENGINE_PREFIXES).to_json().as_bytes(),
        ) {
            eprintln!("error: cannot write {path}: {err}");
            std::process::exit(1);
        }
    }
    if let Some(path) = &opts.metrics_out {
        if let Err(err) =
            phpsafe_obs::write_atomic(std::path::Path::new(path), snap.to_json().as_bytes())
        {
            eprintln!("error: cannot write {path}: {err}");
            std::process::exit(1);
        }
    }
    if opts.trace {
        eprintln!("{}", phpsafe_obs::span_tree_text());
    }
    if opts.explain {
        explain_first_findings(&e, opts.taint_graph);
    }
    match opts.what.as_str() {
        "table1" => print!("{}", tables::table1(&e, RecallMode::PaperOptimistic)),
        "table1-full" => print!("{}", tables::table1(&e, RecallMode::FullGroundTruth)),
        "fig2" => print!("{}", tables::fig2(&e)),
        "table2" => print!("{}", tables::table2(&e)),
        "table3" => print!("{}", tables::table3(&e)),
        "oop" => print!("{}", tables::oop_breakdown(&e)),
        "inertia" => print!("{}", tables::inertia(&e)),
        "rootcause" => print!("{}", tables::root_cause(&e)),
        "ablations" => print!("{}", phpsafe_eval::ablation_report(e.corpus())),
        "evolution" => print!("{}", phpsafe_eval::evolution_report(e.corpus())),
        "confirm" => print!("{}", phpsafe_eval::confirmation_report(e.corpus())),
        "csv" => {
            print!(
                "{}",
                phpsafe_eval::table1_csv(&e, RecallMode::PaperOptimistic)
            );
            print!("{}", phpsafe_eval::per_plugin_csv(e.corpus()));
        }
        "all" => print!("{}", tables::full_report(&e)),
        other => {
            eprintln!("unknown artifact `{other}`; try table1|fig2|table2|table3|oop|inertia|rootcause|ablations|evolution|confirm|taxonomy|csv|all");
            std::process::exit(2);
        }
    }
}

/// Re-analyzes corpus plugins with taint events on and prints the
/// provenance chains of the first plugin phpSAFE reports findings for.
/// (The evaluation retains confirmed ground-truth ids, not the raw
/// `Vulnerability` records, so the chains come from a fresh pass.)
fn explain_first_findings(e: &Evaluation, taint_graph: bool) {
    phpsafe_obs::set_events_enabled(true);
    let tool = phpsafe::PhpSafe::new().with_taint_graph(taint_graph);
    for plugin in e.corpus().plugins() {
        phpsafe_obs::drain_events();
        let outcome = tool.analyze(plugin.project(Version::V2014));
        if outcome.vulns.is_empty() {
            continue;
        }
        let events = phpsafe_obs::drain_events();
        print!("{}", phpsafe::explain_outcome(&outcome, &events));
        break;
    }
    phpsafe_obs::set_events_enabled(false);
}
