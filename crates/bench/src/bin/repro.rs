//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! Usage:
//!
//! ```text
//! cargo run -p phpsafe-bench --bin repro --release            # everything
//! cargo run -p phpsafe-bench --bin repro --release -- table1  # one artifact
//! ```
//!
//! Artifacts: `table1`, `table1-full`, `fig2`, `table2`, `table3`, `oop`,
//! `inertia`, `rootcause`, `all` (default).
//!
//! Options:
//!
//! * `--jobs N` — worker threads for the engine scheduler (default: the
//!   machine's available parallelism). Results are identical at any `N`.
//! * `--serial` — bypass the engine entirely: one thread, no shared
//!   caches, every tool meets every plugin cold. This is the paper's
//!   Table III timing methodology; use it when comparing `table3` seconds.
//! * `--engine-stats` — print scheduler/stage/cache statistics to stderr
//!   after the run (engine mode only).

use phpsafe_eval::{tables, Evaluation, RecallMode};

struct Opts {
    what: String,
    jobs: usize,
    serial: bool,
    engine_stats: bool,
}

fn parse_opts() -> Result<Opts, String> {
    let mut opts = Opts {
        what: "all".to_string(),
        jobs: std::thread::available_parallelism().map_or(1, |n| n.get()),
        serial: false,
        engine_stats: false,
    };
    let mut what: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--serial" => opts.serial = true,
            "--engine-stats" => opts.engine_stats = true,
            "--jobs" => {
                let v = args.next().ok_or("--jobs requires a value")?;
                opts.jobs = v.parse().map_err(|_| format!("bad --jobs value `{v}`"))?;
            }
            other if other.starts_with('-') => return Err(format!("unknown option `{other}`")),
            other => {
                if what.is_some() {
                    return Err("only one artifact may be requested".to_string());
                }
                what = Some(other.to_string());
            }
        }
    }
    if let Some(w) = what {
        opts.what = w;
    }
    Ok(opts)
}

fn main() {
    let opts = match parse_opts() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };
    eprintln!(
        "generating corpus and running phpSAFE, RIPS and Pixy over 35 plugins x 2 versions..."
    );
    let e = if opts.serial {
        Evaluation::run()
    } else {
        let (e, stats) = Evaluation::run_engine(opts.jobs);
        if opts.engine_stats {
            eprintln!("{stats}");
        }
        e
    };
    match opts.what.as_str() {
        "table1" => print!("{}", tables::table1(&e, RecallMode::PaperOptimistic)),
        "table1-full" => print!("{}", tables::table1(&e, RecallMode::FullGroundTruth)),
        "fig2" => print!("{}", tables::fig2(&e)),
        "table2" => print!("{}", tables::table2(&e)),
        "table3" => print!("{}", tables::table3(&e)),
        "oop" => print!("{}", tables::oop_breakdown(&e)),
        "inertia" => print!("{}", tables::inertia(&e)),
        "rootcause" => print!("{}", tables::root_cause(&e)),
        "ablations" => print!("{}", phpsafe_eval::ablation_report(e.corpus())),
        "evolution" => print!("{}", phpsafe_eval::evolution_report(e.corpus())),
        "confirm" => print!("{}", phpsafe_eval::confirmation_report(e.corpus())),
        "csv" => {
            print!(
                "{}",
                phpsafe_eval::table1_csv(&e, RecallMode::PaperOptimistic)
            );
            print!("{}", phpsafe_eval::per_plugin_csv(e.corpus()));
        }
        "all" => print!("{}", tables::full_report(&e)),
        other => {
            eprintln!("unknown artifact `{other}`; try table1|fig2|table2|table3|oop|inertia|rootcause|ablations|evolution|confirm|csv|all");
            std::process::exit(2);
        }
    }
}
