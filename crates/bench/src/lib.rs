pub fn placeholder() {}
