//! The `PhpSafe` façade — the single-class API the paper describes
//! (§III: *"its functions become accessible through the instantiation of a
//! single PHP class called PHP-SAFE, which receives as input the PHP file to
//! be analyzed and delivers the results"*) — plus the capability switches
//! that also power the baselines and the ablation benches.

use crate::caching::EngineCaches;
use crate::interp::Interp;
use crate::project::PluginProject;
use crate::report::{AnalysisOutcome, AnalysisStats, FileFailure, FileReport};
use crate::symbols::SymbolTable;
use php_ast::visit::{self, Visitor};
use php_ast::{parse, Arena, Callee, ClassDecl, Expr, ExprId, ParsedFile};
use std::collections::HashMap;
use std::sync::Arc;
use taint_config::{wordpress, TaintConfig};

/// Capability switches for the analysis engine.
///
/// The defaults are phpSAFE's configuration; the baseline crates construct
/// RIPS-like and Pixy-like analyzers by flipping these (and swapping the
/// [`TaintConfig`]), and the ablation benches flip them one at a time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalyzerOptions {
    /// Resolve OOP: method calls, property flows, `new`, known CMS objects
    /// (§III.E). Off for RIPS/Pixy.
    pub oop: bool,
    /// Splice `include`/`require` targets into the analysis (§III.B). Off
    /// for the per-file tools.
    pub resolve_includes: bool,
    /// Analyze functions never called from plugin code (§III.C). Off for
    /// Pixy, which the paper observed "is unable to do so".
    /// Pixy.
    pub analyze_uncalled: bool,
    /// Model the legacy `register_globals = 1` directive: undefined global
    /// variables are attacker-controlled. Pixy-only behaviour (§V.A).
    pub register_globals: bool,
    /// Refuse files containing OOP constructs entirely (Pixy's front end —
    /// the paper counts 32 such failures).
    pub reject_oop_files: bool,
    /// Refuse files containing closures (post-2007 syntax a Pixy-era parser
    /// reports errors on — the paper counts 1 error in 2012, 37 in 2014).
    pub reject_closures: bool,
    /// Memoize user-function analyses per argument-taint signature
    /// (the paper's "functions are parsed only once" summaries).
    pub summaries: bool,
    /// Maximum include nesting before the analysis of the entry file is
    /// declared failed (phpSAFE's memory blow-up on include-heavy files).
    pub max_include_depth: usize,
    /// Abstract work budget per entry file (memory/CPU proxy).
    pub work_limit: u64,
    /// Maximum recorded data-flow trace steps per variable.
    pub trace_limit: usize,
    /// Build the whole-program taint graph and answer each vulnerability
    /// class as a graph reachability query (`--taint-graph`). The default
    /// walk-per-analysis path stays the oracle; outcomes are required to
    /// be byte-identical between the two.
    pub taint_graph: bool,
    /// Worker threads for the per-function pre-summarization pass inside
    /// one analysis — engine jobs *below* file granularity. `1` (the
    /// default) skips the pass entirely; higher values fan shareable free
    /// functions out over the engine pool before the walk. A scheduling
    /// knob, not a semantic switch: outcomes are byte-identical at any
    /// value, so it is excluded from [`PhpSafe::fingerprint`].
    pub function_jobs: usize,
}

impl Default for AnalyzerOptions {
    fn default() -> Self {
        AnalyzerOptions {
            oop: true,
            resolve_includes: true,
            analyze_uncalled: true,
            register_globals: false,
            reject_oop_files: false,
            reject_closures: false,
            summaries: true,
            max_include_depth: 12,
            work_limit: 400_000,
            trace_limit: 12,
            taint_graph: false,
            function_jobs: 1,
        }
    }
}

/// The phpSAFE static analyzer.
///
/// # Examples
///
/// ```
/// use phpsafe::{PhpSafe, PluginProject, SourceFile};
/// use taint_config::VulnClass;
///
/// let plugin = PluginProject::new("demo").with_file(SourceFile::new(
///     "demo.php",
///     "<?php echo $_GET['name'];",
/// ));
/// let outcome = PhpSafe::new().analyze(&plugin);
/// assert_eq!(outcome.vulns.len(), 1);
/// assert_eq!(outcome.vulns[0].class, VulnClass::Xss);
/// ```
#[derive(Debug, Clone)]
pub struct PhpSafe {
    config: TaintConfig,
    options: AnalyzerOptions,
    tool_name: String,
}

impl Default for PhpSafe {
    fn default() -> Self {
        Self::new()
    }
}

impl PhpSafe {
    /// phpSAFE with its out-of-the-box WordPress configuration (§III.A).
    pub fn new() -> Self {
        PhpSafe {
            config: wordpress(),
            options: AnalyzerOptions::default(),
            tool_name: "phpSAFE".to_string(),
        }
    }

    /// Replaces the vulnerability configuration (e.g. a Drupal profile).
    pub fn with_config(mut self, config: TaintConfig) -> Self {
        self.config = config;
        self
    }

    /// Replaces the capability options (baselines, ablations).
    pub fn with_options(mut self, options: AnalyzerOptions) -> Self {
        self.options = options;
        self
    }

    /// Sets the tool name recorded in outcomes.
    pub fn with_tool_name(mut self, name: impl Into<String>) -> Self {
        self.tool_name = name.into();
        self
    }

    /// Toggles the whole-program taint-graph path, keeping every other
    /// option as configured.
    pub fn with_taint_graph(mut self, enabled: bool) -> Self {
        self.options.taint_graph = enabled;
        self
    }

    /// Sets the per-function pre-summarization worker count (`1` =
    /// serial, the default). Outcomes are identical at any value; only
    /// the cost of the analysis changes.
    pub fn with_function_jobs(mut self, jobs: usize) -> Self {
        self.options.function_jobs = jobs.max(1);
        self
    }

    /// Current options (read-only).
    pub fn options(&self) -> &AnalyzerOptions {
        &self.options
    }

    /// Current configuration (read-only).
    pub fn config(&self) -> &TaintConfig {
        &self.config
    }

    /// A stable 64-bit fingerprint of everything that can change this
    /// tool's output for a given input: the taint configuration, the
    /// capability options and the tool name. Persistent caches key derived
    /// artifacts (summary blobs, rendered daemon responses) on this, so
    /// flipping any switch invalidates them.
    pub fn fingerprint(&self) -> u64 {
        // `function_jobs` is a scheduling knob — outcomes are identical
        // at any value — so it is canonicalized out: runs at different
        // job counts share persisted artifacts.
        let mut canon = self.options.clone();
        canon.function_jobs = 1;
        let text = format!(
            "{}\x1f{:016x}\x1f{:?}",
            self.tool_name,
            self.config.fingerprint(),
            canon
        );
        phpsafe_engine::fnv1a_64(text.as_bytes())
    }

    /// Runs the full four-stage pipeline over a plugin and returns the
    /// deduplicated findings plus robustness/statistics records.
    pub fn analyze(&self, project: &PluginProject) -> AnalysisOutcome {
        self.analyze_with_caches(project, None)
    }

    /// [`PhpSafe::analyze`], optionally sharing parse results and pure-leaf
    /// call summaries through an [`EngineCaches`] set. Passing `None` is
    /// the plain serial mode; passing a cache set never changes the
    /// outcome, only the cost of producing it.
    pub fn analyze_with_caches(
        &self,
        project: &PluginProject,
        caches: Option<&EngineCaches>,
    ) -> AnalysisOutcome {
        if self.options.taint_graph {
            return self.analyze_graph(project, caches);
        }
        self.analyze_walk(project, caches, false).0
    }

    /// Graph mode: look the project's taint graph up in the caches and
    /// answer from it; on a miss, run one recording walk, persist the
    /// graph, and answer from the fresh graph — so warm and cold analyses
    /// take the same assembly path. `dataflow.builds` counts recording
    /// walks (exactly one per project content and tool fingerprint while
    /// a cache set is shared), `dataflow.graph_hits` counts answers served
    /// without walking.
    fn analyze_graph(
        &self,
        project: &PluginProject,
        caches: Option<&EngineCaches>,
    ) -> AnalysisOutcome {
        let key = project.content_key();
        let fingerprint = self.fingerprint();
        if let Some(c) = caches {
            if let Some(pg) = c.lookup_graph(key, fingerprint) {
                let _span = phpsafe_obs::span!("stage.analyze", project.name());
                phpsafe_obs::count("dataflow.graph_hits", 1);
                // Replay the recorded event stream so `--explain` sees the
                // exact events a fresh walk of this project would emit.
                if phpsafe_obs::events_enabled() {
                    for n in pg.graph.events() {
                        phpsafe_obs::emit(n.kind, n.file.as_str(), n.line, n.what.clone());
                    }
                }
                return self.assemble_from_graph(project, &pg);
            }
        }
        let (walked, pg) = self.analyze_walk(project, caches, true);
        let pg = pg.expect("recording walk produces a graph");
        phpsafe_obs::count("dataflow.builds", 1);
        let pg = match caches {
            Some(c) => c.store_graph(key, fingerprint, pg),
            None => Arc::new(pg),
        };
        let outcome = self.assemble_from_graph(project, &pg);
        debug_assert_eq!(
            outcome, walked,
            "graph assembly must reproduce the recording walk byte-for-byte"
        );
        outcome
    }

    /// Rebuilds a full [`AnalysisOutcome`] from a (possibly disk-loaded)
    /// project graph: one reachability query per vulnerability class, hits
    /// merged back into walk order, provenance paths resolved into traces,
    /// then the same dedup + sort the walk applies.
    fn assemble_from_graph(
        &self,
        project: &PluginProject,
        pg: &crate::caching::ProjectGraph,
    ) -> AnalysisOutcome {
        use crate::report::Vulnerability;
        use crate::taint::TraceStep;
        use taint_config::VulnClass;

        let mut hits: Vec<phpsafe_dataflow::QueryHit> = VulnClass::ALL
            .iter()
            .flat_map(|&class| pg.graph.query(class))
            .collect();
        hits.sort_by_key(|h| h.seq);
        let vulns = hits
            .iter()
            .map(|h| {
                let rec = &pg.graph.sinks[h.seq];
                Vulnerability {
                    class: rec.class,
                    file: rec.file.clone(),
                    line: rec.line,
                    sink: rec.sink.clone(),
                    var: rec.var.clone(),
                    source_kind: rec.source_kind,
                    labels: rec.labels,
                    via_oop: rec.via_oop,
                    numeric_hint: rec.numeric_hint,
                    trace: pg
                        .graph
                        .resolve_path(rec)
                        .into_iter()
                        .map(|s| TraceStep {
                            file: s.file,
                            line: s.line,
                            what: s.what,
                        })
                        .collect(),
                }
            })
            .collect();
        let mut outcome = AnalysisOutcome {
            tool: self.tool_name.clone(),
            plugin: project.name().to_string(),
            vulns,
            files: pg.files.clone(),
            stats: pg.stats,
        };
        outcome.dedup();
        outcome
            .vulns
            .sort_by(|a, b| (&a.file, a.line, a.class).cmp(&(&b.file, b.line, b.class)));
        outcome
    }

    /// Per-function parallelism: fans the shareable free functions out
    /// over the engine's ordered pool *before* the walk, each job
    /// executing one function with all-clean arguments against a private
    /// summary cache (exactly the summary the uncalled sweep computes),
    /// then merges the deposits into the shared cache in submission
    /// order. Replaying a summary is already pinned byte-identical to
    /// re-execution, so warming summaries early changes the walk's cost,
    /// never its outcome.
    fn presummarize(
        &self,
        project: &PluginProject,
        parsed: &HashMap<String, Arc<ParsedFile>>,
        symbols: &SymbolTable,
        shared: &Arc<crate::caching::SummaryCache>,
    ) {
        use crate::caching::{shareable_calls, SummaryCache, SummaryKey};
        use crate::symbols::FnInfo;
        use crate::taint::VarState;
        let _span = phpsafe_obs::span!("analyze.presummarize");
        let mut jobs: Vec<&FnInfo> = symbols
            .functions()
            .filter(|info| match shareable_calls(&info.ast, &info.decl) {
                // Only bodies whose recorded calls all resolve to
                // built-ins can ever deposit a summary; skip the rest.
                Some(calls) => calls.iter().all(|n| symbols.function(n).is_none()),
                None => false,
            })
            .collect();
        // The symbol table iterates in hash order; pin the submission
        // (and thus merge) order.
        jobs.sort_by(|x, y| x.decl.name.as_str().cmp(y.decl.name.as_str()));
        if jobs.is_empty() {
            return;
        }
        phpsafe_obs::count("engine.presummarize_jobs", jobs.len() as u64);
        // Batch functions per job so one Interp (and its hash maps)
        // amortizes over a chunk; ~4 chunks per worker keeps the pool
        // load-balanced when function costs are skewed.
        let workers = self.options.function_jobs;
        let chunk = jobs.len().div_ceil(workers * 4).max(1);
        let batches: Vec<Vec<&FnInfo>> = jobs.chunks(chunk).map(<[_]>::to_vec).collect();
        let (deposits, _stats) = phpsafe_engine::run_ordered(batches, workers, |_, batch| {
            let local = Arc::new(SummaryCache::new());
            let mut interp = Interp::new(
                &self.config,
                &self.options,
                symbols,
                project,
                parsed,
                Some(Arc::clone(&local)),
            );
            for info in batch {
                // A warm cache already has most of these; the key probe
                // (a declaration pretty-print) runs here, inside the
                // parallel region, not on the coordinator.
                let args = vec![VarState::clean(); info.decl.params.len()];
                if shared
                    .peek(&SummaryKey::new(&info.ast, &info.decl, &args))
                    .is_none()
                {
                    interp.presummarize(info);
                }
            }
            local.entries()
        });
        // First writer wins per key, in submission order — safe because
        // executing equal keys deposits equal summaries.
        for (key, summary) in deposits.into_iter().flatten() {
            if shared.peek(&key).is_none() {
                shared.insert(key, (*summary).clone());
            }
        }
    }

    /// The four-stage pipeline, optionally recording the taint graph as a
    /// side effect of the walk. The `record: false` path is byte-for-byte
    /// the legacy analyzer.
    fn analyze_walk(
        &self,
        project: &PluginProject,
        caches: Option<&EngineCaches>,
        record: bool,
    ) -> (AnalysisOutcome, Option<crate::caching::ProjectGraph>) {
        let _span = phpsafe_obs::span!("stage.analyze", project.name());

        // ---- stage 2: model construction ----
        let span_model = phpsafe_obs::span!("analyze.model");
        let mut parsed: HashMap<String, Arc<ParsedFile>> = HashMap::new();
        let mut reports: Vec<FileReport> = Vec::new();
        let mut rejected: Vec<String> = Vec::new();
        for file in project.files() {
            let ast = match caches {
                Some(c) => c.ast().parse(&file.content),
                None => Arc::new(parse(&file.content)),
            };
            let mut report = FileReport {
                path: file.path.clone(),
                loc: file.loc(),
                parse_errors: ast.errors.len(),
                failure: None,
            };
            if self.options.reject_oop_files && uses_oop(&ast) {
                report.failure = Some(FileFailure::Unsupported(
                    "object-oriented constructs".to_string(),
                ));
                rejected.push(file.path.clone());
            } else if self.options.reject_closures && uses_closures(&ast) {
                report.failure = Some(FileFailure::Unsupported(
                    "anonymous functions (post-2007 syntax)".to_string(),
                ));
                rejected.push(file.path.clone());
            } else {
                parsed.insert(file.path.clone(), ast);
            }
            reports.push(report);
        }

        let span_symbols = phpsafe_obs::span!("model.symbols");
        let symbols = SymbolTable::build(parsed.iter().map(|(p, a)| (p.as_str(), a)));
        drop(span_symbols);
        // Record the project's file dependency graph as a by-product of
        // model construction: the daemon's `invalidate` path asks it which
        // files an edit can affect. Keyed on project content, independent
        // of tool/config, so one build serves every analyzer.
        if let Some(c) = caches {
            let key = project.content_key();
            if c.lookup_depgraph(key).is_none() {
                c.store_depgraph(
                    key,
                    crate::depgraph::build_depgraph(project, &parsed, &symbols),
                );
            }
        }
        drop(span_model);

        // ---- stage 3: analysis ----
        let span_taint = phpsafe_obs::span!("analyze.taint");
        let summaries = caches.map(|c| {
            c.warm_summaries(&self.tool_name, self.fingerprint());
            c.summaries_for(&self.tool_name)
        });
        if self.options.summaries && self.options.function_jobs > 1 {
            if let Some(shared) = summaries.as_ref() {
                self.presummarize(project, &parsed, &symbols, shared);
            }
        }
        let mut interp = Interp::new(
            &self.config,
            &self.options,
            &symbols,
            project,
            &parsed,
            summaries,
        );
        if record {
            interp.recorder = Some(std::cell::RefCell::new(phpsafe_dataflow::Recorder::new()));
        }
        let mut total_work = 0u64;
        let mut failed_paths: Vec<(String, String)> = Vec::new();
        let mut paths: Vec<&String> = parsed.keys().collect();
        paths.sort();
        for path in paths {
            let vulns_before = interp.vulns.len();
            let sinks_before = interp.recorder.as_ref().map(|rec| rec.borrow().sinks_len());
            let failure = interp.run_entry_file(path);
            total_work += interp.work;
            if let Some(msg) = failure {
                // The paper's tools deliver nothing for a file they cannot
                // finish: drop findings from the failed pass. The recorder
                // drops the matching sink records in lockstep (its nodes
                // stay — the events were emitted and must replay).
                interp.vulns.truncate(vulns_before);
                if let Some(mark) = sinks_before {
                    interp
                        .recorder
                        .as_ref()
                        .expect("recorder outlives the walk")
                        .borrow_mut()
                        .truncate_sinks(mark);
                }
                failed_paths.push((path.clone(), msg));
            }
        }
        let uncalled = symbols.uncalled();
        if self.options.analyze_uncalled {
            interp.run_uncalled(&uncalled);
            total_work += interp.work;
        }
        drop(span_taint);

        // ---- stage 4: results processing ----
        let span_results = phpsafe_obs::span!("analyze.results");
        for (path, msg) in &failed_paths {
            if let Some(r) = reports.iter_mut().find(|r| &r.path == path) {
                r.failure = Some(FileFailure::ResourceLimit(msg.clone()));
            }
        }
        let failed_set: std::collections::HashSet<&String> = failed_paths
            .iter()
            .map(|(p, _)| p)
            .chain(rejected.iter())
            .collect();
        let recorder = interp.recorder.take();
        let mut vulns = interp.vulns;
        vulns.retain(|v| !failed_set.contains(&v.file));
        let graph = recorder.map(|cell| {
            let mut rec = cell.into_inner();
            // Mirror the vulnerability retain above at the sink level.
            let failed: std::collections::HashSet<&str> =
                failed_set.iter().map(|p| p.as_str()).collect();
            rec.retain_sinks(|file| !failed.contains(file));
            rec.finish()
        });

        let stats = AnalysisStats {
            files_ok: reports.iter().filter(|r| r.failure.is_none()).count(),
            files_failed: reports.iter().filter(|r| r.failure.is_some()).count(),
            loc: project.total_loc(),
            functions: symbols.callable_count(),
            classes: symbols.class_count(),
            uncalled_functions: uncalled.len(),
            work_units: total_work,
        };

        // The persisted graph carries the final file reports and stats so a
        // warm hit reassembles the whole outcome without re-walking; sinks
        // are stored pre-dedup/pre-sort (assembly re-applies both).
        let project_graph = graph.map(|g| crate::caching::ProjectGraph {
            graph: g,
            files: reports.clone(),
            stats,
        });

        let mut outcome = AnalysisOutcome {
            tool: self.tool_name.clone(),
            plugin: project.name().to_string(),
            vulns,
            files: reports,
            stats,
        };
        outcome.dedup();
        outcome
            .vulns
            .sort_by(|a, b| (&a.file, a.line, a.class).cmp(&(&b.file, b.line, b.class)));
        drop(span_results);

        phpsafe_obs::count("analyze.files", outcome.files.len() as u64);
        phpsafe_obs::count("analyze.vulns", outcome.vulns.len() as u64);
        phpsafe_obs::count("analyze.work_units", outcome.stats.work_units);
        (outcome, project_graph)
    }
}

/// Does the file use any OOP construct (class declarations, method calls,
/// property access, `new`)? Pixy's front end fails on these.
fn uses_oop(ast: &ParsedFile) -> bool {
    struct Finder {
        found: bool,
    }
    impl Visitor for Finder {
        fn visit_class(&mut self, _a: &Arena, _c: &ClassDecl) {
            self.found = true;
        }
        fn visit_expr(&mut self, a: &Arena, e: ExprId) {
            match a.expr(e) {
                Expr::Prop(..) | Expr::StaticProp(..) | Expr::New { .. } => self.found = true,
                Expr::Call {
                    callee: Callee::Method { .. } | Callee::StaticMethod { .. },
                    ..
                } => self.found = true,
                _ => {}
            }
            if !self.found {
                visit::walk_expr(self, a, e);
            }
        }
    }
    let mut f = Finder { found: false };
    visit::walk_file(&mut f, ast);
    f.found
}

/// Does the file use anonymous functions? A 2007-era parser errors on them.
fn uses_closures(ast: &ParsedFile) -> bool {
    struct Finder {
        found: bool,
    }
    impl Visitor for Finder {
        fn visit_expr(&mut self, a: &Arena, e: ExprId) {
            if matches!(a.expr(e), Expr::Closure { .. }) {
                self.found = true;
            }
            if !self.found {
                visit::walk_expr(self, a, e);
            }
        }
    }
    let mut f = Finder { found: false };
    visit::walk_file(&mut f, ast);
    f.found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::project::SourceFile;
    use taint_config::{SourceKind, VulnClass};

    fn plugin(src: &str) -> PluginProject {
        PluginProject::new("test").with_file(SourceFile::new("test.php", src))
    }

    fn analyze(src: &str) -> AnalysisOutcome {
        PhpSafe::new().analyze(&plugin(src))
    }

    #[test]
    fn detects_direct_get_echo_xss() {
        let o = analyze("<?php echo $_GET['name'];");
        assert_eq!(o.vulns.len(), 1);
        assert_eq!(o.vulns[0].class, VulnClass::Xss);
        assert_eq!(o.vulns[0].source_kind, SourceKind::Get);
        assert_eq!(o.vulns[0].line, 1);
    }

    #[test]
    fn sanitized_echo_is_clean() {
        let o = analyze("<?php echo htmlentities($_GET['name']);");
        assert!(o.vulns.is_empty(), "{:?}", o.vulns);
    }

    #[test]
    fn taint_flows_through_assignment_chain() {
        let o = analyze(
            "<?php
            $a = $_POST['msg'];
            $b = $a;
            $c = 'prefix: ' . $b;
            echo $c;",
        );
        assert_eq!(o.vulns.len(), 1);
        assert_eq!(o.vulns[0].source_kind, SourceKind::Post);
        assert_eq!(o.vulns[0].line, 5);
        assert!(!o.vulns[0].trace.is_empty(), "trace must be recorded");
    }

    #[test]
    fn intval_sanitizes_both_classes() {
        let o = analyze(
            "<?php
            $id = intval($_GET['id']);
            echo $id;
            mysql_query(\"SELECT * FROM t WHERE id = $id\");",
        );
        assert!(o.vulns.is_empty(), "{:?}", o.vulns);
    }

    #[test]
    fn int_cast_sanitizes() {
        let o = analyze("<?php $id = (int)$_GET['id']; echo $id;");
        assert!(o.vulns.is_empty());
    }

    #[test]
    fn sqli_through_interpolated_query() {
        let o = analyze(
            "<?php
            $id = $_GET['id'];
            mysql_query(\"SELECT * FROM posts WHERE id = $id\");",
        );
        assert_eq!(o.vulns.len(), 1);
        assert_eq!(o.vulns[0].class, VulnClass::Sqli);
        assert_eq!(o.vulns[0].sink, "mysql_query");
    }

    #[test]
    fn escape_string_stops_sqli_but_not_xss() {
        let o = analyze(
            "<?php
            $n = mysql_real_escape_string($_GET['n']);
            mysql_query(\"SELECT * FROM t WHERE n = '$n'\");
            echo $n;",
        );
        assert_eq!(o.vulns.len(), 1, "{:?}", o.vulns);
        assert_eq!(o.vulns[0].class, VulnClass::Xss);
    }

    #[test]
    fn stripslashes_reverts_sanitization() {
        // §III.A: revert functions re-enable the attack.
        let o = analyze(
            "<?php
            $s = addslashes($_GET['s']);
            $raw = stripslashes($s);
            mysql_query(\"SELECT * FROM t WHERE s = '$raw'\");",
        );
        assert_eq!(o.vulns.len(), 1, "{:?}", o.vulns);
        assert_eq!(o.vulns[0].class, VulnClass::Sqli);
    }

    #[test]
    fn unset_untaints() {
        let o = analyze("<?php $x = $_GET['x']; unset($x); echo $x;");
        assert!(o.vulns.is_empty());
    }

    #[test]
    fn branch_join_keeps_taint_when_one_path_unsanitized() {
        let o = analyze(
            "<?php
            $x = $_GET['x'];
            if ($_GET['mode'] == 'safe') { $x = htmlentities($x); }
            echo $x;",
        );
        assert_eq!(o.vulns.len(), 1, "taint survives the unsanitized path");
    }

    #[test]
    fn branch_join_clean_when_all_paths_sanitize() {
        let o = analyze(
            "<?php
            $x = $_GET['x'];
            if ($_GET['m']) { $x = htmlentities($x); } else { $x = intval($x); }
            echo $x;",
        );
        assert!(o.vulns.is_empty(), "{:?}", o.vulns);
    }

    #[test]
    fn interprocedural_flow_through_user_function() {
        let o = analyze(
            "<?php
            function decorate($v) { return '<b>' . $v . '</b>'; }
            echo decorate($_GET['t']);",
        );
        assert_eq!(o.vulns.len(), 1);
        assert_eq!(o.vulns[0].class, VulnClass::Xss);
    }

    #[test]
    fn user_function_that_sanitizes_is_summarized() {
        let o = analyze(
            "<?php
            function clean($v) { return htmlentities($v); }
            echo clean($_GET['t']);",
        );
        assert!(o.vulns.is_empty(), "{:?}", o.vulns);
    }

    #[test]
    fn recursion_terminates() {
        let o = analyze(
            "<?php
            function walk($n) { if ($n > 0) { return walk($n - 1); } return $_GET['x']; }
            echo walk(5);",
        );
        // The tainted return through recursion is found (first analysis of
        // walk taints its return), and the analysis terminates.
        assert_eq!(o.vulns.len(), 1);
    }

    #[test]
    fn foreach_propagates_collection_taint() {
        let o = analyze(
            "<?php
            $items = $_POST['items'];
            foreach ($items as $it) { echo $it; }",
        );
        assert_eq!(o.vulns.len(), 1);
    }

    #[test]
    fn uncalled_function_is_analyzed() {
        // The hook handler is never called from plugin code — phpSAFE must
        // still find the vulnerability (§III.C).
        let o = analyze(
            "<?php
            add_action('admin_menu', 'my_page');
            function my_page() { echo $_REQUEST['tab']; }",
        );
        assert_eq!(o.vulns.len(), 1);
        assert_eq!(o.vulns[0].source_kind, SourceKind::Request);
    }

    #[test]
    fn oop_property_flow_detected() {
        let o = analyze(
            "<?php
            class Form {
                private $value;
                public function __construct() { $this->value = $_POST['v']; }
                public function render() { echo $this->value; }
            }
            $f = new Form();
            $f->render();",
        );
        assert_eq!(o.vulns.len(), 1, "{:?}", o.vulns);
        assert_eq!(o.vulns[0].class, VulnClass::Xss);
    }

    #[test]
    fn wpdb_get_results_is_oop_database_source() {
        // The paper's §III.E mail-subscribe-list example.
        let o = analyze(
            "<?php
            $results = $wpdb->get_results(\"SELECT * FROM \" . $wpdb->prefix . \"sml\");
            foreach ($results as $row) {
                echo $row->sml_name;
            }",
        );
        assert_eq!(o.vulns.len(), 1, "{:?}", o.vulns);
        let v = &o.vulns[0];
        assert_eq!(v.class, VulnClass::Xss);
        assert_eq!(v.source_kind, SourceKind::Database);
        assert!(v.via_oop, "flow passes a WordPress object method");
    }

    #[test]
    fn wpdb_query_with_tainted_sql_is_sqli() {
        let o = analyze(
            "<?php
            $t = $_GET['t'];
            $wpdb->query(\"DELETE FROM x WHERE t = '$t'\");",
        );
        assert_eq!(o.vulns.len(), 1);
        assert_eq!(o.vulns[0].class, VulnClass::Sqli);
        assert_eq!(o.vulns[0].sink, "wpdb::query");
    }

    #[test]
    fn wpdb_prepare_stops_sqli() {
        let o = analyze(
            "<?php
            $sql = $wpdb->prepare(\"SELECT * FROM t WHERE id = %d\", $_GET['id']);
            $wpdb->query($sql);",
        );
        assert!(o.vulns.is_empty(), "{:?}", o.vulns);
    }

    #[test]
    fn esc_html_stops_xss() {
        let o = analyze("<?php echo esc_html($_GET['q']);");
        assert!(o.vulns.is_empty());
    }

    #[test]
    fn wpdb_alias_through_property() {
        // OOP plugins commonly stash $wpdb in a property.
        let o = analyze(
            "<?php
            class Repo {
                private $db;
                public function __construct() { global $wpdb; $this->db = $wpdb; }
                public function all() { return $this->db->get_results('SELECT * FROM x'); }
            }
            $r = new Repo();
            foreach ($r->all() as $row) { echo $row->name; }",
        );
        assert_eq!(o.vulns.len(), 1, "{:?}", o.vulns);
        assert!(o.vulns[0].via_oop);
        assert_eq!(o.vulns[0].source_kind, SourceKind::Database);
    }

    #[test]
    fn include_resolution_connects_files() {
        let p = PluginProject::new("multi")
            .with_file(SourceFile::new(
                "main.php",
                "<?php $v = $_GET['v']; include 'show.php';",
            ))
            .with_file(SourceFile::new("show.php", "<?php echo $v;"));
        let o = PhpSafe::new().analyze(&p);
        // Found once via main.php's include (in show.php at line 1); the
        // standalone pass over show.php sees $v undefined (clean).
        assert_eq!(o.vulns.len(), 1, "{:?}", o.vulns);
        assert_eq!(o.vulns[0].file, "show.php");
    }

    #[test]
    fn include_depth_limit_fails_file() {
        let mut p = PluginProject::new("deep");
        let mut main = String::from("<?php include 'f0.php';");
        for i in 0..20 {
            p.push_file(SourceFile::new(
                format!("f{i}.php"),
                format!("<?php include 'f{}.php'; $x{i} = 1;", i + 1),
            ));
        }
        p.push_file(SourceFile::new("f20.php", "<?php echo $_GET['x'];"));
        main.push_str(" echo 'done';");
        p.push_file(SourceFile::new("main.php", &main));
        let o = PhpSafe::new().analyze(&p);
        assert!(
            o.files.iter().any(|f| f.failure.is_some()),
            "deep include chain must fail some entry file"
        );
    }

    #[test]
    fn work_limit_marks_file_failed_and_drops_its_vulns() {
        let mut body = String::from("<?php $t = $_GET['x'];\n");
        for i in 0..200 {
            body.push_str(&format!("$a{i} = $t . 'x'; echo $a{i};\n"));
        }
        let opts = AnalyzerOptions {
            work_limit: 50,
            ..AnalyzerOptions::default()
        };
        let o = PhpSafe::new().with_options(opts).analyze(&plugin(&body));
        assert_eq!(o.stats.files_failed, 1);
        assert!(o.vulns.is_empty(), "failed file contributes no findings");
    }

    #[test]
    fn oop_disabled_misses_encapsulated_vuln() {
        let src = "<?php
            $rows = $wpdb->get_results('SELECT * FROM t');
            foreach ($rows as $r) { echo $r->name; }";
        let with_oop = PhpSafe::new().analyze(&plugin(src));
        let without = PhpSafe::new()
            .with_options(AnalyzerOptions {
                oop: false,
                ..AnalyzerOptions::default()
            })
            .analyze(&plugin(src));
        assert_eq!(with_oop.vulns.len(), 1);
        assert!(without.vulns.is_empty(), "OOP-blind tools miss this");
    }

    #[test]
    fn reject_oop_files_front_end() {
        let o = PhpSafe::new()
            .with_options(AnalyzerOptions {
                reject_oop_files: true,
                ..AnalyzerOptions::default()
            })
            .analyze(&plugin("<?php class C {} echo $_GET['x'];"));
        assert_eq!(o.stats.files_failed, 1);
        assert!(o.vulns.is_empty());
    }

    #[test]
    fn register_globals_creates_request_taint() {
        let o = PhpSafe::new()
            .with_options(AnalyzerOptions {
                register_globals: true,
                ..AnalyzerOptions::default()
            })
            .analyze(&plugin("<?php echo $page_title;"));
        assert_eq!(o.vulns.len(), 1);
        assert_eq!(o.vulns[0].source_kind, SourceKind::Request);
    }

    #[test]
    fn duplicate_sink_reports_are_merged() {
        let o = analyze(
            "<?php
            function show() { echo $_GET['x']; }
            show();
            show();",
        );
        assert_eq!(o.vulns.len(), 1);
    }

    #[test]
    fn stats_are_populated() {
        let o = analyze(
            "<?php
            function a() {} function b() {} a();
            class K { function m() {} }",
        );
        assert_eq!(o.stats.functions, 3);
        assert_eq!(o.stats.classes, 1);
        assert!(o.stats.uncalled_functions >= 2); // b and K::m
        assert_eq!(o.stats.files_ok, 1);
        assert!(o.stats.work_units > 0);
    }

    #[test]
    fn file_source_taints() {
        let o = analyze("<?php $res = fgets($fp, 128); echo $res;");
        assert_eq!(o.vulns.len(), 1);
        assert_eq!(o.vulns[0].source_kind, SourceKind::File);
    }

    #[test]
    fn numeric_hint_recorded() {
        let o = analyze("<?php echo $_GET['page_id'];");
        assert_eq!(o.vulns.len(), 1);
        assert!(o.vulns[0].numeric_hint);
    }

    fn graph_options() -> AnalyzerOptions {
        AnalyzerOptions {
            taint_graph: true,
            ..AnalyzerOptions::default()
        }
    }

    #[test]
    fn graph_mode_reproduces_walker_byte_for_byte() {
        let probes = [
            "<?php echo $_GET['name'];",
            "<?php $a = $_POST['m']; $b = 'x: ' . $a; echo $b; mysql_query(\"SELECT $b\");",
            "<?php $id = intval($_GET['id']); echo $id;
             $raw = stripslashes(addslashes($_COOKIE['q'])); echo $raw;",
            "<?php class P { public $t; function show() { echo $this->t; } }
             $p = new P(); $p->t = $_REQUEST['x']; $p->show();",
            "<?php foreach ($_GET as $v) { echo $v; }",
            "<?php function f($x) { return 'v' . $x; } echo f($_SERVER['HTTP_REFERER']);",
        ];
        for src in probes {
            let p = plugin(src);
            let walker = PhpSafe::new().analyze(&p);
            let graph = PhpSafe::new().with_options(graph_options()).analyze(&p);
            assert_eq!(walker, graph, "graph mode diverged on {src}");
        }
    }

    #[test]
    fn graph_mode_drops_findings_from_failed_files_like_walker() {
        // The first file reports a vulnerability, then blows the work
        // budget: both modes must drop its findings but keep the second
        // file's.
        let heavy = format!("<?php echo $_GET['a'];{}", "$x = 1;".repeat(200));
        let project = PluginProject::new("fail-probe")
            .with_file(SourceFile::new("heavy.php", &heavy))
            .with_file(SourceFile::new("ok.php", "<?php echo $_POST['b'];"));
        let walk_opts = AnalyzerOptions {
            work_limit: 60,
            ..AnalyzerOptions::default()
        };
        let graph_opts = AnalyzerOptions {
            taint_graph: true,
            ..walk_opts.clone()
        };
        let walker = PhpSafe::new().with_options(walk_opts).analyze(&project);
        let graph = PhpSafe::new().with_options(graph_opts).analyze(&project);
        assert_eq!(walker.stats.files_failed, 1, "heavy.php must fail");
        assert_eq!(walker.vulns.len(), 1, "only ok.php's finding survives");
        assert_eq!(walker, graph);
    }

    #[test]
    fn graph_builds_once_per_project_and_warm_hits_reproduce() {
        let caches = EngineCaches::new();
        // One project exercising both vulnerability classes.
        let p = plugin("<?php $q = $_GET['q']; echo $q; mysql_query(\"SELECT $q\");");
        let tool = PhpSafe::new().with_options(graph_options());
        phpsafe_obs::set_enabled(true);
        let before = phpsafe_obs::snapshot();
        let cold = tool.analyze_with_caches(&p, Some(&caches));
        let warm = tool.analyze_with_caches(&p, Some(&caches));
        let delta = phpsafe_obs::snapshot().since(&before);
        phpsafe_obs::set_enabled(false);
        assert_eq!(cold, warm, "warm graph hit must reproduce the cold run");
        assert_eq!(
            delta.counter("dataflow.builds"),
            1,
            "one graph build shared across both vuln classes and a warm rerun"
        );
        assert_eq!(delta.counter("dataflow.graph_hits"), 1);
        assert!(delta.counter("dataflow.nodes") > 0);
        assert!(delta.counter("dataflow.edges") > 0);
        // One query per registered vulnerability class, two analyses.
        assert_eq!(
            delta.counter("dataflow.queries"),
            2 * taint_config::VulnClass::COUNT as u64
        );
        assert!(delta.counter("dataflow.path_hits") >= 2);
        assert_eq!(cold.vulns.len(), 2);
        assert_eq!(cold, PhpSafe::new().analyze(&p), "graph ≡ walker");
    }
}
