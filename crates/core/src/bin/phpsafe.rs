//! `phpsafe` — command-line front end for the analyzer.
//!
//! ```text
//! phpsafe [OPTIONS] <PATH>...
//!
//! ARGS:
//!   <PATH>...             plugin directories and/or single PHP files
//!
//! OPTIONS:
//!   --profile <NAME>      wordpress (default) | php | drupal | joomla
//!   --json                emit the normalized JSON report instead of text
//!   --html                emit a standalone HTML report instead of text
//!   --jobs <N>            analyze multiple paths on N worker threads
//!   --engine-stats        print engine statistics to stderr after the run
//!   --engine-stats-json <FILE>  write the same statistics as JSON
//!   --metrics-out <FILE>  write the full metrics snapshot as JSON
//!   --no-oop              disable OOP resolution (baseline mode)
//!   --no-includes         disable include resolution
//!   --no-uncalled         skip never-called functions
//!   --trace               print data-flow traces and the span self-profile
//!   --explain             print source→sanitizer→sink provenance chains
//!   --cache-dir <DIR>     persistent artifact cache (warm-starts later runs)
//!   --taint-graph         analyze via the whole-program taint graph
//!   -h, --help            this help
//!
//! phpsafe serve [OPTIONS]   long-running analysis daemon (NDJSON protocol)
//! ```

use phpsafe::{load_project, AnalysisServer, AnalyzerOptions, EngineCaches, PhpSafe};
use phpsafe_engine::{effective_jobs_reported, run_ordered, DiskCache};
use phpsafe_serve::{bind, run_stdio, run_tcp, Daemon, ServerConfig};
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

/// Prints to stdout, tolerating a closed pipe (`phpsafe ... | head`).
macro_rules! out {
    ($($arg:tt)*) => {
        if writeln!(std::io::stdout(), $($arg)*).is_err() {
            return ExitCode::SUCCESS;
        }
    };
}

const HELP: &str = "\
phpsafe - OOP-aware static taint analyzer for PHP plugins (XSS, SQLi)

USAGE:
    phpsafe [OPTIONS] <PATH>...

ARGS:
    <PATH>...           plugin directories and/or single PHP files; each
                        path is analyzed as one plugin project

OPTIONS:
    --profile <NAME>    wordpress (default) | php | drupal | joomla
    --json              emit the normalized JSON report instead of text
    --html              emit a standalone HTML report instead of text
    --inspect           emit the project inventory (variables, functions,
                        classes, include graph) as JSON and exit
    --jobs <N>          worker threads when analyzing several paths
                        (default: available parallelism; results do not
                        depend on N)
    --fn-jobs <N>       worker threads for per-function pre-summarization
                        inside each analysis (default 1; results do not
                        depend on N — use when analyzing one large path)
    --engine-stats      print scheduler/cache statistics to stderr
    --engine-stats-json <FILE>
                        write the same statistics as JSON to FILE
    --metrics-out <FILE>
                        write the full metrics snapshot (every counter
                        and timing histogram) as JSON to FILE
    --no-oop            disable OOP resolution (baseline mode)
    --no-includes       disable include resolution
    --no-uncalled       skip functions never called from plugin code
    --trace             print full data-flow traces, plus the per-stage
                        span self-profile tree to stderr
    --explain           print a source→sanitizer→sink provenance chain
                        for every reported vulnerability
    --cache-dir <DIR>   persist parsed ASTs, call summaries and rendered
                        reports under DIR so later runs (batch or daemon)
                        warm-start from disk
    --taint-graph       build one whole-program taint graph per project
                        and answer each vulnerability class as a graph
                        query (results identical to the default walker;
                        with --cache-dir, warm runs skip re-walking)
    -h, --help          show this help

SUBCOMMANDS:
    serve               run the long-running analysis daemon; see
                        `phpsafe serve --help`
";

const SERVE_HELP: &str = "\
phpsafe serve - long-running analysis daemon (newline-delimited JSON)

USAGE:
    phpsafe serve [OPTIONS]

Requests (one JSON object per line):
    {\"cmd\":\"analyze\",\"paths\":[\"<dir>\"],\"tools\":[\"phpSAFE\"],\"jobs\":4,\"id\":1}
    {\"cmd\":\"analyze\",\"paths\":[\"<dir>\"],\"buffers\":{\"<file>\":\"<?php ...\"}}
    {\"cmd\":\"invalidate\",\"paths\":[\"<file-or-dir>\",...]}
    {\"cmd\":\"status\"}      {\"cmd\":\"metrics\"}      {\"cmd\":\"shutdown\"}
    {\"cmd\":\"metrics\",\"format\":\"prometheus\"}      {\"cmd\":\"telemetry\"}

\"buffers\" overlays unsaved editor contents onto the on-disk project for
that one request. \"invalidate\" diffs previously analyzed roots against
disk, consults the cached include/call dependency graph for the dirty
files' transitive dependents, and eagerly re-analyzes only those — the
next analyze of an edited project answers from the warmed cache.

Every response carries the server-assigned request id as \"seq\" (plus
the client's \"id\" when one was sent), on success and on every
429/503/504/500/400 error path alike.

OPTIONS:
    --port <N>          listen on 127.0.0.1:<N>; 0 picks a free port
                        (default: 7433). The bound address is printed to
                        stderr once the daemon is ready.
    --stdio             speak the protocol over stdin/stdout instead of TCP
    --cache-dir <DIR>   persistent artifact cache shared with batch runs
    --profile <NAME>    wordpress (default) | php | drupal | joomla
    --jobs <N>          default engine workers per analyze request
    --workers <N>       concurrent analyze requests (default: 1)
    --queue <N>         queued-request bound before 429 rejection
                        (default: 64)
    --timeout-ms <N>    per-request deadline in milliseconds
                        (default: 300000)
    --taint-graph       analyze via the whole-program taint graph; warm
                        requests answer from stored graphs
    --telemetry-out <FILE>
                        stream one wide-event NDJSON line per request
                        (id, method, queue wait, stage timings, cache
                        hits, outcome); written via atomic rename
    --tail-keep <N>     slowest/errored requests retained for the
                        telemetry command (default: 8)
    -h, --help          show this help
";

/// Snapshot name prefixes that make up the engine-stats view.
const ENGINE_PREFIXES: &[&str] = &[
    "engine.",
    "cache.",
    "stage.",
    "intern.",
    "cow.",
    "ast.",
    "dataflow.",
    "diskcache.",
];

#[derive(Debug)]
struct Cli {
    paths: Vec<PathBuf>,
    profile: Option<String>,
    json: bool,
    html: bool,
    inspect: bool,
    jobs: usize,
    fn_jobs: usize,
    engine_stats: bool,
    engine_stats_json: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    no_oop: bool,
    no_includes: bool,
    no_uncalled: bool,
    trace: bool,
    explain: bool,
    cache_dir: Option<PathBuf>,
    taint_graph: bool,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            paths: Vec::new(),
            profile: None,
            json: false,
            html: false,
            inspect: false,
            jobs: std::thread::available_parallelism().map_or(1, |n| n.get()),
            fn_jobs: 1,
            engine_stats: false,
            engine_stats_json: None,
            metrics_out: None,
            no_oop: false,
            no_includes: false,
            no_uncalled: false,
            trace: false,
            explain: false,
            cache_dir: None,
            taint_graph: false,
        }
    }
}

fn parse_args(argv: &[String]) -> Result<Cli, String> {
    let mut cli = Cli::default();
    let mut args = argv.iter().cloned();
    while let Some(a) = args.next() {
        match a.as_str() {
            "-h" | "--help" => return Err(String::new()),
            "--json" => cli.json = true,
            "--html" => cli.html = true,
            "--inspect" => cli.inspect = true,
            "--engine-stats" => cli.engine_stats = true,
            "--no-oop" => cli.no_oop = true,
            "--no-includes" => cli.no_includes = true,
            "--no-uncalled" => cli.no_uncalled = true,
            "--trace" => cli.trace = true,
            "--explain" => cli.explain = true,
            "--taint-graph" => cli.taint_graph = true,
            "--engine-stats-json" => {
                let v = args
                    .next()
                    .ok_or_else(|| "--engine-stats-json requires a file".to_string())?;
                cli.engine_stats_json = Some(PathBuf::from(v));
            }
            "--metrics-out" => {
                let v = args
                    .next()
                    .ok_or_else(|| "--metrics-out requires a file".to_string())?;
                cli.metrics_out = Some(PathBuf::from(v));
            }
            "--cache-dir" => {
                let v = args
                    .next()
                    .ok_or_else(|| "--cache-dir requires a directory".to_string())?;
                cli.cache_dir = Some(PathBuf::from(v));
            }
            "--jobs" => {
                let v = args
                    .next()
                    .ok_or_else(|| "--jobs requires a value".to_string())?;
                cli.jobs = v
                    .parse()
                    .map_err(|_| format!("--jobs requires a number, got `{v}`"))?;
            }
            "--fn-jobs" => {
                let v = args
                    .next()
                    .ok_or_else(|| "--fn-jobs requires a value".to_string())?;
                cli.fn_jobs = v
                    .parse()
                    .map_err(|_| format!("--fn-jobs requires a number, got `{v}`"))?;
            }
            "--profile" => {
                cli.profile = Some(
                    args.next()
                        .ok_or_else(|| "--profile requires a value".to_string())?,
                );
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}`"));
            }
            other => cli.paths.push(PathBuf::from(other)),
        }
    }
    if cli.paths.is_empty() {
        return Err("missing <PATH>".to_string());
    }
    Ok(cli)
}

fn profile_config(name: &str) -> Option<taint_config::TaintConfig> {
    match name {
        "wordpress" => Some(taint_config::wordpress()),
        "php" => Some(taint_config::generic_php()),
        "drupal" => Some(taint_config::drupal()),
        "joomla" => Some(taint_config::joomla()),
        _ => None,
    }
}

#[derive(Debug)]
struct ServeCli {
    port: u16,
    stdio: bool,
    cache_dir: Option<PathBuf>,
    profile: String,
    jobs: usize,
    workers: usize,
    queue: usize,
    timeout_ms: u64,
    taint_graph: bool,
    telemetry_out: Option<PathBuf>,
    tail_keep: usize,
}

fn parse_serve_args(argv: &[String]) -> Result<ServeCli, String> {
    let mut cli = ServeCli {
        port: 7433,
        stdio: false,
        cache_dir: None,
        profile: "wordpress".to_string(),
        jobs: std::thread::available_parallelism().map_or(1, |n| n.get()),
        workers: 1,
        queue: 64,
        timeout_ms: 300_000,
        taint_graph: false,
        telemetry_out: None,
        tail_keep: 8,
    };
    let mut args = argv.iter().cloned();
    while let Some(a) = args.next() {
        let mut value = |flag: &str| args.next().ok_or(format!("{flag} requires a value"));
        match a.as_str() {
            "-h" | "--help" => return Err(String::new()),
            "--stdio" => cli.stdio = true,
            "--taint-graph" => cli.taint_graph = true,
            "--port" => {
                let v = value("--port")?;
                cli.port = v.parse().map_err(|_| format!("bad --port value `{v}`"))?;
            }
            "--cache-dir" => cli.cache_dir = Some(PathBuf::from(value("--cache-dir")?)),
            "--telemetry-out" => cli.telemetry_out = Some(PathBuf::from(value("--telemetry-out")?)),
            "--tail-keep" => {
                let v = value("--tail-keep")?;
                cli.tail_keep = v
                    .parse()
                    .map_err(|_| format!("bad --tail-keep value `{v}`"))?;
            }
            "--profile" => cli.profile = value("--profile")?,
            "--jobs" => {
                let v = value("--jobs")?;
                cli.jobs = v.parse().map_err(|_| format!("bad --jobs value `{v}`"))?;
            }
            "--workers" => {
                let v = value("--workers")?;
                cli.workers = v
                    .parse()
                    .map_err(|_| format!("bad --workers value `{v}`"))?;
            }
            "--queue" => {
                let v = value("--queue")?;
                cli.queue = v.parse().map_err(|_| format!("bad --queue value `{v}`"))?;
            }
            "--timeout-ms" => {
                let v = value("--timeout-ms")?;
                cli.timeout_ms = v
                    .parse()
                    .map_err(|_| format!("bad --timeout-ms value `{v}`"))?;
            }
            other => return Err(format!("unknown serve option `{other}`")),
        }
    }
    Ok(cli)
}

fn run_serve(argv: &[String]) -> ExitCode {
    let cli = match parse_serve_args(argv) {
        Ok(c) => c,
        Err(msg) => {
            if msg.is_empty() {
                print!("{SERVE_HELP}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{SERVE_HELP}");
            return ExitCode::from(2);
        }
    };
    let Some(config) = profile_config(&cli.profile) else {
        eprintln!(
            "error: unknown profile `{}` (wordpress|php|drupal|joomla)",
            cli.profile
        );
        return ExitCode::from(2);
    };
    // The daemon's whole point is the metrics/status surface; keep the
    // observability registry on for its lifetime.
    phpsafe_obs::set_enabled(true);
    let caches = match &cli.cache_dir {
        Some(dir) => match DiskCache::open(dir) {
            Ok(disk) => EngineCaches::with_disk(Arc::new(disk)),
            Err(e) => {
                eprintln!("error: cannot open cache dir {}: {e}", dir.display());
                return ExitCode::from(2);
            }
        },
        None => EngineCaches::new(),
    };
    let jobs = effective_jobs_reported(cli.jobs);
    let mut server = AnalysisServer::with_caches(caches).with_default_jobs(jobs);
    server.register(
        "phpSAFE",
        Box::new(
            PhpSafe::new()
                .with_config(config)
                .with_taint_graph(cli.taint_graph),
        ),
    );
    let daemon = Daemon::start(
        Arc::new(server),
        ServerConfig {
            workers: cli.workers.max(1),
            queue_capacity: cli.queue,
            request_timeout: Duration::from_millis(cli.timeout_ms),
            telemetry_out: cli.telemetry_out.clone(),
            tail_keep: cli.tail_keep,
        },
    );
    let served = if cli.stdio {
        eprintln!("phpsafe serve: ready on stdio");
        run_stdio(&daemon)
    } else {
        match bind(cli.port) {
            Ok(listener) => {
                match listener.local_addr() {
                    Ok(addr) => eprintln!("phpsafe serve: listening on {addr}"),
                    Err(_) => eprintln!("phpsafe serve: listening"),
                }
                run_tcp(&daemon, listener)
            }
            Err(e) => {
                eprintln!("error: cannot bind 127.0.0.1:{}: {e}", cli.port);
                return ExitCode::from(2);
            }
        }
    };
    if let Err(e) = served {
        eprintln!("error: daemon transport failed: {e}");
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("serve") {
        return run_serve(&argv[1..]);
    }
    let cli = match parse_args(&argv) {
        Ok(c) => c,
        Err(msg) => {
            if msg.is_empty() {
                print!("{HELP}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{HELP}");
            return ExitCode::from(2);
        }
    };
    let profile = cli.profile.as_deref().unwrap_or("wordpress");
    let Some(config) = profile_config(profile) else {
        eprintln!("error: unknown profile `{profile}` (wordpress|php|drupal|joomla)");
        return ExitCode::from(2);
    };
    let options = AnalyzerOptions {
        oop: !cli.no_oop,
        resolve_includes: !cli.no_includes,
        analyze_uncalled: !cli.no_uncalled,
        taint_graph: cli.taint_graph,
        function_jobs: cli.fn_jobs.max(1),
        ..AnalyzerOptions::default()
    };

    let mut projects = Vec::new();
    for path in &cli.paths {
        match load_project(path) {
            Ok(p) => projects.push(p),
            Err(msg) => {
                eprintln!("error: {msg}");
                return ExitCode::from(2);
            }
        }
    }

    if cli.inspect {
        for project in &projects {
            let inventory = phpsafe::inspect(project);
            match serde_json::to_string_pretty(&inventory) {
                Ok(j) => out!("{j}"),
                Err(e) => {
                    eprintln!("error: serialization failed: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        return ExitCode::SUCCESS;
    }

    let want_obs = cli.engine_stats
        || cli.engine_stats_json.is_some()
        || cli.metrics_out.is_some()
        || cli.trace;
    if want_obs {
        phpsafe_obs::set_enabled(true);
    }
    if cli.explain {
        phpsafe_obs::set_events_enabled(true);
    }

    // Fan the projects across the engine's worker pool; output order
    // follows the command line regardless of scheduling.
    let analyzer = PhpSafe::new().with_config(config).with_options(options);
    let caches = match &cli.cache_dir {
        Some(dir) => match DiskCache::open(dir) {
            Ok(disk) => EngineCaches::with_disk(Arc::new(disk)),
            Err(e) => {
                eprintln!("error: cannot open cache dir {}: {e}", dir.display());
                return ExitCode::from(2);
            }
        },
        None => EngineCaches::new(),
    };
    let jobs = effective_jobs_reported(cli.jobs);
    let (outcomes, _pool) = run_ordered(projects, jobs, |_, project| {
        analyzer.analyze_with_caches(&project, Some(&caches))
    });
    caches.persist();
    let events = phpsafe_obs::drain_events();

    if want_obs {
        caches.record();
        let snap = phpsafe_obs::snapshot();
        if cli.engine_stats {
            eprintln!("{}", snap.render(ENGINE_PREFIXES));
        }
        if let Some(path) = &cli.engine_stats_json {
            if let Err(e) =
                phpsafe_obs::write_atomic(path, snap.filtered(ENGINE_PREFIXES).to_json().as_bytes())
            {
                eprintln!("error: cannot write {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
        if let Some(path) = &cli.metrics_out {
            if let Err(e) = phpsafe_obs::write_atomic(path, snap.to_json().as_bytes()) {
                eprintln!("error: cannot write {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
        if cli.trace {
            eprintln!("{}", phpsafe_obs::span_tree_text());
        }
    }

    let mut any_vulns = false;
    for outcome in &outcomes {
        any_vulns |= !outcome.vulns.is_empty();
        if cli.html {
            out!("{}", phpsafe::render_html(outcome));
        } else if cli.json {
            match outcome.to_json() {
                Ok(j) => out!("{j}"),
                Err(e) => {
                    eprintln!("error: serialization failed: {e}");
                    return ExitCode::from(2);
                }
            }
        } else {
            out!(
                "phpsafe: analyzed {} files ({} LOC), {} failed",
                outcome.files.len(),
                outcome.stats.loc,
                outcome.stats.files_failed
            );
            for f in outcome.files.iter().filter(|f| f.failure.is_some()) {
                out!(
                    "  FAILED {}: {}",
                    f.path,
                    f.failure.as_ref().expect("filtered")
                );
            }
            out!("{} vulnerabilities:\n", outcome.vulns.len());
            for v in &outcome.vulns {
                let oop = if v.via_oop { " [OOP]" } else { "" };
                out!(
                    "{}:{}: {} via {} at sink `{}`{} — {}",
                    v.file,
                    v.line,
                    v.class,
                    v.source_kind,
                    v.sink,
                    oop,
                    v.var
                );
                if cli.trace {
                    for s in &v.trace {
                        out!("    <- {}:{} {}", s.file, s.line, s.what);
                    }
                }
            }
            if cli.explain && !outcome.vulns.is_empty() {
                out!("{}", phpsafe::explain_outcome(outcome, &events).trim_end());
            }
        }
    }
    if any_vulns {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
