//! `phpsafe` — command-line front end for the analyzer.
//!
//! ```text
//! phpsafe [OPTIONS] <PATH>
//!
//! ARGS:
//!   <PATH>                a plugin directory or a single PHP file
//!
//! OPTIONS:
//!   --profile <NAME>      wordpress (default) | php | drupal | joomla
//!   --json                emit the normalized JSON report instead of text
//!   --html                emit a standalone HTML report instead of text
//!   --no-oop              disable OOP resolution (baseline mode)
//!   --no-includes         disable include resolution
//!   --no-uncalled         skip never-called functions
//!   --trace               print full data-flow traces
//!   -h, --help            this help
//! ```

use phpsafe::{AnalyzerOptions, PhpSafe, PluginProject, SourceFile};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Prints to stdout, tolerating a closed pipe (`phpsafe ... | head`).
macro_rules! out {
    ($($arg:tt)*) => {
        if writeln!(std::io::stdout(), $($arg)*).is_err() {
            return ExitCode::SUCCESS;
        }
    };
}

const HELP: &str = "\
phpsafe - OOP-aware static taint analyzer for PHP plugins (XSS, SQLi)

USAGE:
    phpsafe [OPTIONS] <PATH>

ARGS:
    <PATH>              a plugin directory or a single PHP file

OPTIONS:
    --profile <NAME>    wordpress (default) | php | drupal | joomla
    --json              emit the normalized JSON report instead of text
    --html              emit a standalone HTML report instead of text
    --inspect           emit the project inventory (variables, functions,
                        classes, include graph) as JSON and exit
    --no-oop            disable OOP resolution (baseline mode)
    --no-includes       disable include resolution
    --no-uncalled       skip functions never called from plugin code
    --trace             print full data-flow traces
    -h, --help          show this help
";

#[derive(Debug, Default)]
struct Cli {
    path: Option<PathBuf>,
    profile: Option<String>,
    json: bool,
    html: bool,
    inspect: bool,
    no_oop: bool,
    no_includes: bool,
    no_uncalled: bool,
    trace: bool,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "-h" | "--help" => return Err(String::new()),
            "--json" => cli.json = true,
            "--html" => cli.html = true,
            "--inspect" => cli.inspect = true,
            "--no-oop" => cli.no_oop = true,
            "--no-includes" => cli.no_includes = true,
            "--no-uncalled" => cli.no_uncalled = true,
            "--trace" => cli.trace = true,
            "--profile" => {
                cli.profile = Some(
                    args.next()
                        .ok_or_else(|| "--profile requires a value".to_string())?,
                );
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}`"));
            }
            other => {
                if cli.path.is_some() {
                    return Err("only one path may be given".to_string());
                }
                cli.path = Some(PathBuf::from(other));
            }
        }
    }
    if cli.path.is_none() {
        return Err("missing <PATH>".to_string());
    }
    Ok(cli)
}

/// Collects `.php`-family files under `root` (recursively), with paths
/// relative to `root`.
fn collect_files(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    fn is_php(p: &Path) -> bool {
        matches!(
            p.extension().and_then(|e| e.to_str()),
            Some("php" | "inc" | "module" | "phtml")
        )
    }
    let mut out = Vec::new();
    if root.is_file() {
        let content = std::fs::read_to_string(root)?;
        let name = root
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "input.php".into());
        out.push(SourceFile::new(name, content));
        return Ok(out);
    }
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<_> = std::fs::read_dir(&dir)?.collect::<Result<_, _>>()?;
        entries.sort_by_key(|e| e.path());
        for entry in entries {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if is_php(&path) {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .to_string_lossy()
                    .replace('\\', "/");
                match std::fs::read_to_string(&path) {
                    Ok(content) => out.push(SourceFile::new(rel, content)),
                    Err(e) => eprintln!("warning: skipping {}: {e}", path.display()),
                }
            }
        }
    }
    out.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(out)
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(c) => c,
        Err(msg) => {
            if msg.is_empty() {
                print!("{HELP}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{HELP}");
            return ExitCode::from(2);
        }
    };
    let path = cli.path.expect("validated");
    let config = match cli.profile.as_deref().unwrap_or("wordpress") {
        "wordpress" => taint_config::wordpress(),
        "php" => taint_config::generic_php(),
        "drupal" => taint_config::drupal(),
        "joomla" => taint_config::joomla(),
        other => {
            eprintln!("error: unknown profile `{other}` (wordpress|php|drupal|joomla)");
            return ExitCode::from(2);
        }
    };
    let options = AnalyzerOptions {
        oop: !cli.no_oop,
        resolve_includes: !cli.no_includes,
        analyze_uncalled: !cli.no_uncalled,
        ..AnalyzerOptions::default()
    };

    let files = match collect_files(&path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    if files.is_empty() {
        eprintln!("error: no PHP files found under {}", path.display());
        return ExitCode::from(2);
    }
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "plugin".into());
    let mut project = PluginProject::new(name);
    for f in files {
        project.push_file(f);
    }

    if cli.inspect {
        let inventory = phpsafe::inspect(&project);
        match serde_json::to_string_pretty(&inventory) {
            Ok(j) => out!("{j}"),
            Err(e) => {
                eprintln!("error: serialization failed: {e}");
                return ExitCode::from(2);
            }
        }
        return ExitCode::SUCCESS;
    }

    let analyzer = PhpSafe::new().with_config(config).with_options(options);
    let outcome = analyzer.analyze(&project);

    if cli.html {
        out!("{}", phpsafe::render_html(&outcome));
    } else if cli.json {
        match outcome.to_json() {
            Ok(j) => out!("{j}"),
            Err(e) => {
                eprintln!("error: serialization failed: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        out!(
            "phpsafe: analyzed {} files ({} LOC), {} failed",
            outcome.files.len(),
            outcome.stats.loc,
            outcome.stats.files_failed
        );
        for f in outcome.files.iter().filter(|f| f.failure.is_some()) {
            out!(
                "  FAILED {}: {}",
                f.path,
                f.failure.as_ref().expect("filtered")
            );
        }
        out!("{} vulnerabilities:\n", outcome.vulns.len());
        for v in &outcome.vulns {
            let oop = if v.via_oop { " [OOP]" } else { "" };
            out!(
                "{}:{}: {} via {} at sink `{}`{} — {}",
                v.file, v.line, v.class, v.source_kind, v.sink, oop, v.var
            );
            if cli.trace {
                for s in &v.trace {
                    out!("    <- {}:{} {}", s.file, s.line, s.what);
                }
            }
        }
    }
    if outcome.vulns.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
