//! `phpsafe` — command-line front end for the analyzer.
//!
//! ```text
//! phpsafe [OPTIONS] <PATH>...
//!
//! ARGS:
//!   <PATH>...             plugin directories and/or single PHP files
//!
//! OPTIONS:
//!   --profile <NAME>      wordpress (default) | php | drupal | joomla
//!   --json                emit the normalized JSON report instead of text
//!   --html                emit a standalone HTML report instead of text
//!   --jobs <N>            analyze multiple paths on N worker threads
//!   --engine-stats        print engine statistics to stderr after the run
//!   --engine-stats-json <FILE>  write the same statistics as JSON
//!   --metrics-out <FILE>  write the full metrics snapshot as JSON
//!   --no-oop              disable OOP resolution (baseline mode)
//!   --no-includes         disable include resolution
//!   --no-uncalled         skip never-called functions
//!   --trace               print data-flow traces and the span self-profile
//!   --explain             print source→sanitizer→sink provenance chains
//!   -h, --help            this help
//! ```

use phpsafe::{AnalyzerOptions, EngineCaches, PhpSafe, PluginProject, SourceFile};
use phpsafe_engine::run_ordered;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Prints to stdout, tolerating a closed pipe (`phpsafe ... | head`).
macro_rules! out {
    ($($arg:tt)*) => {
        if writeln!(std::io::stdout(), $($arg)*).is_err() {
            return ExitCode::SUCCESS;
        }
    };
}

const HELP: &str = "\
phpsafe - OOP-aware static taint analyzer for PHP plugins (XSS, SQLi)

USAGE:
    phpsafe [OPTIONS] <PATH>...

ARGS:
    <PATH>...           plugin directories and/or single PHP files; each
                        path is analyzed as one plugin project

OPTIONS:
    --profile <NAME>    wordpress (default) | php | drupal | joomla
    --json              emit the normalized JSON report instead of text
    --html              emit a standalone HTML report instead of text
    --inspect           emit the project inventory (variables, functions,
                        classes, include graph) as JSON and exit
    --jobs <N>          worker threads when analyzing several paths
                        (default: available parallelism; results do not
                        depend on N)
    --engine-stats      print scheduler/cache statistics to stderr
    --engine-stats-json <FILE>
                        write the same statistics as JSON to FILE
    --metrics-out <FILE>
                        write the full metrics snapshot (every counter
                        and timing histogram) as JSON to FILE
    --no-oop            disable OOP resolution (baseline mode)
    --no-includes       disable include resolution
    --no-uncalled       skip functions never called from plugin code
    --trace             print full data-flow traces, plus the per-stage
                        span self-profile tree to stderr
    --explain           print a source→sanitizer→sink provenance chain
                        for every reported vulnerability
    -h, --help          show this help
";

/// Snapshot name prefixes that make up the engine-stats view.
const ENGINE_PREFIXES: &[&str] = &["engine.", "cache.", "stage.", "intern.", "cow.", "ast."];

#[derive(Debug)]
struct Cli {
    paths: Vec<PathBuf>,
    profile: Option<String>,
    json: bool,
    html: bool,
    inspect: bool,
    jobs: usize,
    engine_stats: bool,
    engine_stats_json: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    no_oop: bool,
    no_includes: bool,
    no_uncalled: bool,
    trace: bool,
    explain: bool,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            paths: Vec::new(),
            profile: None,
            json: false,
            html: false,
            inspect: false,
            jobs: std::thread::available_parallelism().map_or(1, |n| n.get()),
            engine_stats: false,
            engine_stats_json: None,
            metrics_out: None,
            no_oop: false,
            no_includes: false,
            no_uncalled: false,
            trace: false,
            explain: false,
        }
    }
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "-h" | "--help" => return Err(String::new()),
            "--json" => cli.json = true,
            "--html" => cli.html = true,
            "--inspect" => cli.inspect = true,
            "--engine-stats" => cli.engine_stats = true,
            "--no-oop" => cli.no_oop = true,
            "--no-includes" => cli.no_includes = true,
            "--no-uncalled" => cli.no_uncalled = true,
            "--trace" => cli.trace = true,
            "--explain" => cli.explain = true,
            "--engine-stats-json" => {
                let v = args
                    .next()
                    .ok_or_else(|| "--engine-stats-json requires a file".to_string())?;
                cli.engine_stats_json = Some(PathBuf::from(v));
            }
            "--metrics-out" => {
                let v = args
                    .next()
                    .ok_or_else(|| "--metrics-out requires a file".to_string())?;
                cli.metrics_out = Some(PathBuf::from(v));
            }
            "--jobs" => {
                let v = args
                    .next()
                    .ok_or_else(|| "--jobs requires a value".to_string())?;
                cli.jobs = v
                    .parse()
                    .map_err(|_| format!("--jobs requires a number, got `{v}`"))?;
            }
            "--profile" => {
                cli.profile = Some(
                    args.next()
                        .ok_or_else(|| "--profile requires a value".to_string())?,
                );
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}`"));
            }
            other => cli.paths.push(PathBuf::from(other)),
        }
    }
    if cli.paths.is_empty() {
        return Err("missing <PATH>".to_string());
    }
    Ok(cli)
}

/// Collects `.php`-family files under `root` (recursively), with paths
/// relative to `root`.
fn collect_files(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    fn is_php(p: &Path) -> bool {
        matches!(
            p.extension().and_then(|e| e.to_str()),
            Some("php" | "inc" | "module" | "phtml")
        )
    }
    let mut out = Vec::new();
    if root.is_file() {
        let content = std::fs::read_to_string(root)?;
        let name = root
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "input.php".into());
        out.push(SourceFile::new(name, content));
        return Ok(out);
    }
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<_> = std::fs::read_dir(&dir)?.collect::<Result<_, _>>()?;
        entries.sort_by_key(|e| e.path());
        for entry in entries {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if is_php(&path) {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .to_string_lossy()
                    .replace('\\', "/");
                match std::fs::read_to_string(&path) {
                    Ok(content) => out.push(SourceFile::new(rel, content)),
                    Err(e) => eprintln!("warning: skipping {}: {e}", path.display()),
                }
            }
        }
    }
    out.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(out)
}

/// Loads one path as a plugin project.
fn load_project(path: &Path) -> Result<PluginProject, String> {
    let files = collect_files(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    if files.is_empty() {
        return Err(format!("no PHP files found under {}", path.display()));
    }
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "plugin".into());
    let mut project = PluginProject::new(name);
    for f in files {
        project.push_file(f);
    }
    Ok(project)
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(c) => c,
        Err(msg) => {
            if msg.is_empty() {
                print!("{HELP}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{HELP}");
            return ExitCode::from(2);
        }
    };
    let config = match cli.profile.as_deref().unwrap_or("wordpress") {
        "wordpress" => taint_config::wordpress(),
        "php" => taint_config::generic_php(),
        "drupal" => taint_config::drupal(),
        "joomla" => taint_config::joomla(),
        other => {
            eprintln!("error: unknown profile `{other}` (wordpress|php|drupal|joomla)");
            return ExitCode::from(2);
        }
    };
    let options = AnalyzerOptions {
        oop: !cli.no_oop,
        resolve_includes: !cli.no_includes,
        analyze_uncalled: !cli.no_uncalled,
        ..AnalyzerOptions::default()
    };

    let mut projects = Vec::new();
    for path in &cli.paths {
        match load_project(path) {
            Ok(p) => projects.push(p),
            Err(msg) => {
                eprintln!("error: {msg}");
                return ExitCode::from(2);
            }
        }
    }

    if cli.inspect {
        for project in &projects {
            let inventory = phpsafe::inspect(project);
            match serde_json::to_string_pretty(&inventory) {
                Ok(j) => out!("{j}"),
                Err(e) => {
                    eprintln!("error: serialization failed: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        return ExitCode::SUCCESS;
    }

    let want_obs = cli.engine_stats
        || cli.engine_stats_json.is_some()
        || cli.metrics_out.is_some()
        || cli.trace;
    if want_obs {
        phpsafe_obs::set_enabled(true);
    }
    if cli.explain {
        phpsafe_obs::set_events_enabled(true);
    }

    // Fan the projects across the engine's worker pool; output order
    // follows the command line regardless of scheduling.
    let analyzer = PhpSafe::new().with_config(config).with_options(options);
    let caches = EngineCaches::new();
    let (outcomes, _pool) = run_ordered(projects, cli.jobs, |_, project| {
        analyzer.analyze_with_caches(&project, Some(&caches))
    });
    let events = phpsafe_obs::drain_events();

    if want_obs {
        caches.record();
        let snap = phpsafe_obs::snapshot();
        if cli.engine_stats {
            eprintln!("{}", snap.render(ENGINE_PREFIXES));
        }
        if let Some(path) = &cli.engine_stats_json {
            if let Err(e) = std::fs::write(path, snap.filtered(ENGINE_PREFIXES).to_json()) {
                eprintln!("error: cannot write {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
        if let Some(path) = &cli.metrics_out {
            if let Err(e) = std::fs::write(path, snap.to_json()) {
                eprintln!("error: cannot write {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
        if cli.trace {
            eprintln!("{}", phpsafe_obs::span_tree_text());
        }
    }

    let mut any_vulns = false;
    for outcome in &outcomes {
        any_vulns |= !outcome.vulns.is_empty();
        if cli.html {
            out!("{}", phpsafe::render_html(outcome));
        } else if cli.json {
            match outcome.to_json() {
                Ok(j) => out!("{j}"),
                Err(e) => {
                    eprintln!("error: serialization failed: {e}");
                    return ExitCode::from(2);
                }
            }
        } else {
            out!(
                "phpsafe: analyzed {} files ({} LOC), {} failed",
                outcome.files.len(),
                outcome.stats.loc,
                outcome.stats.files_failed
            );
            for f in outcome.files.iter().filter(|f| f.failure.is_some()) {
                out!(
                    "  FAILED {}: {}",
                    f.path,
                    f.failure.as_ref().expect("filtered")
                );
            }
            out!("{} vulnerabilities:\n", outcome.vulns.len());
            for v in &outcome.vulns {
                let oop = if v.via_oop { " [OOP]" } else { "" };
                out!(
                    "{}:{}: {} via {} at sink `{}`{} — {}",
                    v.file,
                    v.line,
                    v.class,
                    v.source_kind,
                    v.sink,
                    oop,
                    v.var
                );
                if cli.trace {
                    for s in &v.trace {
                        out!("    <- {}:{} {}", s.file, s.line, s.what);
                    }
                }
            }
            if cli.explain && !outcome.vulns.is_empty() {
                out!("{}", phpsafe::explain_outcome(outcome, &events).trim_end());
            }
        }
    }
    if any_vulns {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
