//! Shared analysis artifacts: the parse cache and cross-run call summaries.
//!
//! The evaluation pipeline analyzes the same plugin sources many times —
//! three tools × two corpus versions, and most files are byte-identical
//! between the 2012 and 2014 snapshots. This module wires the generic
//! [`phpsafe_engine`] artifact caches into the analyzer so that:
//!
//! * each distinct file **content** is lexed and parsed exactly once
//!   ([`AstCache`], keyed by [`ContentKey`]), and every analysis shares the
//!   resulting [`ParsedFile`] behind an `Arc`;
//! * user functions whose analysis provably cannot depend on anything
//!   outside their declaration are summarized **across analysis runs** in a
//!   per-tool [`SummaryCache`] — extending the paper's intra-run "every
//!   function is analyzed only the first time it is called" memoization to
//!   the whole evaluation.
//!
//! Cross-run sharing is deliberately conservative so cached and uncached
//! runs produce byte-identical reports; see [`shareable_calls`] and
//! [`SharedSummary`] for the exact conditions.

use crate::report::{AnalysisStats, FileReport};
use crate::taint::{Taint, VarState};
use php_ast::printer::{print_expr, print_stmt};
use php_ast::visit::{self, Visitor};
use php_ast::{
    parse_tokens, Arena, Callee, ClassDecl, Expr, ExprId, FunctionDecl, ParsedFile, Stmt, StmtId,
};
use php_lexer::tokenize;
use phpsafe_dataflow::TaintGraph;
use phpsafe_engine::{
    fnv1a_64, ArtifactCache, CacheCounters, ContentKey, DepGraph, DiskCache, LoadedPayload,
};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Disk namespace for encoded [`ParsedFile`]s. The envelope's crate
/// version plus each codec's own magic/version words guard the format, so
/// the config fingerprint is unused (parsing is configuration-independent).
///
/// New entries are written in the zero-copy ZAST v2 layout
/// ([`php_ast::zast`]); loads dispatch on the payload magic, so PAST v1
/// entries from older runs still decode through
/// [`php_ast::codec::decode_file`] instead of being dropped.
pub const AST_NAMESPACE: &str = "ast";
/// Fingerprint the `ast` namespace is stored under (parsing is
/// configuration-independent, so a constant).
pub const AST_FINGERPRINT: u64 = 0;

/// Flags a [`DiskCache::store`] result at an engine call site. Individual
/// failures already warn with the exact path and count into
/// `diskcache.store_failed`; this adds one run-level warning the first
/// time persistence degrades, so a flaky cache volume is visible even
/// when the per-store lines scroll away.
fn note_store(stored: bool) {
    if stored {
        return;
    }
    static WARN_ONCE: std::sync::Once = std::sync::Once::new();
    WARN_ONCE.call_once(|| {
        eprintln!(
            "phpsafe: warning: disk cache stores are failing; analysis results are \
             unaffected but later runs will not warm-start (diskcache.store_failed counts)"
        );
    });
}

/// Disk namespace for per-tool summary blobs.
const SUMMARY_NAMESPACE: &str = "summary";

/// Disk namespace for whole-program taint graphs (graph mode). Keyed by
/// project content, fingerprinted by the analyzing tool's configuration —
/// the graph encodes tool-specific propagation, so tools must not mix.
const GRAPH_NAMESPACE: &str = "graph";

/// Disk namespace for file-level dependency graphs (see
/// [`phpsafe_engine::DepGraph`]). Keyed by project content only: the graph
/// is built from ASTs and the symbol table, both configuration-independent,
/// so one entry serves every tool.
const DEPGRAPH_NAMESPACE: &str = "depgraph";

/// Fingerprint the `depgraph` namespace is stored under (the graph is
/// configuration-independent, so a constant).
const DEPGRAPH_FINGERPRINT: u64 = 0;

/// The on-disk key of a persisted taint graph. Unlike ASTs (pure content
/// artifacts), graphs depend on the recording tool's configuration, and
/// several tools analyze identical project contents — so the tool
/// fingerprint is folded into the disk key to give each tool its own
/// entry instead of clobbering a shared one.
fn graph_disk_key(key: ContentKey, fingerprint: u64) -> ContentKey {
    ContentKey {
        hash: phpsafe_engine::fnv1a_64_extend(key.hash, &fingerprint.to_le_bytes()),
        len: key.len,
    }
}

/// A shared token-stream/AST cache: one lex + parse per distinct file
/// content, no matter how many tools, versions or plugins present it.
#[derive(Default)]
pub struct AstCache {
    cache: ArtifactCache<ContentKey, ParsedFile>,
    disk: Option<Arc<DiskCache>>,
}

impl AstCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache backed by a persistent disk tier: in-memory misses
    /// try the disk before parsing, and fresh parses are written back.
    pub fn with_disk(disk: Arc<DiskCache>) -> Self {
        AstCache {
            cache: ArtifactCache::new(),
            disk: Some(disk),
        }
    }

    /// Parses `src`, sharing the artifact with every analysis that sees the
    /// same bytes. Lex/parse wall time lands in the `stage.lex` /
    /// `stage.parse` histograms on misses only (hits cost a hash plus a
    /// map lookup).
    ///
    /// With a disk tier, a miss first tries the persisted AST. A ZAST v2
    /// entry is validated once and *borrowed* — a [`ParsedFileRef`] view
    /// over the loaded buffer whose pools are bulk-relocated without
    /// re-decoding (counted in `diskcache.borrowed_loads`); an old PAST v1
    /// entry falls back to the streaming [`decode_file`] path. Validation
    /// or decode failures drop the entry and fall back to a fresh parse,
    /// which is written back in the ZAST layout.
    ///
    /// [`ParsedFileRef`]: php_ast::zast::ParsedFileRef
    /// [`decode_file`]: php_ast::codec::decode_file
    pub fn parse(&self, src: &str) -> Arc<ParsedFile> {
        let key = ContentKey::of(src.as_bytes());
        let (ast, _hit) = self.cache.get_or_build(key, || {
            if let Some(disk) = &self.disk {
                if let Some(loaded) = disk.load_mapped(AST_NAMESPACE, key, AST_FINGERPRINT) {
                    if php_ast::zast::looks_like(loaded.as_slice()) {
                        // Mapped entries are validated in place: the view
                        // borrows the mapping itself, so the only copy on
                        // the warm path is the final pool relocation.
                        let payload = match loaded {
                            LoadedPayload::Mapped { file, offset, len } => {
                                php_ast::zast::PayloadBytes::from_owner(file, offset, len)
                            }
                            LoadedPayload::Owned(bytes) => {
                                php_ast::zast::PayloadBytes::from_arc(Arc::from(bytes))
                            }
                        };
                        match php_ast::zast::ParsedFileRef::from_bytes(payload) {
                            Ok(view) => {
                                phpsafe_obs::count("diskcache.borrowed_loads", 1);
                                return view.thaw();
                            }
                            Err(_) => disk.note_corrupt(AST_NAMESPACE, key),
                        }
                    } else {
                        match php_ast::codec::decode_file(loaded.as_slice()) {
                            Ok(file) => return file,
                            Err(_) => disk.note_corrupt(AST_NAMESPACE, key),
                        }
                    }
                }
            }
            let parsed = parse_tokens(tokenize(src));
            if let Some(disk) = &self.disk {
                note_store(disk.store(
                    AST_NAMESPACE,
                    key,
                    AST_FINGERPRINT,
                    &php_ast::zast::encode_file(&parsed),
                ));
            }
            parsed
        });
        ast
    }

    /// Hit/miss counters.
    pub fn counters(&self) -> CacheCounters {
        self.cache.counters()
    }

    /// Number of distinct file contents parsed so far.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Whether nothing has been parsed yet.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }
}

/// Key for a cross-run call summary: a span-insensitive fingerprint of the
/// declaration text plus the abstract state of the arguments.
///
/// The fingerprint hashes the *pretty-printed* declaration, so a function
/// that merely moved to a different line (the dominant 2012 → 2014 diff
/// shape) still hits. The argument signature carries both the current
/// taint and the sanitized-away taint of each argument — revert functions
/// can resurrect the latter, so two calls agreeing only on current taint
/// are not interchangeable.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SummaryKey {
    pub(crate) decl_fp: u64,
    pub(crate) sig: Vec<(Taint, Taint)>,
}

impl SummaryKey {
    /// Builds the key for calling `decl` (arena handles into `a`) with
    /// `args`.
    pub fn new(a: &Arena, decl: &FunctionDecl, args: &[VarState]) -> SummaryKey {
        SummaryKey {
            decl_fp: fingerprint_decl(a, decl),
            sig: args.iter().map(|s| (s.taint, s.sanitized_from)).collect(),
        }
    }
}

/// A call summary that may be replayed by a later analysis run.
///
/// Only recorded when executing the body (a) emitted no vulnerability, (b)
/// returned a fully clean [`VarState`] and (c) left the failure flag unset
/// — so replaying is exactly "spend the work, return clean". Together with
/// the [`shareable_calls`] purity conditions this makes a replay
/// indistinguishable from re-execution.
#[derive(Debug, Clone)]
pub struct SharedSummary {
    /// Work units the body execution cost.
    pub work: u64,
    /// Lowercased names of the functions the body calls. A consumer must
    /// re-check that none of them resolve to *its* project's user code
    /// before replaying.
    pub calls: Vec<String>,
}

/// Per-tool cache of cross-run call summaries.
pub type SummaryCache = ArtifactCache<SummaryKey, SharedSummary>;

/// The graph-mode artifact for one `(project content, tool fingerprint)`
/// pair: the recorded whole-program taint graph plus the file reports and
/// statistics needed to reassemble a byte-identical [`AnalysisOutcome`]
/// without re-parsing or re-walking anything.
///
/// [`AnalysisOutcome`]: crate::report::AnalysisOutcome
#[derive(Debug, Clone, PartialEq)]
pub struct ProjectGraph {
    /// The recorded taint graph (nodes/edges/sink paths).
    pub graph: TaintGraph,
    /// Per-file reports, with parse-error counts and failures marked.
    pub files: Vec<FileReport>,
    /// Robustness statistics of the recording walk.
    pub stats: AnalysisStats,
}

/// The shared caches one engine run threads through every analysis: a
/// parse cache common to all tools, and one summary cache per tool (the
/// tools differ in taint configuration and capability switches, so their
/// summaries must not mix).
///
/// A given tool name must map to a single (configuration, options) pair
/// for the lifetime of the cache set.
#[derive(Default)]
pub struct EngineCaches {
    ast: AstCache,
    summaries: Mutex<HashMap<String, Arc<SummaryCache>>>,
    /// Whole-program taint graphs, keyed by project content and tool
    /// fingerprint (graph mode only).
    graphs: ArtifactCache<(ContentKey, u64), ProjectGraph>,
    /// File-level dependency graphs, keyed by project content (tool
    /// independent) — the invalidation index of the incremental path.
    depgraphs: ArtifactCache<ContentKey, DepGraph>,
    disk: Option<Arc<DiskCache>>,
    /// Tools whose summary cache has been warmed from disk, with the
    /// config fingerprint they were warmed under (reused at persist time).
    warmed: Mutex<HashMap<String, u64>>,
    /// Per-tool summary-cache generation at the last disk flush. A cache
    /// whose generation has not moved since is skipped by
    /// [`EngineCaches::persist`] — on a fully-cached daemon request no
    /// summary blob is re-encoded or re-written at all.
    persisted: Mutex<HashMap<String, u64>>,
}

impl EngineCaches {
    /// Fresh, empty caches.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fresh caches backed by a persistent disk tier: parsed ASTs are
    /// written through to `disk`, and per-tool summary caches are warmed
    /// from it on first use. Call [`EngineCaches::persist`] before exit to
    /// write the accumulated summaries back.
    pub fn with_disk(disk: Arc<DiskCache>) -> Self {
        EngineCaches {
            ast: AstCache::with_disk(Arc::clone(&disk)),
            disk: Some(disk),
            ..Default::default()
        }
    }

    /// The disk tier, if this cache set has one.
    pub fn disk(&self) -> Option<&Arc<DiskCache>> {
        self.disk.as_ref()
    }

    /// The shared parse cache.
    pub fn ast(&self) -> &AstCache {
        &self.ast
    }

    /// The summary cache for `tool`, created on first use.
    pub fn summaries_for(&self, tool: &str) -> Arc<SummaryCache> {
        self.summaries
            .lock()
            .unwrap()
            .entry(tool.to_string())
            .or_default()
            .clone()
    }

    /// The taint graph recorded for `(project content, tool fingerprint)`,
    /// if one is cached: in-memory first, then the disk tier's `graph`
    /// namespace. A persisted blob that fails to decode is dropped
    /// (`diskcache.corrupt`) and the caller rebuilds the graph.
    pub fn lookup_graph(&self, key: ContentKey, fingerprint: u64) -> Option<Arc<ProjectGraph>> {
        if let Some(pg) = self.graphs.get(&(key, fingerprint)) {
            return Some(pg);
        }
        let disk = self.disk.as_ref()?;
        let disk_key = graph_disk_key(key, fingerprint);
        let bytes = disk.load(GRAPH_NAMESPACE, disk_key, fingerprint)?;
        match crate::persist::decode_project_graph(&bytes) {
            Ok(pg) => Some(self.graphs.insert((key, fingerprint), pg)),
            Err(_) => {
                disk.note_corrupt(GRAPH_NAMESPACE, disk_key);
                None
            }
        }
    }

    /// Stores a freshly recorded graph in memory and writes it through to
    /// the disk tier (if any), so warm restarts answer without rebuilding.
    pub fn store_graph(
        &self,
        key: ContentKey,
        fingerprint: u64,
        pg: ProjectGraph,
    ) -> Arc<ProjectGraph> {
        if let Some(disk) = &self.disk {
            note_store(disk.store(
                GRAPH_NAMESPACE,
                graph_disk_key(key, fingerprint),
                fingerprint,
                &crate::persist::encode_project_graph(&pg),
            ));
        }
        self.graphs.insert((key, fingerprint), pg)
    }

    /// The file-level dependency graph recorded for this project content,
    /// if one is cached: in-memory first, then the disk tier's `depgraph`
    /// namespace. A persisted blob that fails to decode is dropped
    /// (`diskcache.corrupt`) and the caller rebuilds the graph on its next
    /// model construction.
    pub fn lookup_depgraph(&self, key: ContentKey) -> Option<Arc<DepGraph>> {
        if let Some(g) = self.depgraphs.get(&key) {
            phpsafe_obs::count("depgraph.hits", 1);
            return Some(g);
        }
        let disk = self.disk.as_ref()?;
        let bytes = disk.load(DEPGRAPH_NAMESPACE, key, DEPGRAPH_FINGERPRINT)?;
        match DepGraph::decode(&bytes) {
            Ok(g) => {
                phpsafe_obs::count("depgraph.hits", 1);
                Some(self.depgraphs.insert(key, g))
            }
            Err(_) => {
                disk.note_corrupt(DEPGRAPH_NAMESPACE, key);
                None
            }
        }
    }

    /// Stores a freshly built dependency graph in memory and writes it
    /// through to the disk tier (if any), recording its size counters.
    pub fn store_depgraph(&self, key: ContentKey, graph: DepGraph) -> Arc<DepGraph> {
        phpsafe_obs::count("depgraph.builds", 1);
        phpsafe_obs::count("depgraph.nodes", graph.node_count() as u64);
        phpsafe_obs::count("depgraph.edges", graph.edge_count() as u64);
        if let Some(disk) = &self.disk {
            note_store(disk.store(
                DEPGRAPH_NAMESPACE,
                key,
                DEPGRAPH_FINGERPRINT,
                &graph.encode(),
            ));
        }
        self.depgraphs.insert(key, graph)
    }

    /// Warms `tool`'s summary cache from the disk tier (first call per
    /// tool only; later calls are no-ops). `fingerprint` is the tool's
    /// configuration fingerprint — a persisted blob written under a
    /// different one is evicted by the disk layer, and the same value is
    /// used when persisting. Called by the analyzer on every cached run,
    /// so CLI and daemon front ends warm identically.
    pub fn warm_summaries(&self, tool: &str, fingerprint: u64) {
        let mut warmed = self.warmed.lock().unwrap();
        if warmed.contains_key(tool) {
            return;
        }
        warmed.insert(tool.to_string(), fingerprint);
        drop(warmed);
        let Some(disk) = &self.disk else { return };
        let key = summary_blob_key(tool);
        let Some(bytes) = disk.load(SUMMARY_NAMESPACE, key, fingerprint) else {
            return;
        };
        match crate::persist::decode_summaries(&bytes) {
            Ok(entries) => {
                let cache = self.summaries_for(tool);
                for (key, summary) in entries {
                    cache.insert(key, summary);
                }
                // The disk blob already covers everything just loaded, so
                // a persist with no further inserts has nothing to write.
                self.persisted
                    .lock()
                    .unwrap()
                    .insert(tool.to_string(), cache.generation());
            }
            Err(_) => disk.note_corrupt(SUMMARY_NAMESPACE, key),
        }
    }

    /// Writes every warmed tool's summary cache back to the disk tier so
    /// the next process warm-starts from it. No-op without a disk tier.
    pub fn persist(&self) {
        let Some(disk) = &self.disk else { return };
        let warmed: Vec<(String, u64)> = self
            .warmed
            .lock()
            .unwrap()
            .iter()
            .map(|(tool, fp)| (tool.clone(), *fp))
            .collect();
        for (tool, fingerprint) in warmed {
            let cache = self.summaries_for(&tool);
            // Read the generation before snapshotting entries: an insert
            // racing in between is then re-flushed next time rather than
            // silently marked persisted.
            let generation = cache.generation();
            if self.persisted.lock().unwrap().get(&tool) == Some(&generation) {
                continue;
            }
            let entries = cache.entries();
            if entries.is_empty() {
                continue;
            }
            let blob = crate::persist::encode_summaries(&entries);
            note_store(disk.store(
                SUMMARY_NAMESPACE,
                summary_blob_key(&tool),
                fingerprint,
                &blob,
            ));
            // Recorded even when the store failed: store failures are
            // already surfaced (warning + diskcache.store_failed), and
            // retrying the full encode on every warm request would put
            // the flush cost back on the fully-cached path.
            self.persisted.lock().unwrap().insert(tool, generation);
        }
    }

    /// Current cache totals: the shared parse cache plus every per-tool
    /// summary cache summed together.
    pub fn totals(&self) -> CacheTotals {
        let mut summary = CacheCounters::default();
        for cache in self.summaries.lock().unwrap().values() {
            summary = summary.merged(&cache.counters());
        }
        CacheTotals {
            parse: self.ast.counters(),
            summary,
            graph: self.graphs.counters(),
        }
    }

    /// Folds this cache set's counters into the global observability
    /// registry (`cache.parse.*` / `cache.summary.*`; no-op while
    /// instrumentation is disabled) and returns them. Call once per engine
    /// run — counters are cumulative over the cache set's lifetime.
    pub fn record(&self) -> CacheTotals {
        let totals = self.totals();
        phpsafe_obs::count("cache.parse.hits", totals.parse.hits);
        phpsafe_obs::count("cache.parse.misses", totals.parse.misses);
        phpsafe_obs::count("cache.summary.hits", totals.summary.hits);
        phpsafe_obs::count("cache.summary.misses", totals.summary.misses);
        phpsafe_obs::count("cache.graph.hits", totals.graph.hits);
        phpsafe_obs::count("cache.graph.misses", totals.graph.misses);
        totals
    }
}

/// Combined hit/miss counters of an [`EngineCaches`] set.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheTotals {
    /// Shared token-stream/AST cache.
    pub parse: CacheCounters,
    /// Per-tool summary caches, summed.
    pub summary: CacheCounters,
    /// Whole-program taint graph cache (graph mode).
    pub graph: CacheCounters,
}

/// The disk key for `tool`'s summary blob: the tool name stands in for
/// file content, hashed the same way.
fn summary_blob_key(tool: &str) -> ContentKey {
    ContentKey {
        hash: fnv1a_64(tool.as_bytes()),
        len: tool.len() as u64,
    }
}

/// Span-insensitive fingerprint of a declaration: name, parameter list and
/// pretty-printed body, hashed with FNV-1a.
fn fingerprint_decl(a: &Arena, decl: &FunctionDecl) -> u64 {
    let mut text = String::new();
    text.push_str(&decl.name.as_str().to_ascii_lowercase());
    if decl.by_ref {
        text.push('&');
    }
    for p in a.params(decl.params) {
        text.push('(');
        text.push_str(p.name.as_str());
        if p.by_ref {
            text.push('&');
        }
        if p.variadic {
            text.push_str("...");
        }
        if let Some(d) = p.default {
            text.push('=');
            text.push_str(&print_expr(a, d));
        }
        text.push(')');
    }
    text.push('{');
    for &s in a.stmt_list(decl.body) {
        text.push_str(&print_stmt(a, s));
        text.push(';');
    }
    text.push('}');
    fnv1a_64(text.as_bytes())
}

/// Decides whether a declaration is a *pure leaf* whose analysis result
/// can only depend on the declaration text and the argument states.
///
/// Returns the (lowercased, deduplicated) names of all functions the body
/// calls when shareable, `None` otherwise. Rejected constructs are exactly
/// those through which an analysis could read or write state that outlives
/// the call frame, or reach code outside the declaration:
///
/// * `global` / `static` variable statements (cross-call stores);
/// * property or static-property access, `new`, and method calls (the
///   per-class property store, constructors, `$this`);
/// * `include`/`require` (reaches other files);
/// * closures, variable-variables and dynamic calls (callees unknowable);
/// * nested function/class declarations;
/// * by-reference parameters (argument write-back).
///
/// Plain function calls are allowed but *collected*: both the producer and
/// any consumer of a summary must check that none of the names resolve to
/// a user function in their symbol table, so only built-in/configured
/// functions — which behave identically everywhere — are ever involved.
pub fn shareable_calls(a: &Arena, decl: &FunctionDecl) -> Option<Vec<String>> {
    if a.params(decl.params).iter().any(|p| p.by_ref) {
        return None;
    }
    struct Purity {
        pure: bool,
        calls: Vec<String>,
    }
    impl Visitor for Purity {
        fn visit_stmt(&mut self, a: &Arena, s: StmtId) {
            if !self.pure {
                return;
            }
            match a.stmt(s) {
                Stmt::Global(..) | Stmt::StaticVars(..) | Stmt::Function(_) | Stmt::Class(_) => {
                    self.pure = false;
                }
                _ => visit::walk_stmt(self, a, s),
            }
        }
        fn visit_expr(&mut self, a: &Arena, e: ExprId) {
            if !self.pure {
                return;
            }
            match a.expr(e) {
                Expr::Prop(..)
                | Expr::StaticProp(..)
                | Expr::New { .. }
                | Expr::Include(..)
                | Expr::Closure { .. }
                | Expr::VarVar(..) => {
                    self.pure = false;
                    return;
                }
                Expr::Call { callee, .. } => match callee {
                    Callee::Function(name) => self.calls.push(name.as_str().to_ascii_lowercase()),
                    Callee::Dynamic(_) | Callee::Method { .. } | Callee::StaticMethod { .. } => {
                        self.pure = false;
                        return;
                    }
                },
                _ => {}
            }
            visit::walk_expr(self, a, e);
        }
        fn visit_class(&mut self, _a: &Arena, _c: &ClassDecl) {
            self.pure = false;
        }
    }
    let mut v = Purity {
        pure: true,
        calls: Vec::new(),
    };
    for p in a.params(decl.params) {
        if let Some(d) = p.default {
            v.visit_expr(a, d);
        }
    }
    for &s in a.stmt_list(decl.body) {
        v.visit_stmt(a, s);
    }
    if !v.pure {
        return None;
    }
    v.calls.sort();
    v.calls.dedup();
    Some(v.calls)
}

#[cfg(test)]
mod tests {
    use super::*;
    use php_ast::parse;

    fn first_fn(src: &str) -> (ParsedFile, FunctionDecl) {
        let file = parse(src);
        for &s in file.top_stmts() {
            if let Stmt::Function(f) = file.stmt(s) {
                let f = *f;
                return (file, f);
            }
        }
        panic!("no function in {src}");
    }

    #[test]
    fn ast_cache_shares_identical_content() {
        let cache = AstCache::new();
        let a = cache.parse("<?php echo 1;");
        let b = cache.parse("<?php echo 1;");
        assert!(Arc::ptr_eq(&a, &b));
        let c = cache.counters();
        assert_eq!((c.hits, c.misses), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn ast_cache_distinguishes_content() {
        let cache = AstCache::new();
        let a = cache.parse("<?php echo 1;");
        let b = cache.parse("<?php echo 2;");
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.counters().misses, 2);
    }

    #[test]
    fn fingerprint_ignores_spans() {
        let (fa, a) = first_fn("<?php function f($x) { return $x + 1; }");
        let (fb, b) = first_fn("<?php\n\n\nfunction f($x) { return $x + 1; }");
        assert_ne!(a.span, b.span);
        assert_eq!(fingerprint_decl(&fa, &a), fingerprint_decl(&fb, &b));
    }

    #[test]
    fn fingerprint_sees_body_changes() {
        let (fa, a) = first_fn("<?php function f($x) { return $x + 1; }");
        let (fb, b) = first_fn("<?php function f($x) { return $x + 2; }");
        assert_ne!(fingerprint_decl(&fa, &a), fingerprint_decl(&fb, &b));
    }

    #[test]
    fn pure_leaf_is_shareable_and_calls_collected() {
        let (file, f) = first_fn("<?php function f($x) { return trim(strtolower($x)); }");
        let calls = shareable_calls(&file, &f).expect("pure leaf");
        assert_eq!(calls, vec!["strtolower".to_string(), "trim".to_string()]);
    }

    #[test]
    fn impure_constructs_are_rejected() {
        for src in [
            "<?php function f() { global $db; return $db; }",
            "<?php function f() { static $n = 0; return $n; }",
            "<?php function f($o) { return $o->prop; }",
            "<?php function f($o) { return $o->m(); }",
            "<?php function f() { return new Thing(); }",
            "<?php function f() { include 'x.php'; }",
            "<?php function f() { $g = function () {}; return $g; }",
            "<?php function f($n) { return $$n; }",
            "<?php function f($g) { return $g(); }",
            "<?php function f(&$x) { $x = 1; }",
            "<?php function f() { function g() {} }",
        ] {
            let (file, f) = first_fn(src);
            assert!(shareable_calls(&file, &f).is_none(), "should reject: {src}");
        }
    }

    #[test]
    fn summary_key_distinguishes_sanitized_from() {
        let (file, f) = first_fn("<?php function f($x) { return 1; }");
        let clean = VarState::clean();
        let mut washed = VarState::clean();
        washed.sanitized_from = Taint::from_source(taint_config::SourceKind::Get);
        let a = SummaryKey::new(&file, &f, std::slice::from_ref(&clean));
        let b = SummaryKey::new(&file, &f, std::slice::from_ref(&washed));
        assert_ne!(a, b, "revertible sanitization must split the key");
    }

    #[test]
    fn cached_analysis_matches_uncached_and_reuses_summaries() {
        use crate::{PhpSafe, PluginProject, SourceFile};
        let plugin = PluginProject::new("p").with_file(SourceFile::new(
            "p.php",
            r#"<?php
            function pad($s) { return str_pad($s, 8); }
            function risky($v) { echo $v; }
            echo pad("x");
            risky($_GET['q']);
            "#,
        ));
        let tool = PhpSafe::new();
        let plain = tool.analyze(&plugin);

        let caches = EngineCaches::new();
        let first = tool.analyze_with_caches(&plugin, Some(&caches));
        let second = tool.analyze_with_caches(&plugin, Some(&caches));
        assert_eq!(plain, first);
        assert_eq!(plain, second);

        // The second run re-parsed nothing and replayed `pad`'s summary
        // (`risky` emits a vulnerability, so it must never be recorded).
        assert!(caches.ast().counters().hits >= 1);
        let sums = caches.summaries_for("phpSAFE");
        assert!(sums.counters().hits >= 1, "{:?}", sums.counters());
        assert_eq!(first.stats.work_units, second.stats.work_units);
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("phpsafe-caching-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn disk_tier_survives_cache_restarts() {
        use phpsafe_engine::DiskCache;
        let dir = temp_dir("ast");
        let src = "<?php function f($x) { return trim($x); } echo f($_GET['a']);";

        let disk = Arc::new(DiskCache::open(&dir).unwrap());
        let first = AstCache::with_disk(Arc::clone(&disk));
        let parsed = first.parse(src);
        assert_eq!(disk.counters().stores, 1, "fresh parse persisted");

        // A brand-new cache (fresh process, in effect) decodes from disk.
        let disk2 = Arc::new(DiskCache::open(&dir).unwrap());
        let second = AstCache::with_disk(Arc::clone(&disk2));
        let reloaded = second.parse(src);
        assert_eq!(*parsed, *reloaded, "decoded AST identical to parsed");
        assert_eq!(disk2.counters().hits, 1);
        assert_eq!(second.counters().misses, 1, "memory miss served by disk");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_disk_entry_falls_back_to_parse() {
        use phpsafe_engine::DiskCache;
        let dir = temp_dir("corrupt");
        let src = "<?php echo $_GET['x'];";

        let disk = Arc::new(DiskCache::open(&dir).unwrap());
        AstCache::with_disk(Arc::clone(&disk)).parse(src);

        // Garble every persisted payload byte-by-byte truncation.
        let ns = dir.join("ast");
        for entry in std::fs::read_dir(&ns).unwrap() {
            let path = entry.unwrap().path();
            let bytes = std::fs::read(&path).unwrap();
            std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        }

        let disk2 = Arc::new(DiskCache::open(&dir).unwrap());
        let cache = AstCache::with_disk(Arc::clone(&disk2));
        let reparsed = cache.parse(src);
        assert_eq!(*reparsed, php_ast::parse(src), "fell back to a parse");
        let c = disk2.counters();
        assert_eq!(c.corrupt, 1, "{c:?}");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn summaries_persist_and_warm_start() {
        use crate::{PhpSafe, PluginProject, SourceFile};
        use phpsafe_engine::DiskCache;
        let dir = temp_dir("summaries");
        let plugin = PluginProject::new("p").with_file(SourceFile::new(
            "p.php",
            r#"<?php
            function pad($s) { return str_pad($s, 8); }
            echo pad("x");
            "#,
        ));
        let tool = PhpSafe::new();
        let plain = tool.analyze(&plugin);

        let disk = Arc::new(DiskCache::open(&dir).unwrap());
        let cold = EngineCaches::with_disk(Arc::clone(&disk));
        let first = tool.analyze_with_caches(&plugin, Some(&cold));
        assert_eq!(plain, first);
        cold.persist();

        // A fresh cache set over the same directory replays `pad`'s
        // summary without ever analyzing the body.
        let warm = EngineCaches::with_disk(Arc::new(DiskCache::open(&dir).unwrap()));
        let second = tool.analyze_with_caches(&plugin, Some(&warm));
        assert_eq!(plain, second);
        let sums = warm.summaries_for("phpSAFE");
        assert!(sums.counters().hits >= 1, "{:?}", sums.counters());

        // A different fingerprint (other tool config) must not see them.
        let other = PhpSafe::new()
            .with_tool_name("phpSAFE")
            .with_options(crate::AnalyzerOptions {
                oop: false,
                ..crate::AnalyzerOptions::default()
            });
        assert_ne!(tool.fingerprint(), other.fingerprint());
        let strange = EngineCaches::with_disk(Arc::new(DiskCache::open(&dir).unwrap()));
        strange.warm_summaries("phpSAFE", other.fingerprint());
        assert!(
            strange.summaries_for("phpSAFE").is_empty(),
            "stale blob must be evicted, not replayed"
        );

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persist_skips_unchanged_summary_caches() {
        use crate::{PhpSafe, PluginProject, SourceFile};
        use phpsafe_engine::DiskCache;
        let dir = temp_dir("persist-skip");
        let plugin = PluginProject::new("p").with_file(SourceFile::new(
            "p.php",
            r#"<?php
            function pad($s) { return str_pad($s, 8); }
            echo pad("x");
            "#,
        ));
        let tool = PhpSafe::new();

        let disk = Arc::new(DiskCache::open(&dir).unwrap());
        let caches = EngineCaches::with_disk(Arc::clone(&disk));
        tool.analyze_with_caches(&plugin, Some(&caches));
        caches.persist();
        let after_first = disk.counters().bytes_written;
        assert!(after_first > 0, "first persist must write the blob");

        // No new summaries since the flush: nothing re-encoded, nothing
        // re-written — the fully-cached daemon path must stay this cheap.
        caches.persist();
        caches.persist();
        assert_eq!(disk.counters().bytes_written, after_first);

        // A warm restart loads the blob; persisting without new inserts
        // must also write nothing.
        let warm = EngineCaches::with_disk(Arc::new(DiskCache::open(&dir).unwrap()));
        tool.analyze_with_caches(&plugin, Some(&warm));
        let disk2 = Arc::clone(warm.disk().unwrap());
        let before = disk2.counters().bytes_written;
        warm.persist();
        assert_eq!(disk2.counters().bytes_written, before);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn caches_total_their_counters() {
        let caches = EngineCaches::new();
        caches.ast().parse("<?php echo 1;");
        caches.ast().parse("<?php echo 1;");
        let sums = caches.summaries_for("phpSAFE");
        let (file, f) = first_fn("<?php function f() { return 1; }");
        let key = SummaryKey::new(&file, &f, &[]);
        assert!(sums.get(&key).is_none());
        sums.insert(
            key.clone(),
            SharedSummary {
                work: 3,
                calls: vec![],
            },
        );
        assert!(sums.get(&key).is_some());
        // The same tool name maps to the same cache.
        assert!(Arc::ptr_eq(&sums, &caches.summaries_for("phpSAFE")));

        let totals = caches.record();
        assert_eq!(totals.parse.hits, 1);
        assert_eq!(totals.summary.lookups(), 2);
    }

    #[test]
    fn graph_tier_persists_and_warm_starts() {
        use crate::{AnalyzerOptions, PhpSafe, PluginProject, SourceFile};
        use phpsafe_engine::DiskCache;
        let dir = temp_dir("graph");
        let plugin = PluginProject::new("p").with_file(SourceFile::new(
            "p.php",
            "<?php $q = $_GET['q']; echo $q; mysql_query(\"SELECT $q\");",
        ));
        let tool = PhpSafe::new().with_options(AnalyzerOptions {
            taint_graph: true,
            ..AnalyzerOptions::default()
        });

        let disk = Arc::new(DiskCache::open(&dir).unwrap());
        let cold_caches = EngineCaches::with_disk(Arc::clone(&disk));
        let cold = tool.analyze_with_caches(&plugin, Some(&cold_caches));
        assert_eq!(cold_caches.totals().graph.misses, 1);
        assert!(disk.counters().stores >= 1, "graph persisted to disk");

        // A fresh cache set over the same directory (fresh process, in
        // effect) answers from the persisted graph without re-walking.
        let disk2 = Arc::new(DiskCache::open(&dir).unwrap());
        let warm_caches = EngineCaches::with_disk(Arc::clone(&disk2));
        let warm = tool.analyze_with_caches(&plugin, Some(&warm_caches));
        assert_eq!(cold, warm, "warm disk graph reproduces the cold run");
        assert!(disk2.counters().hits >= 1, "{:?}", disk2.counters());
        assert_eq!(warm_caches.totals().graph.misses, 1);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_graph_entry_falls_back_to_rebuild() {
        use crate::{AnalyzerOptions, PhpSafe, PluginProject, SourceFile};
        use phpsafe_engine::DiskCache;
        let dir = temp_dir("graph-corrupt");
        let plugin =
            PluginProject::new("p").with_file(SourceFile::new("p.php", "<?php echo $_GET['x'];"));
        let tool = PhpSafe::new().with_options(AnalyzerOptions {
            taint_graph: true,
            ..AnalyzerOptions::default()
        });

        let disk = Arc::new(DiskCache::open(&dir).unwrap());
        let cold = tool.analyze_with_caches(&plugin, Some(&EngineCaches::with_disk(disk)));

        // Garble only the graph tier; other namespaces stay intact.
        let ns = dir.join(GRAPH_NAMESPACE);
        let mut garbled = 0;
        for entry in std::fs::read_dir(&ns).unwrap() {
            let path = entry.unwrap().path();
            let bytes = std::fs::read(&path).unwrap();
            std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
            garbled += 1;
        }
        assert!(garbled >= 1, "graph namespace has persisted entries");

        let disk2 = Arc::new(DiskCache::open(&dir).unwrap());
        let caches = EngineCaches::with_disk(Arc::clone(&disk2));
        let rebuilt = tool.analyze_with_caches(&plugin, Some(&caches));
        assert_eq!(cold, rebuilt, "fell back to a fresh recording walk");
        assert_eq!(disk2.counters().corrupt, 1, "{:?}", disk2.counters());

        let _ = std::fs::remove_dir_all(&dir);
    }
}
