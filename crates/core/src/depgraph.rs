//! Extracts the file-level dependency edges that feed the engine's
//! [`DepGraph`] — the analyzer side of incremental invalidation.
//!
//! The engine owns the graph, its closure query and its wire format; this
//! module owns the PHP knowledge: which AST constructs make one file's
//! analysis depend on another file's contents. Three edge families:
//!
//! * **Includes** — `include`/`require` targets, resolved with the same
//!   best-effort constant evaluation the interpreter uses (literal
//!   fragments, `.` concatenation, `dirname(__FILE__)` jumbles, plugin-dir
//!   constants). A path that never resolves to a constant still yields an
//!   edge when its trailing literal fragment names a project file — for
//!   invalidation, over-approximating is safe (it only widens the dirty
//!   set), missing an edge is not.
//! * **Calls** — `foo()` to a function declared in another file, plus
//!   `new Cls`, `Cls::m()` and `use`/`extends`/`implements` class
//!   references, matching the symbol table's case-insensitive resolution.
//! * **Methods** — `$obj->m()` with an unknown receiver edges to *every*
//!   class declaring a method `m`, mirroring the paper's name-based OOP
//!   resolution (§III-B): any of those files could host the summary used.
//!
//! Dynamic constructs (`$f()`, `include $path`, `new $cls`) contribute no
//! edge; analysis correctness never depends on the graph — results are
//! always recomputed from full content-keyed inputs — so an unresolvable
//! edge degrades the *precision* of invalidation, not its soundness.

use crate::project::PluginProject;
use crate::symbols::SymbolTable;
use php_ast::visit::{self, Visitor};
use php_ast::{
    Arena, BinOp, Callee, ClassDecl, ClassMember, Expr, ExprId, InterpPart, Lit, ParsedFile,
};
use phpsafe_engine::DepGraph;
use std::collections::HashMap;
use std::sync::Arc;

/// Builds the project's dependency graph from its parsed files and symbol
/// table. Every project file is a node (sorted insertion, so the encoded
/// bytes are deterministic across runs); edges come from the parsed subset.
pub(crate) fn build_depgraph(
    project: &PluginProject,
    parsed: &HashMap<String, Arc<ParsedFile>>,
    symbols: &SymbolTable,
) -> DepGraph {
    let _span = phpsafe_obs::span!("model.depgraph");
    let mut graph = DepGraph::new();
    let mut paths: Vec<&str> = project.files().iter().map(|f| f.path.as_str()).collect();
    paths.sort_unstable();
    for p in &paths {
        graph.add_file(p);
    }
    for path in paths {
        let Some(ast) = parsed.get(path) else {
            continue; // rejected (OOP/closure gate) — no edges from it
        };
        let mut v = EdgeVisitor {
            graph: &mut graph,
            project,
            symbols,
            from: path,
        };
        visit::walk_file(&mut v, ast);
    }
    graph
}

struct EdgeVisitor<'a> {
    graph: &'a mut DepGraph,
    project: &'a PluginProject,
    symbols: &'a SymbolTable,
    from: &'a str,
}

impl EdgeVisitor<'_> {
    fn edge(&mut self, to: &str) {
        if to != self.from {
            self.graph.add_edge(self.from, to);
        }
    }

    fn class_edge(&mut self, name: &str) {
        if name.eq_ignore_ascii_case("self")
            || name.eq_ignore_ascii_case("static")
            || name.eq_ignore_ascii_case("parent")
        {
            return; // relative references stay within the declaring file
        }
        let file = self.symbols.class(name).map(|c| c.file.clone());
        if let Some(f) = file {
            self.edge(&f);
        }
    }
}

impl Visitor for EdgeVisitor<'_> {
    fn visit_expr(&mut self, a: &Arena, expr: ExprId) {
        match a.expr(expr) {
            Expr::Include(_, target, _) => {
                let resolved = include_target(a, *target, self.from)
                    .and_then(|raw| self.project.find_file(&raw))
                    .map(|f| f.path.clone());
                if let Some(path) = resolved {
                    self.edge(&path);
                }
            }
            Expr::Call { callee, .. } => match callee {
                Callee::Function(name) => {
                    let file = self.symbols.function(name.as_str()).map(|i| i.file.clone());
                    if let Some(f) = file {
                        self.edge(&f);
                    }
                }
                Callee::StaticMethod { class, .. } => {
                    let class = class.as_str().to_owned();
                    self.class_edge(&class);
                }
                Callee::Method { name, .. } => {
                    if let Some(m) = name.as_name() {
                        // Unknown receiver: any class with this method
                        // could be the one whose summary the walk uses.
                        let files: Vec<String> = self
                            .symbols
                            .classes()
                            .filter(|c| c.decl.method(&c.ast, m).is_some())
                            .map(|c| c.file.clone())
                            .collect();
                        for f in files {
                            self.edge(&f);
                        }
                    }
                }
                Callee::Dynamic(_) => {}
            },
            Expr::New { class, .. } => {
                if let Some(c) = class.as_name() {
                    let c = c.to_owned();
                    self.class_edge(&c);
                }
            }
            _ => {}
        }
        visit::walk_expr(self, a, expr);
    }

    fn visit_class(&mut self, a: &Arena, class: &ClassDecl) {
        if let Some(parent) = class.parent {
            let parent = parent.as_str().to_owned();
            self.class_edge(&parent);
        }
        let ifaces: Vec<String> = a
            .syms(class.interfaces)
            .iter()
            .map(|s| s.as_str().to_owned())
            .collect();
        for i in ifaces {
            self.class_edge(&i);
        }
        let traits: Vec<String> = a
            .members(class.members)
            .iter()
            .filter_map(|m| match m {
                ClassMember::UseTrait(ts, _) => Some(a.syms(*ts)),
                _ => None,
            })
            .flatten()
            .map(|s| s.as_str().to_owned())
            .collect();
        for t in traits {
            self.class_edge(&t);
        }
        visit::walk_class(self, a, class);
    }
}

/// Best-effort constant evaluation of an include path, mirroring the
/// interpreter's `const_string` (same literal/concat/`__FILE__`/`dirname`
/// rules) so graph edges agree with the includes the walk actually
/// follows. Falls back to the trailing literal fragment of a partially
/// dynamic path — `dirname(__FILE__) . $sub . '/admin/page.php'` still
/// edges to `admin/page.php` if the project has exactly such a suffix.
fn include_target(a: &Arena, e: ExprId, current_file: &str) -> Option<String> {
    if let Some(path) = const_path(a, e, current_file) {
        return Some(path);
    }
    let tail = literal_tail(a, e)?;
    // Only trust fragments that name a source file; a bare directory or
    // extension-less fragment would suffix-match unrelated files.
    let looks_like_file = tail.rsplit('/').next().is_some_and(|name| {
        name.rsplit('.')
            .next()
            .is_some_and(|ext| matches!(ext, "php" | "inc" | "phtml"))
    });
    looks_like_file.then(|| tail.trim_start_matches('/').to_owned())
}

/// The interpreter's constant-string evaluation, minus frame state: the
/// only context an include path needs is the including file (`__FILE__`).
fn const_path(a: &Arena, e: ExprId, current_file: &str) -> Option<String> {
    match a.expr(e) {
        Expr::Lit(Lit::Str(s), _) => Some(s.as_str().to_string()),
        Expr::Binary {
            op: BinOp::Concat,
            lhs,
            rhs,
            ..
        } => {
            let l = const_path(a, *lhs, current_file)?;
            let r = const_path(a, *rhs, current_file)?;
            Some(l + &r)
        }
        Expr::ConstFetch(n, _) if n.as_str() == "__FILE__" => Some(current_file.to_string()),
        Expr::ConstFetch(n, _) if n.as_str().to_ascii_uppercase().ends_with("_DIR") => {
            Some(String::new())
        }
        Expr::Call {
            callee: Callee::Function(name),
            args,
            ..
        } => match name.as_str().to_ascii_lowercase().as_str() {
            "dirname" => {
                let inner = const_path(a, a.args(*args).first()?.value, current_file)?;
                match inner.rfind('/') {
                    Some(i) => Some(inner[..i].to_string()),
                    None => Some(String::new()),
                }
            }
            "plugin_dir_path" | "plugin_dir_url" | "trailingslashit" => Some(String::new()),
            _ => None,
        },
        Expr::Interp(parts, _) => {
            let mut out = String::new();
            for p in a.interp(*parts) {
                match p {
                    InterpPart::Lit(s) => out.push_str(s.as_str()),
                    InterpPart::Expr(_) => return None,
                }
            }
            Some(out)
        }
        Expr::ErrorSuppress(inner, _) => const_path(a, *inner, current_file),
        _ => None,
    }
}

/// The trailing literal fragment of a concatenation / interpolation chain.
fn literal_tail(a: &Arena, e: ExprId) -> Option<String> {
    match a.expr(e) {
        Expr::Lit(Lit::Str(s), _) => Some(s.as_str().to_string()),
        Expr::Binary {
            op: BinOp::Concat,
            rhs,
            ..
        } => literal_tail(a, *rhs),
        Expr::Interp(parts, _) => match a.interp(*parts).last()? {
            InterpPart::Lit(s) => Some(s.as_str().to_string()),
            InterpPart::Expr(_) => None,
        },
        Expr::ErrorSuppress(inner, _) => literal_tail(a, *inner),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::project::SourceFile;
    use php_ast::parse;

    fn project_of(files: &[(&str, &str)]) -> (PluginProject, HashMap<String, Arc<ParsedFile>>) {
        let mut p = PluginProject::new("t");
        let mut parsed = HashMap::new();
        for (path, src) in files {
            p = p.with_file(SourceFile::new(*path, *src));
            parsed.insert((*path).to_string(), Arc::new(parse(src)));
        }
        (p, parsed)
    }

    fn graph_of(files: &[(&str, &str)]) -> DepGraph {
        let (project, parsed) = project_of(files);
        let symbols = SymbolTable::build(parsed.iter().map(|(p, a)| (p.as_str(), a)));
        build_depgraph(&project, &parsed, &symbols)
    }

    #[test]
    fn include_edges_resolve_literals_and_dirname_jumbles() {
        let g = graph_of(&[
            ("main.php", "<?php require 'lib/db.php';"),
            (
                "admin.php",
                "<?php include dirname(__FILE__) . '/lib/db.php';",
            ),
            ("lib/db.php", "<?php $x = 1;"),
        ]);
        assert_eq!(g.deps_of("main.php"), ["lib/db.php"]);
        assert_eq!(g.deps_of("admin.php"), ["lib/db.php"]);
        // Editing the library invalidates both includers.
        assert_eq!(
            g.dependents_of(&["lib/db.php"]),
            ["admin.php", "lib/db.php", "main.php"]
        );
    }

    #[test]
    fn partially_dynamic_include_uses_trailing_fragment() {
        let g = graph_of(&[
            ("main.php", "<?php include $base . '/inc/helper.php';"),
            ("inc/helper.php", "<?php function h() {}"),
        ]);
        assert_eq!(g.deps_of("main.php"), ["inc/helper.php"]);
    }

    #[test]
    fn fully_dynamic_include_contributes_no_edge() {
        let g = graph_of(&[
            ("main.php", "<?php include $path;"),
            ("other.php", "<?php $x = 1;"),
        ]);
        assert_eq!(g.deps_of("main.php"), Vec::<&str>::new());
    }

    #[test]
    fn cross_file_calls_and_classes_edge_to_declaring_file() {
        let g = graph_of(&[
            ("a.php", "<?php Sanitize(); $d = new DB(); DB::ping();"),
            ("fns.php", "<?php function sanitize($s) { return $s; }"),
            ("db.php", "<?php class DB { function ping() {} }"),
        ]);
        assert_eq!(g.deps_of("a.php"), ["db.php", "fns.php"]);
        // Same-file calls are not edges.
        assert_eq!(g.deps_of("fns.php"), Vec::<&str>::new());
    }

    #[test]
    fn method_calls_edge_to_every_declaring_class() {
        let g = graph_of(&[
            ("a.php", "<?php $x->save();"),
            ("m1.php", "<?php class A { function save() {} }"),
            ("m2.php", "<?php class B { function save() {} }"),
            ("m3.php", "<?php class C { function other() {} }"),
        ]);
        assert_eq!(g.deps_of("a.php"), ["m1.php", "m2.php"]);
    }

    #[test]
    fn inheritance_and_traits_edge_to_parent_files() {
        let g = graph_of(&[
            ("child.php", "<?php class Child extends Base { use Log; }"),
            ("base.php", "<?php class Base {}"),
            ("log.php", "<?php trait Log { function log() {} }"),
        ]);
        assert_eq!(g.deps_of("child.php"), ["base.php", "log.php"]);
    }

    #[test]
    fn graph_encoding_is_deterministic_across_rebuilds() {
        let files = [
            ("z.php", "<?php include 'a.php'; helper();"),
            ("a.php", "<?php function helper() {}"),
            ("m.php", "<?php require 'z.php';"),
        ];
        let bytes: Vec<Vec<u8>> = (0..3).map(|_| graph_of(&files).encode()).collect();
        assert_eq!(bytes[0], bytes[1]);
        assert_eq!(bytes[1], bytes[2]);
    }
}
