//! Copy-on-write variable environments for the taint interpreter.
//!
//! The interpreter is path-insensitive: every `if`/`switch`/`catch` arm
//! runs on a *snapshot* of the current scope and the results are joined
//! (§III.C "conditions and loops do not change the data flow"). Snapshots
//! used to deep-clone the whole variable map per arm; an [`Env`] instead
//! shares the map behind an [`Arc`] and clones it only when an arm first
//! writes — branches that merely read (the overwhelmingly common case in
//! plugin code) cost nothing. The `cow.env_clones` counter records how
//! often a write actually had to materialize a private copy.
//!
//! Sharing is sound because the join is idempotent: merging an untouched
//! snapshot back into itself is a no-op, which [`Env::join_from`] detects
//! by pointer identity instead of walking the entries.

use crate::taint::VarState;
use phpsafe_intern::{FnvHashMap, Symbol};
use std::sync::Arc;

/// The underlying variable map: interned name → abstract state.
pub(crate) type VarMap = FnvHashMap<Symbol, VarState>;

/// A scope's variables with copy-on-write snapshot semantics.
///
/// `clone()` is O(1) (an `Arc` bump); the first mutation through a shared
/// handle clones the map once.
#[derive(Debug, Clone, Default)]
pub(crate) struct Env {
    map: Arc<VarMap>,
}

impl Env {
    /// Reads a variable's state.
    pub fn get(&self, name: Symbol) -> Option<&VarState> {
        self.map.get(&name)
    }

    /// Writes a variable's state, materializing a private map if shared.
    pub fn insert(&mut self, name: Symbol, st: VarState) {
        self.make_mut().insert(name, st);
    }

    /// Resets to empty without cloning whatever was shared.
    pub fn clear(&mut self) {
        if !self.map.is_empty() {
            self.map = Arc::default();
        }
    }

    /// Do both handles share one underlying map?
    pub fn ptr_eq(&self, other: &Env) -> bool {
        Arc::ptr_eq(&self.map, &other.map)
    }

    /// Branch merge: pointwise [`VarState::join`] over the union of keys.
    ///
    /// Fast paths: joining an env into itself is a no-op (idempotent join),
    /// and joining into an empty env adopts `other`'s storage wholesale —
    /// so N untouched branch snapshots merge without a single map clone.
    pub fn join_from(&mut self, other: Env, trace_limit: usize) {
        if self.ptr_eq(&other) {
            return;
        }
        if self.map.is_empty() {
            self.map = other.map;
            return;
        }
        let map = self.make_mut();
        let mut join_one = |k: Symbol, v: VarState| match map.remove(&k) {
            Some(prev) => {
                map.insert(k, prev.join(&v, trace_limit));
            }
            None => {
                map.insert(k, v);
            }
        };
        match Arc::try_unwrap(other.map) {
            Ok(owned) => {
                for (k, v) in owned {
                    join_one(k, v);
                }
            }
            Err(shared) => {
                for (&k, v) in shared.iter() {
                    join_one(k, v.clone());
                }
            }
        }
    }

    fn make_mut(&mut self) -> &mut VarMap {
        if Arc::get_mut(&mut self.map).is_none() {
            phpsafe_obs::count("cow.env_clones", 1);
        }
        Arc::make_mut(&mut self.map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taint::{Taint, TraceStep};
    use taint_config::SourceKind;

    fn tainted(line: u32) -> VarState {
        VarState::tainted(
            Taint::from_source(SourceKind::Get),
            TraceStep {
                file: Symbol::intern("env_test.php"),
                line,
                what: format!("step {line}"),
            },
        )
    }

    #[test]
    fn clone_shares_until_write() {
        let mut base = Env::default();
        base.insert(Symbol::intern("$a"), tainted(1));
        let mut branch = base.clone();
        assert!(base.ptr_eq(&branch));
        branch.insert(Symbol::intern("$b"), tainted(2));
        assert!(!base.ptr_eq(&branch), "write must detach the snapshot");
        assert!(base.get(Symbol::intern("$b")).is_none());
        assert!(branch.get(Symbol::intern("$a")).is_some());
    }

    #[test]
    fn join_is_union_with_pointwise_join() {
        let a_sym = Symbol::intern("$x");
        let mut left = Env::default();
        left.insert(a_sym, tainted(1));
        left.insert(Symbol::intern("$only_left"), VarState::clean());
        let mut right = Env::default();
        right.insert(a_sym, tainted(2));
        right.insert(Symbol::intern("$only_right"), VarState::clean());
        left.join_from(right, 8);
        assert!(left.get(Symbol::intern("$only_left")).is_some());
        assert!(left.get(Symbol::intern("$only_right")).is_some());
        assert!(left.get(a_sym).unwrap().taint.any());
    }

    #[test]
    fn join_of_shared_snapshot_is_noop() {
        let mut base = Env::default();
        base.insert(Symbol::intern("$v"), tainted(3));
        let snapshot = base.clone();
        base.join_from(snapshot, 8);
        assert!(base.get(Symbol::intern("$v")).unwrap().taint.any());
    }

    #[test]
    fn empty_adopts_other_without_clone() {
        let mut filled = Env::default();
        filled.insert(Symbol::intern("$w"), tainted(4));
        let mut empty = Env::default();
        empty.join_from(filled.clone(), 8);
        assert!(empty.ptr_eq(&filled), "empty env must adopt storage");
    }

    #[test]
    fn clear_resets_without_detaching_sharers() {
        let mut base = Env::default();
        base.insert(Symbol::intern("$c"), tainted(5));
        let keeper = base.clone();
        base.clear();
        assert!(base.get(Symbol::intern("$c")).is_none());
        assert!(keeper.get(Symbol::intern("$c")).is_some());
    }
}
