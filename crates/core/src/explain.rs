//! `--explain`: provenance chains behind reported vulnerabilities.
//!
//! A [`crate::Vulnerability`] carries the data-flow trace the interpreter
//! recorded (source → propagation → sink). With taint events enabled
//! ([`phpsafe_obs::set_events_enabled`]) the interpreter additionally emits
//! a [`TaintEvent`] per transition, using the *same wording* as the trace
//! steps. [`explain_vuln`] joins the two: every trace step is anchored to
//! its event (kind label, global order), and sanitizer applications — which
//! leave no trace step of their own — are woven back in between the anchors
//! they happened between. The result is the full
//! source → sanitizer → sink story of one finding.

use crate::report::{AnalysisOutcome, Vulnerability};
use crate::taint::TraceStep;
use phpsafe_obs::{TaintEvent, TaintEventKind};
use std::fmt::Write as _;

/// Infers a chain label for a trace step that no event anchors (events
/// disabled, ring buffer wrapped, or the step predates this session).
fn infer_label(step: &TraceStep) -> &'static str {
    if step.what.starts_with("source ")
        || step.what.starts_with("register_globals ")
        || step.what.ends_with("injected by extract()")
    {
        TaintEventKind::Introduced.label()
    } else if step.what.starts_with("revert ") {
        TaintEventKind::Reverted.label()
    } else {
        TaintEventKind::Propagated.label()
    }
}

/// Renders the provenance chain of one vulnerability.
///
/// `events` is the taint-event stream of the run (e.g.
/// [`phpsafe_obs::events`]); pass an empty slice to explain from the trace
/// alone. The chain always ends in the sink line, and always states which
/// sanitizers the flow passed — explicitly saying so when there were none.
pub fn explain_vuln(vuln: &Vulnerability, events: &[TaintEvent]) -> String {
    // The `[slug ← labels]` tag names the class and every contributing
    // source vector. The paper's own two classes keep their original
    // header bytes; only the taxonomy's extension classes carry the tag.
    let tag = if vuln.class.in_paper() {
        String::new()
    } else {
        format!(" [{} ← {}]", vuln.class.slug(), vuln.labels)
    };
    let mut out = format!(
        "{} in {}:{} — `{}` reaches sink `{}` (source: {}){}\n",
        vuln.class, vuln.file, vuln.line, vuln.var, vuln.sink, vuln.source_kind, tag
    );

    // Anchor each trace step to the first event with identical position and
    // wording; anchored steps carry the event's kind and global order.
    let anchor = |step: &TraceStep| {
        events
            .iter()
            .find(|e| e.file == step.file.as_str() && e.line == step.line && e.detail == step.what)
    };
    let anchors: Vec<Option<&TaintEvent>> = vuln.trace.iter().map(anchor).collect();
    let seqs: Vec<u64> = anchors.iter().flatten().map(|e| e.seq).collect();
    let window = match (seqs.iter().min(), seqs.iter().max()) {
        (Some(&lo), Some(&hi)) => Some((lo, hi)),
        _ => None,
    };

    // Sanitizer applications emit events but record no trace step — weave
    // the ones that happened between this chain's anchors back in by
    // sequence number.
    let mut extra: Vec<&TaintEvent> = match window {
        Some((lo, hi)) => events
            .iter()
            .filter(|e| {
                e.kind == TaintEventKind::Sanitized
                    && e.seq > lo
                    && e.seq < hi
                    && anchors.iter().flatten().all(|a| a.seq != e.seq)
            })
            .collect(),
        None => Vec::new(),
    };
    extra.sort_by_key(|e| e.seq);
    let mut extra = extra.into_iter().peekable();

    let mut sanitizers: Vec<String> = Vec::new();
    let mut n = 0usize;
    let mut push_line = |out: &mut String, label: &str, file: &str, line: u32, what: &str| {
        n += 1;
        let _ = writeln!(out, "  {n}. {label:<10} {file}:{line}  {what}");
    };

    for (step, anchor) in vuln.trace.iter().zip(&anchors) {
        if let Some(&(_, _)) = window.as_ref() {
            let step_seq = anchor.map(|a| a.seq);
            while let Some(ev) = extra.peek() {
                if step_seq.is_some_and(|s| ev.seq > s) {
                    break;
                }
                push_line(&mut out, ev.kind.label(), &ev.file, ev.line, &ev.detail);
                sanitizers.push(ev.detail.clone());
                extra.next();
            }
        }
        let label = anchor.map(|a| a.kind.label()).unwrap_or(infer_label(step));
        if label == TaintEventKind::Reverted.label() {
            sanitizers.push(step.what.clone());
        }
        push_line(&mut out, label, step.file.as_str(), step.line, &step.what);
    }
    for ev in extra {
        push_line(&mut out, ev.kind.label(), &ev.file, ev.line, &ev.detail);
        sanitizers.push(ev.detail.clone());
    }
    push_line(
        &mut out,
        TaintEventKind::SinkHit.label(),
        &vuln.file,
        vuln.line,
        &format!("{} reaches {}", vuln.var, vuln.sink),
    );

    if sanitizers.is_empty() {
        out.push_str("  sanitization: none — taint reached the sink unsanitized\n");
    } else {
        let _ = writeln!(out, "  sanitization: {}", sanitizers.join("; "));
    }
    out
}

/// Renders the provenance chains of every vulnerability in an outcome.
pub fn explain_outcome(outcome: &AnalysisOutcome, events: &[TaintEvent]) -> String {
    let mut out = format!(
        "explain: {} — {} vulnerabilit{}\n",
        outcome.plugin,
        outcome.vulns.len(),
        if outcome.vulns.len() == 1 { "y" } else { "ies" }
    );
    for v in &outcome.vulns {
        out.push('\n');
        out.push_str(&explain_vuln(v, events));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PhpSafe, PluginProject, SourceFile};

    fn analyze_with_events(file: &str, src: &str) -> (AnalysisOutcome, Vec<TaintEvent>) {
        phpsafe_obs::set_events_enabled(true);
        let plugin = PluginProject::new("demo").with_file(SourceFile::new(file, src));
        let outcome = PhpSafe::new().analyze(&plugin);
        phpsafe_obs::set_events_enabled(false);
        // Unique file names keep this test's events apart from any other
        // test that happens to run while the global switch is on.
        let events = phpsafe_obs::events()
            .into_iter()
            .filter(|e| e.file == file)
            .collect();
        (outcome, events)
    }

    #[test]
    fn chain_weaves_sanitizer_and_revert() {
        let (outcome, events) = analyze_with_events(
            "explain_revert_demo.php",
            "<?php
            $s = addslashes($_GET['s']);
            $raw = stripslashes($s);
            mysql_query(\"SELECT * FROM t WHERE s = '$raw'\");",
        );
        assert_eq!(outcome.vulns.len(), 1, "{:?}", outcome.vulns);
        let text = explain_vuln(&outcome.vulns[0], &events);
        assert!(text.contains("source $_GET"), "{text}");
        assert!(text.contains("sanitized by addslashes()"), "{text}");
        assert!(
            text.contains("revert stripslashes() restores taint"),
            "{text}"
        );
        assert!(text.contains("reaches mysql_query"), "{text}");
        let sanitized_at = text.find("sanitized by").unwrap();
        let reverted_at = text.find("revert stripslashes").unwrap();
        assert!(
            sanitized_at < reverted_at,
            "sanitizer must precede its revert:\n{text}"
        );
        assert!(text.contains("sanitization: sanitized by addslashes()"));
    }

    #[test]
    fn unsanitized_chain_says_so() {
        let (outcome, events) =
            analyze_with_events("explain_direct_demo.php", "<?php echo $_GET['name'];");
        assert_eq!(outcome.vulns.len(), 1);
        let text = explain_vuln(&outcome.vulns[0], &events);
        assert!(text.contains("introduced"), "{text}");
        assert!(text.contains("sink-hit"), "{text}");
        assert!(
            text.contains("sanitization: none — taint reached the sink unsanitized"),
            "{text}"
        );
    }

    #[test]
    fn explains_from_trace_alone_when_events_are_off() {
        let plugin = PluginProject::new("demo").with_file(SourceFile::new(
            "explain_noevents.php",
            "<?php $x = $_POST['m']; echo $x;",
        ));
        let outcome = PhpSafe::new().analyze(&plugin);
        assert_eq!(outcome.vulns.len(), 1);
        let text = explain_vuln(&outcome.vulns[0], &[]);
        assert!(text.contains("introduced"), "{text}");
        assert!(text.contains("source $_POST"), "{text}");
        assert!(text.contains("sink-hit"), "{text}");
    }

    #[test]
    fn extension_class_chain_carries_class_and_label_tag() {
        let (outcome, events) = analyze_with_events(
            "explain_cmdi_demo.php",
            "<?php $d = $_GET['d']; shell_exec('ls ' . $d);",
        );
        let v = outcome
            .vulns
            .iter()
            .find(|v| v.class == taint_config::VulnClass::CmdInjection)
            .expect("cmdi finding");
        let text = explain_vuln(v, &events);
        assert!(text.contains("[cmd-injection ← {GET}]"), "{text}");
    }

    #[test]
    fn paper_class_chain_header_is_unchanged() {
        let (outcome, events) =
            analyze_with_events("explain_notag.php", "<?php echo $_GET['name'];");
        let text = explain_vuln(&outcome.vulns[0], &events);
        let header = text.lines().next().unwrap();
        assert!(!header.contains('←'), "no tag on XSS chains: {header}");
        assert!(header.ends_with("(source: GET)"), "{header}");
    }

    #[test]
    fn outcome_rendering_counts_vulns() {
        let plugin = PluginProject::new("demo").with_file(SourceFile::new(
            "explain_outcome.php",
            "<?php echo $_GET['a'];\necho $_POST['b'];",
        ));
        let outcome = PhpSafe::new().analyze(&plugin);
        let text = explain_outcome(&outcome, &[]);
        assert!(text.contains("2 vulnerabilities"), "{text}");
        assert_eq!(text.matches("sink-hit").count(), 2);
    }
}
