//! Standalone HTML report rendering — the equivalent of phpSAFE's web
//! interface output (§III: "the output of the analysis is presented in a
//! web page that helps reviewing the results, including the vulnerable
//! variables, the entry point …, the flow of the vulnerable data from
//! variable to variable").

use crate::report::AnalysisOutcome;
use std::fmt::Write as _;
use taint_config::VulnClass;

/// Escapes text for inclusion in HTML (a vulnerability report about XSS
/// had better not be injectable itself).
pub fn escape_html(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            other => out.push(other),
        }
    }
    out
}

/// Renders a complete, dependency-free HTML page for one analysis outcome.
///
/// # Examples
///
/// ```
/// use phpsafe::{PhpSafe, PluginProject, SourceFile};
///
/// let plugin = PluginProject::new("demo")
///     .with_file(SourceFile::new("d.php", "<?php echo $_GET['x'];"));
/// let outcome = PhpSafe::new().analyze(&plugin);
/// let page = phpsafe::render_html(&outcome);
/// assert!(page.contains("<!DOCTYPE html>"));
/// assert!(page.contains("XSS"));
/// ```
pub fn render_html(outcome: &AnalysisOutcome) -> String {
    let mut h = String::new();
    let xss = outcome.vulns_of(VulnClass::Xss).count();
    let sqli = outcome.vulns_of(VulnClass::Sqli).count();
    let _ = write!(
        h,
        r#"<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>phpSAFE report — {plugin}</title>
<style>
body {{ font-family: ui-monospace, monospace; margin: 2rem; color: #222; }}
h1 {{ font-size: 1.3rem; }} h2 {{ font-size: 1.05rem; margin-top: 1.5rem; }}
table {{ border-collapse: collapse; }}
td, th {{ border: 1px solid #ccc; padding: 0.3rem 0.6rem; text-align: left; }}
.xss {{ border-left: 4px solid #c0392b; }} .sqli {{ border-left: 4px solid #8e44ad; }}
.vuln {{ margin: 1rem 0; padding: 0.6rem 1rem; background: #fafafa; }}
.trace {{ color: #666; margin: 0.2rem 0 0 1rem; }}
.oop {{ background: #2c3e50; color: #fff; padding: 0 0.4rem; border-radius: 3px; font-size: 0.8em; }}
.fail {{ color: #c0392b; }}
</style>
</head>
<body>
<h1>phpSAFE analysis report — <code>{plugin}</code></h1>
<p>tool: {tool} · files: {files} ({failed} failed) · LOC: {loc} ·
functions: {functions} · classes: {classes} · never-called callables: {uncalled}</p>
<h2>Summary</h2>
<table><tr><th>Class</th><th>Findings</th></tr>
<tr><td>XSS</td><td>{xss}</td></tr>
<tr><td>SQLi</td><td>{sqli}</td></tr></table>
"#,
        plugin = escape_html(&outcome.plugin),
        tool = escape_html(&outcome.tool),
        files = outcome.files.len(),
        failed = outcome.stats.files_failed,
        loc = outcome.stats.loc,
        functions = outcome.stats.functions,
        classes = outcome.stats.classes,
        uncalled = outcome.stats.uncalled_functions,
    );

    let failed: Vec<_> = outcome
        .files
        .iter()
        .filter(|f| f.failure.is_some())
        .collect();
    if !failed.is_empty() {
        h.push_str("<h2>Files not analyzed</h2>\n<ul>\n");
        for f in failed {
            let _ = writeln!(
                h,
                "<li class=\"fail\"><code>{}</code> — {}</li>",
                escape_html(&f.path),
                escape_html(&f.failure.as_ref().expect("filtered").to_string())
            );
        }
        h.push_str("</ul>\n");
    }

    let _ = writeln!(h, "<h2>Vulnerabilities ({})</h2>", outcome.vulns.len());
    for v in &outcome.vulns {
        let class_css = v.class.slug();
        let oop_badge = if v.via_oop {
            " <span class=\"oop\">OOP</span>"
        } else {
            ""
        };
        let _ = write!(
            h,
            r#"<div class="vuln {class_css}">
<strong>{class}</strong>{oop_badge} at <code>{file}:{line}</code><br>
sink <code>{sink}</code> · vulnerable expression <code>{var}</code> · entry vector <code>{vector}</code>
"#,
            class = v.class,
            file = escape_html(&v.file),
            line = v.line,
            sink = escape_html(&v.sink),
            var = escape_html(&v.var),
            vector = v.source_kind,
        );
        for step in &v.trace {
            let _ = writeln!(
                h,
                "<div class=\"trace\">&larr; <code>{}:{}</code> {}</div>",
                escape_html(step.file.as_str()),
                step.line,
                escape_html(&step.what)
            );
        }
        h.push_str("</div>\n");
    }
    h.push_str("</body>\n</html>\n");
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PhpSafe, PluginProject, SourceFile};

    fn outcome_with_payload() -> AnalysisOutcome {
        let p = PluginProject::new("<script>alert(1)</script>").with_file(SourceFile::new(
            "x.php",
            "<?php echo $_GET['<img onerror=alert(1)>'];",
        ));
        PhpSafe::new().analyze(&p)
    }

    #[test]
    fn escape_html_neutralizes_metacharacters() {
        assert_eq!(
            escape_html(r#"<b a="x">&'"#),
            "&lt;b a=&quot;x&quot;&gt;&amp;&#39;"
        );
        assert_eq!(escape_html("plain"), "plain");
    }

    #[test]
    fn report_is_not_itself_injectable() {
        let html = render_html(&outcome_with_payload());
        assert!(
            !html.contains("<script>alert"),
            "plugin name must be escaped"
        );
        assert!(
            !html.contains("<img onerror"),
            "payload in var must be escaped"
        );
        assert!(html.contains("&lt;script&gt;"));
    }

    #[test]
    fn report_contains_findings_and_stats() {
        let p = PluginProject::new("demo").with_file(SourceFile::new(
            "a.php",
            "<?php $id = $_GET['id']; $wpdb->query(\"DELETE FROM t WHERE id = $id\");",
        ));
        let outcome = PhpSafe::new().analyze(&p);
        let html = render_html(&outcome);
        assert!(html.contains("SQLi"));
        assert!(html.contains("wpdb::query"));
        assert!(html.contains("a.php"));
        assert!(html.contains("<!DOCTYPE html>"));
    }

    #[test]
    fn failed_files_are_listed() {
        let mut p = PluginProject::new("deep");
        for i in 0..20 {
            p.push_file(SourceFile::new(
                format!("f{i}.php"),
                format!("<?php include 'f{}.php';", i + 1),
            ));
        }
        let outcome = PhpSafe::new().analyze(&p);
        assert!(outcome.stats.files_failed > 0);
        let html = render_html(&outcome);
        assert!(html.contains("Files not analyzed"));
    }
}
