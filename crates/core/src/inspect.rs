//! Project inspection — the §III.D "results processing" resources beyond
//! the vulnerability list: the variables and functions inventory, the
//! include graph, per-file token statistics, and the never-called
//! callables. phpSAFE exposes these "to help security practitioners trace
//! back the path of the tainted variables"; here they power tooling and
//! the HTML report.

use crate::project::PluginProject;
use crate::symbols::{FnRef, SymbolTable};
use php_ast::visit::{self, Visitor};
use php_ast::{parse, Arena, Callee, Expr, ExprId, Lit};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Inventory of one file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileInventory {
    /// File path.
    pub path: String,
    /// Non-blank LOC.
    pub loc: usize,
    /// Token count (the "complete AST" resource, summarized).
    pub tokens: usize,
    /// Recovered parse errors.
    pub parse_errors: usize,
    /// Distinct variables read or written at any scope.
    pub variables: BTreeSet<String>,
    /// Functions declared in this file (free functions).
    pub functions: Vec<String>,
    /// Classes declared in this file.
    pub classes: Vec<String>,
    /// Files this file includes (resolved against the project).
    pub includes: Vec<String>,
}

/// Whole-project inventory.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Inspection {
    /// Plugin name.
    pub plugin: String,
    /// Per-file inventories, in path order.
    pub files: Vec<FileInventory>,
    /// Callables never invoked from plugin code (`function` or
    /// `Class::method` notation).
    pub uncalled: Vec<String>,
    /// Total declared callables (functions + methods).
    pub callable_count: usize,
    /// Total classes.
    pub class_count: usize,
}

impl Inspection {
    /// Include edges as `(from, to)` path pairs.
    pub fn include_edges(&self) -> Vec<(&str, &str)> {
        let mut out = Vec::new();
        for f in &self.files {
            for inc in &f.includes {
                out.push((f.path.as_str(), inc.as_str()));
            }
        }
        out
    }
}

#[derive(Default)]
struct FileScan {
    variables: BTreeSet<String>,
    functions: Vec<String>,
    classes: Vec<String>,
    raw_includes: Vec<String>,
}

impl Visitor for FileScan {
    fn visit_expr(&mut self, a: &Arena, e: ExprId) {
        match a.expr(e) {
            Expr::Var(name, _) => {
                self.variables.insert(name.to_string());
            }
            Expr::Include(_, path, _) => {
                if let Some(p) = simple_const_string(a, *path) {
                    self.raw_includes.push(p);
                }
            }
            _ => {}
        }
        visit::walk_expr(self, a, e);
    }

    fn visit_function(&mut self, a: &Arena, f: &php_ast::FunctionDecl) {
        // Methods are collected under their class via visit_class order;
        // only top-of-stack free functions arrive here directly because
        // the class visitor below intercepts class members.
        self.functions.push(f.name.to_string());
        visit::walk_function(self, a, f);
    }

    fn visit_class(&mut self, a: &Arena, c: &php_ast::ClassDecl) {
        self.classes.push(c.name.to_string());
        // Walk members but suppress method names from the free-function
        // list by walking bodies manually.
        for m in a.members(c.members) {
            match m {
                php_ast::ClassMember::Method(_, f) => {
                    for &s in a.stmt_list(f.body) {
                        self.visit_stmt(a, s);
                    }
                }
                php_ast::ClassMember::Property {
                    default: Some(d), ..
                } => self.visit_expr(a, *d),
                php_ast::ClassMember::Const { value, .. } => self.visit_expr(a, *value),
                _ => {}
            }
        }
    }
}

/// Best-effort constant folding of an include path (literals, concats,
/// `dirname(__FILE__)`-style prefixes collapse to relative paths).
fn simple_const_string(a: &Arena, e: ExprId) -> Option<String> {
    match a.expr(e) {
        Expr::Lit(Lit::Str(s), _) => Some(s.as_str().to_string()),
        Expr::Binary {
            op: php_ast::BinOp::Concat,
            lhs,
            rhs,
            ..
        } => {
            let l = simple_const_string(a, *lhs).unwrap_or_default();
            let r = simple_const_string(a, *rhs)?;
            Some(l + &r)
        }
        Expr::Call {
            callee: Callee::Function(name),
            ..
        } if matches!(
            name.as_str().to_ascii_lowercase().as_str(),
            "dirname" | "plugin_dir_path" | "trailingslashit"
        ) =>
        {
            Some(String::new())
        }
        Expr::ConstFetch(..) => Some(String::new()),
        Expr::ErrorSuppress(inner, _) => simple_const_string(a, *inner),
        _ => None,
    }
}

/// Builds the full inventory of a plugin project.
///
/// # Examples
///
/// ```
/// use phpsafe::{inspect, PluginProject, SourceFile};
///
/// let p = PluginProject::new("demo").with_file(SourceFile::new(
///     "demo.php",
///     "<?php function f() { echo $_GET['x']; } include 'lib.php';",
/// ));
/// let inv = inspect(&p);
/// assert_eq!(inv.files[0].functions, vec!["f".to_string()]);
/// ```
pub fn inspect(project: &PluginProject) -> Inspection {
    let mut files = Vec::new();
    let mut parsed = Vec::new();
    for f in project.files() {
        let ast = std::sync::Arc::new(parse(&f.content));
        let tokens = php_lexer::tokenize_significant(&f.content).len();
        let mut scan = FileScan::default();
        visit::walk_file(&mut scan, &ast);
        let includes = scan
            .raw_includes
            .iter()
            .filter_map(|raw| {
                let raw = raw.trim_start_matches('/');
                project.find_file(raw).map(|sf| sf.path.clone())
            })
            .collect();
        files.push(FileInventory {
            path: f.path.clone(),
            loc: f.loc(),
            tokens,
            parse_errors: ast.errors.len(),
            variables: scan.variables,
            functions: scan.functions,
            classes: scan.classes,
            includes,
        });
        parsed.push((f.path.clone(), ast));
    }
    files.sort_by(|a, b| a.path.cmp(&b.path));
    let symbols = SymbolTable::build(parsed.iter().map(|(p, a)| (p.as_str(), a)));
    let uncalled = symbols
        .uncalled()
        .into_iter()
        .map(|r| match r {
            FnRef::Function(f) => f,
            FnRef::Method(c, m) => format!("{c}::{m}"),
        })
        .collect();
    Inspection {
        plugin: project.name().to_string(),
        files,
        uncalled,
        callable_count: symbols.callable_count(),
        class_count: symbols.class_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SourceFile;

    fn project() -> PluginProject {
        PluginProject::new("inv")
            .with_file(SourceFile::new(
                "main.php",
                "<?php
                include 'includes/lib.php';
                $top = 1;
                function used() { $inner = 2; }
                used();
                class Widget { public function render() { echo $this->title; } }
                ",
            ))
            .with_file(SourceFile::new(
                "includes/lib.php",
                "<?php function helper($arg) { return $arg; }",
            ))
    }

    #[test]
    fn inventory_collects_symbols_per_file() {
        let inv = inspect(&project());
        assert_eq!(inv.files.len(), 2);
        let lib = inv
            .files
            .iter()
            .find(|f| f.path == "includes/lib.php")
            .unwrap();
        assert_eq!(lib.functions, vec!["helper".to_string()]);
        let main = inv.files.iter().find(|f| f.path == "main.php").unwrap();
        assert_eq!(main.functions, vec!["used".to_string()]);
        assert_eq!(main.classes, vec!["Widget".to_string()]);
        assert!(main.variables.contains("$top"));
        assert!(main.variables.contains("$inner"));
        assert!(main.tokens > 10);
    }

    #[test]
    fn include_edges_resolve() {
        let inv = inspect(&project());
        assert_eq!(inv.include_edges(), vec![("main.php", "includes/lib.php")]);
    }

    #[test]
    fn uncalled_inventory() {
        let inv = inspect(&project());
        assert!(inv.uncalled.contains(&"helper".to_string()));
        assert!(inv.uncalled.contains(&"widget::render".to_string()));
        assert!(!inv.uncalled.contains(&"used".to_string()));
        assert_eq!(inv.callable_count, 3);
        assert_eq!(inv.class_count, 1);
    }

    #[test]
    fn methods_not_listed_as_free_functions() {
        let inv = inspect(&project());
        let main = inv.files.iter().find(|f| f.path == "main.php").unwrap();
        assert!(!main.functions.contains(&"render".to_string()));
    }

    #[test]
    fn serializes_to_json() {
        let inv = inspect(&project());
        let j = serde_json::to_string(&inv).expect("json");
        assert!(j.contains("includes/lib.php"));
    }
}
