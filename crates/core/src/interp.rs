//! The taint interpreter — phpSAFE's *analysis stage* (§III.C).
//!
//! An abstract interpreter over the [`php_ast`] tree that follows tainted
//! data from sources to sinks:
//!
//! * **inter-procedural & context-aware** — user functions/methods are
//!   analyzed at their call sites with the caller's argument taints, and the
//!   result is memoized per `(callable, argument-taint-signature)` — the
//!   paper's "every function is analyzed only the first time it is called,
//!   taking into account the context of the call";
//! * **path-insensitive** — `if`/`switch` branches are interpreted on frame
//!   clones and joined ("conditions and loops do not change the data flow");
//! * **OOP-aware** — property reads/writes resolve to an object-insensitive
//!   per-class property store, method calls resolve through the class table
//!   and the configuration's known objects (`$wpdb`), and `new` tracks the
//!   constructed class (§III.E);
//! * **resource-bounded** — every node costs a work unit; exceeding the
//!   budget marks the entry file failed, reproducing the robustness
//!   behaviour the paper measured.
//!
//! Nodes are arena handles: every walk carries the [`Arena`] its ids
//! resolve against (the current file's, or the declaring file's during a
//! call), and node "copies" are 8-byte id/range copies, never deep clones.

use crate::analyzer::AnalyzerOptions;
use crate::caching::{shareable_calls, SharedSummary, SummaryCache, SummaryKey};
use crate::env::Env;
use crate::report::{numeric_intent, Vulnerability};
use crate::symbols::{FnRef, SymbolTable};
use crate::taint::{Taint, TraceStep, VarState};
use crate::PluginProject;
use php_ast::printer::print_expr;
use php_ast::{
    Arena, ArgRange, AssignOp, Callee, Expr, ExprId, FunctionDecl, IncludeKind, InterpPart, Lit,
    Member, ParsedFile, Span, Stmt, StmtRange,
};
use phpsafe_dataflow::{Recorder, SinkInfo};
use phpsafe_intern::{FnvHashMap, FnvHashSet, Symbol};
use phpsafe_obs::TaintEventKind;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;
use taint_config::{SourceKind, TaintConfig, VulnClass};

/// One execution scope (the global scope or a function/method body).
///
/// Cloning a frame is cheap: `vars` is a copy-on-write [`Env`], so branch
/// snapshots share the variable map until an arm writes.
#[derive(Debug, Default, Clone)]
struct Frame {
    vars: Env,
    globals_decl: FnvHashSet<Symbol>,
    this_class: Option<Symbol>,
    ret: VarState,
    is_global: bool,
    /// Taint spilled into the scope by `extract()` on a tainted array:
    /// any otherwise-undefined variable read picks this up.
    extracted: Taint,
}

impl Frame {
    fn global() -> Frame {
        Frame {
            is_global: true,
            ..Frame::default()
        }
    }
}

/// Memoization key for a user-callable invocation. Interned names replace
/// the former `"fn:<name>"` / `"m:<class>::<name>"` string keys, so no
/// allocation happens per call lookup.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CallKey {
    /// Receiver class (lowercase) for methods, `None` for free functions.
    class: Option<Symbol>,
    /// Callable name, lowercase.
    name: Symbol,
    /// Taint signature of the arguments.
    sig: Vec<Taint>,
}

/// Memoized result of a call.
#[derive(Debug, Clone)]
struct CallResult {
    ret: VarState,
}

pub(crate) struct Interp<'a> {
    cfg: &'a TaintConfig,
    opts: &'a AnalyzerOptions,
    syms: &'a SymbolTable,
    project: &'a PluginProject,
    parsed: &'a HashMap<String, Arc<ParsedFile>>,
    /// Cross-run pure-leaf summaries shared through the engine caches
    /// (`None` in plain serial mode).
    shared: Option<Arc<SummaryCache>>,

    pub(crate) vulns: Vec<Vulnerability>,
    memo: FnvHashMap<CallKey, CallResult>,
    in_progress: FnvHashSet<CallKey>,
    /// Object-insensitive per-class property store: `(class, $prop)` → state.
    class_props: FnvHashMap<(Symbol, Symbol), VarState>,
    globals: Env,

    file_stack: Vec<Symbol>,
    include_depth: usize,
    included_once: FnvHashSet<String>,
    pub(crate) work: u64,
    pub(crate) failed: Option<String>,
    /// Taint-graph recorder (graph mode only): mirrors every emitted event
    /// as a graph node and every reported sink as a path record. Interior
    /// mutability because events are emitted from `&self` contexts.
    pub(crate) recorder: Option<RefCell<Recorder>>,
}

impl<'a> Interp<'a> {
    pub(crate) fn new(
        cfg: &'a TaintConfig,
        opts: &'a AnalyzerOptions,
        syms: &'a SymbolTable,
        project: &'a PluginProject,
        parsed: &'a HashMap<String, Arc<ParsedFile>>,
        shared: Option<Arc<SummaryCache>>,
    ) -> Self {
        Interp {
            cfg,
            opts,
            syms,
            project,
            parsed,
            shared,
            vulns: Vec::new(),
            memo: FnvHashMap::default(),
            in_progress: FnvHashSet::default(),
            class_props: FnvHashMap::default(),
            globals: Env::default(),
            file_stack: Vec::new(),
            include_depth: 0,
            included_once: FnvHashSet::default(),
            work: 0,
            failed: None,
            recorder: None,
        }
    }

    fn current_file(&self) -> Symbol {
        self.file_stack
            .last()
            .copied()
            .unwrap_or_else(|| Symbol::intern("?"))
    }

    /// Spends one work unit; flips the failure flag when the entry budget is
    /// exhausted (models phpSAFE running out of memory on include-heavy
    /// files).
    fn tick(&mut self) -> bool {
        self.work += 1;
        if self.work > self.opts.work_limit && self.failed.is_none() {
            self.failed = Some(format!(
                "work limit of {} units exceeded",
                self.opts.work_limit
            ));
        }
        self.failed.is_none()
    }

    /// Analyzes one file as an entry point. Returns the failure message if
    /// the budget blew up.
    pub(crate) fn run_entry_file(&mut self, path: &str) -> Option<String> {
        self.work = 0;
        self.failed = None;
        self.globals.clear();
        self.included_once.clear();
        self.included_once.insert(path.to_string());
        self.file_stack.push(Symbol::intern(path));
        let ast = match self.parsed.get(path) {
            Some(a) => a.clone(),
            None => {
                self.file_stack.pop();
                return None;
            }
        };
        let mut frame = Frame::global();
        self.exec_stmts(&ast, ast.top, &mut frame);
        self.file_stack.pop();
        self.failed.take()
    }

    /// Analyzes the never-called callables with clean parameters (phpSAFE
    /// parses them up front so hook handlers are covered).
    pub(crate) fn run_uncalled(&mut self, uncalled: &[FnRef]) {
        self.work = 0;
        self.failed = None;
        for r in uncalled {
            match r {
                FnRef::Function(name) => {
                    let syms = self.syms;
                    if let Some(info) = syms.function(name) {
                        let args = vec![VarState::clean(); info.decl.params.len()];
                        self.call_decl(&info.ast, &info.decl, &info.file, args, None, true);
                    }
                }
                FnRef::Method(class, name) => {
                    // OOP-blind tools (RIPS, Pixy) do not descend into
                    // class bodies at all — encapsulated code is invisible.
                    if !self.opts.oop {
                        continue;
                    }
                    let syms = self.syms;
                    if let Some((cinfo, decl)) = syms.method(class, name) {
                        let args = vec![VarState::clean(); decl.params.len()];
                        self.call_decl(
                            &cinfo.ast,
                            decl,
                            &cinfo.file,
                            args,
                            Some(Symbol::intern(class)),
                            true,
                        );
                    }
                }
            }
            // The uncalled sweep shares one budget; a blow-up here should
            // not fail a specific file, so reset the flag but keep going.
            if self.failed.is_some() {
                self.failed = None;
                self.work = 0;
            }
        }
    }

    /// Analyzes one free function with all-clean arguments, exactly as the
    /// uncalled sweep would (`force: true`, no memo). Used by the
    /// per-function parallel pre-summarization pass: the return value is
    /// irrelevant, the interesting side effect is the entry deposited in
    /// this interpreter's summary cache.
    pub(crate) fn presummarize(&mut self, info: &crate::symbols::FnInfo) {
        self.work = 0;
        self.failed = None;
        let args = vec![VarState::clean(); info.decl.params.len()];
        self.call_decl(&info.ast, &info.decl, &info.file, args, None, true);
    }

    // ================== statements ==================

    fn exec_stmts(&mut self, a: &Arena, stmts: StmtRange, f: &mut Frame) {
        for &s in a.stmt_list(stmts) {
            if self.failed.is_some() {
                return;
            }
            self.exec_stmt(a, s, f);
        }
    }

    fn exec_stmt(&mut self, a: &Arena, stmt: php_ast::StmtId, f: &mut Frame) {
        if !self.tick() {
            return;
        }
        match a.stmt(stmt) {
            Stmt::Expr(e, _) => {
                self.eval(a, *e, f);
            }
            Stmt::Echo(es, span) => {
                for &e in a.expr_list(*es) {
                    let st = self.eval(a, e, f);
                    self.check_xss_output(a, &st, *span, "echo", e);
                }
            }
            Stmt::InlineHtml(..) => {}
            Stmt::If {
                cond,
                then,
                elseifs,
                otherwise,
                ..
            } => {
                // Evaluate every condition first (side effects, work cost).
                self.eval(a, *cond, f);
                for &(c, _) in a.elseifs(*elseifs) {
                    self.eval(a, c, f);
                }
                let mut bodies: Vec<StmtRange> = vec![*then];
                for &(_, body) in a.elseifs(*elseifs) {
                    bodies.push(body);
                }
                if let Some(body) = otherwise {
                    bodies.push(*body);
                }
                self.exec_branches(a, f, &bodies, otherwise.is_none());
            }
            Stmt::While { cond, body, .. } => {
                self.eval(a, *cond, f);
                self.exec_stmts(a, *body, f);
            }
            Stmt::DoWhile { body, cond, .. } => {
                self.exec_stmts(a, *body, f);
                self.eval(a, *cond, f);
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                for &e in a.expr_list(*init) {
                    self.eval(a, e, f);
                }
                for &e in a.expr_list(*cond) {
                    self.eval(a, e, f);
                }
                self.exec_stmts(a, *body, f);
                for &e in a.expr_list(*step) {
                    self.eval(a, e, f);
                }
            }
            Stmt::Foreach {
                subject,
                key,
                value,
                body,
                ..
            } => {
                let subj = self.eval(a, *subject, f);
                // Elements of a tainted collection are tainted; row objects
                // keep the collection's taint so `$row->field` flows.
                let mut elem = VarState {
                    taint: subj.taint,
                    sanitized_from: subj.sanitized_from,
                    object_class: None,
                    trace: subj.trace.clone(),
                };
                let step = TraceStep {
                    file: self.current_file(),
                    line: a.stmt(stmt).span().line,
                    what: format!("foreach over {}", print_expr(a, *subject)),
                };
                if elem.taint.any() {
                    self.emit_event(TaintEventKind::Propagated, step.line, &step.what);
                }
                elem.push_trace(step, self.opts.trace_limit);
                if let Some(k) = key {
                    self.assign_to(a, *k, VarState::clean(), f);
                }
                self.assign_to(a, *value, elem, f);
                self.exec_stmts(a, *body, f);
            }
            Stmt::Switch { subject, cases, .. } => {
                self.eval(a, *subject, f);
                for c in a.cases(*cases) {
                    if let Some(v) = c.value {
                        self.eval(a, v, f);
                    }
                }
                let case_list = a.cases(*cases);
                let bodies: Vec<StmtRange> = case_list.iter().map(|c| c.body).collect();
                let has_default = case_list.iter().any(|c| c.value.is_none());
                self.exec_branches(a, f, &bodies, !has_default);
            }
            Stmt::Break(_) | Stmt::Continue(_) | Stmt::Nop(_) | Stmt::Error(_) => {}
            Stmt::Return(e, _) => {
                if let Some(e) = e {
                    let st = self.eval(a, *e, f);
                    let limit = self.opts.trace_limit;
                    f.ret = std::mem::take(&mut f.ret).join(&st, limit);
                }
            }
            Stmt::Global(names, _) => {
                for &n in a.syms(*names) {
                    f.globals_decl.insert(n);
                }
            }
            Stmt::StaticVars(vars, _) => {
                for &(name, default) in a.static_vars(*vars) {
                    let st = match default {
                        Some(d) => self.eval(a, d, f),
                        None => VarState::clean(),
                    };
                    f.vars.insert(name, st);
                }
            }
            Stmt::Unset(es, _) => {
                // §III.C T_UNSET: destroying a variable untaints it.
                for &e in a.expr_list(*es) {
                    self.assign_to(a, e, VarState::clean(), f);
                }
            }
            Stmt::Throw(e, _) => {
                self.eval(a, *e, f);
            }
            Stmt::Try {
                body,
                catches,
                finally,
                ..
            } => {
                self.exec_stmts(a, *body, f);
                // Each catch may or may not run: interpret them as joined
                // branches (with the exception variable bound clean).
                let catch_list = a.catches(*catches);
                if !catch_list.is_empty() {
                    let base_frame = f.clone();
                    let base_globals = self.globals.clone();
                    let mut frames = vec![];
                    let mut globals_versions = vec![];
                    for &c in catch_list {
                        let mut b = base_frame.clone();
                        self.globals = base_globals.clone();
                        b.vars.insert(c.var, VarState::clean());
                        self.exec_stmts(a, c.body, &mut b);
                        frames.push(b);
                        globals_versions.push(std::mem::take(&mut self.globals));
                    }
                    frames.push(base_frame);
                    globals_versions.push(base_globals);
                    let limit = self.opts.trace_limit;
                    let mut merged = Env::default();
                    for g in globals_versions {
                        merged.join_from(g, limit);
                    }
                    self.globals = merged;
                    self.merge_frames(f, frames);
                }
                if let Some(fin) = finally {
                    self.exec_stmts(a, *fin, f);
                }
            }
            Stmt::Block(body, _) => self.exec_stmts(a, *body, f),
            // Declarations are collected by the symbol pass; bodies are
            // analyzed on call (or in the uncalled sweep).
            Stmt::Function(_) | Stmt::Class(_) | Stmt::ConstDecl(..) => {}
        }
    }

    /// Interprets mutually exclusive branch bodies path-insensitively:
    /// each body runs on a clone of the frame *and* of the global/property
    /// state, and the results are joined. `include_skip` adds the
    /// "no branch taken" world (an `if` without `else`).
    fn exec_branches(
        &mut self,
        a: &Arena,
        f: &mut Frame,
        bodies: &[StmtRange],
        include_skip: bool,
    ) {
        let base_frame = f.clone();
        let base_globals = self.globals.clone();
        let mut frames: Vec<Frame> = Vec::new();
        let mut globals_versions: Vec<Env> = Vec::new();
        for &body in bodies {
            let mut b = base_frame.clone();
            self.globals = base_globals.clone();
            self.exec_stmts(a, body, &mut b);
            frames.push(b);
            globals_versions.push(std::mem::take(&mut self.globals));
        }
        if include_skip {
            frames.push(base_frame);
            globals_versions.push(base_globals);
        }
        // Join globals across worlds. Branches that never wrote a global
        // still share the base snapshot and merge by pointer identity.
        let limit = self.opts.trace_limit;
        let mut merged_globals = Env::default();
        for g in globals_versions {
            merged_globals.join_from(g, limit);
        }
        self.globals = merged_globals;
        self.merge_frames(f, frames);
    }

    /// Joins branch frames back into the live frame. Untouched branch
    /// snapshots (the common case) merge without walking any entries.
    fn merge_frames(&self, f: &mut Frame, branches: Vec<Frame>) {
        let limit = self.opts.trace_limit;
        let mut merged = Env::default();
        let mut globals_decl = std::mem::take(&mut f.globals_decl);
        for b in branches {
            merged.join_from(b.vars, limit);
            globals_decl.extend(b.globals_decl);
            f.ret = std::mem::take(&mut f.ret).join(&b.ret, limit);
            f.extracted = f.extracted.join(b.extracted);
        }
        f.vars = merged;
        f.globals_decl = globals_decl;
    }

    // ================== expressions ==================

    fn eval(&mut self, a: &Arena, e: ExprId, f: &mut Frame) -> VarState {
        if !self.tick() {
            return VarState::clean();
        }
        match a.expr(e) {
            Expr::Var(name, span) => self.read_var(*name, *span, f),
            Expr::VarVar(inner, _) => {
                self.eval(a, *inner, f);
                VarState::clean()
            }
            Expr::Lit(..) | Expr::ConstFetch(..) | Expr::ClassConst(..) => VarState::clean(),
            Expr::Interp(parts, _) => {
                let limit = self.opts.trace_limit;
                let mut st = VarState::clean();
                for p in a.interp(*parts) {
                    if let InterpPart::Expr(pe) = p {
                        let ps = self.eval(a, *pe, f);
                        st = st.join(&ps, limit);
                    }
                }
                st.object_class = None;
                st
            }
            Expr::ShellExec(parts, span) => {
                let limit = self.opts.trace_limit;
                let mut st = VarState::clean();
                for p in a.interp(*parts) {
                    if let InterpPart::Expr(pe) = p {
                        let ps = self.eval(a, *pe, f);
                        st = st.join(&ps, limit);
                    }
                }
                // Backticks hand the interpolated string to the shell —
                // the same sink as `shell_exec` (which they alias).
                if st.taint.is_tainted(VulnClass::CmdInjection) {
                    let desc = print_expr(a, e);
                    self.report(VulnClass::CmdInjection, *span, "`...`", &st, desc);
                }
                st
            }
            Expr::ArrayLit(items, _) => {
                let limit = self.opts.trace_limit;
                let mut st = VarState::clean();
                for &(k, v) in a.items(*items) {
                    if let Some(k) = k {
                        self.eval(a, k, f);
                    }
                    let vs = self.eval(a, v, f);
                    st = st.join(&vs, limit);
                }
                st.object_class = None;
                st
            }
            Expr::Index(base, idx, span) => {
                if let Some(i) = idx {
                    self.eval(a, *i, f);
                }
                // Reading an element of a tainted superglobal/array yields
                // tainted data.
                let mut st = self.eval(a, *base, f);
                st.object_class = None;
                if st.taint.any() {
                    let step = TraceStep {
                        file: self.current_file(),
                        line: span.line,
                        what: format!("read {}", print_expr(a, e)),
                    };
                    self.emit_event_at(TaintEventKind::Propagated, step.line, &step.what, e);
                    st.push_trace(step, self.opts.trace_limit);
                }
                st
            }
            Expr::Prop(base, member, span) => self.read_prop(a, *base, *member, *span, f),
            Expr::StaticProp(class, prop, _) => {
                if !self.opts.oop {
                    return VarState::clean();
                }
                let class = self.resolve_class_name(*class, f);
                self.class_props
                    .get(&(class, *prop))
                    .cloned()
                    .unwrap_or_default()
            }
            Expr::Assign {
                target,
                op,
                value,
                span,
                ..
            } => {
                let (target, op, value, span) = (*target, *op, *value, *span);
                let rhs = self.eval(a, value, f);
                let mut st = if op.reads_target() {
                    // `$a .= $b` keeps the old taint of $a.
                    let old = self.eval(a, target, f);
                    if matches!(op, AssignOp::ConcatAssign) {
                        old.join(&rhs, self.opts.trace_limit)
                    } else {
                        // Arithmetic compound assignments coerce numerically.
                        VarState::clean()
                    }
                } else {
                    rhs
                };
                if st.taint.any() {
                    let step = TraceStep {
                        file: self.current_file(),
                        line: span.line,
                        what: format!(
                            "{} {} {}",
                            print_expr(a, target),
                            op.symbol(),
                            print_expr(a, value)
                        ),
                    };
                    self.emit_event_at(TaintEventKind::Propagated, step.line, &step.what, target);
                    st.push_trace(step, self.opts.trace_limit);
                }
                self.assign_to(a, target, st.clone(), f);
                st
            }
            Expr::Binary { op, lhs, rhs, .. } => {
                let (op, lhs, rhs) = (*op, *lhs, *rhs);
                let l = self.eval(a, lhs, f);
                let r = self.eval(a, rhs, f);
                match op {
                    php_ast::BinOp::Concat => {
                        let mut st = l.join(&r, self.opts.trace_limit);
                        st.object_class = None;
                        st
                    }
                    // Logical operators return booleans; arithmetic and
                    // comparisons coerce numerically — all inert.
                    _ => VarState::clean(),
                }
            }
            Expr::Unary { expr, .. } => {
                self.eval(a, *expr, f);
                VarState::clean()
            }
            Expr::IncDec { expr, .. } => {
                let expr = *expr;
                self.eval(a, expr, f);
                self.assign_to(a, expr, VarState::clean(), f);
                VarState::clean()
            }
            Expr::Call { callee, args, span } => self.eval_call(a, *callee, *args, *span, f),
            Expr::New { class, args, span } => self.eval_new(a, *class, *args, *span, f),
            Expr::Clone(e, _) => self.eval(a, *e, f),
            Expr::Ternary {
                cond,
                then,
                otherwise,
                ..
            } => {
                let (cond, then, otherwise) = (*cond, *then, *otherwise);
                let c = self.eval(a, cond, f);
                let limit = self.opts.trace_limit;
                let t = match then {
                    Some(t) => self.eval(a, t, f),
                    None => c, // `?:` returns the condition value
                };
                let o = self.eval(a, otherwise, f);
                t.join(&o, limit)
            }
            Expr::Cast(kind, inner, _) => {
                let kind = *kind;
                let st = self.eval(a, *inner, f);
                if kind.sanitizes() {
                    VarState {
                        taint: Taint::CLEAN,
                        sanitized_from: st.taint,
                        object_class: None,
                        trace: st.trace,
                    }
                } else {
                    st
                }
            }
            Expr::Isset(es, _) => {
                for &e in a.expr_list(*es) {
                    self.eval(a, e, f);
                }
                VarState::clean()
            }
            Expr::Empty(e, _) | Expr::ErrorSuppress(e, _) | Expr::Ref(e, _) => self.eval(a, *e, f),
            Expr::Print(e, span) => {
                let (e, span) = (*e, *span);
                let st = self.eval(a, e, f);
                self.check_xss_output(a, &st, span, "print", e);
                VarState::clean()
            }
            Expr::Exit(arg, span) => {
                if let (Some(arg), span) = (*arg, *span) {
                    let st = self.eval(a, arg, f);
                    self.check_xss_output(a, &st, span, "exit", arg);
                }
                VarState::clean()
            }
            Expr::Include(kind, path, span) => {
                self.eval_include(a, *kind, *path, *span, f);
                VarState::clean()
            }
            Expr::Instanceof(e, _, _) => {
                self.eval(a, *e, f);
                VarState::clean()
            }
            Expr::ListIntrinsic(items, _) => {
                for e in a.opt_exprs(*items).iter().flatten() {
                    self.eval(a, *e, f);
                }
                VarState::clean()
            }
            Expr::Closure {
                params, uses, body, ..
            } => {
                // Analyze the closure body immediately for coverage (hook
                // callbacks are usually never invoked from plugin code).
                let mut inner = Frame {
                    this_class: f.this_class,
                    ..Frame::default()
                };
                for p in a.params(*params) {
                    inner.vars.insert(p.name, VarState::clean());
                }
                for &(name, _) in a.uses(*uses) {
                    // `use` captures resolve in the enclosing scope, which
                    // at top level is the global store.
                    let st = if f.is_global || f.globals_decl.contains(&name) {
                        self.globals.get(name).cloned()
                    } else {
                        f.vars.get(name).cloned()
                    }
                    .unwrap_or_default();
                    inner.vars.insert(name, st);
                }
                self.exec_stmts(a, *body, &mut inner);
                VarState::clean()
            }
            Expr::Error(_) => VarState::clean(),
        }
    }

    /// Reads a variable, consulting superglobal config, the frame/global
    /// scope and the known-object table.
    fn read_var(&mut self, name: Symbol, span: Span, f: &mut Frame) -> VarState {
        if let Some(kind) = self.cfg.superglobal_kind(name.as_str()) {
            let step = TraceStep {
                file: self.current_file(),
                line: span.line,
                what: format!("source {name}"),
            };
            self.emit_event(TaintEventKind::Introduced, span.line, &step.what);
            return VarState::tainted(Taint::from_source(kind), step);
        }
        let use_globals = f.is_global || f.globals_decl.contains(&name);
        let existing = if use_globals {
            self.globals.get(name).cloned()
        } else {
            f.vars.get(name).cloned()
        };
        if let Some(st) = existing {
            return st;
        }
        // Well-known CMS globals resolve even without an assignment.
        if self.opts.oop {
            if let Some(class) = self.cfg.known_object_class(name.as_str()) {
                return VarState {
                    object_class: Some(Symbol::intern(class)),
                    ..VarState::clean()
                };
            }
        }
        // `extract()` on tainted data spills taint over the whole scope.
        if f.extracted.any() && name != "$this" {
            let step = TraceStep {
                file: self.current_file(),
                line: span.line,
                what: format!("{name} injected by extract()"),
            };
            self.emit_event(TaintEventKind::Introduced, span.line, &step.what);
            return VarState::tainted(f.extracted, step);
        }
        // Pixy-era register_globals: an undefined global variable can be
        // injected through the request (§V.A: half of Pixy's findings).
        if self.opts.register_globals && use_globals && name != "$this" {
            let step = TraceStep {
                file: self.current_file(),
                line: span.line,
                what: format!("register_globals {name}"),
            };
            self.emit_event(TaintEventKind::Introduced, span.line, &step.what);
            return VarState::tainted(Taint::from_source(SourceKind::Request), step);
        }
        VarState::clean()
    }

    fn write_var(&mut self, name: Symbol, st: VarState, f: &mut Frame) {
        let use_globals = f.is_global || f.globals_decl.contains(&name);
        if use_globals {
            self.globals.insert(name, st);
        } else {
            f.vars.insert(name, st);
        }
    }

    /// Resolves `self`/`static`/`parent` against the current frame.
    fn resolve_class_name(&self, class: Symbol, f: &Frame) -> Symbol {
        let lc = class.to_lowercase();
        match lc.as_str() {
            "self" | "static" => f.this_class.unwrap_or(lc),
            "parent" => f
                .this_class
                .and_then(|c| self.syms.class(c.as_str()))
                .and_then(|i| i.decl.parent)
                .map(|p| p.to_lowercase())
                .unwrap_or(lc),
            _ => lc,
        }
    }

    /// Resolves the class an object expression holds, if statically known.
    fn receiver_class(
        &mut self,
        a: &Arena,
        base: ExprId,
        f: &mut Frame,
    ) -> (VarState, Option<Symbol>) {
        let st = self.eval(a, base, f);
        if !self.opts.oop {
            return (st, None);
        }
        if let Some(c) = st.object_class {
            return (st, Some(c));
        }
        if let Expr::Var(name, _) = a.expr(base) {
            if name.as_str() == "$this" {
                return (st, f.this_class);
            }
            if let Some(c) = self.cfg.known_object_class(name.as_str()) {
                return (st, Some(Symbol::intern(c)));
            }
        }
        (st, None)
    }

    fn read_prop(
        &mut self,
        a: &Arena,
        base: ExprId,
        member: Member,
        span: Span,
        f: &mut Frame,
    ) -> VarState {
        let (base_st, class) = self.receiver_class(a, base, f);
        if !self.opts.oop {
            // OOP-blind tools miss encapsulated data entirely.
            return VarState::clean();
        }
        let pname = match member {
            Member::Name(n) => Symbol::intern(&format!("${n}")),
            Member::Dynamic(e) => {
                self.eval(a, e, f);
                return base_st; // dynamic property: fall back to object taint
            }
        };
        if let Some(c) = class {
            if let Some(st) = self.class_props.get(&(c, pname)) {
                return st.clone();
            }
        }
        // No tracked state: a field of a tainted row object is tainted.
        if base_st.taint.any() {
            let mut st = base_st;
            st.object_class = None;
            let step = TraceStep {
                file: self.current_file(),
                line: span.line,
                what: format!("read property {pname} of tainted object"),
            };
            self.emit_event(TaintEventKind::Propagated, step.line, &step.what);
            st.push_trace(step, self.opts.trace_limit);
            return st;
        }
        VarState::clean()
    }

    fn assign_to(&mut self, a: &Arena, target: ExprId, st: VarState, f: &mut Frame) {
        match a.expr(target) {
            Expr::Var(name, _) => self.write_var(*name, st, f),
            Expr::Index(base, idx, _) => {
                let (base, idx) = (*base, *idx);
                if let Some(i) = idx {
                    self.eval(a, i, f);
                }
                // Weak update: the container joins the element's state.
                let old = self.eval(a, base, f);
                let joined = old.join(&st, self.opts.trace_limit);
                self.assign_to(a, base, joined, f);
            }
            Expr::Prop(base, member, _) => {
                let (base, member) = (*base, *member);
                if !self.opts.oop {
                    return;
                }
                let (_, class) = self.receiver_class(a, base, f);
                let pname = match member {
                    Member::Name(n) => Symbol::intern(&format!("${n}")),
                    Member::Dynamic(_) => return,
                };
                let key_class = match class {
                    Some(c) => c,
                    None => match a.expr(base).as_var_name() {
                        // Track `$obj->prop` for unknown classes by variable
                        // identity so same-scope flows still connect.
                        Some(v) => Symbol::intern(&format!("var:{v}")),
                        None => return,
                    },
                };
                let entry = self.class_props.entry((key_class, pname)).or_default();
                let joined = std::mem::take(entry).join(&st, self.opts.trace_limit);
                *entry = joined;
            }
            Expr::StaticProp(class, prop, _) => {
                if !self.opts.oop {
                    return;
                }
                let class = self.resolve_class_name(*class, f);
                let entry = self.class_props.entry((class, *prop)).or_default();
                let joined = std::mem::take(entry).join(&st, self.opts.trace_limit);
                *entry = joined;
            }
            Expr::ListIntrinsic(items, _) => {
                for item in a.opt_exprs(*items).iter().flatten() {
                    self.assign_to(a, *item, st.clone(), f);
                }
            }
            Expr::Ref(inner, _) | Expr::ErrorSuppress(inner, _) => self.assign_to(a, *inner, st, f),
            _ => {}
        }
    }

    // ================== calls ==================

    fn eval_args(&mut self, a: &Arena, args: ArgRange, f: &mut Frame) -> Vec<VarState> {
        a.args(args)
            .iter()
            .map(|arg| self.eval(a, arg.value, f))
            .collect()
    }

    fn join_all(&self, states: &[VarState]) -> VarState {
        let limit = self.opts.trace_limit;
        let mut st = VarState::clean();
        for s in states {
            st = st.join(s, limit);
        }
        st
    }

    fn eval_call(
        &mut self,
        a: &Arena,
        callee: Callee,
        args: ArgRange,
        span: Span,
        f: &mut Frame,
    ) -> VarState {
        let arg_states = self.eval_args(a, args, f);
        match callee {
            Callee::Function(name) => {
                self.dispatch_named_call(a, None, name.as_str(), args, arg_states, span, f, None)
            }
            Callee::StaticMethod { class, name } => {
                let class = self.resolve_class_name(class, f);
                match name.as_name() {
                    Some(n) => {
                        self.dispatch_named_call(a, Some(class), n, args, arg_states, span, f, None)
                    }
                    None => self.join_all(&arg_states),
                }
            }
            Callee::Method { base, name } => {
                let (base_st, class) = self.receiver_class(a, base, f);
                match name.as_name() {
                    Some(n) => self.dispatch_named_call(
                        a,
                        class,
                        n,
                        args,
                        arg_states,
                        span,
                        f,
                        Some(base_st),
                    ),
                    None => {
                        let limit = self.opts.trace_limit;
                        self.join_all(&arg_states).join(&base_st, limit)
                    }
                }
            }
            Callee::Dynamic(inner) => {
                self.eval(a, inner, f);
                self.join_all(&arg_states)
            }
        }
    }

    /// The §III.C call dispatch: configuration lookups first (sinks,
    /// sources, sanitizers, reverts), then user-defined callables, then the
    /// conservative default for unknown functions.
    #[allow(clippy::too_many_arguments)]
    fn dispatch_named_call(
        &mut self,
        a: &Arena,
        receiver: Option<Symbol>,
        name: &str,
        args: ArgRange,
        arg_states: Vec<VarState>,
        span: Span,
        f: &mut Frame,
        base_state: Option<VarState>,
    ) -> VarState {
        // `as_str` hands out `&'static str`, so `rcv` does not borrow
        // `receiver` and both stay usable below.
        let rcv: Option<&str> = receiver.map(|s| s.as_str());
        let limit = self.opts.trace_limit;
        let sink_label = match rcv {
            Some(r) => format!("{r}::{name}"),
            None => name.to_string(),
        };

        // --- sink check (a call can be sink *and* source, e.g. wpdb) ---
        let sinks = self.cfg.sink_specs(rcv, name).to_vec();
        for spec in &sinks {
            let positions: Vec<usize> = match &spec.args {
                Some(p) => p.clone(),
                None => (0..arg_states.len()).collect(),
            };
            for &i in &positions {
                if let Some(st) = arg_states.get(i) {
                    if st.taint.is_tainted(spec.class) {
                        let desc = a
                            .args(args)
                            .get(i)
                            .map(|arg| print_expr(a, arg.value))
                            .unwrap_or_else(|| "?".into());
                        self.report(spec.class, span, &sink_label, st, desc);
                    }
                }
            }
        }

        // --- source ---
        if let Some(kind) = self.cfg.source_function(rcv, name) {
            let taint = if rcv.is_some() {
                Taint::from_oop_source(kind)
            } else {
                Taint::from_source(kind)
            };
            let step = TraceStep {
                file: self.current_file(),
                line: span.line,
                what: format!("source {sink_label}()"),
            };
            self.emit_event(TaintEventKind::Introduced, span.line, &step.what);
            return VarState::tainted(taint, step);
        }

        // --- sanitizer ---
        let protects = self.cfg.sanitizer_protects(rcv, name).to_vec();
        if !protects.is_empty() {
            let joined = self.join_all(&arg_states);
            let (kept, removed) = joined.taint.sanitize(&protects);
            if removed.any() && self.observing() {
                self.emit_event(
                    TaintEventKind::Sanitized,
                    span.line,
                    &format!("sanitized by {sink_label}()"),
                );
            }
            return VarState {
                taint: kept,
                sanitized_from: joined.sanitized_from.join(removed),
                object_class: None,
                trace: joined.trace,
            };
        }

        // --- revert: restores previously sanitized taint ---
        if self.cfg.is_revert(rcv, name) {
            let joined = self.join_all(&arg_states);
            let mut st = joined.clone();
            st.taint = st.taint.join(joined.sanitized_from);
            if st.taint.any() {
                let step = TraceStep {
                    file: self.current_file(),
                    line: span.line,
                    what: format!("revert {sink_label}() restores taint"),
                };
                self.emit_event(TaintEventKind::Reverted, span.line, &step.what);
                st.push_trace(step, limit);
            }
            return st;
        }

        if !sinks.is_empty() {
            // Pure sinks (echo-like functions) return nothing interesting.
            return VarState::clean();
        }

        // --- built-ins with by-reference output semantics ---
        if rcv.is_none() {
            match name.to_ascii_lowercase().as_str() {
                // `extract($arr)` spills $arr's contents over the scope.
                "extract" => {
                    if let Some(st) = arg_states.first() {
                        if st.taint.any() {
                            f.extracted = f.extracted.join(st.taint);
                        }
                    }
                    return VarState::clean();
                }
                // `parse_str($query, $result)` fills $result from $query.
                "parse_str" | "mb_parse_str" => {
                    if let (Some(src), Some(arg)) =
                        (arg_states.first(), a.args(args).get(1).copied())
                    {
                        self.assign_to(a, arg.value, src.clone(), f);
                    }
                    return VarState::clean();
                }
                // `preg_match($pat, $subject, $matches)`: capture groups
                // carry the subject's taint.
                "preg_match" | "preg_match_all" => {
                    if let (Some(subj), Some(arg)) =
                        (arg_states.get(1), a.args(args).get(2).copied())
                    {
                        self.assign_to(a, arg.value, subj.clone(), f);
                    }
                    return VarState::clean();
                }
                // `str_replace($s, $r, $subject, $count)` count is numeric.
                // (Return-taint handled by the default join below.)
                _ => {}
            }
        }

        // --- user-defined callables ---
        match receiver {
            Some(class) => {
                let syms = self.syms;
                if self.opts.oop {
                    if let Some((cinfo, decl)) = syms.method(class.as_str(), name) {
                        let mut ret = self.call_decl(
                            &cinfo.ast,
                            decl,
                            &cinfo.file,
                            arg_states,
                            Some(class),
                            false,
                        );
                        self.writeback_refs(decl, args, f);
                        if ret.taint.any() {
                            let step = TraceStep {
                                file: self.current_file(),
                                line: span.line,
                                what: format!("returned by {sink_label}()"),
                            };
                            self.emit_event(TaintEventKind::Propagated, span.line, &step.what);
                            ret.push_trace(step, limit);
                        }
                        return ret;
                    }
                }
                // Unknown method: taint flows through the object and args.
                let mut st = self.join_all(&arg_states);
                if let Some(b) = base_state {
                    st = st.join(&b, limit);
                    st.object_class = None;
                }
                st
            }
            None => {
                // A method call whose receiver class is unknown: the
                // object's own taint flows through (a formatted field of a
                // tainted DB row is still tainted).
                if let Some(b) = &base_state {
                    if b.taint.any() {
                        let mut st = self.join_all(&arg_states).join(b, limit);
                        st.object_class = None;
                        return st;
                    }
                }
                let syms = self.syms;
                if let Some(info) = syms.function(name) {
                    let mut ret =
                        self.call_decl(&info.ast, &info.decl, &info.file, arg_states, None, false);
                    self.writeback_refs(&info.decl, args, f);
                    if ret.taint.any() {
                        let step = TraceStep {
                            file: self.current_file(),
                            line: span.line,
                            what: format!("returned by {name}()"),
                        };
                        self.emit_event(TaintEventKind::Propagated, span.line, &step.what);
                        ret.push_trace(step, limit);
                    }
                    return ret;
                }
                // Unknown built-in / CMS function: conservative propagation
                // of argument taint (this is where unknown custom
                // sanitizers become false positives, as in the real tools).
                self.join_all(&arg_states)
            }
        }
    }

    /// Interprets a user-defined callable with the given argument states,
    /// memoized per (callable, argument-taint-signature). `decl`'s handles
    /// resolve against `decl_ast` — the declaring file's arena, which may
    /// differ from the caller's.
    fn call_decl(
        &mut self,
        decl_ast: &Arena,
        decl: &FunctionDecl,
        decl_file: &str,
        arg_states: Vec<VarState>,
        this_class: Option<Symbol>,
        force: bool,
    ) -> VarState {
        let key = CallKey {
            class: this_class,
            name: decl.name.to_lowercase(),
            sig: arg_states.iter().map(|s| s.taint).collect(),
        };
        if self.in_progress.contains(&key) {
            // Recursive call: cut the cycle (paper: "functions that are
            // called recursively are parsed only once").
            return VarState::clean();
        }
        // Cross-run sharing: consult the engine's summary cache after the
        // intra-run memo (memo-first keeps cached and uncached runs in
        // lockstep) and remember where to store a fresh summary. A `force`
        // call (the uncalled sweep) skips the memo but may still replay a
        // shared summary: one exists only if executing the body would be
        // observationally silent anyway.
        let mut shared_slot: Option<(Arc<SummaryCache>, SummaryKey, Vec<String>)> = None;
        if self.opts.summaries {
            if !force {
                if let Some(hit) = self.memo.get(&key) {
                    return hit.ret.clone();
                }
            }
            if this_class.is_none() {
                if let Some(cache) = self.shared.clone() {
                    if let Some(calls) = shareable_calls(decl_ast, decl) {
                        let skey = SummaryKey::new(decl_ast, decl, &arg_states);
                        if let Some(sum) = cache.get(&skey) {
                            // Replay only if the recorded built-in calls are
                            // still unshadowed here and spending the stored
                            // work cannot trip this entry's budget (a
                            // borderline run executes for real instead).
                            let applies = sum.calls.iter().all(|n| self.syms.function(n).is_none())
                                && self.work + sum.work <= self.opts.work_limit;
                            if applies {
                                self.work += sum.work;
                                let ret = VarState::clean();
                                self.memo.insert(key, CallResult { ret: ret.clone() });
                                return ret;
                            }
                        }
                        shared_slot = Some((cache, skey, calls));
                    }
                }
            }
        }
        let vulns_before = self.vulns.len();
        let work_before = self.work;
        let failed_before = self.failed.is_some();
        self.in_progress.insert(key.clone());

        let mut frame = Frame {
            this_class,
            ..Frame::default()
        };
        for (i, p) in decl_ast.params(decl.params).iter().enumerate() {
            let st = match arg_states.get(i) {
                Some(s) => s.clone(),
                None => match p.default {
                    Some(d) => self.eval(decl_ast, d, &mut frame),
                    None => VarState::clean(),
                },
            };
            frame.vars.insert(p.name, st);
        }
        self.file_stack.push(Symbol::intern(decl_file));
        self.exec_stmts(decl_ast, decl.body, &mut frame);
        self.file_stack.pop();

        let mut ret = std::mem::take(&mut frame.ret);
        ret.trace.truncate(self.opts.trace_limit);

        self.in_progress.remove(&key);
        if self.opts.summaries {
            self.memo.insert(key, CallResult { ret: ret.clone() });
        }
        if let Some((cache, skey, calls)) = shared_slot {
            // Record for other runs only when the execution was fully
            // inert: nothing reported, a clean return, no budget failure,
            // and every called name resolved to a built-in.
            let inert = self.vulns.len() == vulns_before
                && ret == VarState::clean()
                && !failed_before
                && self.failed.is_none()
                && calls.iter().all(|n| self.syms.function(n).is_none());
            if inert {
                cache.insert(
                    skey,
                    SharedSummary {
                        work: self.work - work_before,
                        calls,
                    },
                );
            }
        }
        ret
    }

    /// Conservative by-reference write-back: a by-ref parameter of a user
    /// function may have been assigned anything inside; we approximate by
    /// leaving the argument's state unchanged unless the callee is a known
    /// sanitizing pattern (kept simple: no-op). Kept as a hook for the
    /// ablation benches.
    fn writeback_refs(&mut self, _decl: &FunctionDecl, _args: ArgRange, _f: &mut Frame) {}

    fn eval_new(
        &mut self,
        a: &Arena,
        class: Member,
        args: ArgRange,
        span: Span,
        f: &mut Frame,
    ) -> VarState {
        let arg_states = self.eval_args(a, args, f);
        let cname = match class {
            Member::Name(n) => self.resolve_class_name(n, f),
            Member::Dynamic(e) => {
                self.eval(a, e, f);
                return VarState::clean();
            }
        };
        if !self.opts.oop {
            return VarState::clean();
        }
        // Run the constructor if the class is user-defined.
        let syms = self.syms;
        let ctor = syms
            .method(cname.as_str(), "__construct")
            .or_else(|| syms.method(cname.as_str(), cname.as_str()));
        if let Some((cinfo, decl)) = ctor {
            self.call_decl(
                &cinfo.ast,
                decl,
                &cinfo.file,
                arg_states,
                Some(cname),
                false,
            );
        }
        let mut st = VarState::clean();
        st.object_class = Some(cname);
        st.push_trace(
            TraceStep {
                file: self.current_file(),
                line: span.line,
                what: format!("new {cname}"),
            },
            self.opts.trace_limit,
        );
        st
    }

    // ================== includes ==================

    fn eval_include(
        &mut self,
        a: &Arena,
        kind: IncludeKind,
        path_expr: ExprId,
        _span: Span,
        f: &mut Frame,
    ) {
        // Evaluate for side effects regardless (taint through the path is a
        // file-inclusion issue, out of scope for XSS/SQLi).
        self.eval(a, path_expr, f);
        if !self.opts.resolve_includes {
            return;
        }
        let Some(raw) = self.const_string(a, path_expr) else {
            return;
        };
        let Some(file) = self.project.find_file(&raw) else {
            return;
        };
        let path = file.path.clone();
        let once = matches!(kind, IncludeKind::IncludeOnce | IncludeKind::RequireOnce);
        if once && self.included_once.contains(&path) {
            return;
        }
        if self.include_depth >= self.opts.max_include_depth {
            if self.failed.is_none() {
                self.failed = Some(format!(
                    "include depth {} exceeded at {}",
                    self.opts.max_include_depth, path
                ));
            }
            return;
        }
        self.included_once.insert(path.clone());
        let Some(ast) = self.parsed.get(&path).cloned() else {
            return;
        };
        self.include_depth += 1;
        self.file_stack.push(Symbol::intern(&path));
        // PHP executes includes in the calling scope.
        self.exec_stmts(&ast, ast.top, f);
        self.file_stack.pop();
        self.include_depth -= 1;
    }

    /// Best-effort constant evaluation of an include path.
    fn const_string(&self, a: &Arena, e: ExprId) -> Option<String> {
        match a.expr(e) {
            Expr::Lit(Lit::Str(s), _) => Some(s.as_str().to_string()),
            Expr::Binary {
                op: php_ast::BinOp::Concat,
                lhs,
                rhs,
                ..
            } => {
                let l = self.const_string(a, *lhs)?;
                let r = self.const_string(a, *rhs)?;
                Some(l + &r)
            }
            Expr::ConstFetch(n, _) if n.as_str() == "__FILE__" => {
                Some(self.current_file().to_string())
            }
            Expr::ConstFetch(n, _) if n.as_str().to_ascii_uppercase().ends_with("_DIR") => {
                // Plugin-dir constants resolve to the plugin root.
                Some(String::new())
            }
            Expr::Call {
                callee: Callee::Function(name),
                args,
                ..
            } => match name.as_str().to_ascii_lowercase().as_str() {
                "dirname" => {
                    let inner = self.const_string(a, a.args(*args).first()?.value)?;
                    match inner.rfind('/') {
                        Some(i) => Some(inner[..i].to_string()),
                        None => Some(String::new()),
                    }
                }
                "plugin_dir_path" | "plugin_dir_url" | "trailingslashit" => Some(String::new()),
                _ => None,
            },
            Expr::Interp(parts, _) => {
                let mut out = String::new();
                for p in a.interp(*parts) {
                    match p {
                        InterpPart::Lit(s) => out.push_str(s.as_str()),
                        InterpPart::Expr(_) => return None,
                    }
                }
                Some(out)
            }
            Expr::ErrorSuppress(inner, _) => self.const_string(a, *inner),
            _ => None,
        }
    }

    // ================== reporting ==================

    fn check_xss_output(&mut self, a: &Arena, st: &VarState, span: Span, sink: &str, expr: ExprId) {
        if st.taint.is_tainted(VulnClass::Xss) {
            let desc = print_expr(a, expr);
            self.report(VulnClass::Xss, span, sink, st, desc);
        }
    }

    /// Whether taint transitions have an audience: the `--explain` event
    /// buffer, the taint-graph recorder, or both.
    fn observing(&self) -> bool {
        phpsafe_obs::events_enabled() || self.recorder.is_some()
    }

    /// Forwards one taint transition to the observability event buffer
    /// (`--explain`) and, in graph mode, to the recorder. `detail` matches
    /// the wording of the data-flow trace step recorded at the same site,
    /// so events, traces and graph nodes correlate.
    fn emit_event(&self, kind: TaintEventKind, line: u32, detail: &str) {
        self.emit_event_with(kind, line, detail, None);
    }

    /// [`Interp::emit_event`] with arena provenance for sites where the
    /// observed expression handle is in hand.
    fn emit_event_at(&self, kind: TaintEventKind, line: u32, detail: &str, expr: ExprId) {
        self.emit_event_with(kind, line, detail, Some(expr.provenance()));
    }

    fn emit_event_with(&self, kind: TaintEventKind, line: u32, detail: &str, expr: Option<u32>) {
        if phpsafe_obs::events_enabled() {
            phpsafe_obs::emit(kind, self.current_file().as_str(), line, detail.to_string());
        }
        if let Some(rec) = &self.recorder {
            rec.borrow_mut()
                .observe(kind, self.current_file(), line, detail, expr);
        }
    }

    fn report(&mut self, class: VulnClass, span: Span, sink: &str, st: &VarState, var: String) {
        let Some(kind) = st.taint.kind_for(class) else {
            return;
        };
        if self.observing() {
            self.emit_event(
                TaintEventKind::SinkHit,
                span.line,
                &format!("{var} reaches {sink}"),
            );
        }
        self.vulns.push(Vulnerability {
            class,
            file: self.current_file().to_string(),
            line: span.line,
            sink: sink.to_string(),
            var: var.clone(),
            source_kind: kind,
            labels: st.taint.labels_for(class),
            via_oop: st.taint.oop,
            numeric_hint: numeric_intent(&var),
            trace: st.trace.clone(),
        });
        if let Some(rec) = &self.recorder {
            let v = self.vulns.last().expect("just pushed");
            rec.borrow_mut().record_sink(
                SinkInfo {
                    class: v.class,
                    file: &v.file,
                    line: v.line,
                    sink: &v.sink,
                    var: &v.var,
                    source_kind: v.source_kind,
                    labels: v.labels,
                    via_oop: v.via_oop,
                    numeric_hint: v.numeric_hint,
                },
                v.trace.iter().map(|s| (s.file, s.line, s.what.as_str())),
            );
        }
    }
}
