//! # phpsafe
//!
//! A Rust reproduction of **phpSAFE** — the OOP-aware static taint analyzer
//! for PHP web-application plugins from Nunes, Fonseca & Vieira, *phpSAFE: A
//! Security Analysis Tool for OOP Web Application Plugins* (DSN 2015).
//!
//! phpSAFE finds **XSS** and **SQL injection** vulnerabilities in CMS
//! plugins, including plugins written with object-oriented PHP — the
//! capability that distinguishes it from the free tools of its era (RIPS,
//! Pixy). The pipeline mirrors the paper's four stages:
//!
//! 1. **Configuration** — [`taint_config::TaintConfig`] supplies sources,
//!    sanitizers, revert functions and sinks (generic PHP + WordPress).
//! 2. **Model construction** — files are tokenized ([`php_lexer`]) and
//!    parsed ([`php_ast`]); [`symbols::SymbolTable`] collects user
//!    functions/classes and the functions never called from plugin code.
//! 3. **Analysis** — an inter-procedural, context-aware, OOP-resolving
//!    taint interpreter follows data from sources to sinks.
//! 4. **Results processing** — [`AnalysisOutcome`] carries deduplicated
//!    [`Vulnerability`] records with data-flow traces, per-file robustness
//!    reports and statistics, serializable to JSON.
//!
//! ```
//! use phpsafe::{PhpSafe, PluginProject, SourceFile};
//!
//! let plugin = PluginProject::new("mail-subscribe-list").with_file(SourceFile::new(
//!     "list.php",
//!     r#"<?php
//!     $results = $wpdb->get_results("SELECT * FROM " . $wpdb->prefix . "sml");
//!     foreach ($results as $row) { echo $row->sml_name; }
//!     "#,
//! ));
//! let outcome = PhpSafe::new().analyze(&plugin);
//! assert_eq!(outcome.vulns.len(), 1);
//! assert!(outcome.vulns[0].via_oop);
//! ```

#![warn(missing_docs)]

mod analyzer;
pub mod caching;
mod depgraph;
mod env;
pub mod explain;
mod html;
mod inspect;
mod interp;
mod persist;
mod project;
mod report;
pub mod server;
pub mod symbols;
pub mod taint;

pub use analyzer::{AnalyzerOptions, PhpSafe};
pub use caching::{CacheTotals, EngineCaches, ProjectGraph};
pub use explain::{explain_outcome, explain_vuln};
pub use html::{escape_html, render_html};
pub use inspect::{inspect, FileInventory, Inspection};
pub use project::{collect_files, load_project, PluginProject, SourceFile};
pub use report::{
    numeric_intent, AnalysisOutcome, AnalysisStats, FileFailure, FileReport, Vulnerability,
};
pub use server::{AnalysisServer, ServeTool};
