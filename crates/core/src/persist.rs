//! Binary (de)serialization of per-tool summary caches for the
//! persistent artifact store.
//!
//! One blob per tool: every [`SummaryKey`] → [`SharedSummary`] pair the
//! run accumulated, written through `phpsafe-engine`'s disk cache under
//! the `summary` namespace, keyed by the tool name and fingerprinted by
//! the tool's configuration (see `PhpSafe::fingerprint`) so any profile
//! or option change invalidates the blob wholesale.
//!
//! The codec reuses `php_ast::codec`'s bounds-checked [`Reader`] /
//! [`Writer`], so a truncated or garbled blob decodes to a `CodecError`
//! and the caller falls back to an empty cache — never a panic.

use crate::caching::{ProjectGraph, SharedSummary, SummaryKey};
use crate::report::{AnalysisStats, FileFailure, FileReport};
use crate::taint::Taint;
use php_ast::codec::{CodecError, Reader, Writer};
use std::sync::Arc;
use taint_config::{TaintLabels, VulnClass};

/// Bumped on any change to the encoding below.
/// v2: per-class label bitsets replaced the two per-class source kinds.
const VERSION: u8 = 2;

// Taint encoding: most values are either untainted or carry the same
// label set in every class slot (a raw source that no class-specific
// sanitizer has touched yet), so those two shapes get short forms.
const TAINT_EMPTY: u8 = 0;
const TAINT_UNIFORM: u8 = 1;
const TAINT_PER_CLASS: u8 = 2;

fn enc_taint(w: &mut Writer, t: Taint) {
    if t.labels.iter().all(|l| l.is_empty()) {
        w.u8(TAINT_EMPTY);
    } else if t.labels.iter().all(|l| *l == t.labels[0]) {
        w.u8(TAINT_UNIFORM);
        w.u32(t.labels[0].0 as u32);
    } else {
        w.u8(TAINT_PER_CLASS);
        for l in &t.labels {
            w.u32(l.0 as u32);
        }
    }
    w.bool(t.oop);
}

fn dec_labels(r: &mut Reader) -> Result<TaintLabels, CodecError> {
    let bits = r.u32()?;
    if bits > u16::MAX as u32 {
        return Err(CodecError {
            what: "invalid taint label bits",
            at: r.offset(),
        });
    }
    Ok(TaintLabels(bits as u16))
}

fn dec_taint(r: &mut Reader) -> Result<Taint, CodecError> {
    let mut labels = [TaintLabels::EMPTY; VulnClass::COUNT];
    match r.u8()? {
        TAINT_EMPTY => {}
        TAINT_UNIFORM => {
            let l = dec_labels(r)?;
            labels = [l; VulnClass::COUNT];
        }
        TAINT_PER_CLASS => {
            for slot in &mut labels {
                *slot = dec_labels(r)?;
            }
        }
        _ => {
            return Err(CodecError {
                what: "invalid taint shape tag",
                at: r.offset(),
            })
        }
    }
    Ok(Taint {
        labels,
        oop: r.bool()?,
    })
}

/// Encodes a snapshot of one tool's summary cache.
pub(crate) fn encode_summaries(entries: &[(SummaryKey, Arc<SharedSummary>)]) -> Vec<u8> {
    // Sort for a deterministic blob: the cache map iterates in hash order.
    let mut ordered: Vec<&(SummaryKey, Arc<SharedSummary>)> = entries.iter().collect();
    ordered.sort_by_key(|(k, _)| (k.decl_fp, format!("{:?}", k.sig)));
    let mut w = Writer::new();
    w.u8(VERSION);
    w.u32(ordered.len() as u32);
    for (key, summary) in ordered {
        w.u64(key.decl_fp);
        w.u32(key.sig.len() as u32);
        for &(taint, sanitized) in &key.sig {
            enc_taint(&mut w, taint);
            enc_taint(&mut w, sanitized);
        }
        w.u64(summary.work);
        w.u32(summary.calls.len() as u32);
        for call in &summary.calls {
            w.str(call);
        }
    }
    w.into_bytes()
}

/// Decodes a blob previously produced by [`encode_summaries`].
pub(crate) fn decode_summaries(
    bytes: &[u8],
) -> Result<Vec<(SummaryKey, SharedSummary)>, CodecError> {
    let mut r = Reader::new(bytes);
    if r.u8()? != VERSION {
        return Err(CodecError {
            what: "unsupported summary codec version",
            at: 0,
        });
    }
    let count = r.u32()? as usize;
    if count > bytes.len() {
        return Err(CodecError {
            what: "summary count exceeds input",
            at: r.offset(),
        });
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let decl_fp = r.u64()?;
        let n_sig = r.u32()? as usize;
        if n_sig > bytes.len() {
            return Err(CodecError {
                what: "signature length exceeds input",
                at: r.offset(),
            });
        }
        let mut sig = Vec::with_capacity(n_sig);
        for _ in 0..n_sig {
            let taint = dec_taint(&mut r)?;
            let sanitized = dec_taint(&mut r)?;
            sig.push((taint, sanitized));
        }
        let work = r.u64()?;
        let n_calls = r.u32()? as usize;
        if n_calls > bytes.len() {
            return Err(CodecError {
                what: "call list length exceeds input",
                at: r.offset(),
            });
        }
        let mut calls = Vec::with_capacity(n_calls);
        for _ in 0..n_calls {
            calls.push(r.str()?);
        }
        out.push((SummaryKey { decl_fp, sig }, SharedSummary { work, calls }));
    }
    if !r.is_at_end() {
        return Err(CodecError {
            what: "trailing bytes after summaries",
            at: r.offset(),
        });
    }
    Ok(out)
}

// ------------------------------------------------------- project graphs

/// Bumped on any change to the project-graph wrapper encoding below (the
/// embedded graph carries its own version byte).
const GRAPH_VERSION: u8 = 1;

fn enc_failure(w: &mut Writer, failure: &Option<FileFailure>) {
    match failure {
        None => w.u8(0),
        Some(FileFailure::ResourceLimit(msg)) => {
            w.u8(1);
            w.str(msg);
        }
        Some(FileFailure::Unsupported(msg)) => {
            w.u8(2);
            w.str(msg);
        }
    }
}

fn dec_failure(r: &mut Reader) -> Result<Option<FileFailure>, CodecError> {
    Ok(match r.u8()? {
        0 => None,
        1 => Some(FileFailure::ResourceLimit(r.str()?)),
        2 => Some(FileFailure::Unsupported(r.str()?)),
        _ => {
            return Err(CodecError {
                what: "invalid file failure tag",
                at: r.offset(),
            })
        }
    })
}

/// Encodes one [`ProjectGraph`] for the disk cache's `graph` namespace:
/// the file reports and statistics of the recording walk, then the graph
/// itself through `phpsafe_dataflow`'s codec.
pub(crate) fn encode_project_graph(pg: &ProjectGraph) -> Vec<u8> {
    let mut w = Writer::new();
    w.u8(GRAPH_VERSION);
    w.u32(pg.files.len() as u32);
    for f in &pg.files {
        w.str(&f.path);
        w.u64(f.loc as u64);
        w.u64(f.parse_errors as u64);
        enc_failure(&mut w, &f.failure);
    }
    let s = &pg.stats;
    w.u64(s.files_ok as u64);
    w.u64(s.files_failed as u64);
    w.u64(s.loc as u64);
    w.u64(s.functions as u64);
    w.u64(s.classes as u64);
    w.u64(s.uncalled_functions as u64);
    w.u64(s.work_units);
    phpsafe_dataflow::encode_graph_into(&mut w, &pg.graph);
    w.into_bytes()
}

/// Decodes a blob previously produced by [`encode_project_graph`].
pub(crate) fn decode_project_graph(bytes: &[u8]) -> Result<ProjectGraph, CodecError> {
    let mut r = Reader::new(bytes);
    if r.u8()? != GRAPH_VERSION {
        return Err(CodecError {
            what: "unsupported project graph version",
            at: 0,
        });
    }
    let n_files = r.u32()? as usize;
    if n_files > bytes.len() {
        return Err(CodecError {
            what: "file report count exceeds input",
            at: r.offset(),
        });
    }
    let mut files = Vec::with_capacity(n_files);
    for _ in 0..n_files {
        files.push(FileReport {
            path: r.str()?,
            loc: r.u64()? as usize,
            parse_errors: r.u64()? as usize,
            failure: dec_failure(&mut r)?,
        });
    }
    let stats = AnalysisStats {
        files_ok: r.u64()? as usize,
        files_failed: r.u64()? as usize,
        loc: r.u64()? as usize,
        functions: r.u64()? as usize,
        classes: r.u64()? as usize,
        uncalled_functions: r.u64()? as usize,
        work_units: r.u64()?,
    };
    let graph = phpsafe_dataflow::decode_graph_from(&mut r)?;
    if !r.is_at_end() {
        return Err(CodecError {
            what: "trailing bytes after project graph",
            at: r.offset(),
        });
    }
    Ok(ProjectGraph {
        graph,
        files,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<(SummaryKey, Arc<SharedSummary>)> {
        use taint_config::SourceKind;
        // XSS carries a GET label, SQLi a DB label, other classes both.
        let tainted = Taint::from_oop_source(SourceKind::Get)
            .sanitize(&[VulnClass::Sqli])
            .0
            .join(
                Taint::from_oop_source(SourceKind::Database)
                    .sanitize(&[VulnClass::Xss])
                    .0,
            );
        vec![
            (
                SummaryKey {
                    decl_fp: 7,
                    sig: vec![(Taint::default(), tainted)],
                },
                Arc::new(SharedSummary {
                    work: 42,
                    calls: vec!["trim".into(), "strtolower".into()],
                }),
            ),
            (
                SummaryKey {
                    decl_fp: 9,
                    sig: vec![],
                },
                Arc::new(SharedSummary {
                    work: 1,
                    calls: vec![],
                }),
            ),
        ]
    }

    #[test]
    fn roundtrip_preserves_entries() {
        let entries = sample();
        let blob = encode_summaries(&entries);
        let back = decode_summaries(&blob).unwrap();
        assert_eq!(back.len(), entries.len());
        // The blob is sorted by key; compare as sets.
        for (key, summary) in &entries {
            let found = back.iter().find(|(k, _)| k == key).expect("key survives");
            assert_eq!(found.1.work, summary.work);
            assert_eq!(found.1.calls, summary.calls);
        }
    }

    #[test]
    fn blob_is_deterministic_regardless_of_entry_order() {
        let mut entries = sample();
        let a = encode_summaries(&entries);
        entries.reverse();
        let b = encode_summaries(&entries);
        assert_eq!(a, b);
    }

    #[test]
    fn truncations_fail_cleanly() {
        let blob = encode_summaries(&sample());
        for cut in 0..blob.len() {
            assert!(decode_summaries(&blob[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn garbage_fails() {
        assert!(decode_summaries(b"").is_err());
        assert!(decode_summaries(b"\xff\xff\xff\xff").is_err());
    }

    fn sample_project_graph() -> ProjectGraph {
        use phpsafe_dataflow::{Recorder, SinkInfo};
        use phpsafe_intern::Symbol;
        use phpsafe_obs::TaintEventKind;
        use taint_config::SourceKind;

        let file = Symbol::intern("persist.php");
        let mut rec = Recorder::new();
        rec.observe(
            TaintEventKind::Introduced,
            file,
            2,
            "$a tainted by source $_GET",
            Some(4),
        );
        rec.observe(TaintEventKind::Propagated, file, 3, "$b = $a", None);
        rec.observe(
            TaintEventKind::SinkHit,
            file,
            4,
            "echo receives tainted $b",
            None,
        );
        rec.record_sink(
            SinkInfo {
                class: VulnClass::Xss,
                file: "persist.php",
                line: 4,
                sink: "echo",
                var: "$b",
                source_kind: SourceKind::Get,
                labels: TaintLabels::single(SourceKind::Get),
                via_oop: true,
                numeric_hint: false,
            },
            [
                (file, 2, "$a tainted by source $_GET"),
                (file, 3, "$b = $a"),
                (file, 4, "echo receives tainted $b"),
            ]
            .into_iter(),
        );
        ProjectGraph {
            graph: rec.finish(),
            files: vec![
                FileReport {
                    path: "persist.php".into(),
                    loc: 4,
                    parse_errors: 0,
                    failure: None,
                },
                FileReport {
                    path: "heavy.php".into(),
                    loc: 900,
                    parse_errors: 1,
                    failure: Some(FileFailure::ResourceLimit("work limit".into())),
                },
                FileReport {
                    path: "odd.php".into(),
                    loc: 7,
                    parse_errors: 0,
                    failure: Some(FileFailure::Unsupported("eval".into())),
                },
            ],
            stats: AnalysisStats {
                files_ok: 1,
                files_failed: 2,
                loc: 911,
                functions: 3,
                classes: 1,
                uncalled_functions: 2,
                work_units: 321,
            },
        }
    }

    #[test]
    fn project_graph_roundtrips() {
        let pg = sample_project_graph();
        let blob = encode_project_graph(&pg);
        let back = decode_project_graph(&blob).unwrap();
        assert_eq!(back, pg);
    }

    #[test]
    fn project_graph_blob_is_deterministic() {
        let pg = sample_project_graph();
        assert_eq!(encode_project_graph(&pg), encode_project_graph(&pg));
    }

    #[test]
    fn project_graph_truncations_fail_cleanly() {
        let blob = encode_project_graph(&sample_project_graph());
        for cut in 0..blob.len() {
            assert!(decode_project_graph(&blob[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn project_graph_garbage_fails() {
        assert!(decode_project_graph(b"").is_err());
        assert!(decode_project_graph(b"\xff\xff\xff\xff\xff\xff").is_err());
        let mut blob = encode_project_graph(&sample_project_graph());
        blob.push(0);
        assert!(decode_project_graph(&blob).is_err(), "trailing byte");
    }
}
