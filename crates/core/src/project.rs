//! Plugin projects: the unit of analysis. A project is a named collection of
//! PHP source files, mirroring a WordPress plugin directory.

use serde::{Deserialize, Serialize};

/// One PHP source file of a plugin.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SourceFile {
    /// Plugin-relative path, e.g. `includes/admin.php`.
    pub path: String,
    /// Full file contents.
    pub content: String,
}

impl SourceFile {
    /// Creates a source file.
    pub fn new(path: impl Into<String>, content: impl Into<String>) -> Self {
        SourceFile {
            path: path.into(),
            content: content.into(),
        }
    }

    /// Non-blank lines of code (the paper's LOC measure).
    pub fn loc(&self) -> usize {
        php_lexer::count_loc(&self.content)
    }
}

/// A plugin project: what phpSAFE receives as input.
///
/// # Examples
///
/// ```
/// use phpsafe::{PluginProject, SourceFile};
///
/// let p = PluginProject::new("my-plugin")
///     .with_file(SourceFile::new("my-plugin.php", "<?php echo 'hi';"));
/// assert_eq!(p.files().len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PluginProject {
    name: String,
    files: Vec<SourceFile>,
}

impl PluginProject {
    /// Creates an empty project.
    pub fn new(name: impl Into<String>) -> Self {
        PluginProject {
            name: name.into(),
            files: Vec::new(),
        }
    }

    /// Adds a file (builder style).
    pub fn with_file(mut self, file: SourceFile) -> Self {
        self.files.push(file);
        self
    }

    /// Adds a file in place.
    pub fn push_file(&mut self, file: SourceFile) {
        self.files.push(file);
    }

    /// Project (plugin) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The project's files.
    pub fn files(&self) -> &[SourceFile] {
        &self.files
    }

    /// Finds a file whose path ends with `suffix` (include resolution
    /// matches loosely, as paths are built with `dirname(__FILE__)` jumbles).
    pub fn find_file(&self, suffix: &str) -> Option<&SourceFile> {
        let needle = suffix.trim_start_matches("./").trim_start_matches('/');
        self.files
            .iter()
            .find(|f| f.path == needle)
            .or_else(|| self.files.iter().find(|f| f.path.ends_with(needle)))
    }

    /// Total non-blank LOC across all files.
    pub fn total_loc(&self) -> usize {
        self.files.iter().map(|f| f.loc()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_file_matches_exact_then_suffix() {
        let p = PluginProject::new("p")
            .with_file(SourceFile::new("a.php", ""))
            .with_file(SourceFile::new("inc/a.php", ""))
            .with_file(SourceFile::new("inc/b.php", ""));
        assert_eq!(p.find_file("a.php").unwrap().path, "a.php");
        assert_eq!(p.find_file("inc/b.php").unwrap().path, "inc/b.php");
        assert_eq!(p.find_file("./b.php").unwrap().path, "inc/b.php");
        assert!(p.find_file("missing.php").is_none());
    }

    #[test]
    fn loc_counts_nonblank() {
        let f = SourceFile::new("x.php", "<?php\n\n$a = 1;\n");
        assert_eq!(f.loc(), 2);
        let p = PluginProject::new("p").with_file(f);
        assert_eq!(p.total_loc(), 2);
    }
}
