//! Plugin projects: the unit of analysis. A project is a named collection of
//! PHP source files, mirroring a WordPress plugin directory, plus the
//! filesystem loader every front end (batch CLI, daemon) shares.

use serde::{Deserialize, Serialize};
use std::path::Path;

/// One PHP source file of a plugin.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SourceFile {
    /// Plugin-relative path, e.g. `includes/admin.php`.
    pub path: String,
    /// Full file contents.
    pub content: String,
}

impl SourceFile {
    /// Creates a source file.
    pub fn new(path: impl Into<String>, content: impl Into<String>) -> Self {
        SourceFile {
            path: path.into(),
            content: content.into(),
        }
    }

    /// Non-blank lines of code (the paper's LOC measure).
    pub fn loc(&self) -> usize {
        php_lexer::count_loc(&self.content)
    }
}

/// A plugin project: what phpSAFE receives as input.
///
/// # Examples
///
/// ```
/// use phpsafe::{PluginProject, SourceFile};
///
/// let p = PluginProject::new("my-plugin")
///     .with_file(SourceFile::new("my-plugin.php", "<?php echo 'hi';"));
/// assert_eq!(p.files().len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PluginProject {
    name: String,
    files: Vec<SourceFile>,
}

impl PluginProject {
    /// Creates an empty project.
    pub fn new(name: impl Into<String>) -> Self {
        PluginProject {
            name: name.into(),
            files: Vec::new(),
        }
    }

    /// Adds a file (builder style).
    pub fn with_file(mut self, file: SourceFile) -> Self {
        self.files.push(file);
        self
    }

    /// Adds a file in place.
    pub fn push_file(&mut self, file: SourceFile) {
        self.files.push(file);
    }

    /// Project (plugin) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The project's files.
    pub fn files(&self) -> &[SourceFile] {
        &self.files
    }

    /// Finds a file whose path ends with `suffix` (include resolution
    /// matches loosely, as paths are built with `dirname(__FILE__)` jumbles).
    pub fn find_file(&self, suffix: &str) -> Option<&SourceFile> {
        let needle = suffix.trim_start_matches("./").trim_start_matches('/');
        self.files
            .iter()
            .find(|f| f.path == needle)
            .or_else(|| self.files.iter().find(|f| f.path.ends_with(needle)))
    }

    /// Replaces the content of the file at `path` (exact project-relative
    /// match), or inserts a new file at its sorted position — so a project
    /// with an unsaved editor buffer overlaid is indistinguishable from
    /// loading a directory where that buffer had been saved, and analysis
    /// results (which iterate files in path order) stay byte-identical.
    pub fn overlay_file(&mut self, path: &str, content: &str) {
        if let Some(f) = self.files.iter_mut().find(|f| f.path == path) {
            f.content = content.to_owned();
            return;
        }
        let at = self.files.partition_point(|f| f.path.as_str() < path);
        self.files.insert(at, SourceFile::new(path, content));
    }

    /// Total non-blank LOC across all files.
    pub fn total_loc(&self) -> usize {
        self.files.iter().map(|f| f.loc()).sum()
    }

    /// A stable 64-bit fingerprint of the project contents: the name plus
    /// every `(path, content)` pair in path order. Two projects fingerprint
    /// equal iff an analysis cannot distinguish them, so the daemon keys
    /// rendered responses on this.
    pub fn content_fingerprint(&self) -> u64 {
        let mut indexed: Vec<(&str, &str)> = self
            .files
            .iter()
            .map(|f| (f.path.as_str(), f.content.as_str()))
            .collect();
        indexed.sort();
        let mut acc = phpsafe_engine::fnv1a_64(self.name.as_bytes());
        for (path, content) in indexed {
            acc = phpsafe_engine::fnv1a_64_extend(acc, b"\x1e");
            acc = phpsafe_engine::fnv1a_64_extend(acc, path.as_bytes());
            acc = phpsafe_engine::fnv1a_64_extend(acc, b"\x1f");
            acc = phpsafe_engine::fnv1a_64_extend(acc, content.as_bytes());
        }
        acc
    }

    /// The project's [`ContentKey`]: the content fingerprint plus total
    /// content length. Persistent caches (daemon responses, taint graphs)
    /// key project-level artifacts on this.
    ///
    /// [`ContentKey`]: phpsafe_engine::ContentKey
    pub fn content_key(&self) -> phpsafe_engine::ContentKey {
        phpsafe_engine::ContentKey {
            hash: self.content_fingerprint(),
            len: self.files.iter().map(|f| f.content.len() as u64).sum(),
        }
    }
}

/// Collects `.php`-family files under `root` (recursively), with paths
/// relative to `root` and sorted for deterministic project contents. A
/// single-file `root` becomes a one-file project.
pub fn collect_files(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    fn is_php(p: &Path) -> bool {
        matches!(
            p.extension().and_then(|e| e.to_str()),
            Some("php" | "inc" | "module" | "phtml")
        )
    }
    let mut out = Vec::new();
    if root.is_file() {
        let content = std::fs::read_to_string(root)?;
        let name = root
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "input.php".into());
        out.push(SourceFile::new(name, content));
        return Ok(out);
    }
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<_> = std::fs::read_dir(&dir)?.collect::<Result<_, _>>()?;
        entries.sort_by_key(|e| e.path());
        for entry in entries {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if is_php(&path) {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .to_string_lossy()
                    .replace('\\', "/");
                match std::fs::read_to_string(&path) {
                    Ok(content) => out.push(SourceFile::new(rel, content)),
                    Err(e) => eprintln!("warning: skipping {}: {e}", path.display()),
                }
            }
        }
    }
    out.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(out)
}

/// Loads one filesystem path (a plugin directory or a single PHP file) as
/// a plugin project named after the path's final component.
pub fn load_project(path: &Path) -> Result<PluginProject, String> {
    let files = collect_files(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    if files.is_empty() {
        return Err(format!("no PHP files found under {}", path.display()));
    }
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "plugin".into());
    let mut project = PluginProject::new(name);
    for f in files {
        project.push_file(f);
    }
    Ok(project)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_file_matches_exact_then_suffix() {
        let p = PluginProject::new("p")
            .with_file(SourceFile::new("a.php", ""))
            .with_file(SourceFile::new("inc/a.php", ""))
            .with_file(SourceFile::new("inc/b.php", ""));
        assert_eq!(p.find_file("a.php").unwrap().path, "a.php");
        assert_eq!(p.find_file("inc/b.php").unwrap().path, "inc/b.php");
        assert_eq!(p.find_file("./b.php").unwrap().path, "inc/b.php");
        assert!(p.find_file("missing.php").is_none());
    }

    #[test]
    fn loc_counts_nonblank() {
        let f = SourceFile::new("x.php", "<?php\n\n$a = 1;\n");
        assert_eq!(f.loc(), 2);
        let p = PluginProject::new("p").with_file(f);
        assert_eq!(p.total_loc(), 2);
    }
}
