//! Analysis results: vulnerabilities with data-flow traces, per-file
//! robustness records and aggregate statistics — phpSAFE's *results
//! processing* stage (§III.D).

use crate::taint::TraceStep;
use serde::{Deserialize, Serialize};
use taint_config::{SourceKind, TaintLabels, VulnClass};

/// A reported vulnerability.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Vulnerability {
    /// Vulnerability class.
    pub class: VulnClass,
    /// File containing the sink.
    pub file: String,
    /// 1-based line of the sink.
    pub line: u32,
    /// Sink description (`echo`, `mysql_query`, `wpdb::query`, …).
    pub sink: String,
    /// Vulnerable variable/expression (best effort), e.g. `$_GET['id']`.
    pub var: String,
    /// The input vector the tainted data entered through (Table II).
    pub source_kind: SourceKind,
    /// Every input vector that contributed to this class's taint —
    /// `source_kind` is the highest-priority member of this set.
    pub labels: TaintLabels,
    /// The flow passed through a CMS framework object method (§V.A).
    pub via_oop: bool,
    /// The vulnerable variable appears to be numeric-intent (§V.C notes 39%
    /// of vulnerable variables are meant to store numbers).
    pub numeric_hint: bool,
    /// Data-flow trace from entry point to sink, oldest first.
    pub trace: Vec<TraceStep>,
}

impl Vulnerability {
    /// Deduplication key: a tool reporting the same class at the same sink
    /// twice counts once (the paper's expert merged duplicates).
    pub fn dedup_key(&self) -> (VulnClass, String, u32, String) {
        (self.class, self.file.clone(), self.line, self.sink.clone())
    }
}

/// Why a file could not be analyzed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FileFailure {
    /// Resource limit exceeded (the paper: "required a lot of memory").
    ResourceLimit(String),
    /// Front-end rejected the file (Pixy on OOP constructs).
    Unsupported(String),
}

impl std::fmt::Display for FileFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FileFailure::ResourceLimit(m) => write!(f, "resource limit: {m}"),
            FileFailure::Unsupported(m) => write!(f, "unsupported construct: {m}"),
        }
    }
}

/// Per-file analysis record (feeds the paper's robustness numbers).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileReport {
    /// File path.
    pub path: String,
    /// Non-blank LOC.
    pub loc: usize,
    /// Number of recovered parse errors.
    pub parse_errors: usize,
    /// Failure, if the file could not be fully analyzed.
    pub failure: Option<FileFailure>,
}

/// Aggregate statistics for one plugin analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AnalysisStats {
    /// Files analyzed to completion.
    pub files_ok: usize,
    /// Files that failed (robustness).
    pub files_failed: usize,
    /// Total LOC across files.
    pub loc: usize,
    /// User-defined functions discovered (including methods).
    pub functions: usize,
    /// Classes discovered.
    pub classes: usize,
    /// Functions never called from plugin code (analyzed anyway, §III.B).
    pub uncalled_functions: usize,
    /// Abstract work units spent (proxy for CPU/memory cost).
    pub work_units: u64,
}

/// The complete outcome of analyzing one plugin with one tool.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalysisOutcome {
    /// Tool that produced the outcome (`phpSAFE`, `RIPS`, `Pixy`).
    pub tool: String,
    /// Plugin analyzed.
    pub plugin: String,
    /// Deduplicated vulnerabilities.
    pub vulns: Vec<Vulnerability>,
    /// Per-file records.
    pub files: Vec<FileReport>,
    /// Aggregate statistics.
    pub stats: AnalysisStats,
}

impl AnalysisOutcome {
    /// Vulnerabilities of a given class.
    pub fn vulns_of(&self, class: VulnClass) -> impl Iterator<Item = &Vulnerability> {
        self.vulns.iter().filter(move |v| v.class == class)
    }

    /// Number of files that failed analysis.
    pub fn failed_files(&self) -> usize {
        self.files.iter().filter(|f| f.failure.is_some()).count()
    }

    /// Serializes the outcome as pretty JSON — the "normalized single
    /// repository" format the paper's methodology step 5 builds.
    ///
    /// # Errors
    ///
    /// Returns an error if serialization fails (it cannot for this type,
    /// but the signature follows `serde_json`).
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }

    /// Deduplicates vulnerabilities in place by [`Vulnerability::dedup_key`].
    pub fn dedup(&mut self) {
        let mut seen = std::collections::HashSet::new();
        self.vulns.retain(|v| seen.insert(v.dedup_key()));
    }
}

/// Heuristic from §V.C: does the variable name suggest numeric intent
/// (`$id`, `$count`, `$page_num`, …)? Such variables are easier to exploit
/// because numbers are not quoted in the generated markup/SQL.
pub fn numeric_intent(var: &str) -> bool {
    let v = var.to_ascii_lowercase();
    const HINTS: [&str; 12] = [
        "id", "count", "num", "page", "index", "idx", "offset", "limit", "size", "total", "qty",
        "year",
    ];
    HINTS.iter().any(|h| {
        v == format!("${h}")
            || v.ends_with(&format!("_{h}"))
            || v.ends_with(&format!("{h}']"))
            || v.contains(&format!("{h}_"))
            || v.contains(&format!("['{h}"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vuln(class: VulnClass, file: &str, line: u32, sink: &str) -> Vulnerability {
        Vulnerability {
            class,
            file: file.into(),
            line,
            sink: sink.into(),
            var: "$x".into(),
            source_kind: SourceKind::Get,
            labels: TaintLabels::single(SourceKind::Get),
            via_oop: false,
            numeric_hint: false,
            trace: vec![],
        }
    }

    #[test]
    fn dedup_removes_same_sink_duplicates() {
        let mut o = AnalysisOutcome {
            tool: "t".into(),
            plugin: "p".into(),
            vulns: vec![
                vuln(VulnClass::Xss, "a.php", 3, "echo"),
                vuln(VulnClass::Xss, "a.php", 3, "echo"),
                vuln(VulnClass::Sqli, "a.php", 3, "echo"),
                vuln(VulnClass::Xss, "a.php", 4, "echo"),
            ],
            files: vec![],
            stats: AnalysisStats::default(),
        };
        o.dedup();
        assert_eq!(o.vulns.len(), 3);
    }

    #[test]
    fn vulns_of_filters_class() {
        let o = AnalysisOutcome {
            tool: "t".into(),
            plugin: "p".into(),
            vulns: vec![
                vuln(VulnClass::Xss, "a.php", 1, "echo"),
                vuln(VulnClass::Sqli, "a.php", 2, "mysql_query"),
            ],
            files: vec![],
            stats: AnalysisStats::default(),
        };
        assert_eq!(o.vulns_of(VulnClass::Xss).count(), 1);
        assert_eq!(o.vulns_of(VulnClass::Sqli).count(), 1);
    }

    #[test]
    fn json_roundtrip() {
        let o = AnalysisOutcome {
            tool: "phpSAFE".into(),
            plugin: "demo".into(),
            vulns: vec![vuln(VulnClass::Xss, "a.php", 1, "echo")],
            files: vec![FileReport {
                path: "a.php".into(),
                loc: 10,
                parse_errors: 0,
                failure: None,
            }],
            stats: AnalysisStats::default(),
        };
        let j = o.to_json().expect("serialize");
        let back: AnalysisOutcome = serde_json::from_str(&j).expect("deserialize");
        assert_eq!(back, o);
    }

    #[test]
    fn numeric_intent_heuristic() {
        assert!(numeric_intent("$id"));
        assert!(numeric_intent("$post_id"));
        assert!(numeric_intent("$_GET['page']"));
        assert!(numeric_intent("$count"));
        assert!(!numeric_intent("$name"));
        assert!(!numeric_intent("$message"));
    }

    #[test]
    fn failed_files_counted() {
        let o = AnalysisOutcome {
            tool: "Pixy".into(),
            plugin: "p".into(),
            vulns: vec![],
            files: vec![
                FileReport {
                    path: "ok.php".into(),
                    loc: 5,
                    parse_errors: 0,
                    failure: None,
                },
                FileReport {
                    path: "oop.php".into(),
                    loc: 50,
                    parse_errors: 0,
                    failure: Some(FileFailure::Unsupported("class".into())),
                },
            ],
            stats: AnalysisStats::default(),
        };
        assert_eq!(o.failed_files(), 1);
    }
}
