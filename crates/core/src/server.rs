//! The daemon-side analysis service.
//!
//! [`AnalysisServer`] implements `phpsafe_serve::Service`, connecting the
//! transport-agnostic daemon (queue, timeouts, NDJSON protocol) to the
//! actual analyzer. It owns the long-lived [`EngineCaches`], so repeated
//! `analyze` requests reuse parsed ASTs and call summaries: only files
//! whose FNV content hash changed are re-parsed, and only projects whose
//! content fingerprint changed are re-analyzed at all.
//!
//! Three cache tiers serve a request, fastest first:
//!
//! 1. **Rendered-outcome tier** (`outcome` namespace on disk): the exact
//!    JSON report of a prior run, keyed by the project's content
//!    fingerprint under the tool's config fingerprint. A hit skips
//!    analysis entirely and embeds the stored bytes in the reply — which
//!    is how daemon replies stay byte-identical to batch CLI output
//!    across restarts.
//! 2. **In-memory AST + summary caches**: shared across requests for the
//!    daemon's lifetime.
//! 3. **On-disk AST + summary tiers**: populated by prior processes (a
//!    batch run with `--cache-dir`, or an earlier daemon); corrupt or
//!    stale entries are evicted and counted, never trusted.
//!
//! Tools are pluggable through [`ServeTool`] so evaluation harnesses can
//! register the RIPS/Pixy baselines next to the default phpSAFE instance.

use std::collections::HashMap;
use std::path::Path;
use std::sync::Mutex;
use std::time::Instant;

use phpsafe_engine::{effective_jobs, fnv1a_64, run_ordered, ContentKey};
use phpsafe_serve::{AnalyzeRequest, InvalidateRequest, Json, RequestCtx, Service};

use crate::caching::EngineCaches;
use crate::project::{load_project, PluginProject};
use crate::report::AnalysisOutcome;
use crate::PhpSafe;

/// Disk-cache namespace for rendered JSON reports.
pub const OUTCOME_NAMESPACE: &str = "outcome";

/// An analysis tool the daemon can dispatch to.
pub trait ServeTool: Send + Sync {
    /// Configuration fingerprint; guards the rendered-outcome cache the
    /// same way analyzer fingerprints guard the summary cache.
    fn fingerprint(&self) -> u64;

    /// Analyzes one project, sharing the daemon's caches.
    fn analyze_cached(&self, project: &PluginProject, caches: &EngineCaches) -> AnalysisOutcome;

    /// [`ServeTool::analyze_cached`] with a worker-count hint for
    /// sub-file parallelism (per-function pre-summarization). The server
    /// passes the request's job count when only one analysis slot missed
    /// the outcome cache — otherwise the workers are already busy with
    /// whole analyses. Tools that cannot split below file granularity
    /// ignore the hint; outcomes must be identical either way.
    fn analyze_cached_jobs(
        &self,
        project: &PluginProject,
        caches: &EngineCaches,
        _function_jobs: usize,
    ) -> AnalysisOutcome {
        self.analyze_cached(project, caches)
    }

    /// Slugs of the vulnerability classes this tool's profile can report
    /// (classes with at least one configured sink), registry order.
    fn vuln_classes(&self) -> Vec<String> {
        Vec::new()
    }
}

impl ServeTool for PhpSafe {
    fn fingerprint(&self) -> u64 {
        PhpSafe::fingerprint(self)
    }

    fn analyze_cached(&self, project: &PluginProject, caches: &EngineCaches) -> AnalysisOutcome {
        self.analyze_with_caches(project, Some(caches))
    }

    fn analyze_cached_jobs(
        &self,
        project: &PluginProject,
        caches: &EngineCaches,
        function_jobs: usize,
    ) -> AnalysisOutcome {
        if function_jobs <= 1 {
            return self.analyze_cached(project, caches);
        }
        self.clone()
            .with_function_jobs(function_jobs)
            .analyze_with_caches(project, Some(caches))
    }

    fn vuln_classes(&self) -> Vec<String> {
        self.config()
            .supported_classes()
            .into_iter()
            .map(|c| c.slug().to_owned())
            .collect()
    }
}

/// What the daemon remembers about a root it has analyzed: the project's
/// content key (which also keys the cached dependency graph), a per-file
/// content hash for diffing a reload, and the tools the client last ran —
/// so `invalidate` can re-warm exactly what the next `analyze` will ask.
#[derive(Clone)]
struct ProjectState {
    key: ContentKey,
    file_hashes: HashMap<String, u64>,
    tools: Vec<String>,
}

fn file_hashes(project: &PluginProject) -> HashMap<String, u64> {
    project
        .files()
        .iter()
        .map(|f| (f.path.clone(), fnv1a_64(f.content.as_bytes())))
        .collect()
}

/// The resident analysis service behind `phpsafe serve`.
pub struct AnalysisServer {
    tools: Vec<(String, Box<dyn ServeTool>)>,
    caches: EngineCaches,
    default_jobs: usize,
    /// Known roots (request-path keyed) and their last-analyzed state.
    projects: Mutex<HashMap<String, ProjectState>>,
}

impl AnalysisServer {
    /// A server with the default phpSAFE tool and fresh in-memory caches.
    pub fn new() -> AnalysisServer {
        AnalysisServer::with_caches(EngineCaches::new())
    }

    /// A server reusing existing caches (typically `EngineCaches::
    /// with_disk` so the daemon warm-starts from a prior process).
    pub fn with_caches(caches: EngineCaches) -> AnalysisServer {
        let mut server = AnalysisServer {
            tools: Vec::new(),
            caches,
            default_jobs: effective_jobs(usize::MAX).0,
            projects: Mutex::new(HashMap::new()),
        };
        server.register("phpSAFE", Box::new(PhpSafe::new()));
        server
    }

    /// Registers (or replaces) a named tool.
    pub fn register(&mut self, name: impl Into<String>, tool: Box<dyn ServeTool>) {
        let name = name.into();
        self.tools.retain(|(n, _)| *n != name);
        self.tools.push((name, tool));
    }

    /// Sets the worker count used when a request doesn't override it.
    pub fn with_default_jobs(mut self, jobs: usize) -> AnalysisServer {
        self.default_jobs = effective_jobs(jobs).0;
        self
    }

    /// The shared caches (for persistence flushes and stats).
    pub fn caches(&self) -> &EngineCaches {
        &self.caches
    }

    fn resolve_tools<'a>(
        &'a self,
        requested: &[String],
    ) -> Result<Vec<(&'a str, &'a dyn ServeTool)>, String> {
        if self.tools.is_empty() {
            return Err("no tools registered".into());
        }
        if requested.is_empty() {
            let (name, tool) = &self.tools[0];
            return Ok(vec![(name.as_str(), tool.as_ref())]);
        }
        requested
            .iter()
            .map(|want| {
                self.tools
                    .iter()
                    .find(|(name, _)| name == want)
                    .map(|(name, tool)| (name.as_str(), tool.as_ref()))
                    .ok_or_else(|| {
                        let known: Vec<&str> = self.tools.iter().map(|(n, _)| n.as_str()).collect();
                        format!("unknown tool `{want}` (registered: {})", known.join(", "))
                    })
            })
            .collect()
    }

    /// The rendered-outcome cache key for a project.
    fn outcome_key(project: &PluginProject) -> ContentKey {
        project.content_key()
    }

    fn cached_report(&self, tool: &dyn ServeTool, project: &PluginProject) -> Option<String> {
        let disk = self.caches.disk()?;
        let key = Self::outcome_key(project);
        let bytes = disk.load(OUTCOME_NAMESPACE, key, tool.fingerprint())?;
        match String::from_utf8(bytes) {
            Ok(report) => Some(report),
            Err(_) => {
                disk.note_corrupt(OUTCOME_NAMESPACE, key);
                None
            }
        }
    }

    fn store_report(&self, tool: &dyn ServeTool, project: &PluginProject, report: &str) {
        if let Some(disk) = self.caches.disk() {
            disk.store(
                OUTCOME_NAMESPACE,
                Self::outcome_key(project),
                tool.fingerprint(),
                report.as_bytes(),
            );
        }
    }

    /// Overlays the request's unsaved editor buffers onto the loaded
    /// projects. A buffer matches a project when its path sits under that
    /// project's requested root (prefix stripped), or names an existing
    /// project-relative file; with a single root, a relative buffer path
    /// may also introduce a brand-new file. Buffers matching nothing are
    /// surfaced as warnings, never silently dropped.
    fn apply_buffers(
        roots: &[String],
        projects: &mut [PluginProject],
        buffers: &[(String, String)],
        warnings: &mut Vec<String>,
    ) {
        let mut used = vec![false; buffers.len()];
        for (pi, project) in projects.iter_mut().enumerate() {
            let root = roots[pi].trim_end_matches('/');
            for (bi, (bpath, content)) in buffers.iter().enumerate() {
                let rel = if let Some(r) = bpath.strip_prefix(&format!("{root}/")) {
                    Some(r.to_owned())
                } else if project.files().iter().any(|f| f.path == *bpath) {
                    Some(bpath.clone())
                } else if roots.len() == 1 && !bpath.starts_with('/') {
                    Some(bpath.trim_start_matches("./").to_owned())
                } else {
                    None
                };
                if let Some(rel) = rel {
                    project.overlay_file(&rel, content);
                    used[bi] = true;
                }
            }
        }
        for (bi, used) in used.iter().enumerate() {
            if !used {
                warnings.push(format!(
                    "buffer `{}` matches no requested root; ignored",
                    buffers[bi].0
                ));
            }
        }
    }

    /// Records what was analyzed for each root, so a later `invalidate`
    /// can diff a reload against it and consult the matching dependency
    /// graph.
    fn remember(&self, roots: &[String], projects: &[PluginProject], tools: &[String]) {
        let mut states = self.projects.lock().unwrap();
        for (pi, project) in projects.iter().enumerate() {
            states.insert(
                roots[pi].trim_end_matches('/').to_owned(),
                ProjectState {
                    key: project.content_key(),
                    file_hashes: file_hashes(project),
                    tools: tools.to_vec(),
                },
            );
        }
    }
}

impl Default for AnalysisServer {
    fn default() -> AnalysisServer {
        AnalysisServer::new()
    }
}

impl Service for AnalysisServer {
    fn analyze(&self, ctx: &RequestCtx, request: &AnalyzeRequest) -> Result<Json, String> {
        // Engine-tier cache deltas are attributed to this request by
        // differencing the shared totals; with several concurrent workers
        // the attribution is approximate, never the totals themselves.
        let totals_before = self.caches.totals();
        let mut warnings = Vec::new();
        let jobs = match request.jobs {
            None => self.default_jobs,
            Some(requested) => {
                let (jobs, warning) = effective_jobs(requested);
                warnings.extend(warning);
                jobs
            }
        };
        let tools = self.resolve_tools(&request.tools)?;
        let stage = Instant::now();
        let mut projects = Vec::new();
        for path in &request.paths {
            projects.push(load_project(Path::new(path))?);
        }
        if !request.buffers.is_empty() {
            Self::apply_buffers(
                &request.paths,
                &mut projects,
                &request.buffers,
                &mut warnings,
            );
        }
        self.remember(&request.paths, &projects, &request.tools);
        ctx.mark("load_us", stage.elapsed());
        if let Some(first) = projects.first() {
            let key = Self::outcome_key(first);
            ctx.set_content_key(format!("{:016x}-{:x}", key.hash, key.len));
        }

        // Path-major report order, mirroring the batch CLI's output order.
        // `None` slots are cache misses to be analyzed below.
        let stage = Instant::now();
        let mut reports: Vec<Vec<Option<String>>> = Vec::new();
        let mut misses = Vec::new();
        for (pi, project) in projects.iter().enumerate() {
            let mut row = Vec::new();
            for (ti, (_, tool)) in tools.iter().enumerate() {
                let hit = self.cached_report(*tool, project);
                if hit.is_none() {
                    misses.push((pi, ti));
                }
                row.push(hit);
            }
            reports.push(row);
        }
        ctx.mark("cache_probe_us", stage.elapsed());
        let fully_cached = misses.is_empty();
        let slots = reports.iter().map(Vec::len).sum::<usize>() as u64;
        ctx.add_cache_hits(slots - misses.len() as u64);
        ctx.add_cache_misses(misses.len() as u64);

        let stage = Instant::now();
        // With a single miss the pool has nothing to parallelize across,
        // so hand the workers to the one analysis as per-function jobs.
        let fn_jobs = if misses.len() == 1 { jobs } else { 1 };
        let (outcomes, _stats) = run_ordered(misses.clone(), jobs, |_, (pi, ti)| {
            tools[ti]
                .1
                .analyze_cached_jobs(&projects[pi], &self.caches, fn_jobs)
        });
        for ((pi, ti), outcome) in misses.into_iter().zip(outcomes) {
            let report = outcome
                .to_json()
                .map_err(|e| format!("report serialization failed: {e}"))?;
            self.store_report(tools[ti].1, &projects[pi], &report);
            reports[pi][ti] = Some(report);
        }
        ctx.mark("analyze_us", stage.elapsed());
        // Flush fresh summaries so the next process warm-starts too.
        let stage = Instant::now();
        self.caches.persist();
        ctx.mark("persist_us", stage.elapsed());
        let totals_after = self.caches.totals();
        let tier_hits = (totals_after.parse.hits
            + totals_after.summary.hits
            + totals_after.graph.hits)
            .saturating_sub(
                totals_before.parse.hits + totals_before.summary.hits + totals_before.graph.hits,
            );
        let tier_misses =
            (totals_after.parse.misses + totals_after.summary.misses + totals_after.graph.misses)
                .saturating_sub(
                    totals_before.parse.misses
                        + totals_before.summary.misses
                        + totals_before.graph.misses,
                );
        ctx.add_cache_hits(tier_hits);
        ctx.add_cache_misses(tier_misses);

        let mut items = Vec::new();
        for (pi, row) in reports.into_iter().enumerate() {
            for (ti, report) in row.into_iter().enumerate() {
                // The report is embedded as a JSON *string*, not spliced
                // raw: the rendered reports are multi-line documents and
                // every NDJSON response must stay on one line. A client
                // that unescapes the string recovers the batch CLI's
                // `--json` output byte for byte.
                items.push(Json::Obj(vec![
                    ("path".to_owned(), Json::Str(request.paths[pi].clone())),
                    ("tool".to_owned(), Json::Str(tools[ti].0.to_owned())),
                    (
                        "report".to_owned(),
                        Json::Str(report.expect("every slot filled")),
                    ),
                ]));
            }
        }
        let mut fields = vec![
            ("jobs".to_owned(), Json::Num(jobs as f64)),
            ("fully_cached".to_owned(), Json::Bool(fully_cached)),
            ("reports".to_owned(), Json::Arr(items)),
        ];
        if !warnings.is_empty() {
            fields.push((
                "warnings".to_owned(),
                Json::Arr(warnings.into_iter().map(Json::Str).collect()),
            ));
        }
        Ok(Json::Obj(fields))
    }

    /// Re-checks changed paths against known roots, diffs a fresh load of
    /// each affected project against its remembered per-file hashes, asks
    /// the cached dependency graph for the transitive dependents of the
    /// dirty set, and eagerly re-analyzes — so the work happens here, off
    /// the client's next-`analyze` latency path, and that analyze is a
    /// pure outcome-cache hit. Unchanged files hit the content-keyed
    /// AST/summary tiers; only the dirty set re-parses, and the reply
    /// reports the measured re-parse count rather than assuming it.
    fn invalidate(&self, ctx: &RequestCtx, request: &InvalidateRequest) -> Result<Json, String> {
        let t0 = Instant::now();
        // Attribute each changed path to the longest known root it falls
        // under; paths the daemon has never analyzed are echoed back as
        // skipped rather than guessed at.
        let mut roots: Vec<String> = Vec::new();
        let mut skipped: Vec<String> = Vec::new();
        {
            let states = self.projects.lock().unwrap();
            for path in &request.paths {
                let p = path.trim_end_matches('/');
                let best = states
                    .keys()
                    .filter(|root| p == root.as_str() || p.starts_with(&format!("{root}/")))
                    .max_by_key(|root| root.len());
                match best {
                    Some(root) => {
                        if !roots.contains(root) {
                            roots.push(root.clone());
                        }
                    }
                    None => skipped.push(path.clone()),
                }
            }
        }

        let mut items = Vec::new();
        let mut total_dirty = 0u64;
        for root in roots {
            let Some(state) = self.projects.lock().unwrap().get(&root).cloned() else {
                continue;
            };
            let project = match load_project(Path::new(&root)) {
                Ok(project) => project,
                Err(message) => {
                    // The root vanished (or became unreadable): forget it
                    // and tell the client, but keep serving other roots.
                    self.projects.lock().unwrap().remove(&root);
                    items.push(Json::Obj(vec![
                        ("path".to_owned(), Json::Str(root.clone())),
                        ("error".to_owned(), Json::Str(message)),
                    ]));
                    continue;
                }
            };
            let new_hashes = file_hashes(&project);
            let mut dirty: Vec<String> = new_hashes
                .iter()
                .filter(|(path, hash)| state.file_hashes.get(*path) != Some(hash))
                .map(|(path, _)| path.clone())
                .collect();
            dirty.extend(
                state
                    .file_hashes
                    .keys()
                    .filter(|path| !new_hashes.contains_key(*path))
                    .cloned(),
            );
            dirty.sort();
            total_dirty += dirty.len() as u64;
            // The graph of the *previous* contents knows who depended on
            // the edited files. No graph cached (first contact after a
            // restart with a cold depgraph namespace) degrades to "assume
            // everything", never to a stale answer.
            let affected: Vec<String> = match self.caches.lookup_depgraph(state.key) {
                Some(graph) => graph.dependents_of(&dirty),
                None => project.files().iter().map(|f| f.path.clone()).collect(),
            };
            phpsafe_obs::count("incremental.files_dirty", dirty.len() as u64);
            phpsafe_obs::count("depgraph.invalidated", affected.len() as u64);

            let tools = self.resolve_tools(&state.tools)?;
            let parse_misses_before = self.caches.totals().parse.misses;
            let mut reanalyzed = false;
            for (_, tool) in &tools {
                if self.cached_report(*tool, &project).is_none() {
                    let outcome = tool.analyze_cached(&project, &self.caches);
                    let report = outcome
                        .to_json()
                        .map_err(|e| format!("report serialization failed: {e}"))?;
                    self.store_report(*tool, &project, &report);
                    reanalyzed = true;
                }
            }
            let reparsed = self
                .caches
                .totals()
                .parse
                .misses
                .saturating_sub(parse_misses_before);
            phpsafe_obs::count("incremental.files_reanalyzed", reparsed);

            self.projects.lock().unwrap().insert(
                root.clone(),
                ProjectState {
                    key: project.content_key(),
                    file_hashes: new_hashes,
                    tools: state.tools.clone(),
                },
            );
            items.push(Json::Obj(vec![
                ("path".to_owned(), Json::Str(root.clone())),
                ("files".to_owned(), Json::Num(project.files().len() as f64)),
                ("dirty".to_owned(), Json::Num(dirty.len() as f64)),
                ("affected".to_owned(), Json::Num(affected.len() as f64)),
                ("reparsed".to_owned(), Json::Num(reparsed as f64)),
                ("reanalyzed".to_owned(), Json::Bool(reanalyzed)),
            ]));
        }
        self.caches.persist();
        ctx.mark_count("dirty_files", total_dirty);
        ctx.mark("invalidate_us", t0.elapsed());
        Ok(Json::Obj(vec![
            ("projects".to_owned(), Json::Arr(items)),
            (
                "skipped".to_owned(),
                Json::Arr(skipped.into_iter().map(Json::Str).collect()),
            ),
        ]))
    }

    fn status(&self) -> Vec<(String, Json)> {
        let totals = self.caches.totals();
        vec![
            (
                "tools".to_owned(),
                Json::Arr(
                    self.tools
                        .iter()
                        .map(|(name, _)| Json::Str(name.clone()))
                        .collect(),
                ),
            ),
            (
                "vuln_classes".to_owned(),
                Json::Arr(
                    // The default tool (first registered) defines the
                    // loaded profile's class registry.
                    self.tools
                        .first()
                        .map(|(_, t)| t.vuln_classes())
                        .unwrap_or_default()
                        .into_iter()
                        .map(Json::Str)
                        .collect(),
                ),
            ),
            (
                "cache_dir".to_owned(),
                match self.caches.disk() {
                    Some(disk) => Json::Str(disk.root().display().to_string()),
                    None => Json::Null,
                },
            ),
            (
                "ast_entries".to_owned(),
                Json::Num(self.caches.ast().len() as f64),
            ),
            ("parse_hits".to_owned(), Json::Num(totals.parse.hits as f64)),
            (
                "summary_hits".to_owned(),
                Json::Num(totals.summary.hits as f64),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn write_plugin(root: &Path, body: &str) {
        std::fs::create_dir_all(root).unwrap();
        std::fs::write(root.join("index.php"), body).unwrap();
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("phpsafe-server-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    const VULN: &str = r#"<?php echo $_GET['q']; ?>"#;

    fn request(paths: Vec<String>) -> AnalyzeRequest {
        AnalyzeRequest {
            paths,
            tools: Vec::new(),
            jobs: Some(1),
            buffers: Vec::new(),
        }
    }

    #[test]
    fn daemon_report_matches_direct_analysis() {
        let dir = temp_dir("direct");
        let plugin = dir.join("plugin");
        write_plugin(&plugin, VULN);

        let server = AnalysisServer::new();
        let ctx = RequestCtx::detached();
        let result = server
            .analyze(&ctx, &request(vec![plugin.display().to_string()]))
            .unwrap();
        let reports = result.get("reports").and_then(Json::as_arr).unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(
            reports[0].get("tool").and_then(Json::as_str),
            Some("phpSAFE")
        );
        let direct = PhpSafe::new()
            .analyze(&load_project(&plugin).unwrap())
            .to_json()
            .unwrap();
        assert_eq!(
            reports[0].get("report"),
            Some(&Json::Str(direct)),
            "daemon report must be byte-identical to a direct run"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn status_lists_the_profile_vuln_classes() {
        let server = AnalysisServer::new();
        let status = server.status();
        let classes = status
            .iter()
            .find(|(k, _)| k == "vuln_classes")
            .and_then(|(_, v)| v.as_arr())
            .expect("vuln_classes in status");
        let slugs: Vec<&str> = classes.iter().filter_map(Json::as_str).collect();
        let expected: Vec<&str> = taint_config::VulnClass::ALL
            .iter()
            .map(|c| c.slug())
            .collect();
        assert_eq!(slugs, expected, "default WordPress profile supports all");
    }

    #[test]
    fn analyze_deposits_request_telemetry_into_the_ctx() {
        let dir = temp_dir("telemetry");
        let plugin = dir.join("plugin");
        write_plugin(&plugin, VULN);
        let server = AnalysisServer::new();
        let ctx = RequestCtx::detached();
        server
            .analyze(&ctx, &request(vec![plugin.display().to_string()]))
            .unwrap();
        let marks: Vec<&str> = ctx.marks().iter().map(|(name, _)| *name).collect();
        assert_eq!(
            marks,
            ["load_us", "cache_probe_us", "analyze_us", "persist_us"],
            "every pipeline stage must leave a mark"
        );
        let key = ctx.content_key().expect("content key recorded");
        let expect = load_project(&plugin).unwrap().content_key();
        assert_eq!(key, format!("{:016x}-{:x}", expect.hash, expect.len));
        // No disk tier here: the one slot is an outcome-cache miss.
        assert!(ctx.cache_misses() >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn outcome_cache_round_trips_across_servers() {
        let dir = temp_dir("outcome");
        let plugin = dir.join("plugin");
        write_plugin(&plugin, VULN);
        let cache_dir = dir.join("cache");
        let req = request(vec![plugin.display().to_string()]);

        let open = || {
            let disk = Arc::new(phpsafe_engine::DiskCache::open(&cache_dir).unwrap());
            AnalysisServer::with_caches(EngineCaches::with_disk(disk))
        };
        let cold = open().analyze(&RequestCtx::detached(), &req).unwrap();
        assert_eq!(cold.get("fully_cached"), Some(&Json::Bool(false)));

        // A fresh server process: outcome comes straight from disk.
        let warm_server = open();
        let warm_ctx = RequestCtx::detached();
        let warm = warm_server.analyze(&warm_ctx, &req).unwrap();
        assert_eq!(warm.get("fully_cached"), Some(&Json::Bool(true)));
        assert_eq!(
            cold.get("reports"),
            warm.get("reports"),
            "warm-restart reply must be byte-identical"
        );

        // Edited content re-analyzes (fingerprint changed).
        write_plugin(&plugin, "<?php echo htmlentities($_GET['q']); ?>");
        let edited = warm_server.analyze(&RequestCtx::detached(), &req).unwrap();
        assert_eq!(edited.get("fully_cached"), Some(&Json::Bool(false)));
        assert_ne!(cold.get("reports"), edited.get("reports"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_tools_and_bad_paths_are_reported() {
        let dir = temp_dir("errors");
        let plugin = dir.join("plugin");
        write_plugin(&plugin, VULN);
        let server = AnalysisServer::new();
        let bad_tool = server.analyze(
            &RequestCtx::detached(),
            &AnalyzeRequest {
                paths: vec![plugin.display().to_string()],
                tools: vec!["nonesuch".into()],
                jobs: Some(1),
                buffers: Vec::new(),
            },
        );
        assert!(bad_tool.unwrap_err().contains("unknown tool `nonesuch`"));
        let bad_path = server.analyze(
            &RequestCtx::detached(),
            &request(vec![dir.join("missing").display().to_string()]),
        );
        assert!(bad_path.is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn write_file(root: &Path, rel: &str, body: &str) {
        let path = root.join(rel);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(path, body).unwrap();
    }

    #[test]
    fn invalidate_rewarm_makes_next_analyze_fully_cached() {
        let dir = temp_dir("invalidate");
        let plugin = dir.join("plugin");
        write_file(
            &plugin,
            "main.php",
            "<?php require 'lib.php'; echo sanitize($_GET['q']);",
        );
        write_file(
            &plugin,
            "lib.php",
            "<?php function sanitize($s) { return htmlentities($s); }",
        );
        write_file(&plugin, "other.php", "<?php $x = 1;");
        let cache_dir = dir.join("cache");
        let disk = Arc::new(phpsafe_engine::DiskCache::open(&cache_dir).unwrap());
        let server = AnalysisServer::with_caches(EngineCaches::with_disk(disk));
        let req = request(vec![plugin.display().to_string()]);
        server.analyze(&RequestCtx::detached(), &req).unwrap();

        // Edit the library on disk, then tell the daemon about it.
        write_file(
            &plugin,
            "lib.php",
            "<?php function sanitize($s) { return $s; }",
        );
        let ctx = RequestCtx::detached();
        let result = server
            .invalidate(
                &ctx,
                &InvalidateRequest {
                    paths: vec![plugin.join("lib.php").display().to_string()],
                },
            )
            .unwrap();
        let projects = result.get("projects").and_then(Json::as_arr).unwrap();
        assert_eq!(projects.len(), 1);
        let p = &projects[0];
        assert_eq!(p.get("files"), Some(&Json::Num(3.0)));
        assert_eq!(p.get("dirty"), Some(&Json::Num(1.0)));
        // The dependency graph knows main.php requires lib.php; other.php
        // is untouched by the edit.
        assert_eq!(p.get("affected"), Some(&Json::Num(2.0)));
        assert_eq!(p.get("reanalyzed"), Some(&Json::Bool(true)));
        // Only the edited file re-parsed; the rest hit the AST cache.
        assert_eq!(p.get("reparsed"), Some(&Json::Num(1.0)));
        let marks = ctx.marks();
        assert!(marks
            .iter()
            .any(|(name, n)| *name == "dirty_files" && *n == 1));

        // The re-warm already stored the new outcome: the client's next
        // analyze is a pure cache hit, byte-identical to a cold run.
        let warm = server.analyze(&RequestCtx::detached(), &req).unwrap();
        assert_eq!(warm.get("fully_cached"), Some(&Json::Bool(true)));
        let cold = AnalysisServer::new()
            .analyze(&RequestCtx::detached(), &req)
            .unwrap();
        assert_eq!(warm.get("reports"), cold.get("reports"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalidate_skips_unknown_paths_and_forgets_vanished_roots() {
        let dir = temp_dir("invalidate-skip");
        let plugin = dir.join("plugin");
        write_plugin(&plugin, VULN);
        let server = AnalysisServer::new();
        // Never-analyzed path: skipped, not guessed at.
        let result = server
            .invalidate(
                &RequestCtx::detached(),
                &InvalidateRequest {
                    paths: vec![plugin.join("index.php").display().to_string()],
                },
            )
            .unwrap();
        assert_eq!(
            result.get("projects").and_then(Json::as_arr).unwrap().len(),
            0
        );
        assert_eq!(
            result.get("skipped").and_then(Json::as_arr).unwrap().len(),
            1
        );

        // Analyzed, then deleted: reported as an error, state dropped.
        server
            .analyze(
                &RequestCtx::detached(),
                &request(vec![plugin.display().to_string()]),
            )
            .unwrap();
        std::fs::remove_dir_all(&plugin).unwrap();
        let result = server
            .invalidate(
                &RequestCtx::detached(),
                &InvalidateRequest {
                    paths: vec![plugin.display().to_string()],
                },
            )
            .unwrap();
        let projects = result.get("projects").and_then(Json::as_arr).unwrap();
        assert_eq!(projects.len(), 1);
        assert!(projects[0].get("error").is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dirty_buffers_overlay_matches_a_saved_edit() {
        let dir = temp_dir("buffers");
        let plugin = dir.join("plugin");
        write_plugin(&plugin, VULN);
        let edited = "<?php echo htmlentities($_GET['q']); ?>";

        // Analyze with an unsaved buffer overlaying index.php (absolute
        // path under the root) and adding a brand-new relative file.
        let server = AnalysisServer::new();
        let overlaid = server
            .analyze(
                &RequestCtx::detached(),
                &AnalyzeRequest {
                    paths: vec![plugin.display().to_string()],
                    tools: Vec::new(),
                    jobs: Some(1),
                    buffers: vec![
                        (
                            plugin.join("index.php").display().to_string(),
                            edited.to_owned(),
                        ),
                        ("new.php".to_owned(), VULN.to_owned()),
                    ],
                },
            )
            .unwrap();

        // Reference: the same edit saved to disk, loaded cold. Same
        // directory name, so the project fingerprint inputs match.
        let alt = dir.join("alt").join("plugin");
        write_file(&alt, "index.php", edited);
        write_file(&alt, "new.php", VULN);
        let saved = AnalysisServer::new()
            .analyze(
                &RequestCtx::detached(),
                &request(vec![alt.display().to_string()]),
            )
            .unwrap();
        let report_of = |v: &Json| {
            v.get("reports").and_then(Json::as_arr).unwrap()[0]
                .get("report")
                .cloned()
                .unwrap()
        };
        assert_eq!(
            report_of(&overlaid),
            report_of(&saved),
            "overlaying a buffer must be indistinguishable from saving it"
        );

        // A buffer matching nothing surfaces as a warning.
        let stray = server
            .analyze(
                &RequestCtx::detached(),
                &AnalyzeRequest {
                    paths: vec![plugin.display().to_string()],
                    tools: Vec::new(),
                    jobs: Some(1),
                    buffers: vec![("/nowhere/else.php".to_owned(), String::new())],
                },
            )
            .unwrap();
        let warnings = stray.get("warnings").and_then(Json::as_arr).unwrap();
        assert!(
            warnings
                .iter()
                .any(|w| { w.as_str().is_some_and(|s| s.contains("/nowhere/else.php")) }),
            "unmatched buffers must warn: {warnings:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn jobs_overrides_are_clamped_with_warning() {
        let dir = temp_dir("jobs");
        let plugin = dir.join("plugin");
        write_plugin(&plugin, VULN);
        let server = AnalysisServer::new();
        let result = server
            .analyze(
                &RequestCtx::detached(),
                &AnalyzeRequest {
                    paths: vec![plugin.display().to_string()],
                    tools: Vec::new(),
                    jobs: Some(0),
                    buffers: Vec::new(),
                },
            )
            .unwrap();
        let warnings = result.get("warnings").and_then(Json::as_arr).unwrap();
        assert!(!warnings.is_empty(), "--jobs 0 must surface a warning");
        let jobs = result.get("jobs").and_then(Json::as_num).unwrap();
        assert!(jobs >= 1.0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
