//! Project-wide symbol collection — phpSAFE's model-construction pass
//! (§III.B): every user-defined function and class (with methods), plus the
//! set of functions that are *never called from plugin code*. Those must be
//! analyzed anyway, because the CMS calls them through hooks: *"this ability
//! to analyze all the functions, even those not called from within the
//! plugin, is a very important aspect of security tools targeting plugin
//! code."*

use std::sync::Arc;

use php_ast::visit::{self, Visitor};
use php_ast::{
    Arena, Callee, ClassDecl, Expr, ExprId, FunctionDecl, Member, ParsedFile, Stmt, StmtId,
};
use phpsafe_intern::{FnvHashMap as HashMap, FnvHashSet as HashSet};

/// A user-defined free function and where it lives.
///
/// `decl` is a `Copy` bundle of arena handles; they resolve against `ast`.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// The declaration (handles into `ast`).
    pub decl: FunctionDecl,
    /// The parsed file the handles index into.
    pub ast: Arc<ParsedFile>,
    /// File that declares it.
    pub file: String,
}

/// A user-defined class and where it lives.
#[derive(Debug, Clone)]
pub struct ClassInfo {
    /// The declaration (handles into `ast`).
    pub decl: ClassDecl,
    /// The parsed file the handles index into.
    pub ast: Arc<ParsedFile>,
    /// File that declares it.
    pub file: String,
}

/// Reference to a callable that is never invoked from plugin code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FnRef {
    /// A free function, by lowercase name.
    Function(String),
    /// A method, by lowercase (class, method) pair.
    Method(String, String),
}

/// The project symbol table.
#[derive(Debug, Default)]
pub struct SymbolTable {
    functions: HashMap<String, FnInfo>,
    classes: HashMap<String, ClassInfo>,
    called_fns: HashSet<String>,
    called_methods: HashSet<String>,
    instantiated: HashSet<String>,
}

impl SymbolTable {
    /// Builds the table from parsed files (`(path, ast)` pairs).
    pub fn build<'a>(
        files: impl IntoIterator<Item = (&'a str, &'a Arc<ParsedFile>)>,
    ) -> SymbolTable {
        let mut t = SymbolTable::default();
        for (path, ast) in files {
            let mut c = Collector {
                table: &mut t,
                file: path,
                ast,
                class_stack: Vec::new(),
            };
            visit::walk_file(&mut c, ast);
        }
        t
    }

    /// Looks up a free function by case-insensitive name.
    pub fn function(&self, name: &str) -> Option<&FnInfo> {
        self.functions.get(&name.to_ascii_lowercase())
    }

    /// Looks up a class by case-insensitive name.
    pub fn class(&self, name: &str) -> Option<&ClassInfo> {
        self.classes.get(&name.to_ascii_lowercase())
    }

    /// Resolves a method on `class`, walking the `extends` chain and any
    /// `use`d traits, as PHP method resolution does.
    pub fn method(&self, class: &str, name: &str) -> Option<(&ClassInfo, &FunctionDecl)> {
        let mut current = class.to_ascii_lowercase();
        let mut hops = 0;
        while hops < 16 {
            let info = self.classes.get(&current)?;
            if let Some(m) = info.decl.method(&info.ast, name) {
                return Some((info, m));
            }
            // Traits
            for member in info.ast.members(info.decl.members) {
                if let php_ast::ClassMember::UseTrait(traits, _) = member {
                    for t in info.ast.syms(*traits) {
                        if let Some(ti) = self.classes.get(&t.as_str().to_ascii_lowercase()) {
                            if let Some(m) = ti.decl.method(&ti.ast, name) {
                                return Some((ti, m));
                            }
                        }
                    }
                }
            }
            match &info.decl.parent {
                Some(p) => {
                    current = p.as_str().to_ascii_lowercase();
                    hops += 1;
                }
                None => return None,
            }
        }
        None
    }

    /// All free functions.
    pub fn functions(&self) -> impl Iterator<Item = &FnInfo> {
        self.functions.values()
    }

    /// All classes.
    pub fn classes(&self) -> impl Iterator<Item = &ClassInfo> {
        self.classes.values()
    }

    /// Number of user-defined callables (functions + methods).
    pub fn callable_count(&self) -> usize {
        self.functions.len()
            + self
                .classes
                .values()
                .map(|c| c.decl.methods(&c.ast).count())
                .sum::<usize>()
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Is the free function syntactically invoked anywhere?
    pub fn is_called_function(&self, name: &str) -> bool {
        self.called_fns.contains(&name.to_ascii_lowercase())
    }

    /// Is any method of this name syntactically invoked anywhere?
    /// (Receiver types are often unknown statically, so matching is by
    /// method name — the over-approximation phpSAFE uses.)
    pub fn is_called_method(&self, name: &str) -> bool {
        self.called_methods.contains(&name.to_ascii_lowercase())
    }

    /// Is the class instantiated (`new C`) anywhere?
    pub fn is_instantiated(&self, class: &str) -> bool {
        self.instantiated.contains(&class.to_ascii_lowercase())
    }

    /// Callables never invoked from plugin code — the set phpSAFE analyzes
    /// up front (§III.C) and Pixy skips.
    pub fn uncalled(&self) -> Vec<FnRef> {
        let mut out = Vec::new();
        let mut fn_names: Vec<&String> = self.functions.keys().collect();
        fn_names.sort();
        for name in fn_names {
            if !self.called_fns.contains(name) {
                out.push(FnRef::Function(name.clone()));
            }
        }
        let mut class_names: Vec<&String> = self.classes.keys().collect();
        class_names.sort();
        for cname in class_names {
            let info = &self.classes[cname];
            for (_, m) in info.decl.methods(&info.ast) {
                let mname = m.name.as_str().to_ascii_lowercase();
                let is_ctor = mname == "__construct" || mname == *cname;
                let called = if is_ctor {
                    self.instantiated.contains(cname)
                } else {
                    self.called_methods.contains(&mname)
                };
                if !called {
                    out.push(FnRef::Method(cname.clone(), mname));
                }
            }
        }
        out
    }
}

struct Collector<'a> {
    table: &'a mut SymbolTable,
    file: &'a str,
    ast: &'a Arc<ParsedFile>,
    class_stack: Vec<String>,
}

impl Visitor for Collector<'_> {
    fn visit_stmt(&mut self, a: &Arena, stmt: StmtId) {
        if let Stmt::Function(f) = a.stmt(stmt) {
            // Only record as a free function when not inside a class body
            // (methods are collected via visit_class).
            if self.class_stack.is_empty() {
                self.table
                    .functions
                    .entry(f.name.as_str().to_ascii_lowercase())
                    .or_insert_with(|| FnInfo {
                        decl: *f,
                        ast: Arc::clone(self.ast),
                        file: self.file.to_string(),
                    });
            }
        }
        visit::walk_stmt(self, a, stmt);
    }

    fn visit_class(&mut self, a: &Arena, class: &ClassDecl) {
        self.table
            .classes
            .entry(class.name.as_str().to_ascii_lowercase())
            .or_insert_with(|| ClassInfo {
                decl: *class,
                ast: Arc::clone(self.ast),
                file: self.file.to_string(),
            });
        self.class_stack
            .push(class.name.as_str().to_ascii_lowercase());
        visit::walk_class(self, a, class);
        self.class_stack.pop();
    }

    fn visit_expr(&mut self, a: &Arena, expr: ExprId) {
        match a.expr(expr) {
            Expr::Call { callee, .. } => match callee {
                Callee::Function(name) => {
                    self.table
                        .called_fns
                        .insert(name.as_str().to_ascii_lowercase());
                }
                Callee::Method { name, .. } | Callee::StaticMethod { name, .. } => {
                    if let Member::Name(n) = name {
                        self.table
                            .called_methods
                            .insert(n.as_str().to_ascii_lowercase());
                    }
                }
                Callee::Dynamic(_) => {}
            },
            Expr::New {
                class: Member::Name(n),
                ..
            } => {
                self.table
                    .instantiated
                    .insert(n.as_str().to_ascii_lowercase());
            }
            _ => {}
        }
        visit::walk_expr(self, a, expr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use php_ast::parse;

    fn table(srcs: &[(&str, &str)]) -> SymbolTable {
        let parsed: Vec<(String, Arc<ParsedFile>)> = srcs
            .iter()
            .map(|(p, s)| (p.to_string(), Arc::new(parse(s))))
            .collect();
        SymbolTable::build(parsed.iter().map(|(p, a)| (p.as_str(), a)))
    }

    #[test]
    fn collects_functions_and_classes_across_files() {
        let t = table(&[
            (
                "a.php",
                "<?php function alpha() {} class Widget { function render() {} }",
            ),
            ("b.php", "<?php function beta() { alpha(); }"),
        ]);
        assert!(t.function("alpha").is_some());
        assert!(t.function("ALPHA").is_some());
        assert!(t.function("beta").is_some());
        assert!(t.class("widget").is_some());
        assert_eq!(t.callable_count(), 3);
        assert_eq!(t.class_count(), 1);
    }

    #[test]
    fn uncalled_detection() {
        let t = table(&[(
            "p.php",
            "<?php
            function used() {}
            function hook_handler() { echo $_GET['x']; }
            used();
            class C {
                function called_m() {}
                function uncalled_m() {}
            }
            $c = new C();
            $c->called_m();
            ",
        )]);
        let uncalled = t.uncalled();
        assert!(uncalled.contains(&FnRef::Function("hook_handler".into())));
        assert!(!uncalled.contains(&FnRef::Function("used".into())));
        assert!(uncalled.contains(&FnRef::Method("c".into(), "uncalled_m".into())));
        assert!(!uncalled.contains(&FnRef::Method("c".into(), "called_m".into())));
    }

    #[test]
    fn constructor_counts_as_called_when_instantiated() {
        let t = table(&[(
            "p.php",
            "<?php class A { function __construct() {} } $a = new A();
             class B { function __construct() {} }",
        )]);
        let uncalled = t.uncalled();
        assert!(!uncalled.contains(&FnRef::Method("a".into(), "__construct".into())));
        assert!(uncalled.contains(&FnRef::Method("b".into(), "__construct".into())));
    }

    #[test]
    fn method_resolution_walks_parents_and_traits() {
        let t = table(&[(
            "p.php",
            "<?php
            trait Help { function assist() {} }
            class Base { function ground() {} }
            class Mid extends Base { use Help; }
            class Leaf extends Mid { function own() {} }
            ",
        )]);
        assert!(t.method("leaf", "own").is_some());
        assert!(t.method("leaf", "ground").is_some(), "inherited");
        assert!(t.method("leaf", "assist").is_some(), "via trait");
        assert!(t.method("leaf", "missing").is_none());
    }

    #[test]
    fn hook_registration_does_not_count_as_call() {
        // add_action('init', 'handler') passes the name as a string — the
        // function is never *invoked* in plugin code.
        let t = table(&[(
            "p.php",
            "<?php function handler() {} add_action('init', 'handler');",
        )]);
        assert!(t.uncalled().contains(&FnRef::Function("handler".into())));
        assert!(t.is_called_function("add_action"));
    }

    #[test]
    fn nested_function_not_double_counted_as_method() {
        let t = table(&[(
            "p.php",
            "<?php class C { function m() { } } function free() {}",
        )]);
        assert!(t.function("m").is_none(), "methods are not free functions");
        assert!(t.function("free").is_some());
    }
}
