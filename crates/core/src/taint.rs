//! The taint lattice and per-variable analysis state — the Rust shape of
//! phpSAFE's `parser_variables` entries (§III.C): taint per vulnerability
//! class, the source the data came from, sanitization history (so revert
//! functions can restore it), the object class a variable holds, and the
//! data-flow trace back to the entry point.

use phpsafe_intern::Symbol;
use serde::{Deserialize, Serialize};
use taint_config::{SourceKind, VulnClass};

/// Priority used when two taints join: the paper classifies each
/// vulnerability by the entry vector found on the *reverse path* of the
/// tainted data, preferring the most directly exploitable vector.
fn kind_priority(k: SourceKind) -> u8 {
    match k {
        SourceKind::Get => 0,
        SourceKind::Post => 1,
        SourceKind::Request => 2,
        SourceKind::Cookie => 3,
        SourceKind::Server => 4,
        SourceKind::Database => 5,
        SourceKind::File => 6,
        SourceKind::Function => 7,
        SourceKind::Array => 8,
    }
}

/// Joins two optional source kinds, preferring the higher-priority vector.
fn join_kind(a: Option<SourceKind>, b: Option<SourceKind>) -> Option<SourceKind> {
    match (a, b) {
        (None, x) | (x, None) => x,
        (Some(x), Some(y)) => Some(if kind_priority(x) <= kind_priority(y) {
            x
        } else {
            y
        }),
    }
}

/// Taint state of a value: for each vulnerability class, whether the value
/// is dangerous and which input vector it came from. `oop` records whether
/// the flow passed through a CMS object method (the paper's §V.A "OOP
/// vulnerabilities" count).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash, Serialize, Deserialize)]
pub struct Taint {
    /// Tainted for XSS, with the originating vector.
    pub xss: Option<SourceKind>,
    /// Tainted for SQL injection, with the originating vector.
    pub sqli: Option<SourceKind>,
    /// The flow passed through a CMS framework object method.
    pub oop: bool,
}

impl Taint {
    /// The bottom element: fully untainted.
    pub const CLEAN: Taint = Taint {
        xss: None,
        sqli: None,
        oop: false,
    };

    /// A value tainted for every class from vector `kind`.
    pub fn from_source(kind: SourceKind) -> Taint {
        Taint {
            xss: Some(kind),
            sqli: Some(kind),
            oop: false,
        }
    }

    /// Same as [`Taint::from_source`] but flagged as flowing through a CMS
    /// object method.
    pub fn from_oop_source(kind: SourceKind) -> Taint {
        Taint {
            oop: true,
            ..Taint::from_source(kind)
        }
    }

    /// Is the value dangerous for `class`?
    pub fn is_tainted(&self, class: VulnClass) -> bool {
        self.kind_for(class).is_some()
    }

    /// Is the value dangerous for any class?
    pub fn any(&self) -> bool {
        self.xss.is_some() || self.sqli.is_some()
    }

    /// The originating vector for `class`, if tainted.
    pub fn kind_for(&self, class: VulnClass) -> Option<SourceKind> {
        match class {
            VulnClass::Xss => self.xss,
            VulnClass::Sqli => self.sqli,
        }
    }

    /// Least upper bound: tainted if either side is, keeping the
    /// higher-priority vector.
    pub fn join(self, other: Taint) -> Taint {
        Taint {
            xss: join_kind(self.xss, other.xss),
            sqli: join_kind(self.sqli, other.sqli),
            oop: self.oop || other.oop,
        }
    }

    /// Removes taint for the given classes (sanitization), returning the new
    /// taint and what was removed (so a revert can restore it).
    pub fn sanitize(self, classes: &[VulnClass]) -> (Taint, Taint) {
        let mut kept = self;
        let mut removed = Taint::CLEAN;
        for &c in classes {
            match c {
                VulnClass::Xss => {
                    removed.xss = join_kind(removed.xss, kept.xss);
                    kept.xss = None;
                }
                VulnClass::Sqli => {
                    removed.sqli = join_kind(removed.sqli, kept.sqli);
                    kept.sqli = None;
                }
            }
        }
        removed.oop = self.oop && removed.any();
        (kept, removed)
    }

    /// Marks the taint as having flowed through a CMS object method.
    pub fn with_oop(mut self) -> Taint {
        self.oop = true;
        self
    }
}

/// One step of a data-flow trace (the paper's "flow of the vulnerable data
/// from variable to variable").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceStep {
    /// File path (interned; serializes as a plain string).
    pub file: Symbol,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description, e.g. `$id <- $_GET['id']`.
    pub what: String,
}

/// Full analysis state of one variable/property — a `parser_variables` row.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct VarState {
    /// Current taint.
    pub taint: Taint,
    /// Taint removed by sanitizers (restorable by revert functions).
    pub sanitized_from: Taint,
    /// Class of the object this variable holds, lowercase, if known
    /// (`$wpdb` holds a `wpdb`).
    pub object_class: Option<Symbol>,
    /// Data-flow history, oldest first, capped by the analyzer.
    pub trace: Vec<TraceStep>,
}

impl VarState {
    /// A clean, classless value.
    pub fn clean() -> VarState {
        VarState::default()
    }

    /// A tainted value with a one-step trace.
    pub fn tainted(taint: Taint, step: TraceStep) -> VarState {
        VarState {
            taint,
            sanitized_from: Taint::CLEAN,
            object_class: None,
            trace: vec![step],
        }
    }

    /// Joins two states (used at data-flow merges), capping the trace.
    pub fn join(mut self, other: &VarState, trace_limit: usize) -> VarState {
        self.taint = self.taint.join(other.taint);
        self.sanitized_from = self.sanitized_from.join(other.sanitized_from);
        if self.object_class.is_none() {
            self.object_class = other.object_class;
        }
        // Prefer the trace of the tainted side; otherwise merge and cap.
        if self.trace.is_empty() {
            self.trace = other.trace.clone();
        } else if other.taint.any() && !other.trace.is_empty() && self.trace.len() < trace_limit {
            for s in &other.trace {
                if self.trace.len() >= trace_limit {
                    break;
                }
                if !self.trace.contains(s) {
                    self.trace.push(s.clone());
                }
            }
        }
        self.trace.truncate(trace_limit);
        self
    }

    /// Appends a trace step, respecting the cap.
    pub fn push_trace(&mut self, step: TraceStep, trace_limit: usize) {
        if self.trace.len() < trace_limit {
            self.trace.push(step);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_is_bottom() {
        assert!(!Taint::CLEAN.any());
        let t = Taint::from_source(SourceKind::Get);
        assert_eq!(Taint::CLEAN.join(t), t);
        assert_eq!(t.join(Taint::CLEAN), t);
    }

    #[test]
    fn join_prefers_direct_vectors() {
        let db = Taint::from_source(SourceKind::Database);
        let get = Taint::from_source(SourceKind::Get);
        assert_eq!(db.join(get).xss, Some(SourceKind::Get));
        assert_eq!(get.join(db).xss, Some(SourceKind::Get));
    }

    #[test]
    fn join_laws() {
        let a = Taint::from_source(SourceKind::Post);
        let b = Taint {
            xss: Some(SourceKind::Database),
            sqli: None,
            oop: true,
        };
        let c = Taint::from_source(SourceKind::File);
        assert_eq!(a.join(b), b.join(a), "commutative");
        assert_eq!(a.join(b).join(c), a.join(b.join(c)), "associative");
        assert_eq!(a.join(a), a, "idempotent");
    }

    #[test]
    fn sanitize_and_restore() {
        let t = Taint::from_source(SourceKind::Get);
        let (kept, removed) = t.sanitize(&[VulnClass::Xss]);
        assert!(!kept.is_tainted(VulnClass::Xss));
        assert!(kept.is_tainted(VulnClass::Sqli));
        assert!(removed.is_tainted(VulnClass::Xss));
        // revert restores
        let restored = kept.join(removed);
        assert!(restored.is_tainted(VulnClass::Xss));
        assert!(restored.is_tainted(VulnClass::Sqli));
    }

    #[test]
    fn sanitize_both_classes() {
        let t = Taint::from_source(SourceKind::Post);
        let (kept, removed) = t.sanitize(&[VulnClass::Xss, VulnClass::Sqli]);
        assert!(!kept.any());
        assert!(removed.is_tainted(VulnClass::Xss) && removed.is_tainted(VulnClass::Sqli));
    }

    #[test]
    fn oop_flag_propagates_through_join() {
        let oop = Taint::from_oop_source(SourceKind::Database);
        let plain = Taint::from_source(SourceKind::Get);
        assert!(oop.join(plain).oop);
        assert!(plain.join(oop).oop);
    }

    #[test]
    fn varstate_join_caps_trace() {
        let step = |i: u32| TraceStep {
            file: "f.php".into(),
            line: i,
            what: format!("step {i}"),
        };
        let mut a = VarState::tainted(Taint::from_source(SourceKind::Get), step(1));
        for i in 2..10 {
            a.push_trace(step(i), 4);
        }
        assert_eq!(a.trace.len(), 4);
        let b = VarState::tainted(Taint::from_source(SourceKind::Post), step(99));
        let j = a.join(&b, 4);
        assert!(j.trace.len() <= 4);
        assert!(j.taint.is_tainted(VulnClass::Xss));
    }

    #[test]
    fn varstate_join_keeps_object_class() {
        let mut a = VarState::clean();
        let mut b = VarState::clean();
        b.object_class = Some("wpdb".into());
        let j = a.clone().join(&b, 8);
        assert_eq!(j.object_class.map(|c| c.as_str()), Some("wpdb"));
        a.object_class = Some("other".into());
        let j2 = a.join(&b, 8);
        assert_eq!(j2.object_class.map(|c| c.as_str()), Some("other"));
    }
}
