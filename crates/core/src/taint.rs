//! The taint lattice and per-variable analysis state — the Rust shape of
//! phpSAFE's `parser_variables` entries (§III.C): taint per vulnerability
//! class, the source the data came from, sanitization history (so revert
//! functions can restore it), the object class a variable holds, and the
//! data-flow trace back to the entry point.

use phpsafe_intern::Symbol;
use serde::{Deserialize, Serialize};
use taint_config::{SourceKind, TaintLabels, VulnClass};

/// Taint state of a value: for each vulnerability class, the *set* of input
/// vectors the data flowed from ([`TaintLabels`]). `oop` records whether the
/// flow passed through a CMS object method (the paper's §V.A "OOP
/// vulnerabilities" count).
///
/// The former representation kept one `Option<SourceKind>` per class,
/// resolving joins eagerly by vector priority. Labels defer that choice:
/// joins union the sets, and [`Taint::kind_for`] recovers the identical
/// priority winner ([`TaintLabels::primary`] — min over a union equals the
/// iterated pairwise min), while the full set rides along for Table II and
/// the `--explain` provenance tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Taint {
    /// Per-class label sets, indexed by [`VulnClass::index`].
    pub labels: [TaintLabels; VulnClass::COUNT],
    /// The flow passed through a CMS framework object method.
    pub oop: bool,
}

impl Taint {
    /// The bottom element: fully untainted.
    pub const CLEAN: Taint = Taint {
        labels: [TaintLabels::EMPTY; VulnClass::COUNT],
        oop: false,
    };

    /// A value tainted for every class from vector `kind`.
    pub fn from_source(kind: SourceKind) -> Taint {
        Taint {
            labels: [TaintLabels::single(kind); VulnClass::COUNT],
            oop: false,
        }
    }

    /// Same as [`Taint::from_source`] but flagged as flowing through a CMS
    /// object method.
    pub fn from_oop_source(kind: SourceKind) -> Taint {
        Taint {
            oop: true,
            ..Taint::from_source(kind)
        }
    }

    /// Is the value dangerous for `class`?
    pub fn is_tainted(&self, class: VulnClass) -> bool {
        !self.labels[class.index()].is_empty()
    }

    /// Is the value dangerous for any class?
    pub fn any(&self) -> bool {
        self.labels.iter().any(|l| !l.is_empty())
    }

    /// The originating vector for `class`, if tainted: the highest-priority
    /// member of the class's label set.
    pub fn kind_for(&self, class: VulnClass) -> Option<SourceKind> {
        self.labels[class.index()].primary()
    }

    /// The full label set for `class` (every vector that reached the value).
    pub fn labels_for(&self, class: VulnClass) -> TaintLabels {
        self.labels[class.index()]
    }

    /// Least upper bound: per-class label-set union.
    pub fn join(self, other: Taint) -> Taint {
        let mut labels = self.labels;
        for (l, o) in labels.iter_mut().zip(other.labels) {
            *l = l.union(o);
        }
        Taint {
            labels,
            oop: self.oop || other.oop,
        }
    }

    /// Removes taint for the given classes (sanitization), returning the new
    /// taint and what was removed (so a revert can restore it).
    pub fn sanitize(self, classes: &[VulnClass]) -> (Taint, Taint) {
        let mut kept = self;
        let mut removed = Taint::CLEAN;
        for &c in classes {
            let i = c.index();
            removed.labels[i] = removed.labels[i].union(kept.labels[i]);
            kept.labels[i] = TaintLabels::EMPTY;
        }
        removed.oop = self.oop && removed.any();
        (kept, removed)
    }

    /// Marks the taint as having flowed through a CMS object method.
    pub fn with_oop(mut self) -> Taint {
        self.oop = true;
        self
    }
}

// Manual serde impls: the offline serde shim has no `[T; N]` deserialize,
// so the label array is written as a plain JSON array of bitset words.
impl Serialize for Taint {
    fn serialize(&self, s: &mut serde::Serializer) {
        s.begin_obj();
        s.key("labels");
        s.begin_arr();
        for l in &self.labels {
            s.uint(l.0 as u64);
        }
        s.end_arr();
        s.key("oop");
        s.boolean(self.oop);
        s.end_obj();
    }
}

impl Deserialize for Taint {
    fn deserialize(v: &serde::Value) -> Result<Self, serde::Error> {
        let obj = v
            .as_obj()
            .ok_or_else(|| serde::Error::expected("object", "Taint"))?;
        let arr = serde::obj_field(obj, "labels")
            .as_arr()
            .ok_or_else(|| serde::Error::expected("array", "Taint.labels"))?;
        if arr.len() != VulnClass::COUNT {
            return Err(serde::Error::msg(format!(
                "expected {} label sets, got {}",
                VulnClass::COUNT,
                arr.len()
            )));
        }
        let mut labels = [TaintLabels::EMPTY; VulnClass::COUNT];
        for (slot, item) in labels.iter_mut().zip(arr) {
            *slot = TaintLabels(u16::deserialize(item)?);
        }
        Ok(Taint {
            labels,
            oop: bool::deserialize(serde::obj_field(obj, "oop"))?,
        })
    }
}

/// One step of a data-flow trace (the paper's "flow of the vulnerable data
/// from variable to variable").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceStep {
    /// File path (interned; serializes as a plain string).
    pub file: Symbol,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description, e.g. `$id <- $_GET['id']`.
    pub what: String,
}

/// Full analysis state of one variable/property — a `parser_variables` row.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct VarState {
    /// Current taint.
    pub taint: Taint,
    /// Taint removed by sanitizers (restorable by revert functions).
    pub sanitized_from: Taint,
    /// Class of the object this variable holds, lowercase, if known
    /// (`$wpdb` holds a `wpdb`).
    pub object_class: Option<Symbol>,
    /// Data-flow history, oldest first, capped by the analyzer.
    pub trace: Vec<TraceStep>,
}

impl VarState {
    /// A clean, classless value.
    pub fn clean() -> VarState {
        VarState::default()
    }

    /// A tainted value with a one-step trace.
    pub fn tainted(taint: Taint, step: TraceStep) -> VarState {
        VarState {
            taint,
            sanitized_from: Taint::CLEAN,
            object_class: None,
            trace: vec![step],
        }
    }

    /// Joins two states (used at data-flow merges), capping the trace.
    pub fn join(mut self, other: &VarState, trace_limit: usize) -> VarState {
        self.taint = self.taint.join(other.taint);
        self.sanitized_from = self.sanitized_from.join(other.sanitized_from);
        if self.object_class.is_none() {
            self.object_class = other.object_class;
        }
        // Prefer the trace of the tainted side; otherwise merge and cap.
        if self.trace.is_empty() {
            self.trace = other.trace.clone();
        } else if other.taint.any() && !other.trace.is_empty() && self.trace.len() < trace_limit {
            for s in &other.trace {
                if self.trace.len() >= trace_limit {
                    break;
                }
                if !self.trace.contains(s) {
                    self.trace.push(s.clone());
                }
            }
        }
        self.trace.truncate(trace_limit);
        self
    }

    /// Appends a trace step, respecting the cap.
    pub fn push_trace(&mut self, step: TraceStep, trace_limit: usize) {
        if self.trace.len() < trace_limit {
            self.trace.push(step);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_is_bottom() {
        assert!(!Taint::CLEAN.any());
        let t = Taint::from_source(SourceKind::Get);
        assert_eq!(Taint::CLEAN.join(t), t);
        assert_eq!(t.join(Taint::CLEAN), t);
    }

    #[test]
    fn join_prefers_direct_vectors() {
        let db = Taint::from_source(SourceKind::Database);
        let get = Taint::from_source(SourceKind::Get);
        assert_eq!(db.join(get).kind_for(VulnClass::Xss), Some(SourceKind::Get));
        assert_eq!(get.join(db).kind_for(VulnClass::Xss), Some(SourceKind::Get));
        // ... but both labels survive the join.
        let labels = db.join(get).labels_for(VulnClass::Xss);
        assert!(labels.contains(SourceKind::Get) && labels.contains(SourceKind::Database));
    }

    #[test]
    fn join_laws() {
        // `b` is tainted for XSS only (a DB value escaped for SQL), and OOP.
        let b = Taint::from_oop_source(SourceKind::Database)
            .sanitize(&[VulnClass::Sqli])
            .0;
        let a = Taint::from_source(SourceKind::Post);
        let c = Taint::from_source(SourceKind::File);
        assert_eq!(a.join(b), b.join(a), "commutative");
        assert_eq!(a.join(b).join(c), a.join(b.join(c)), "associative");
        assert_eq!(a.join(a), a, "idempotent");
    }

    #[test]
    fn sanitize_and_restore() {
        let t = Taint::from_source(SourceKind::Get);
        let (kept, removed) = t.sanitize(&[VulnClass::Xss]);
        assert!(!kept.is_tainted(VulnClass::Xss));
        assert!(kept.is_tainted(VulnClass::Sqli));
        assert!(removed.is_tainted(VulnClass::Xss));
        // revert restores
        let restored = kept.join(removed);
        assert!(restored.is_tainted(VulnClass::Xss));
        assert!(restored.is_tainted(VulnClass::Sqli));
    }

    #[test]
    fn sanitize_both_paper_classes() {
        let t = Taint::from_source(SourceKind::Post);
        let (kept, removed) = t.sanitize(&VulnClass::PAPER);
        assert!(!kept.is_tainted(VulnClass::Xss) && !kept.is_tainted(VulnClass::Sqli));
        // The registry has grown past the paper's two classes: the other
        // labels survive a paper-classes-only sanitizer.
        assert!(kept.any());
        assert!(removed.is_tainted(VulnClass::Xss) && removed.is_tainted(VulnClass::Sqli));
    }

    #[test]
    fn xss_only_sanitizer_keeps_shell_injection_label() {
        // The taxonomy's negative guarantee: HTML encoding says nothing
        // about shell metacharacters — the CmdInjection label survives.
        let t = Taint::from_source(SourceKind::Get);
        let (kept, removed) = t.sanitize(&[VulnClass::Xss]);
        assert!(!kept.is_tainted(VulnClass::Xss));
        assert!(kept.is_tainted(VulnClass::CmdInjection));
        assert!(kept.is_tainted(VulnClass::PathTraversal));
        assert!(kept.is_tainted(VulnClass::Ssrf));
        assert_eq!(
            kept.labels_for(VulnClass::CmdInjection),
            taint_config::TaintLabels::single(SourceKind::Get)
        );
        assert!(!removed.is_tainted(VulnClass::CmdInjection));
    }

    #[test]
    fn full_registry_sanitize_clears_everything() {
        let t = Taint::from_source(SourceKind::Post);
        let (kept, removed) = t.sanitize(&VulnClass::ALL);
        assert!(!kept.any());
        for class in VulnClass::ALL {
            assert!(removed.is_tainted(class));
        }
        assert_eq!(kept.join(removed), t, "revert restores all labels");
    }

    #[test]
    fn taint_serde_roundtrip() {
        let t = Taint::from_oop_source(SourceKind::Cookie)
            .join(Taint::from_source(SourceKind::File))
            .sanitize(&[VulnClass::Sqli])
            .0;
        let json = serde::to_json_string(&t, false);
        let v = serde::parse_json(&json).expect("parse");
        let back = <Taint as serde::Deserialize>::deserialize(&v).expect("deserialize");
        assert_eq!(t, back);
    }

    #[test]
    fn oop_flag_propagates_through_join() {
        let oop = Taint::from_oop_source(SourceKind::Database);
        let plain = Taint::from_source(SourceKind::Get);
        assert!(oop.join(plain).oop);
        assert!(plain.join(oop).oop);
    }

    #[test]
    fn varstate_join_caps_trace() {
        let step = |i: u32| TraceStep {
            file: "f.php".into(),
            line: i,
            what: format!("step {i}"),
        };
        let mut a = VarState::tainted(Taint::from_source(SourceKind::Get), step(1));
        for i in 2..10 {
            a.push_trace(step(i), 4);
        }
        assert_eq!(a.trace.len(), 4);
        let b = VarState::tainted(Taint::from_source(SourceKind::Post), step(99));
        let j = a.join(&b, 4);
        assert!(j.trace.len() <= 4);
        assert!(j.taint.is_tainted(VulnClass::Xss));
    }

    #[test]
    fn varstate_join_keeps_object_class() {
        let mut a = VarState::clean();
        let mut b = VarState::clean();
        b.object_class = Some("wpdb".into());
        let j = a.clone().join(&b, 8);
        assert_eq!(j.object_class.map(|c| c.as_str()), Some("wpdb"));
        a.object_class = Some("other".into());
        let j2 = a.join(&b, 8);
        assert_eq!(j2.object_class.map(|c| c.as_str()), Some("other"));
    }
}
