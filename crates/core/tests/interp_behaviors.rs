//! Construct-level behavior tests for the taint interpreter: each test
//! pins how one PHP construct propagates (or kills) taint, matching the
//! transfer functions the paper describes in §III.C.

use phpsafe::{AnalyzerOptions, PhpSafe, PluginProject, SourceFile};
use taint_config::{SourceKind, VulnClass};

fn analyze(src: &str) -> phpsafe::AnalysisOutcome {
    let p = PluginProject::new("t").with_file(SourceFile::new("t.php", src));
    PhpSafe::new().analyze(&p)
}

fn count(src: &str) -> usize {
    analyze(src).vulns.len()
}

// ---------- strings & interpolation ----------

#[test]
fn heredoc_interpolation_carries_taint() {
    let src = "<?php\n$u = $_GET['u'];\n$h = <<<EOT\nHello $u\nEOT;\necho $h;\n";
    assert_eq!(count(src), 1);
}

#[test]
fn nowdoc_carries_no_taint() {
    let src = "<?php\n$u = $_GET['u'];\n$h = <<<'EOT'\nHello $u\nEOT;\necho $h;\n";
    assert_eq!(count(src), 0, "nowdoc does not interpolate");
}

#[test]
fn complex_interpolation_object_property() {
    let src = r#"<?php
$row = $wpdb->get_row("SELECT * FROM x");
echo "name: {$row->name}";
"#;
    let o = analyze(src);
    assert_eq!(o.vulns.len(), 1);
    assert!(o.vulns[0].via_oop);
}

#[test]
fn concat_assignment_accumulates_taint() {
    assert_eq!(
        count("<?php $out = '<ul>'; $out .= $_GET['li']; $out .= '</ul>'; echo $out;"),
        1
    );
}

#[test]
fn arithmetic_compound_assignment_is_clean() {
    assert_eq!(count("<?php $n = $_GET['n']; $n += 1; echo $n;"), 0);
}

#[test]
fn arithmetic_neutralizes() {
    assert_eq!(count("<?php echo $_GET['a'] + $_GET['b'];"), 0);
    assert_eq!(count("<?php echo $_GET['a'] * 3;"), 0);
    assert_eq!(count("<?php echo -$_GET['a'];"), 0);
}

#[test]
fn comparison_is_clean_boolean() {
    assert_eq!(count("<?php echo $_GET['a'] == 'x';"), 0);
}

// ---------- control flow ----------

#[test]
fn ternary_joins_both_arms() {
    assert_eq!(
        count("<?php echo $c ? $_GET['a'] : 'safe';"),
        1,
        "tainted arm"
    );
    assert_eq!(
        count("<?php echo $c ? intval($_GET['a']) : 0;"),
        0,
        "both arms safe"
    );
}

#[test]
fn short_ternary_keeps_condition_value() {
    assert_eq!(count("<?php echo $_GET['a'] ?: 'default';"), 1);
}

#[test]
fn switch_branches_join() {
    assert_eq!(
        count(
            "<?php
            $x = $_GET['x'];
            switch ($m) {
                case 'a': $x = intval($x); break;
                default: break;
            }
            echo $x;"
        ),
        1,
        "default path leaves $x tainted"
    );
    assert_eq!(
        count(
            "<?php
            $x = $_GET['x'];
            switch ($m) {
                case 'a': $x = intval($x); break;
                default: $x = 0;
            }
            echo $x;"
        ),
        0,
        "every arm sanitizes (default present)"
    );
}

#[test]
fn while_loop_body_executes() {
    assert_eq!(
        count("<?php while ($i < 3) { echo $_COOKIE['c']; $i++; }"),
        1
    );
}

#[test]
fn do_while_executes_body() {
    assert_eq!(count("<?php do { echo $_GET['x']; } while (false);"), 1);
}

#[test]
fn for_loop_executes_body() {
    assert_eq!(
        count("<?php for ($i = 0; $i < 2; $i++) { echo $_GET['q']; }"),
        1
    );
}

#[test]
fn loop_carried_accumulation_found() {
    assert_eq!(
        count(
            "<?php
            $acc = '';
            foreach ($_POST['rows'] as $r) { $acc .= $r; }
            echo $acc;"
        ),
        1
    );
}

#[test]
fn try_catch_finally_flows() {
    assert_eq!(
        count(
            "<?php
            try { $x = $_GET['x']; } catch (Exception $e) { $x = 'safe'; }
            finally { echo $x; }"
        ),
        1
    );
}

// ---------- arrays & lists ----------

#[test]
fn array_element_write_taints_container() {
    assert_eq!(
        count("<?php $a = array(); $a['k'] = $_GET['v']; echo $a['k'];"),
        1
    );
}

#[test]
fn array_push_syntax_taints() {
    assert_eq!(
        count("<?php $a = array(); $a[] = $_POST['v']; foreach ($a as $x) echo $x;"),
        1
    );
}

#[test]
fn array_literal_with_tainted_member() {
    assert_eq!(
        count("<?php $a = array('k' => $_GET['v']); echo $a['k'];"),
        1
    );
}

#[test]
fn list_destructuring_propagates() {
    assert_eq!(
        count("<?php list($a, $b) = explode(',', $_GET['csv']); echo $b;"),
        1,
        "explode is unknown -> conservative propagation; list assigns both"
    );
}

#[test]
fn unset_kills_array_taint() {
    assert_eq!(count("<?php $a = $_GET['x']; unset($a); echo $a;"), 0);
}

// ---------- functions ----------

#[test]
fn default_parameter_value_evaluated() {
    assert_eq!(
        count(
            "<?php
            function show($m = 'safe') { echo $m; }
            show($_GET['m']);"
        ),
        1
    );
    assert_eq!(
        count(
            "<?php
            function show($m = 'safe') { echo $m; }
            show();"
        ),
        0
    );
}

#[test]
fn memoization_is_per_taint_signature() {
    // Called first with clean, then with tainted arguments: both contexts
    // must be analyzed (context sensitivity).
    assert_eq!(
        count(
            "<?php
            function show($m) { echo $m; }
            show('clean');
            show($_GET['m']);"
        ),
        1
    );
}

#[test]
fn wrapper_chain_three_deep() {
    assert_eq!(
        count(
            "<?php
            function a($v) { return b($v); }
            function b($v) { return c($v); }
            function c($v) { return '<p>' . $v . '</p>'; }
            echo a($_GET['x']);"
        ),
        1
    );
}

#[test]
fn sanitizing_wrapper_chain() {
    assert_eq!(
        count(
            "<?php
            function a($v) { return b($v); }
            function b($v) { return htmlentities($v); }
            echo a($_GET['x']);"
        ),
        0
    );
}

#[test]
fn mutual_recursion_terminates() {
    assert_eq!(
        count(
            "<?php
            function even($n) { if ($n == 0) return $_GET['x']; return odd($n - 1); }
            function odd($n) { if ($n == 0) return 'safe'; return even($n - 1); }
            echo even(4);"
        ),
        1
    );
}

#[test]
fn closure_bodies_are_covered() {
    assert_eq!(
        count("<?php add_action('init', function () { echo $_REQUEST['q']; });"),
        1
    );
}

#[test]
fn closure_captures_taint_via_use() {
    assert_eq!(
        count(
            "<?php
            $m = $_POST['m'];
            add_filter('x', function () use ($m) { echo $m; });"
        ),
        1
    );
}

// ---------- OOP ----------

#[test]
fn static_property_flow() {
    assert_eq!(
        count(
            "<?php
            class Cfg { public static $banner; }
            Cfg::$banner = $_GET['b'];
            echo Cfg::$banner;"
        ),
        1
    );
}

#[test]
fn inherited_method_resolution() {
    assert_eq!(
        count(
            "<?php
            class Base { public function show($v) { echo $v; } }
            class Child extends Base {}
            $c = new Child();
            $c->show($_GET['x']);"
        ),
        1
    );
}

#[test]
fn trait_method_resolution() {
    assert_eq!(
        count(
            "<?php
            trait Render { public function out($v) { echo $v; } }
            class Page { use Render; }
            $p = new Page();
            $p->out($_COOKIE['c']);"
        ),
        1
    );
}

#[test]
fn self_static_method_calls() {
    assert_eq!(
        count(
            "<?php
            class Util {
                public static function raw($v) { return $v; }
                public static function run() { echo self::raw($_GET['x']); }
            }
            Util::run();"
        ),
        1
    );
}

#[test]
fn constructor_taints_property_for_later_method() {
    assert_eq!(
        count(
            "<?php
            class Box {
                private $v;
                public function __construct($v) { $this->v = $v; }
                public function show() { echo $this->v; }
            }
            $b = new Box($_GET['x']);
            $b->show();"
        ),
        1
    );
}

#[test]
fn property_sanitized_on_write_stays_clean() {
    assert_eq!(
        count(
            "<?php
            class Box {
                public $v;
                public function __construct() { $this->v = intval($_GET['x']); }
                public function show() { echo $this->v; }
            }
            $b = new Box();
            $b->show();"
        ),
        0
    );
}

#[test]
fn method_on_tainted_row_object_returns_taint() {
    assert_eq!(
        count(
            "<?php
            $row = $wpdb->get_row('SELECT 1');
            echo $row->format();"
        ),
        1,
        "unknown method on tainted object keeps the object's taint"
    );
}

#[test]
fn wpdb_get_col_and_get_var_are_sources() {
    assert_eq!(count("<?php echo $wpdb->get_var('SELECT x');"), 1);
    assert_eq!(
        count("<?php foreach ($wpdb->get_col('SELECT x') as $c) echo $c;"),
        1
    );
}

// ---------- sources & sanitizers ----------

#[test]
fn server_superglobal_is_tainted() {
    let o = analyze("<?php echo $_SERVER['HTTP_USER_AGENT'];");
    assert_eq!(o.vulns.len(), 1);
    assert_eq!(o.vulns[0].source_kind, SourceKind::Server);
}

#[test]
fn legacy_http_vars_are_tainted() {
    assert_eq!(count("<?php echo $HTTP_GET_VARS['x'];"), 1);
}

#[test]
fn sanitizer_inside_interpolation_context() {
    assert_eq!(
        count("<?php $n = esc_attr($_GET['n']); echo \"<input value='$n'>\";"),
        0
    );
}

#[test]
fn double_revert_chain() {
    // sanitize -> revert -> still dangerous.
    assert_eq!(
        count(
            "<?php
            $s = htmlentities($_GET['s']);
            $t = html_entity_decode($s);
            echo $t;"
        ),
        1
    );
}

#[test]
fn urlencode_then_urldecode_restores_taint() {
    assert_eq!(
        count("<?php $e = urlencode($_GET['u']); echo urldecode($e);"),
        1
    );
}

#[test]
fn shell_exec_string_joins_parts() {
    // Backtick content with tainted interpolation is itself a command
    // injection sink, and the (conservative) result echoed is XSS.
    let vulns = analyze("<?php $o = `ls {$_GET['d']}`; echo $o;").vulns;
    assert_eq!(vulns.len(), 2);
    assert!(vulns
        .iter()
        .any(|v| v.class == VulnClass::CmdInjection && v.sink == "`...`"));
    assert!(vulns.iter().any(|v| v.class == VulnClass::Xss));
}

// ---------- sinks ----------

#[test]
fn printf_family_sinks() {
    assert_eq!(count("<?php printf('%s', $_GET['f']);"), 1);
    assert_eq!(count("<?php print_r($_POST['d']);"), 1);
}

#[test]
fn exit_with_tainted_message() {
    assert_eq!(count("<?php die('err: ' . $_GET['m']);"), 1);
}

#[test]
fn print_expression_sink() {
    assert_eq!(count("<?php print $_GET['p'];"), 1);
}

#[test]
fn short_echo_tag_sink() {
    assert_eq!(count("<?= $_GET['x'] ?>"), 1);
}

#[test]
fn mysqli_query_sqli_sink() {
    let o = analyze("<?php $q = $_GET['q']; mysqli_query($link, \"SELECT $q\");");
    assert_eq!(o.vulns.len(), 1);
    assert_eq!(o.vulns[0].class, VulnClass::Sqli);
}

#[test]
fn sink_reports_once_per_line_and_class() {
    // Echo of two tainted variables on one line: one deduplicated finding.
    assert_eq!(count("<?php echo $_GET['a'] . $_GET['b'];"), 1);
}

// ---------- includes & scope ----------

#[test]
fn include_once_runs_once() {
    let p = PluginProject::new("inc")
        .with_file(SourceFile::new(
            "main.php",
            "<?php include_once 'lib.php'; include_once 'lib.php';",
        ))
        .with_file(SourceFile::new("lib.php", "<?php echo $_GET['x'];"));
    let o = PhpSafe::new().analyze(&p);
    assert_eq!(o.vulns.len(), 1);
}

#[test]
fn global_keyword_shares_state_with_top_level() {
    assert_eq!(
        count(
            "<?php
            $msg = $_GET['m'];
            function show() { global $msg; echo $msg; }
            show();"
        ),
        1
    );
}

#[test]
fn function_scope_is_isolated_without_global() {
    assert_eq!(
        count(
            "<?php
            $msg = $_GET['m'];
            function show() { echo $msg; }
            show();"
        ),
        0,
        "PHP functions do not see outer locals"
    );
}

#[test]
fn static_function_variables() {
    assert_eq!(
        count(
            "<?php
            function cache() { static $v = null; $v = $_GET['x']; echo $v; }
            cache();"
        ),
        1
    );
}

// ---------- option interactions ----------

#[test]
fn no_uncalled_option_skips_hooks_but_keeps_main_flow() {
    let src = "<?php
        echo $_GET['top'];
        function hook() { echo $_POST['h']; }";
    let p = PluginProject::new("t").with_file(SourceFile::new("t.php", src));
    let full = PhpSafe::new().analyze(&p);
    assert_eq!(full.vulns.len(), 2);
    let no_uncalled = PhpSafe::new()
        .with_options(AnalyzerOptions {
            analyze_uncalled: false,
            ..AnalyzerOptions::default()
        })
        .analyze(&p);
    assert_eq!(no_uncalled.vulns.len(), 1);
}

#[test]
fn trace_limit_respected() {
    let mut src = String::from("<?php $v0 = $_GET['x'];\n");
    for i in 1..40 {
        src.push_str(&format!("$v{i} = $v{} . '-';\n", i - 1));
    }
    src.push_str("echo $v39;\n");
    let o = analyze(&src);
    assert_eq!(o.vulns.len(), 1);
    assert!(
        o.vulns[0].trace.len() <= PhpSafe::new().options().trace_limit,
        "trace capped: {}",
        o.vulns[0].trace.len()
    );
}

// ---------- by-reference output built-ins ----------

#[test]
fn extract_spills_taint_over_scope() {
    assert_eq!(count("<?php extract($_POST); echo $whatever;"), 1);
}

#[test]
fn extract_clean_array_is_harmless() {
    assert_eq!(
        count("<?php extract(array('a' => 1)); echo $b;"),
        0,
        "extracting a clean array must not taint undefined reads"
    );
}

#[test]
fn parse_str_fills_output_argument() {
    assert_eq!(
        count("<?php parse_str($_SERVER['QUERY_STRING'], $params); echo $params['q'];"),
        1
    );
    assert_eq!(
        count("<?php parse_str('a=1&b=2', $params); echo $params['a'];"),
        0
    );
}

#[test]
fn preg_match_captures_subject_taint() {
    assert_eq!(
        count("<?php preg_match('/id=(\\d+)/', $_GET['q'], $m); echo $m[1];"),
        1
    );
    assert_eq!(
        count("<?php preg_match('/x/', 'constant', $m); echo $m[0];"),
        0
    );
}

#[test]
fn str_replace_propagates_subject_taint() {
    assert_eq!(
        count("<?php echo str_replace('a', 'b', $_GET['s']);"),
        1,
        "conservative propagation through unknown string builtins"
    );
}

// ---------- scaling (§V.E: "phpSAFE and RIPS should scale to larger files") ----------

#[test]
fn work_scales_roughly_linearly_with_code_size() {
    fn work_for(copies: usize) -> u64 {
        let mut src = String::from("<?php\n");
        for i in 0..copies {
            src.push_str(&format!(
                "$v{i} = $_GET['k{i}']; echo htmlentities($v{i});\n"
            ));
        }
        let p = PluginProject::new("scale").with_file(SourceFile::new("s.php", src));
        PhpSafe::new().analyze(&p).stats.work_units
    }
    let w100 = work_for(100);
    let w400 = work_for(400);
    let ratio = w400 as f64 / w100 as f64;
    assert!(
        (3.0..=5.5).contains(&ratio),
        "4x code should cost ~4x work, got {ratio:.2} ({w100} -> {w400})"
    );
}

#[test]
fn summaries_bound_repeated_call_cost() {
    // 200 calls to the same function with the same taint signature must
    // not cost 200 body analyses.
    let mut src =
        String::from("<?php function body($v) { $a = $v . 'x'; $b = $a . 'y'; return $b; }\n");
    for _ in 0..200 {
        src.push_str("body('k');\n");
    }
    let p = PluginProject::new("memo").with_file(SourceFile::new("m.php", src));
    let with = PhpSafe::new().analyze(&p).stats.work_units;
    let without = PhpSafe::new()
        .with_options(AnalyzerOptions {
            summaries: false,
            ..AnalyzerOptions::default()
        })
        .analyze(&p)
        .stats
        .work_units;
    assert!(
        without > with * 2,
        "re-analysis must dominate: with={with} without={without}"
    );
}
