//! `corpus-dump` — writes the synthetic 35-plugin corpus to disk so the
//! plugins can be inspected, diffed, or fed to the `phpsafe` CLI (or any
//! other PHP analyzer).
//!
//! ```text
//! cargo run -p phpsafe-corpus --bin corpus-dump -- <OUT_DIR> [plugin-slug]
//! ```
//!
//! Layout: `<OUT_DIR>/<version>/<plugin>/<files...>` plus
//! `<OUT_DIR>/ground_truth.json`.

use phpsafe_corpus::{Corpus, Version};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(out_dir) = args.next().map(PathBuf::from) else {
        eprintln!("usage: corpus-dump <OUT_DIR> [plugin-slug]");
        return ExitCode::from(2);
    };
    let only: Option<String> = args.next();

    let corpus = Corpus::generate();
    let mut files_written = 0usize;
    let mut truth = Vec::new();
    for plugin in corpus.plugins() {
        if let Some(slug) = &only {
            if &plugin.name != slug {
                continue;
            }
        }
        truth.extend(plugin.truth.iter().cloned());
        for version in Version::ALL {
            let vdir = match version {
                Version::V2012 => "2012",
                Version::V2014 => "2014",
            };
            for f in plugin.project(version).files() {
                let path = out_dir.join(vdir).join(&plugin.name).join(&f.path);
                if let Some(parent) = path.parent() {
                    if let Err(e) = std::fs::create_dir_all(parent) {
                        eprintln!("error: mkdir {}: {e}", parent.display());
                        return ExitCode::from(2);
                    }
                }
                if let Err(e) = std::fs::write(&path, &f.content) {
                    eprintln!("error: write {}: {e}", path.display());
                    return ExitCode::from(2);
                }
                files_written += 1;
            }
        }
    }
    if files_written == 0 {
        eprintln!("error: no plugin matched");
        return ExitCode::from(2);
    }
    let gt_path = out_dir.join("ground_truth.json");
    match serde_json::to_string_pretty(&truth) {
        Ok(j) => {
            if let Err(e) = std::fs::write(&gt_path, j) {
                eprintln!("error: write {}: {e}", gt_path.display());
                return ExitCode::from(2);
            }
        }
        Err(e) => {
            eprintln!("error: serialize ground truth: {e}");
            return ExitCode::from(2);
        }
    }
    println!(
        "wrote {files_written} files and {} ground-truth entries to {}",
        truth.len(),
        out_dir.display()
    );
    ExitCode::SUCCESS
}
