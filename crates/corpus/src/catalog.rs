//! The fixed 35-plugin catalog, calibrated so corpus-wide aggregates
//! reproduce the *shape* of the paper's evaluation (Tables I–III, Fig. 2,
//! §V.A/§V.C/§V.D). See DESIGN.md §3 for the substitution rationale.
//!
//! Plugin groups (indices):
//! * `0..10`  — OOP database plugins (the paper's "10 plugins with OOP
//!   vulnerabilities in 2012, 7 in 2014").
//! * `10..18` — legacy procedural plugins; five gain OOP bits in 2014.
//! * `18..26` — hook-heavy plugins; 2014 versions register closures.
//! * `26`     — the include-chain "monster" plugin (phpSAFE's failed files).
//! * `27..35` — miscellaneous plugins.

use crate::spec::{Pattern, PatternCount, PluginSpec, Style};
use std::collections::HashMap;
use taint_config::SourceKind;

/// The 35 plugin slugs (four taken from the paper's examples).
pub const PLUGIN_NAMES: [&str; 35] = [
    // 0..10: OOP database plugins
    "mail-subscribe-list",
    "wp-symposium",
    "wp-photo-album-plus",
    "wp-forum-central",
    "wp-member-board",
    "event-registry",
    "wp-donation-box",
    "gallery-master",
    "wp-quiz-engine",
    "team-roster",
    // 10..18: legacy procedural
    "qtranslate",
    "simple-guestbook",
    "visitor-counter",
    "easy-banners",
    "link-directory",
    "classic-polls",
    "legacy-feedback",
    "retro-sitemap",
    // 18..26: hook-heavy
    "hook-notifier",
    "ajax-responder",
    "shortcode-suite",
    "widget-factory",
    "contact-forms-lite",
    "newsletter-lite",
    "social-buttons",
    "seo-meta-tags",
    // 26: monster
    "media-archive-pro",
    // 27..35: misc
    "wp-cache-viewer",
    "stats-dashboard",
    "backup-scheduler",
    "comment-moderator",
    "user-profiles-plus",
    "print-friendly",
    "feed-importer",
    "maintenance-mode",
];

const G1_OOP: std::ops::Range<usize> = 0..10;
const G1_OOP_2014: std::ops::Range<usize> = 0..7;
const G1_SQLI_2012: std::ops::Range<usize> = 0..4;
const G1_SQLI_2014: std::ops::Range<usize> = 0..6;
const G2_LEGACY: std::ops::Range<usize> = 10..18;
const G2_OOPIFIED: std::ops::Range<usize> = 10..15;
const G2_CLEAN_2014: std::ops::Range<usize> = 15..18;
const G3_HOOK: std::ops::Range<usize> = 18..26;
const G3_PROC: std::ops::Range<usize> = 22..26;
const MONSTER: usize = 26;
const G5_MISC: std::ops::Range<usize> = 27..35;
const G5_OOP: std::ops::Range<usize> = 27..32;

/// One calibrated allocation row: a pattern with corpus-wide totals and the
/// plugin sets that host it in each version.
struct Row {
    pattern: Pattern,
    n12: u32,
    n14: u32,
    carried: u32,
    members12: Vec<usize>,
    members14: Vec<usize>,
}

fn r(range: std::ops::Range<usize>) -> Vec<usize> {
    range.collect()
}

fn rows() -> Vec<Row> {
    use crate::spec::Placement as L;
    use Pattern as P;
    use SourceKind as SK;
    let row = |pattern, n12, n14, carried, members12: Vec<usize>, members14: Vec<usize>| Row {
        pattern,
        n12,
        n14,
        carried,
        members12,
        members14,
    };
    vec![
        // ---- ground-truth positives ----
        row(
            P::XssEchoDirect(SK::Get, L::TopLevel),
            32,
            33,
            14,
            r(G2_LEGACY),
            r(10..16),
        ),
        row(
            P::XssEchoDirect(SK::Get, L::FreeFn),
            30,
            38,
            16,
            r(G3_HOOK),
            r(G3_HOOK),
        ),
        row(
            P::XssEchoDirect(SK::Get, L::Method),
            18,
            19,
            12,
            r(G1_OOP),
            r(G1_OOP),
        ),
        row(P::XssIncludeSplit, 8, 12, 5, r(G3_PROC), r(G3_PROC)),
        row(
            P::XssEchoDirect(SK::Post, L::FreeFn),
            10,
            20,
            8,
            r(G3_HOOK),
            r(G3_HOOK),
        ),
        row(
            P::XssEchoDirect(SK::Post, L::Method),
            12,
            23,
            12,
            r(G1_OOP),
            r(G1_OOP),
        ),
        row(
            P::XssEchoDirect(SK::Request, L::FreeFn),
            6,
            25,
            6,
            r(G3_HOOK),
            r(G3_HOOK),
        ),
        row(
            P::XssEchoDirect(SK::Cookie, L::TopLevel),
            8,
            28,
            8,
            r(G5_OOP),
            r(G5_OOP),
        ),
        row(
            P::XssRegisterGlobals,
            10,
            4,
            2,
            r(G2_LEGACY),
            r(G2_CLEAN_2014),
        ),
        row(P::XssWpdbOop, 130, 155, 80, r(G1_OOP), r(G1_OOP_2014)),
        row(P::XssWpdbTop, 13, 15, 6, r(G1_OOP), r(G1_OOP_2014)),
        row(
            P::SqliWpdb(L::Method),
            8,
            9,
            4,
            r(G1_SQLI_2012),
            r(G1_SQLI_2014),
        ),
        row(
            P::XssDbLegacy(L::TopLevel),
            3,
            10,
            1,
            r(G2_LEGACY),
            r(G2_OOPIFIED),
        ),
        row(P::XssDbOption(L::TopLevel), 0, 3, 0, r(G5_MISC), r(G5_MISC)),
        row(
            P::XssFileSource(L::TopLevel),
            12,
            4,
            4,
            {
                let mut v = r(G2_LEGACY);
                v.extend(r(G5_OOP));
                v
            },
            r(G5_OOP),
        ),
        row(P::XssFileSource(L::FreeFn), 8, 2, 2, r(G3_HOOK), r(G3_HOOK)),
        row(
            P::XssFunctionSource(L::FreeFn),
            21,
            5,
            5,
            r(G5_MISC),
            r(G5_MISC),
        ),
        // ---- false-positive bait (ground-truth negatives) ----
        row(
            P::FpGuardedEcho(L::TopLevel),
            18,
            9,
            0,
            r(G3_PROC),
            r(G3_PROC),
        ),
        row(
            P::FpCustomClean(L::TopLevel),
            15,
            8,
            0,
            r(G3_PROC),
            r(G3_PROC),
        ),
        row(P::FpGuardedEcho(L::Method), 17, 22, 0, r(G1_OOP), r(G1_OOP)),
        row(P::FpCustomClean(L::Method), 13, 18, 0, r(G1_OOP), r(G1_OOP)),
        row(P::FpEscapedWp(L::TopLevel), 44, 65, 0, r(G5_OOP), r(G5_OOP)),
        row(
            P::FpUndefinedEcho,
            160,
            195,
            0,
            r(G2_LEGACY),
            r(G2_CLEAN_2014),
        ),
        row(P::FpSqliGuarded, 2, 5, 0, r(G1_SQLI_2012), r(G1_SQLI_2014)),
        row(P::FpSqliLegacyWp, 0, 1, 0, vec![2], vec![2]),
        row(P::SafeSanitized, 20, 30, 0, r(G5_MISC), r(G5_MISC)),
    ]
}

/// Distributes `total` units cyclically over `members`.
fn alloc(total: u32, members: &[usize]) -> HashMap<usize, u32> {
    let mut out: HashMap<usize, u32> = HashMap::new();
    if members.is_empty() {
        return out;
    }
    for i in 0..total {
        let m = members[(i as usize) % members.len()];
        *out.entry(m).or_default() += 1;
    }
    out
}

/// Distributes carried counts cyclically, bounded per plugin by
/// `min(n2012, n2014)`.
fn alloc_carried(
    total: u32,
    members: &[usize],
    n12: &HashMap<usize, u32>,
    n14: &HashMap<usize, u32>,
) -> HashMap<usize, u32> {
    let mut out: HashMap<usize, u32> = HashMap::new();
    let mut remaining = total;
    let mut progressed = true;
    while remaining > 0 && progressed {
        progressed = false;
        for &m in members {
            if remaining == 0 {
                break;
            }
            let cap = (*n12.get(&m).unwrap_or(&0)).min(*n14.get(&m).unwrap_or(&0));
            let cur = out.entry(m).or_default();
            if *cur < cap {
                *cur += 1;
                remaining -= 1;
                progressed = true;
            }
        }
    }
    out
}

/// Builds the full 35-plugin catalog.
pub fn catalog() -> Vec<PluginSpec> {
    let mut patterns_per_plugin: Vec<Vec<PatternCount>> = vec![Vec::new(); PLUGIN_NAMES.len()];
    for row in rows() {
        let a12 = alloc(row.n12, &row.members12);
        let a14 = alloc(row.n14, &row.members14);
        // carried can only live where both versions host the pattern
        let both: Vec<usize> = row
            .members12
            .iter()
            .copied()
            .filter(|m| row.members14.contains(m))
            .collect();
        let carried = alloc_carried(row.carried, &both, &a12, &a14);
        let mut plugins: Vec<usize> = a12.keys().chain(a14.keys()).copied().collect();
        plugins.sort_unstable();
        plugins.dedup();
        for p in plugins {
            patterns_per_plugin[p].push(PatternCount::new(
                row.pattern,
                *a12.get(&p).unwrap_or(&0),
                *a14.get(&p).unwrap_or(&0),
                *carried.get(&p).unwrap_or(&0),
            ));
        }
    }

    PLUGIN_NAMES
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let style = if G1_OOP.contains(&i) || (18..22).contains(&i) || G5_OOP.contains(&i) {
                Style::Oop
            } else {
                Style::Procedural
            };
            PluginSpec {
                name: name.to_string(),
                style,
                patterns: patterns_per_plugin[i].clone(),
                monster_depth: if i == MONSTER { (13, 15) } else { (0, 0) },
                monster_vulns: if i == MONSTER { (65, 180) } else { (0, 0) },
                oopify_2014: G2_OOPIFIED.contains(&i),
                closures_2014: G3_HOOK.contains(&i),
                noise: (110, 230),
            }
        })
        .collect()
}

/// Carried monster vulnerabilities (shared ids across versions).
pub const MONSTER_CARRIED: u32 = 65;

/// The 6 plugin slugs of the taxonomy extension corpus.
pub const TAXONOMY_PLUGIN_NAMES: [&str; 6] = [
    "backup-commander",
    "shell-toolkit",
    "file-manager-lite",
    "download-vault",
    "redirect-gateway",
    "remote-mirror",
];

/// Builds the taxonomy extension catalog: six plugins seeded with the
/// extension-class patterns (command injection, path traversal, open
/// redirect/SSRF), their class-specific sanitized negatives, and a small
/// XSS/SQLi sliver so per-class tables cover all five registered classes.
/// Deliberately disjoint from [`catalog`] — the paper-shape corpus and its
/// pinned aggregates are not touched.
pub fn taxonomy_catalog() -> Vec<PluginSpec> {
    use crate::spec::Placement as L;
    use Pattern as P;
    use SourceKind as SK;
    let pc = PatternCount::new;
    let spec = |name: &str, style, patterns: Vec<PatternCount>| PluginSpec {
        name: name.to_string(),
        style,
        patterns,
        monster_depth: (0, 0),
        monster_vulns: (0, 0),
        oopify_2014: false,
        closures_2014: false,
        noise: (12, 16),
    };
    vec![
        spec(
            "backup-commander",
            Style::Procedural,
            vec![
                pc(P::CmdiShellExec(SK::Get, L::TopLevel), 4, 5, 2),
                pc(P::CmdiShellExec(SK::Post, L::FreeFn), 3, 4, 1),
                pc(P::CmdiXssSanitized, 2, 3, 1),
                pc(P::FpCmdiEscaped, 3, 3, 0),
            ],
        ),
        spec(
            "shell-toolkit",
            Style::Oop,
            vec![
                pc(P::CmdiShellExec(SK::Request, L::Method), 3, 4, 2),
                pc(P::FpCmdiEscaped, 1, 2, 0),
            ],
        ),
        spec(
            "file-manager-lite",
            Style::Procedural,
            vec![
                pc(P::PathTravReadfile(SK::Get, L::TopLevel), 4, 6, 2),
                pc(P::FpPathBasename, 3, 4, 0),
            ],
        ),
        spec(
            "download-vault",
            Style::Oop,
            vec![
                pc(P::PathTravReadfile(SK::Post, L::Method), 3, 4, 1),
                pc(P::PathTravReadfile(SK::Get, L::FreeFn), 2, 3, 1),
            ],
        ),
        spec(
            "redirect-gateway",
            Style::Procedural,
            vec![
                pc(P::SsrfRedirect(SK::Get), 4, 5, 2),
                pc(P::SsrfRedirect(SK::Request), 2, 2, 1),
                pc(P::FpSsrfEscUrl, 3, 3, 0),
            ],
        ),
        spec(
            "remote-mirror",
            Style::Oop,
            vec![
                pc(P::SsrfFetch(L::TopLevel), 3, 4, 1),
                pc(P::SsrfFetch(L::FreeFn), 2, 3, 1),
                pc(P::XssEchoDirect(SK::Get, L::TopLevel), 2, 2, 1),
                pc(P::SqliWpdb(L::TopLevel), 1, 1, 1),
            ],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Version;

    #[test]
    fn thirty_five_plugins_nineteen_oop() {
        let cat = catalog();
        assert_eq!(cat.len(), 35);
        let oop = cat.iter().filter(|p| p.style == Style::Oop).count();
        assert_eq!(oop, 19, "paper: 19 of 35 plugins are OOP");
    }

    #[test]
    fn ground_truth_totals_match_paper_shape() {
        let cat = catalog();
        let mut t2012 = 0u32;
        let mut t2014 = 0u32;
        let mut carried = 0u32;
        for p in &cat {
            for pc in &p.patterns {
                if pc.pattern.truth().is_some() {
                    t2012 += pc.n2012;
                    t2014 += pc.n2014;
                    carried += pc.carried;
                }
            }
            t2012 += p.monster_vulns.0;
            t2014 += p.monster_vulns.1;
        }
        carried += MONSTER_CARRIED;
        // Paper: 394 distinct (2012), 586 (2014), 249 carried (42%).
        assert_eq!(t2012, 394, "2012 total");
        assert_eq!(t2014, 585, "2014 total");
        let ratio = carried as f64 / t2014 as f64;
        assert!(
            (0.35..=0.50).contains(&ratio),
            "carried ratio {ratio:.2} out of the paper's band"
        );
    }

    #[test]
    fn oop_vuln_plugins_ten_then_seven() {
        let cat = catalog();
        let oop_vulns = |p: &PluginSpec, v: Version| -> u32 {
            p.patterns
                .iter()
                .filter(|pc| matches!(pc.pattern.truth(), Some((_, _, true))))
                .map(|pc| pc.for_version(v))
                .sum()
        };
        let n2012 = cat
            .iter()
            .filter(|p| oop_vulns(p, Version::V2012) > 0)
            .count();
        let n2014 = cat
            .iter()
            .filter(|p| oop_vulns(p, Version::V2014) > 0)
            .count();
        assert_eq!(n2012, 10, "paper: OOP vulns in 10 plugins (2012)");
        assert_eq!(n2014, 7, "paper: OOP vulns in 7 plugins (2014)");
        let t2012: u32 = cat.iter().map(|p| oop_vulns(p, Version::V2012)).sum();
        let t2014: u32 = cat.iter().map(|p| oop_vulns(p, Version::V2014)).sum();
        assert_eq!(t2012, 151, "paper: 151 OOP vulnerabilities in 2012");
        assert_eq!(t2014, 179, "paper: 179 OOP vulnerabilities in 2014");
    }

    #[test]
    fn carried_invariant_holds() {
        for p in catalog() {
            for pc in &p.patterns {
                assert!(pc.carried <= pc.n2012.min(pc.n2014), "{:?}", pc);
            }
        }
    }

    #[test]
    fn exactly_one_monster() {
        let cat = catalog();
        let monsters: Vec<_> = cat.iter().filter(|p| p.monster_depth.0 > 0).collect();
        assert_eq!(monsters.len(), 1);
        assert_eq!(monsters[0].name, "media-archive-pro");
        assert_eq!(monsters[0].monster_depth, (13, 15));
    }

    #[test]
    fn taxonomy_catalog_covers_every_extension_class() {
        use taint_config::VulnClass;
        let cat = taxonomy_catalog();
        assert_eq!(cat.len(), TAXONOMY_PLUGIN_NAMES.len());
        let total = |class: VulnClass, v: Version| -> u32 {
            cat.iter()
                .flat_map(|p| &p.patterns)
                .filter(|pc| pc.pattern.truth().map(|t| t.0) == Some(class))
                .map(|pc| pc.for_version(v))
                .sum()
        };
        assert_eq!(total(VulnClass::CmdInjection, Version::V2012), 12);
        assert_eq!(total(VulnClass::CmdInjection, Version::V2014), 16);
        assert_eq!(total(VulnClass::PathTraversal, Version::V2012), 9);
        assert_eq!(total(VulnClass::PathTraversal, Version::V2014), 13);
        assert_eq!(total(VulnClass::Ssrf, Version::V2012), 11);
        assert_eq!(total(VulnClass::Ssrf, Version::V2014), 14);
        // A sliver of the paper's classes rides along for comparison rows.
        assert_eq!(total(VulnClass::Xss, Version::V2012), 2);
        assert_eq!(total(VulnClass::Sqli, Version::V2012), 1);
        // Every plugin hosts at least one sanitized negative or positive.
        for p in &cat {
            assert!(!p.patterns.is_empty(), "{}", p.name);
            for pc in &p.patterns {
                assert!(pc.carried <= pc.n2012.min(pc.n2014), "{:?}", pc);
            }
        }
    }

    #[test]
    fn taxonomy_names_disjoint_from_main_catalog() {
        for name in TAXONOMY_PLUGIN_NAMES {
            assert!(!PLUGIN_NAMES.contains(&name), "{name} collides");
        }
    }

    #[test]
    fn alloc_is_cyclic_and_total_preserving() {
        let m = alloc(7, &[1, 2, 3]);
        assert_eq!(m.values().sum::<u32>(), 7);
        assert_eq!(m[&1], 3);
        assert_eq!(m[&2], 2);
        assert_eq!(m[&3], 2);
    }
}
