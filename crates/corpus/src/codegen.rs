//! PHP code emission: a line-tracking file builder plus one emitter per
//! [`Pattern`]. Emitters return the exact sink line so ground truth matches
//! what the analyzers report.

use crate::spec::{GroundTruthEntry, Pattern, Placement, Version};
use phpsafe::SourceFile;
use taint_config::SourceKind;

/// Builds one PHP file line by line, tracking 1-based line numbers.
#[derive(Debug)]
pub struct FileBuilder {
    path: String,
    lines: Vec<String>,
    class_open: bool,
}

impl FileBuilder {
    /// Starts a PHP file (first line `<?php`).
    pub fn new(path: impl Into<String>) -> Self {
        FileBuilder {
            path: path.into(),
            lines: vec!["<?php".to_string()],
            class_open: false,
        }
    }

    /// Appends a line, returning its 1-based line number.
    pub fn push(&mut self, line: impl Into<String>) -> u32 {
        self.lines.push(line.into());
        self.lines.len() as u32
    }

    /// Appends an empty line.
    pub fn blank(&mut self) {
        self.lines.push(String::new());
    }

    /// Opens a class body (subsequent method emitters write into it).
    pub fn begin_class(&mut self, name: &str) {
        assert!(!self.class_open, "nested classes are not generated");
        self.push(format!("class {name} {{"));
        self.class_open = true;
    }

    /// Closes the current class body.
    pub fn end_class(&mut self) {
        assert!(self.class_open, "no class open");
        self.push("}");
        self.class_open = false;
    }

    /// Whether a class body is currently open.
    pub fn in_class(&self) -> bool {
        self.class_open
    }

    /// File path being built.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Current line count.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Whether only the `<?php` header has been written.
    pub fn is_empty(&self) -> bool {
        self.lines.len() <= 1
    }

    /// Finalizes into a [`SourceFile`].
    pub fn finish(mut self) -> SourceFile {
        if self.class_open {
            self.end_class();
        }
        SourceFile::new(self.path, self.lines.join("\n") + "\n")
    }
}

/// Variable-name pools: `numeric` names match the §V.C numeric-intent
/// heuristic; `text` names do not.
const NUMERIC_NAMES: [&str; 8] = [
    "id", "page", "count", "num", "post_id", "item_id", "offset", "limit",
];
const TEXT_NAMES: [&str; 8] = [
    "name", "title", "msg", "comment", "note", "label", "content", "value",
];

/// Picks a base variable name for instance `ordinal`; roughly 39% of
/// vulnerable variables are numeric-intent, per the paper.
pub fn pick_name(ordinal: u32) -> (&'static str, bool) {
    if ordinal % 13 < 5 {
        (
            NUMERIC_NAMES[(ordinal as usize / 13) % NUMERIC_NAMES.len()],
            true,
        )
    } else {
        (
            TEXT_NAMES[(ordinal as usize / 13) % TEXT_NAMES.len()],
            false,
        )
    }
}

/// Context threaded through pattern emission.
#[derive(Debug)]
pub struct EmitCtx<'a> {
    /// Plugin slug.
    pub plugin: &'a str,
    /// Version being generated.
    pub version: Version,
    /// Ground-truth sink accumulates here.
    pub truth: &'a mut Vec<GroundTruthEntry>,
}

impl EmitCtx<'_> {
    pub(crate) fn record(
        &mut self,
        id: &str,
        pattern: Pattern,
        file: &str,
        line: u32,
        carried: bool,
        numeric: bool,
    ) {
        let Some((class, vector, oop)) = pattern.truth() else {
            return;
        };
        self.truth.push(GroundTruthEntry {
            id: id.to_string(),
            plugin: self.plugin.to_string(),
            version: self.version,
            class,
            vector,
            file: file.to_string(),
            line,
            oop,
            carried: carried && self.version == Version::V2014,
            numeric,
        });
    }
}

/// Superglobal spelling for a source kind.
fn superglobal(kind: SourceKind) -> &'static str {
    match kind {
        SourceKind::Get => "$_GET",
        SourceKind::Post => "$_POST",
        SourceKind::Cookie => "$_COOKIE",
        SourceKind::Request => "$_REQUEST",
        SourceKind::Server => "$_SERVER",
        _ => "$_REQUEST",
    }
}

/// Emits one pattern instance into `b`. `ordinal` must be unique within the
/// plugin+version so generated identifiers never collide. Returns the sink
/// line (0 for patterns without an own sink in `b`, e.g. include-split
/// mains).
pub fn emit(
    pattern: Pattern,
    id: &str,
    ordinal: u32,
    carried: bool,
    b: &mut FileBuilder,
    ctx: &mut EmitCtx<'_>,
) -> u32 {
    let (base, numeric) = pick_name(ordinal);
    let v = format!("${base}_{ordinal}");
    let key = format!("{base}_{ordinal}");
    let file = b.path().to_string();
    let method_vis = if b.in_class() { "    public " } else { "" };
    let pad = if b.in_class() { "    " } else { "" };
    match pattern {
        Pattern::XssEchoDirect(kind, placement) => {
            let sg = superglobal(kind);
            match placement {
                Placement::TopLevel => {
                    b.push(format!("{v} = {sg}['{key}'];"));
                    let line = b.push(format!("echo '<div class=\"{key}\">' . {v} . '</div>';"));
                    b.blank();
                    ctx.record(id, pattern, &file, line, carried, numeric);
                    line
                }
                Placement::FreeFn => {
                    b.push(format!("function show_{key}() {{"));
                    b.push(format!("    {v} = {sg}['{key}'];"));
                    let line = b.push(format!("    echo '<p>' . {v} . '</p>';"));
                    b.push("}");
                    b.push(format!("add_action('admin_init', 'show_{key}');"));
                    b.blank();
                    ctx.record(id, pattern, &file, line, carried, numeric);
                    line
                }
                Placement::Method => {
                    b.push(format!("{method_vis}function render_{key}() {{"));
                    b.push(format!("{pad}    {v} = {sg}['{key}'];"));
                    let line = b.push(format!("{pad}    echo {v};"));
                    b.push(format!("{pad}}}"));
                    ctx.record(id, pattern, &file, line, carried, numeric);
                    line
                }
            }
        }
        Pattern::XssRegisterGlobals => {
            // 2012-era code relying on register_globals defaults.
            b.push(format!(
                "if (!isset({v})) {{ /* expects register_globals default */ }}"
            ));
            let line = b.push(format!("echo '<a href=\"?o=' . {v} . '\">order</a>';"));
            b.blank();
            ctx.record(id, pattern, &file, line, carried, numeric);
            line
        }
        Pattern::XssWpdbOop => {
            let fld = format!("{base}_{ordinal}_name");
            b.push(format!("{method_vis}function list_{key}() {{"));
            b.push(format!("{pad}    global $wpdb;"));
            b.push(format!(
                "{pad}    $rows_{ordinal} = $wpdb->get_results(\"SELECT * FROM \" . $wpdb->prefix . \"{key}\");"
            ));
            b.push(format!(
                "{pad}    foreach ($rows_{ordinal} as $row_{ordinal}) {{"
            ));
            let line = b.push(format!(
                "{pad}        echo '<li>' . $row_{ordinal}->{fld} . '</li>';"
            ));
            b.push(format!("{pad}    }}"));
            b.push(format!("{pad}}}"));
            ctx.record(id, pattern, &file, line, carried, numeric);
            line
        }
        Pattern::XssWpdbTop => {
            b.push(format!(
                "$rows_{ordinal} = $wpdb->get_results(\"SELECT * FROM {{$wpdb->prefix}}{key}\");"
            ));
            b.push(format!("foreach ($rows_{ordinal} as $row_{ordinal}) {{"));
            let line = b.push(format!("    echo $row_{ordinal}->{base}_text;"));
            b.push("}");
            b.blank();
            ctx.record(id, pattern, &file, line, carried, numeric);
            line
        }
        Pattern::SqliWpdb(placement) => match placement {
            Placement::TopLevel => {
                b.push(format!("{v} = $_GET['{key}'];"));
                let line = b.push(format!(
                    "$wpdb->query(\"DELETE FROM {{$wpdb->prefix}}{key} WHERE id = {v}\");"
                ));
                b.blank();
                ctx.record(id, pattern, &file, line, carried, numeric);
                line
            }
            _ => {
                b.push(format!("{method_vis}function purge_{key}() {{"));
                b.push(format!("{pad}    global $wpdb;"));
                b.push(format!("{pad}    {v} = $_GET['{key}'];"));
                let line = b.push(format!(
                    "{pad}    $wpdb->query(\"DELETE FROM {{$wpdb->prefix}}{key} WHERE id = {v}\");"
                ));
                b.push(format!("{pad}}}"));
                ctx.record(id, pattern, &file, line, carried, numeric);
                line
            }
        },
        Pattern::XssDbLegacy(placement) => {
            let emit_body = |b: &mut FileBuilder, indent: &str| -> u32 {
                b.push(format!(
                    "{indent}$res_{ordinal} = mysql_query(\"SELECT * FROM {key}_table\");"
                ));
                b.push(format!(
                    "{indent}$row_{ordinal} = mysql_fetch_assoc($res_{ordinal});"
                ));
                b.push(format!("{indent}echo $row_{ordinal}['{base}_label'];"))
            };
            match placement {
                Placement::TopLevel => {
                    let line = emit_body(b, "");
                    b.blank();
                    ctx.record(id, pattern, &file, line, carried, numeric);
                    line
                }
                Placement::FreeFn => {
                    b.push(format!("function legacy_{key}() {{"));
                    let line = emit_body(b, "    ");
                    b.push("}");
                    b.blank();
                    ctx.record(id, pattern, &file, line, carried, numeric);
                    line
                }
                Placement::Method => {
                    b.push(format!("{method_vis}function legacy_{key}() {{"));
                    let line = emit_body(b, &format!("{pad}    "));
                    b.push(format!("{pad}}}"));
                    ctx.record(id, pattern, &file, line, carried, numeric);
                    line
                }
            }
        }
        Pattern::XssDbOption(_) => {
            b.push(format!(
                "{v} = get_option('{}_banner_{ordinal}');",
                ctx.plugin.replace('-', "_")
            ));
            let line = b.push(format!("echo '<div class=\"banner\">' . {v} . '</div>';"));
            b.blank();
            ctx.record(id, pattern, &file, line, carried, numeric);
            line
        }
        Pattern::XssFileSource(placement) => {
            let emit_body = |b: &mut FileBuilder, indent: &str| -> u32 {
                b.push(format!("$fp_{ordinal} = fopen('data/{key}.txt', 'r');"));
                b.push(format!(
                    "{indent}$res_{ordinal} = fgets($fp_{ordinal}, 128);"
                ));
                b.push(format!("{indent}echo $res_{ordinal};"))
            };
            match placement {
                Placement::FreeFn => {
                    b.push(format!("function read_{key}() {{"));
                    let line = emit_body(b, "    ");
                    b.push("}");
                    b.blank();
                    ctx.record(id, pattern, &file, line, carried, numeric);
                    line
                }
                _ => {
                    let line = emit_body(b, "");
                    b.blank();
                    ctx.record(id, pattern, &file, line, carried, numeric);
                    line
                }
            }
        }
        Pattern::XssFunctionSource(_) => {
            b.push(format!("function env_{key}() {{"));
            b.push(format!(
                "    $ua_{ordinal} = getenv('HTTP_{}');",
                key.to_uppercase()
            ));
            let line = b.push(format!("    echo '<!-- ' . $ua_{ordinal} . ' -->';"));
            b.push("}");
            b.blank();
            ctx.record(id, pattern, &file, line, carried, numeric);
            line
        }
        Pattern::XssIncludeSplit => {
            // The caller must create the matching view file with
            // `emit_include_split_view`; here we emit the main-side half.
            b.push(format!("$view_data_{ordinal} = $_GET['{key}'];"));
            b.push(format!("include 'views/view_{ordinal}.php';"));
            b.blank();
            0
        }
        Pattern::CmdiShellExec(kind, placement) => {
            let sg = superglobal(kind);
            match placement {
                Placement::TopLevel => {
                    b.push(format!("{v} = {sg}['{key}'];"));
                    let line = b.push(format!("shell_exec('tar czf backup.tar ' . {v});"));
                    b.blank();
                    ctx.record(id, pattern, &file, line, carried, numeric);
                    line
                }
                Placement::FreeFn => {
                    b.push(format!("function run_{key}() {{"));
                    b.push(format!("    {v} = {sg}['{key}'];"));
                    let line = b.push(format!("    shell_exec('convert uploads/' . {v});"));
                    b.push("}");
                    b.push(format!("add_action('admin_init', 'run_{key}');"));
                    b.blank();
                    ctx.record(id, pattern, &file, line, carried, numeric);
                    line
                }
                Placement::Method => {
                    b.push(format!("{method_vis}function archive_{key}() {{"));
                    b.push(format!("{pad}    {v} = {sg}['{key}'];"));
                    let line = b.push(format!("{pad}    shell_exec('zip -r site.zip ' . {v});"));
                    b.push(format!("{pad}}}"));
                    ctx.record(id, pattern, &file, line, carried, numeric);
                    line
                }
            }
        }
        Pattern::CmdiXssSanitized => {
            // esc_html protects markup only; the shell context is untouched.
            b.push(format!("{v} = esc_html($_GET['{key}']);"));
            let line = b.push(format!("shell_exec('echo ' . {v} . ' >> audit.log');"));
            b.blank();
            ctx.record(id, pattern, &file, line, carried, numeric);
            line
        }
        Pattern::PathTravReadfile(kind, placement) => {
            let sg = superglobal(kind);
            match placement {
                Placement::FreeFn => {
                    b.push(format!("function serve_{key}() {{"));
                    b.push(format!("    {v} = {sg}['{key}'];"));
                    let line = b.push(format!("    readfile('uploads/' . {v});"));
                    b.push("}");
                    b.push(format!("add_action('init', 'serve_{key}');"));
                    b.blank();
                    ctx.record(id, pattern, &file, line, carried, numeric);
                    line
                }
                Placement::Method => {
                    b.push(format!("{method_vis}function download_{key}() {{"));
                    b.push(format!("{pad}    {v} = {sg}['{key}'];"));
                    let line = b.push(format!("{pad}    readfile('files/' . {v});"));
                    b.push(format!("{pad}}}"));
                    ctx.record(id, pattern, &file, line, carried, numeric);
                    line
                }
                Placement::TopLevel => {
                    b.push(format!("{v} = {sg}['{key}'];"));
                    let line = b.push(format!("readfile('uploads/' . {v});"));
                    b.blank();
                    ctx.record(id, pattern, &file, line, carried, numeric);
                    line
                }
            }
        }
        Pattern::SsrfRedirect(kind) => {
            let sg = superglobal(kind);
            b.push(format!("{v} = {sg}['{key}'];"));
            let line = b.push(format!("wp_redirect({v});"));
            b.push("exit;");
            b.blank();
            ctx.record(id, pattern, &file, line, carried, numeric);
            line
        }
        Pattern::SsrfFetch(placement) => match placement {
            Placement::FreeFn => {
                b.push(format!("function fetch_{key}() {{"));
                b.push(format!("    {v} = $_GET['{key}'];"));
                let line = b.push(format!(
                    "    $resp_{ordinal} = wp_remote_get('https://mirror.example/' . {v});"
                ));
                b.push("}");
                b.push(format!("add_action('init', 'fetch_{key}');"));
                b.blank();
                ctx.record(id, pattern, &file, line, carried, numeric);
                line
            }
            _ => {
                b.push(format!("{v} = $_GET['{key}'];"));
                let line = b.push(format!(
                    "$resp_{ordinal} = wp_remote_get('https://mirror.example/' . {v});"
                ));
                b.blank();
                ctx.record(id, pattern, &file, line, carried, numeric);
                line
            }
        },
        Pattern::FpCmdiEscaped => {
            b.push(format!(
                "shell_exec('ls -l ' . escapeshellarg($_GET['{key}']));"
            ));
            b.blank();
            0
        }
        Pattern::FpPathBasename => {
            b.push(format!("readfile('uploads/' . basename($_GET['{key}']));"));
            b.blank();
            0
        }
        Pattern::FpSsrfEscUrl => {
            b.push(format!("wp_redirect(esc_url_raw($_GET['{key}']));"));
            b.blank();
            0
        }
        Pattern::FpEscapedWp(_) => {
            b.push(format!(
                "echo '<span>' . esc_html($_GET['{key}']) . '</span>';"
            ));
            b.blank();
            0
        }
        Pattern::FpGuardedEcho(placement) => {
            match placement {
                Placement::Method => {
                    b.push(format!("{method_vis}function page_{key}() {{"));
                    b.push(format!("{pad}    {v} = $_GET['{key}'];"));
                    b.push(format!(
                        "{pad}    if (!is_numeric({v})) {{ die('bad {key}'); }}"
                    ));
                    b.push(format!("{pad}    echo 'Page: ' . {v};"));
                    b.push(format!("{pad}}}"));
                }
                _ => {
                    b.push(format!("{v} = $_GET['{key}'];"));
                    b.push(format!("if (!is_numeric({v})) {{ die('bad {key}'); }}"));
                    b.push(format!("echo 'Page: ' . {v};"));
                    b.blank();
                }
            }
            0
        }
        Pattern::FpCustomClean(placement) => {
            match placement {
                Placement::Method => {
                    b.push(format!("{method_vis}function tag_{key}() {{"));
                    b.push(format!(
                        "{pad}    {v} = preg_replace('/[^a-z0-9_]/i', '', $_GET['{key}']);"
                    ));
                    b.push(format!("{pad}    echo {v};"));
                    b.push(format!("{pad}}}"));
                }
                _ => {
                    b.push(format!("function clean_{key}($raw_{ordinal}) {{"));
                    b.push(format!(
                        "    return preg_replace('/[^a-z0-9_]/i', '', $raw_{ordinal});"
                    ));
                    b.push("}");
                    b.push(format!("{v} = clean_{key}($_GET['{key}']);"));
                    b.push(format!("echo {v};"));
                    b.blank();
                }
            }
            0
        }
        Pattern::FpUndefinedEcho => {
            // A template variable populated by the CMS at render time.
            b.push(format!(
                "echo '<div class=\"' . $theme_{base}_{ordinal} . '\">';"
            ));
            0
        }
        Pattern::FpSqliGuarded => {
            b.push(format!("$uid_{ordinal} = $_GET['uid_{ordinal}'];"));
            b.push(format!(
                "if (!is_numeric($uid_{ordinal})) {{ wp_die('bad id'); }}"
            ));
            b.push(format!(
                "$wpdb->query(\"UPDATE {{$wpdb->prefix}}users SET seen = 1 WHERE id = $uid_{ordinal}\");"
            ));
            b.blank();
            0
        }
        Pattern::FpSqliLegacyWp => {
            b.push(format!("$cat_{ordinal} = absint($_GET['cat_{ordinal}']);"));
            b.push(format!(
                "mysql_query(\"SELECT * FROM categories WHERE id = $cat_{ordinal}\");"
            ));
            b.push(format!("$tracker_{ordinal} = new WP_Usage_Tracker();"));
            b.blank();
            0
        }
        Pattern::SafeSanitized => {
            b.push(format!(
                "echo '<em>' . htmlspecialchars($_POST['{key}']) . '</em>';"
            ));
            b.blank();
            0
        }
    }
}

/// Emits the view half of an [`Pattern::XssIncludeSplit`] instance into its
/// own file and records the ground truth (the sink lives in the view).
pub fn emit_include_split_view(
    id: &str,
    ordinal: u32,
    carried: bool,
    ctx: &mut EmitCtx<'_>,
) -> SourceFile {
    let (base, numeric) = pick_name(ordinal);
    let mut b = FileBuilder::new(format!("views/view_{ordinal}.php"));
    b.push(format!("/* partial view for {base} */"));
    let line = b.push(format!("echo '<h2>' . $view_data_{ordinal} . '</h2>';"));
    let file = b.path().to_string();
    ctx.record(id, Pattern::XssIncludeSplit, &file, line, carried, numeric);
    b.finish()
}

/// Emits a block of inert filler code (~8 lines) used to reach realistic
/// plugin sizes.
pub fn emit_noise(b: &mut FileBuilder, ordinal: u32) {
    let pad = if b.in_class() { "    " } else { "" };
    let vis = if b.in_class() { "    public " } else { "" };
    b.push(format!(
        "{vis}function util_{ordinal}($a_{ordinal}, $b_{ordinal} = 10) {{"
    ));
    b.push(format!("{pad}    $t_{ordinal} = date('Y-m-d');"));
    b.push(format!(
        "{pad}    $parts_{ordinal} = array('a' => $a_{ordinal}, 'b' => intval($b_{ordinal}));"
    ));
    b.push(format!(
        "{pad}    if ($a_{ordinal} > 10) {{ $b_{ordinal} = $a_{ordinal} * 2; }}"
    ));
    b.push(format!(
        "{pad}    return sprintf('%s-%d', $t_{ordinal}, count($parts_{ordinal}) + $b_{ordinal});"
    ));
    b.push(format!("{pad}}}"));
    b.blank();
}

/// Emits the standard WordPress plugin header comment.
pub fn emit_plugin_header(b: &mut FileBuilder, name: &str, version: Version) {
    let ver = match version {
        Version::V2012 => "1.4.2",
        Version::V2014 => "2.1.0",
    };
    b.push("/*");
    b.push(format!("Plugin Name: {name}"));
    b.push(format!("Version: {ver}"));
    b.push(format!(
        "Description: Synthetic corpus plugin `{name}` for the phpSAFE reproduction."
    ));
    b.push("Author: corpus-generator");
    b.push("*/");
    b.blank();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Version;
    use taint_config::{SourceKind, VulnClass};

    fn ctx_harness(
        run: impl FnOnce(&mut FileBuilder, &mut EmitCtx<'_>),
    ) -> (SourceFile, Vec<GroundTruthEntry>) {
        let mut truth = Vec::new();
        let mut b = FileBuilder::new("t.php");
        let mut ctx = EmitCtx {
            plugin: "demo",
            version: Version::V2012,
            truth: &mut truth,
        };
        run(&mut b, &mut ctx);
        (b.finish(), truth)
    }

    #[test]
    fn builder_tracks_line_numbers() {
        let mut b = FileBuilder::new("x.php");
        assert_eq!(b.push("$a = 1;"), 2); // line 1 is <?php
        assert_eq!(b.push("$b = 2;"), 3);
        let f = b.finish();
        assert_eq!(f.content.lines().count(), 3);
    }

    #[test]
    fn emitted_php_parses_cleanly() {
        use crate::spec::{Pattern as P, Placement as L};
        let all = [
            P::XssEchoDirect(SourceKind::Get, L::TopLevel),
            P::XssEchoDirect(SourceKind::Post, L::FreeFn),
            P::XssRegisterGlobals,
            P::XssWpdbTop,
            P::SqliWpdb(L::TopLevel),
            P::XssDbLegacy(L::TopLevel),
            P::XssDbOption(L::TopLevel),
            P::XssFileSource(L::TopLevel),
            P::XssFunctionSource(L::FreeFn),
            P::XssIncludeSplit,
            P::CmdiShellExec(SourceKind::Get, L::TopLevel),
            P::CmdiShellExec(SourceKind::Post, L::FreeFn),
            P::CmdiXssSanitized,
            P::PathTravReadfile(SourceKind::Get, L::TopLevel),
            P::PathTravReadfile(SourceKind::Post, L::FreeFn),
            P::SsrfRedirect(SourceKind::Get),
            P::SsrfFetch(L::TopLevel),
            P::SsrfFetch(L::FreeFn),
            P::FpCmdiEscaped,
            P::FpPathBasename,
            P::FpSsrfEscUrl,
            P::FpEscapedWp(L::TopLevel),
            P::FpGuardedEcho(L::TopLevel),
            P::FpCustomClean(L::TopLevel),
            P::FpUndefinedEcho,
            P::FpSqliGuarded,
            P::FpSqliLegacyWp,
            P::SafeSanitized,
        ];
        let (file, _) = ctx_harness(|b, ctx| {
            for (i, p) in all.iter().enumerate() {
                emit(*p, &format!("id{i}"), i as u32, false, b, ctx);
            }
        });
        let parsed = php_ast::parse(&file.content);
        assert!(parsed.is_clean(), "{:?}", parsed.errors);
    }

    #[test]
    fn method_patterns_emit_inside_class() {
        use crate::spec::{Pattern as P, Placement as L};
        let (file, truth) = ctx_harness(|b, ctx| {
            b.begin_class("Demo_Widget");
            emit(
                P::XssEchoDirect(SourceKind::Post, L::Method),
                "m1",
                1,
                false,
                b,
                ctx,
            );
            emit(P::XssWpdbOop, "m2", 2, false, b, ctx);
            emit(P::SqliWpdb(L::Method), "m3", 3, false, b, ctx);
            b.end_class();
        });
        let parsed = php_ast::parse(&file.content);
        assert!(parsed.is_clean(), "{:?}\n{}", parsed.errors, file.content);
        assert_eq!(truth.len(), 3);
        assert!(truth.iter().any(|t| t.class == VulnClass::Sqli));
        // All three sinks are inside the class declaration.
        assert!(file.content.contains("class Demo_Widget"));
    }

    #[test]
    fn ground_truth_lines_point_at_sinks() {
        use crate::spec::{Pattern as P, Placement as L};
        let (file, truth) = ctx_harness(|b, ctx| {
            emit(
                P::XssEchoDirect(SourceKind::Get, L::TopLevel),
                "g1",
                0,
                false,
                b,
                ctx,
            );
        });
        assert_eq!(truth.len(), 1);
        let sink_line = truth[0].line as usize;
        let line = file.content.lines().nth(sink_line - 1).expect("line");
        assert!(line.contains("echo"), "sink line must be the echo: {line}");
    }

    #[test]
    fn taxonomy_truth_lines_point_at_class_sinks() {
        use crate::spec::{Pattern as P, Placement as L};
        let cases: [(P, &str); 5] = [
            (P::CmdiShellExec(SourceKind::Get, L::TopLevel), "shell_exec"),
            (P::CmdiXssSanitized, "shell_exec"),
            (P::PathTravReadfile(SourceKind::Post, L::FreeFn), "readfile"),
            (P::SsrfRedirect(SourceKind::Request), "wp_redirect"),
            (P::SsrfFetch(L::TopLevel), "wp_remote_get"),
        ];
        for (i, (p, sink)) in cases.iter().enumerate() {
            let (file, truth) = ctx_harness(|b, ctx| {
                emit(*p, &format!("tx{i}"), i as u32, false, b, ctx);
            });
            assert_eq!(truth.len(), 1, "{p:?}");
            let line = file
                .content
                .lines()
                .nth(truth[0].line as usize - 1)
                .expect("sink line");
            assert!(line.contains(sink), "{p:?}: {line}");
        }
    }

    #[test]
    fn taxonomy_negatives_record_no_truth() {
        use crate::spec::Pattern as P;
        let (file, truth) = ctx_harness(|b, ctx| {
            emit(P::FpCmdiEscaped, "n1", 0, false, b, ctx);
            emit(P::FpPathBasename, "n2", 1, false, b, ctx);
            emit(P::FpSsrfEscUrl, "n3", 2, false, b, ctx);
        });
        assert!(truth.is_empty());
        assert!(php_ast::parse(&file.content).is_clean());
    }

    #[test]
    fn negatives_record_no_truth() {
        use crate::spec::{Pattern as P, Placement as L};
        let (_, truth) = ctx_harness(|b, ctx| {
            emit(P::FpEscapedWp(L::TopLevel), "f1", 0, false, b, ctx);
            emit(P::FpGuardedEcho(L::TopLevel), "f2", 1, false, b, ctx);
            emit(P::SafeSanitized, "f3", 2, false, b, ctx);
        });
        assert!(truth.is_empty());
    }

    #[test]
    fn include_split_view_records_truth_in_view_file() {
        let mut truth = Vec::new();
        let mut ctx = EmitCtx {
            plugin: "demo",
            version: Version::V2014,
            truth: &mut truth,
        };
        let view = emit_include_split_view("s1", 5, true, &mut ctx);
        assert_eq!(view.path, "views/view_5.php");
        assert_eq!(truth.len(), 1);
        assert!(truth[0].carried, "carried flag respected for 2014");
        assert_eq!(truth[0].file, "views/view_5.php");
    }

    #[test]
    fn numeric_share_is_roughly_39_percent() {
        let numeric = (0..1000).filter(|&i| pick_name(i).1).count();
        assert!(
            (300..=450).contains(&numeric),
            "numeric share {numeric}/1000 out of band"
        );
    }

    #[test]
    fn noise_parses() {
        let (file, _) = ctx_harness(|b, _| {
            for i in 0..5 {
                emit_noise(b, i);
            }
        });
        assert!(php_ast::parse(&file.content).is_clean());
    }
}
