//! The corpus generator: expands the catalog into 35 plugin projects × 2
//! versions plus the ground-truth oracle. Fully deterministic — the same
//! seed yields byte-identical plugins.

use crate::catalog::{catalog, MONSTER_CARRIED};
use crate::codegen::{
    emit, emit_include_split_view, emit_noise, emit_plugin_header, EmitCtx, FileBuilder,
};
use crate::spec::{GroundTruthEntry, Pattern, Placement, PluginSpec, Style, Version};
use phpsafe::{PluginProject, SourceFile};

/// One generated plugin: both version snapshots plus ground truth.
#[derive(Debug, Clone)]
pub struct GeneratedPlugin {
    /// Plugin slug.
    pub name: String,
    /// The 2012 snapshot.
    pub v2012: PluginProject,
    /// The 2014 snapshot.
    pub v2014: PluginProject,
    /// Ground truth for both versions.
    pub truth: Vec<GroundTruthEntry>,
}

impl GeneratedPlugin {
    /// Project for a version.
    pub fn project(&self, v: Version) -> &PluginProject {
        match v {
            Version::V2012 => &self.v2012,
            Version::V2014 => &self.v2014,
        }
    }

    /// Ground truth entries for a version.
    pub fn truth_for(&self, v: Version) -> impl Iterator<Item = &GroundTruthEntry> {
        self.truth.iter().filter(move |t| t.version == v)
    }
}

/// The complete 35-plugin corpus.
#[derive(Debug, Clone)]
pub struct Corpus {
    plugins: Vec<GeneratedPlugin>,
}

impl Corpus {
    /// Generates the corpus with the default calibration.
    pub fn generate() -> Corpus {
        let plugins = catalog().into_iter().map(generate_plugin).collect();
        Corpus { plugins }
    }

    /// Generates the taxonomy extension corpus: a separate plugin set
    /// exercising the extension vulnerability classes (command injection,
    /// path traversal, open redirect/SSRF) plus a sliver of the paper's
    /// two classes for per-class comparison. Kept apart from
    /// [`Corpus::generate`] so the paper-shape aggregates (394/585, Table
    /// I–III, Fig. 2) stay byte-identical.
    pub fn generate_taxonomy() -> Corpus {
        let plugins = crate::catalog::taxonomy_catalog()
            .into_iter()
            .map(generate_plugin)
            .collect();
        Corpus { plugins }
    }

    /// Generated plugins in catalog order.
    pub fn plugins(&self) -> &[GeneratedPlugin] {
        &self.plugins
    }

    /// All ground truth entries for a version.
    pub fn truth_for(&self, v: Version) -> Vec<&GroundTruthEntry> {
        self.plugins.iter().flat_map(|p| p.truth_for(v)).collect()
    }

    /// Total files and LOC for a version (the paper's Table III context
    /// row: 266 files / 89,560 LOC in 2012; 356 / 180,801 in 2014).
    pub fn size_of(&self, v: Version) -> (usize, usize) {
        let mut files = 0;
        let mut loc = 0;
        for p in &self.plugins {
            let proj = p.project(v);
            files += proj.files().len();
            loc += proj.total_loc();
        }
        (files, loc)
    }
}

/// Where a pattern's code is placed.
enum Route {
    Top,
    Functions,
    Class,
    IncludeSplit,
}

fn route(p: Pattern) -> Route {
    use Pattern as P;
    use Placement as L;
    match p {
        P::XssEchoDirect(_, L::Method)
        | P::XssWpdbOop
        | P::SqliWpdb(L::Method)
        | P::SqliWpdb(L::FreeFn)
        | P::XssDbLegacy(L::Method)
        | P::XssDbOption(L::Method)
        | P::XssFileSource(L::Method)
        | P::XssFunctionSource(L::Method)
        | P::FpEscapedWp(L::Method)
        | P::FpGuardedEcho(L::Method)
        | P::FpCustomClean(L::Method)
        | P::CmdiShellExec(_, L::Method)
        | P::PathTravReadfile(_, L::Method) => Route::Class,
        P::XssEchoDirect(_, L::FreeFn)
        | P::XssDbLegacy(L::FreeFn)
        | P::XssDbOption(L::FreeFn)
        | P::XssFileSource(L::FreeFn)
        | P::XssFunctionSource(L::FreeFn)
        | P::FpEscapedWp(L::FreeFn)
        | P::FpGuardedEcho(L::FreeFn)
        | P::FpCustomClean(L::FreeFn)
        | P::CmdiShellExec(_, L::FreeFn)
        | P::PathTravReadfile(_, L::FreeFn)
        | P::SsrfFetch(L::FreeFn) => Route::Functions,
        P::XssIncludeSplit => Route::IncludeSplit,
        _ => Route::Top,
    }
}

/// Stable id tag for a pattern (used in ground-truth ids).
fn tag(p: Pattern) -> String {
    format!("{p:?}").replace(' ', "")
}

/// CamelCases a slug: `mail-subscribe-list` → `Mail_Subscribe_List`.
fn camel(slug: &str) -> String {
    slug.split('-')
        .map(|w| {
            let mut c = w.chars();
            match c.next() {
                Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
                None => String::new(),
            }
        })
        .collect::<Vec<_>>()
        .join("_")
}

const METHODS_PER_CLASS: u32 = 12;

fn generate_plugin(spec: PluginSpec) -> GeneratedPlugin {
    let mut truth = Vec::new();
    let v2012 = build_version(&spec, Version::V2012, &mut truth);
    let v2014 = build_version(&spec, Version::V2014, &mut truth);
    GeneratedPlugin {
        name: spec.name,
        v2012,
        v2014,
        truth,
    }
}

fn build_version(
    spec: &PluginSpec,
    version: Version,
    truth: &mut Vec<GroundTruthEntry>,
) -> PluginProject {
    let mut ctx = EmitCtx {
        plugin: &spec.name,
        version,
        truth,
    };
    let mut ordinal: u32 = 0;

    let mut main = FileBuilder::new(format!("{}.php", spec.name));
    emit_plugin_header(&mut main, &spec.name, version);
    main.push("include_once 'includes/functions.php';");
    main.push("include_once 'includes/admin.php';");
    main.blank();

    let mut functions = FileBuilder::new("includes/functions.php");
    let mut admin = FileBuilder::new("includes/admin.php");
    let mut class_builders: Vec<(FileBuilder, u32)> = Vec::new();
    let mut views: Vec<SourceFile> = Vec::new();
    let class_base = camel(&spec.name);

    // ---- expand pattern instances ----
    struct Inst {
        pattern: Pattern,
        id: String,
        carried: bool,
    }
    let mut instances: Vec<Inst> = Vec::new();
    for pc in &spec.patterns {
        let n = pc.for_version(version);
        let t = tag(pc.pattern);
        for i in 0..n {
            let (id, carried) = match version {
                Version::V2012 => (format!("{}:{}:{}", spec.name, t, i), false),
                Version::V2014 => {
                    if i < pc.carried {
                        (format!("{}:{}:{}", spec.name, t, i), true)
                    } else {
                        (format!("{}:{}:v14:{}", spec.name, t, i), false)
                    }
                }
            };
            instances.push(Inst {
                pattern: pc.pattern,
                id,
                carried,
            });
        }
    }

    let mut top_toggle = false;
    for inst in &instances {
        ordinal += 1;
        match route(inst.pattern) {
            Route::Top => {
                let b = if top_toggle { &mut admin } else { &mut main };
                top_toggle = !top_toggle;
                // Spacer so neighbouring blocks stay outside the oracle's
                // line-tolerance window.
                b.push(format!("/* block {ordinal} */"));
                emit(inst.pattern, &inst.id, ordinal, inst.carried, b, &mut ctx);
            }
            Route::Functions => {
                emit(
                    inst.pattern,
                    &inst.id,
                    ordinal,
                    inst.carried,
                    &mut functions,
                    &mut ctx,
                );
            }
            Route::Class => {
                let need_new = match class_builders.last() {
                    Some((_, used)) => *used >= METHODS_PER_CLASS,
                    None => true,
                };
                if need_new {
                    let k = class_builders.len();
                    let mut b = FileBuilder::new(format!("includes/class-module-{k}.php"));
                    b.push("/* module class generated for the corpus */");
                    b.begin_class(&format!("{class_base}_Module_{k}"));
                    class_builders.push((b, 0));
                }
                let (b, used) = class_builders.last_mut().expect("class builder");
                emit(inst.pattern, &inst.id, ordinal, inst.carried, b, &mut ctx);
                *used += 1;
            }
            Route::IncludeSplit => {
                emit(
                    inst.pattern,
                    &inst.id,
                    ordinal,
                    inst.carried,
                    &mut main,
                    &mut ctx,
                );
                views.push(emit_include_split_view(
                    &inst.id,
                    ordinal,
                    inst.carried,
                    &mut ctx,
                ));
            }
        }
    }

    // ---- filler ----
    let noise = match version {
        Version::V2012 => spec.noise.0,
        Version::V2014 => spec.noise.1,
    };
    // Realistic plugins spread helpers over many small library files (the
    // paper's corpus averages ~8-10 files per plugin).
    let extra_file_count = match version {
        Version::V2012 => 4,
        Version::V2014 => 6,
    };
    let mut extras: Vec<FileBuilder> = (0..extra_file_count)
        .map(|k| {
            let mut b = FileBuilder::new(format!("includes/lib-{k}.php"));
            b.push(format!("/* helper library {k} for {} */", spec.name));
            b
        })
        .collect();
    let core_noise = noise * 2 / 5;
    for i in 0..core_noise {
        ordinal += 1;
        let b = match i % 4 {
            0 => &mut main,
            1 => &mut admin,
            _ => &mut functions,
        };
        emit_noise(b, ordinal);
    }
    for i in 0..(noise - core_noise) {
        ordinal += 1;
        let b = &mut extras[(i % extra_file_count) as usize];
        emit_noise(b, ordinal);
    }

    // ---- class includes + instantiation (OOP style) ----
    for (k, _) in class_builders.iter().enumerate() {
        main.push(format!("include_once 'includes/class-module-{k}.php';"));
    }
    if spec.style == Style::Oop {
        for (k, _) in class_builders.iter().enumerate() {
            main.push(format!("$module_{k} = new {class_base}_Module_{k}();"));
        }
        // Admin screens instantiate UI helpers (marks the file as OOP for
        // era-limited front ends).
        admin.push("$admin_screen = new stdClass();");
        if class_builders.is_empty() {
            main.push("$plugin_core = new stdClass();");
        }
    }

    // ---- 2014 ecosystem drift ----
    if version == Version::V2014 && spec.oopify_2014 {
        main.push("$compat_shim = new stdClass();");
        admin.push("$compat_admin = new stdClass();");
        functions.push("$compat_lib = new stdClass();");
    }
    if version == Version::V2014 && spec.closures_2014 {
        for b in [&mut main, &mut admin, &mut functions] {
            b.push("add_filter('the_content', function ($content_cb) { return $content_cb; });");
        }
    }

    let mut project = PluginProject::new(spec.name.clone());
    project.push_file(main.finish());
    project.push_file(functions.finish());
    project.push_file(admin.finish());
    for (b, _) in class_builders {
        project.push_file(b.finish());
    }
    for b in extras {
        project.push_file(b.finish());
    }
    for v in views {
        project.push_file(v);
    }

    // ---- monster include chain ----
    let depth = match version {
        Version::V2012 => spec.monster_depth.0,
        Version::V2014 => spec.monster_depth.1,
    };
    if depth > 0 {
        build_monster(spec, version, depth, &mut ctx, &mut project);
    }

    project
}

/// Builds the include-chain files `lib/chain_0.php .. lib/chain_{depth}.php`
/// with the monster vulnerabilities planted in the leading files (the ones
/// whose entry pass exceeds phpSAFE's include budget).
fn build_monster(
    spec: &PluginSpec,
    version: Version,
    depth: u32,
    ctx: &mut EmitCtx<'_>,
    project: &mut PluginProject,
) {
    let vulns = match version {
        Version::V2012 => spec.monster_vulns.0,
        Version::V2014 => spec.monster_vulns.1,
    };
    let hosts: u32 = match version {
        Version::V2012 => 1,
        Version::V2014 => 3,
    };
    let per_host = vulns.div_ceil(hosts.max(1));
    let mut v_idx: u32 = 0;
    for i in 0..=depth {
        let mut b = FileBuilder::new(format!("lib/chain_{i}.php"));
        b.push(format!("$probe_{i} = new stdClass();"));
        if i < depth {
            b.push(format!("include 'lib/chain_{}.php';", i + 1));
        }
        if i < hosts {
            for _ in 0..per_host {
                if v_idx >= vulns {
                    break;
                }
                let (id, carried) = match version {
                    Version::V2012 => (format!("{}:monster:{}", spec.name, v_idx), false),
                    Version::V2014 => {
                        if v_idx < MONSTER_CARRIED {
                            (format!("{}:monster:{}", spec.name, v_idx), true)
                        } else {
                            (format!("{}:monster:v14:{}", spec.name, v_idx), false)
                        }
                    }
                };
                b.push(format!(
                    "$mres_{v_idx} = mysql_query(\"SELECT * FROM archive_{v_idx}\");"
                ));
                b.push(format!("$mrow_{v_idx} = mysql_fetch_assoc($mres_{v_idx});"));
                let line = b.push(format!("echo $mrow_{v_idx}['label_{v_idx}'];"));
                let file = b.path().to_string();
                ctx.record(
                    &id,
                    Pattern::XssDbLegacy(Placement::TopLevel),
                    &file,
                    line,
                    carried,
                    false,
                );
                v_idx += 1;
            }
        }
        emit_noise(&mut b, 100_000 + i);
        project.push_file(b.finish());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taint_config::VulnClass;

    #[test]
    fn corpus_is_deterministic() {
        let a = Corpus::generate();
        let b = Corpus::generate();
        for (pa, pb) in a.plugins().iter().zip(b.plugins()) {
            assert_eq!(pa.v2012, pb.v2012);
            assert_eq!(pa.v2014, pb.v2014);
            assert_eq!(pa.truth, pb.truth);
        }
    }

    #[test]
    fn all_generated_php_parses() {
        let c = Corpus::generate();
        for p in c.plugins() {
            for v in Version::ALL {
                for f in p.project(v).files() {
                    let ast = php_ast::parse(&f.content);
                    assert!(
                        ast.is_clean(),
                        "{}/{} {:?}: {:?}",
                        p.name,
                        f.path,
                        v,
                        ast.errors
                    );
                }
            }
        }
    }

    #[test]
    fn ground_truth_totals() {
        let c = Corpus::generate();
        assert_eq!(c.truth_for(Version::V2012).len(), 394);
        assert_eq!(c.truth_for(Version::V2014).len(), 585);
    }

    #[test]
    fn carried_share_matches_paper() {
        let c = Corpus::generate();
        let t14 = c.truth_for(Version::V2014);
        let carried = t14.iter().filter(|t| t.carried).count();
        let ratio = carried as f64 / t14.len() as f64;
        assert!(
            (0.38..=0.47).contains(&ratio),
            "carried {carried}/{} = {ratio:.2}",
            t14.len()
        );
        // Carried ids must exist in 2012 with identical ids.
        let ids12: std::collections::HashSet<&str> = c
            .truth_for(Version::V2012)
            .iter()
            .map(|t| t.id.as_str())
            .collect();
        for t in t14.iter().filter(|t| t.carried) {
            assert!(
                ids12.contains(t.id.as_str()),
                "carried id missing in 2012: {}",
                t.id
            );
        }
    }

    #[test]
    fn sqli_counts_match_paper() {
        let c = Corpus::generate();
        let sqli = |v| {
            c.truth_for(v)
                .iter()
                .filter(|t| t.class == VulnClass::Sqli)
                .count()
        };
        assert_eq!(sqli(Version::V2012), 8);
        assert_eq!(sqli(Version::V2014), 9);
    }

    #[test]
    fn corpus_grows_between_versions() {
        let c = Corpus::generate();
        let (f12, l12) = c.size_of(Version::V2012);
        let (f14, l14) = c.size_of(Version::V2014);
        assert!(f14 > f12, "files {f12} -> {f14}");
        assert!(
            l14 as f64 / l12 as f64 > 1.5,
            "LOC should roughly double: {l12} -> {l14}"
        );
        assert!(l12 > 10_000, "2012 corpus too small: {l12}");
    }

    #[test]
    fn truth_lines_are_echo_or_query_sinks() {
        let c = Corpus::generate();
        for p in c.plugins() {
            for t in &p.truth {
                let proj = p.project(t.version);
                let f = proj
                    .find_file(&t.file)
                    .unwrap_or_else(|| panic!("file {} missing", t.file));
                let line = f
                    .content
                    .lines()
                    .nth(t.line as usize - 1)
                    .unwrap_or_else(|| panic!("{}:{} out of range", t.file, t.line));
                assert!(
                    line.contains("echo") || line.contains("->query("),
                    "sink line mismatch {}:{}: {line}",
                    t.file,
                    t.line
                );
            }
        }
    }

    #[test]
    fn taxonomy_corpus_is_deterministic_and_parses() {
        let a = Corpus::generate_taxonomy();
        let b = Corpus::generate_taxonomy();
        assert_eq!(a.plugins().len(), 6);
        for (pa, pb) in a.plugins().iter().zip(b.plugins()) {
            assert_eq!(pa.v2012, pb.v2012);
            assert_eq!(pa.v2014, pb.v2014);
            assert_eq!(pa.truth, pb.truth);
        }
        for p in a.plugins() {
            for v in Version::ALL {
                for f in p.project(v).files() {
                    let ast = php_ast::parse(&f.content);
                    assert!(ast.is_clean(), "{}/{}: {:?}", p.name, f.path, ast.errors);
                }
            }
        }
    }

    #[test]
    fn taxonomy_ground_truth_totals_per_class() {
        let c = Corpus::generate_taxonomy();
        let count = |v, class| c.truth_for(v).iter().filter(|t| t.class == class).count();
        assert_eq!(count(Version::V2012, VulnClass::CmdInjection), 12);
        assert_eq!(count(Version::V2014, VulnClass::CmdInjection), 16);
        assert_eq!(count(Version::V2012, VulnClass::PathTraversal), 9);
        assert_eq!(count(Version::V2014, VulnClass::PathTraversal), 13);
        assert_eq!(count(Version::V2012, VulnClass::Ssrf), 11);
        assert_eq!(count(Version::V2014, VulnClass::Ssrf), 14);
        assert_eq!(count(Version::V2012, VulnClass::Xss), 2);
        assert_eq!(count(Version::V2012, VulnClass::Sqli), 1);
    }

    #[test]
    fn taxonomy_truth_lines_name_their_class_sink() {
        let c = Corpus::generate_taxonomy();
        for p in c.plugins() {
            for t in &p.truth {
                let f = p
                    .project(t.version)
                    .find_file(&t.file)
                    .unwrap_or_else(|| panic!("file {} missing", t.file));
                let line = f
                    .content
                    .lines()
                    .nth(t.line as usize - 1)
                    .unwrap_or_else(|| panic!("{}:{} out of range", t.file, t.line));
                let expected: &[&str] = match t.class {
                    VulnClass::Xss => &["echo"],
                    VulnClass::Sqli => &["->query("],
                    VulnClass::CmdInjection => &["shell_exec"],
                    VulnClass::PathTraversal => &["readfile"],
                    VulnClass::Ssrf => &["wp_redirect", "wp_remote_get"],
                };
                assert!(
                    expected.iter().any(|s| line.contains(s)),
                    "sink line mismatch {}:{}: {line}",
                    t.file,
                    t.line
                );
            }
        }
    }

    #[test]
    fn monster_chain_present_with_correct_depth() {
        let c = Corpus::generate();
        let monster = c
            .plugins()
            .iter()
            .find(|p| p.name == "media-archive-pro")
            .expect("monster plugin");
        let chains12 = monster
            .v2012
            .files()
            .iter()
            .filter(|f| f.path.starts_with("lib/chain_"))
            .count();
        let chains14 = monster
            .v2014
            .files()
            .iter()
            .filter(|f| f.path.starts_with("lib/chain_"))
            .count();
        assert_eq!(chains12, 14); // chain_0..chain_13
        assert_eq!(chains14, 16); // chain_0..chain_15
    }
}
