//! # phpsafe-corpus
//!
//! A deterministic synthetic corpus of **35 WordPress-style plugins × 2
//! versions (2012, 2014)** with a ground-truth vulnerability oracle —
//! the substitution for the paper's proprietary plugin snapshots (see
//! DESIGN.md §3).
//!
//! Every vulnerability and every false-positive bait is an instance of a
//! [`Pattern`] with a known capability profile: which of phpSAFE / RIPS /
//! Pixy can see it, and why (OOP encapsulation, WordPress API knowledge,
//! include resolution, `register_globals`, uncalled-function coverage,
//! resource limits). The catalog calibrates pattern counts so corpus-wide
//! aggregates reproduce the shape of the paper's evaluation: 394 distinct
//! vulnerabilities in 2012 and 585 in 2014 (paper: 394/586), 42% carried
//! over unfixed, 151/179 OOP vulnerabilities concentrated in 10/7 plugins,
//! SQLi 8/9, and the per-tool capability gaps of Table I.
//!
//! ```
//! use phpsafe_corpus::{Corpus, Version};
//!
//! let corpus = Corpus::generate();
//! assert_eq!(corpus.plugins().len(), 35);
//! assert_eq!(corpus.truth_for(Version::V2012).len(), 394);
//! ```

#![warn(missing_docs)]

mod catalog;
mod codegen;
mod generate;
mod spec;

pub use catalog::{
    catalog, taxonomy_catalog, MONSTER_CARRIED, PLUGIN_NAMES, TAXONOMY_PLUGIN_NAMES,
};
pub use codegen::{emit_noise, emit_plugin_header, FileBuilder};
pub use generate::{Corpus, GeneratedPlugin};
pub use spec::{GroundTruthEntry, Pattern, PatternCount, Placement, PluginSpec, Style, Version};
