//! Corpus specification types: the pattern taxonomy the generator plants,
//! plugin specs, and ground-truth records.
//!
//! Every generated vulnerability (and every false-positive bait) comes from
//! a *pattern* with a known capability profile — which of the three tools
//! can see it and why. The catalog distributes pattern counts over 35
//! plugins × 2 versions so the corpus-wide aggregates reproduce the shape
//! of the paper's evaluation.

use serde::{Deserialize, Serialize};
use std::fmt;
use taint_config::{SourceKind, VectorClass, VulnClass};

/// Plugin snapshot version, mirroring the paper's two data points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Version {
    /// The 2012 snapshot (analyzed and disclosed in 2013).
    V2012,
    /// The 2014 snapshot.
    V2014,
}

impl Version {
    /// Both versions in chronological order.
    pub const ALL: [Version; 2] = [Version::V2012, Version::V2014];

    /// Table-header label.
    pub fn label(self) -> &'static str {
        match self {
            Version::V2012 => "V. 2012",
            Version::V2014 => "V. 2014",
        }
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Where a snippet is planted inside a plugin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Placement {
    /// Top-level statements of a file (the "main flow").
    TopLevel,
    /// Inside a free function that is never called (a hook handler).
    FreeFn,
    /// Inside a class method (encapsulated — invisible to OOP-blind tools).
    Method,
}

/// The generative pattern taxonomy.
///
/// `Xss*`/`Sqli*` patterns are ground-truth **positives**; `Fp*` patterns
/// are **negatives** crafted to trip specific tool weaknesses; `Safe*` is
/// inert filler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Pattern {
    /// `echo $_GET[...]` (vector per [`SourceKind`]) at the given placement.
    XssEchoDirect(SourceKind, Placement),
    /// Echo of an uninitialized global — exploitable only under
    /// `register_globals = 1` (2012-era code). Only Pixy models it.
    XssRegisterGlobals,
    /// The §III.E pattern: `$wpdb->get_results(...)` rows echoed without
    /// sanitization, inside a class method. OOP + DB vector; phpSAFE-only.
    XssWpdbOop,
    /// Same wpdb flow but in top-level code (still an OOP method call).
    XssWpdbTop,
    /// `$wpdb->query("... $tainted")` — SQL injection through the
    /// WordPress database object; phpSAFE-only.
    SqliWpdb(Placement),
    /// Legacy `mysql_query` + `mysql_fetch_assoc` row echoed (DB vector,
    /// procedural — visible to every tool that reaches the code).
    XssDbLegacy(Placement),
    /// `get_option(...)` (DB-backed) echoed — needs the WordPress profile.
    XssDbOption(Placement),
    /// `fgets`/`file_get_contents` echoed (File vector; qtranslate-style).
    XssFileSource(Placement),
    /// `getenv`/header value echoed (Function vector).
    XssFunctionSource(Placement),
    /// Tainted variable set in one file, echoed in an `include`d file —
    /// requires include resolution (phpSAFE-only).
    XssIncludeSplit,
    /// `shell_exec('cmd ' . $v)` with `$v` from the given vector —
    /// command injection (taxonomy extension class).
    CmdiShellExec(SourceKind, Placement),
    /// `shell_exec` on an `esc_html()`-wrapped value — still vulnerable:
    /// HTML encoding is inert in a shell context, so the command-injection
    /// label survives the XSS-only sanitizer.
    CmdiXssSanitized,
    /// `readfile('uploads/' . $v)` — path traversal through a filesystem
    /// sink (taxonomy extension class).
    PathTravReadfile(SourceKind, Placement),
    /// `wp_redirect($v)` — open redirect (taxonomy extension class).
    SsrfRedirect(SourceKind),
    /// `wp_remote_get('https://...' . $v)` — server-side request forgery
    /// through an HTTP fetch (taxonomy extension class).
    SsrfFetch(Placement),
    /// NEGATIVE: `echo esc_html($_GET[...])` — safe, but tools without the
    /// WordPress profile (RIPS, Pixy) report it.
    FpEscapedWp(Placement),
    /// NEGATIVE: value guarded by `is_numeric(...) or die()` then echoed —
    /// path-insensitive tools (all three) report it.
    FpGuardedEcho(Placement),
    /// NEGATIVE: value passed through a custom `preg_replace` whitelist
    /// cleaner — semantic sanitization no tool models.
    FpCustomClean(Placement),
    /// NEGATIVE: template-style echo of a variable assigned by the CMS at
    /// runtime — only `register_globals` modeling (Pixy) fires.
    FpUndefinedEcho,
    /// NEGATIVE: `$wpdb->query` on an `is_numeric`-guarded value — phpSAFE's
    /// SQLi false positives.
    FpSqliGuarded,
    /// NEGATIVE: legacy `mysql_query` on `absint(...)`-sanitized input in a
    /// file that also uses OOP — RIPS (no WP profile) reports it; Pixy
    /// rejects the file.
    FpSqliLegacyWp,
    /// NEGATIVE: `shell_exec` on `escapeshellarg(...)` output — the
    /// class-specific sanitizer clears the shell label.
    FpCmdiEscaped,
    /// NEGATIVE: `readfile` on `basename(...)` output — path
    /// canonicalization clears the traversal label.
    FpPathBasename,
    /// NEGATIVE: `wp_redirect` on `esc_url_raw(...)` output — URL
    /// validation clears the redirect/SSRF label.
    FpSsrfEscUrl,
    /// Inert: properly sanitized output with PHP built-ins.
    SafeSanitized,
}

impl Pattern {
    /// Ground-truth classification: `Some((class, vector, oop))` for real
    /// vulnerabilities, `None` for negatives/filler.
    pub fn truth(&self) -> Option<(VulnClass, SourceKind, bool)> {
        use Pattern::*;
        match self {
            XssEchoDirect(kind, _) => Some((VulnClass::Xss, *kind, false)),
            XssRegisterGlobals => Some((VulnClass::Xss, SourceKind::Request, false)),
            XssWpdbOop | XssWpdbTop => Some((VulnClass::Xss, SourceKind::Database, true)),
            SqliWpdb(_) => Some((VulnClass::Sqli, SourceKind::Get, true)),
            XssDbLegacy(_) => Some((VulnClass::Xss, SourceKind::Database, false)),
            XssDbOption(_) => Some((VulnClass::Xss, SourceKind::Database, false)),
            XssFileSource(_) => Some((VulnClass::Xss, SourceKind::File, false)),
            XssFunctionSource(_) => Some((VulnClass::Xss, SourceKind::Function, false)),
            XssIncludeSplit => Some((VulnClass::Xss, SourceKind::Get, false)),
            CmdiShellExec(kind, _) => Some((VulnClass::CmdInjection, *kind, false)),
            CmdiXssSanitized => Some((VulnClass::CmdInjection, SourceKind::Get, false)),
            PathTravReadfile(kind, _) => Some((VulnClass::PathTraversal, *kind, false)),
            SsrfRedirect(kind) => Some((VulnClass::Ssrf, *kind, false)),
            SsrfFetch(_) => Some((VulnClass::Ssrf, SourceKind::Get, false)),
            FpEscapedWp(_) | FpGuardedEcho(_) | FpCustomClean(_) | FpUndefinedEcho
            | FpSqliGuarded | FpSqliLegacyWp | FpCmdiEscaped | FpPathBasename | FpSsrfEscUrl
            | SafeSanitized => None,
        }
    }

    /// Whether the emitted snippet contains OOP constructs (drives Pixy's
    /// file rejection).
    pub fn emits_oop_syntax(&self) -> bool {
        use Pattern::*;
        matches!(
            self,
            XssWpdbOop
                | XssWpdbTop
                | SqliWpdb(_)
                | FpSqliGuarded
                | FpSqliLegacyWp
                | XssEchoDirect(_, Placement::Method)
                | XssDbLegacy(Placement::Method)
                | XssDbOption(Placement::Method)
                | XssFileSource(Placement::Method)
                | XssFunctionSource(Placement::Method)
                | FpEscapedWp(Placement::Method)
                | FpGuardedEcho(Placement::Method)
                | FpCustomClean(Placement::Method)
                | CmdiShellExec(_, Placement::Method)
                | PathTravReadfile(_, Placement::Method)
        )
    }
}

/// How many instances of a pattern a plugin carries in each version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PatternCount {
    /// The pattern.
    pub pattern: Pattern,
    /// Instances in the 2012 snapshot.
    pub n2012: u32,
    /// Instances in the 2014 snapshot.
    pub n2014: u32,
    /// How many 2014 instances are carried over (unfixed) from 2012.
    /// Invariant: `carried <= min(n2012, n2014)`.
    pub carried: u32,
}

impl PatternCount {
    /// A pattern with explicit counts; `carried` is clamped to the valid
    /// range.
    pub fn new(pattern: Pattern, n2012: u32, n2014: u32, carried: u32) -> Self {
        PatternCount {
            pattern,
            n2012,
            n2014,
            carried: carried.min(n2012).min(n2014),
        }
    }

    /// Count for a version.
    pub fn for_version(&self, v: Version) -> u32 {
        match v {
            Version::V2012 => self.n2012,
            Version::V2014 => self.n2014,
        }
    }
}

/// Coding style of a plugin (19 of the paper's 35 are OOP).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Style {
    /// Classes + methods; hook handlers are methods.
    Oop,
    /// Free functions and top-level code.
    Procedural,
}

/// Specification of one synthetic plugin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PluginSpec {
    /// Plugin slug, e.g. `wp-symposium`.
    pub name: String,
    /// Coding style.
    pub style: Style,
    /// Pattern plan.
    pub patterns: Vec<PatternCount>,
    /// Contains the include-chain "monster" files: `(depth_2012,
    /// depth_2014)` — 0 disables. Deep chains blow phpSAFE's include
    /// budget on the leading chain files.
    pub monster_depth: (u32, u32),
    /// Vulnerable legacy-DB echoes planted in the first three chain files
    /// (per version) — only reachable by per-file tools when phpSAFE's
    /// entry pass fails.
    pub monster_vulns: (u32, u32),
    /// The 2014 version sprinkles OOP constructs into previously clean
    /// files (the ecosystem's drift that starves Pixy).
    pub oopify_2014: bool,
    /// The 2014 version registers hooks with closures (Pixy-era parser
    /// errors).
    pub closures_2014: bool,
    /// Filler functions per version (drives LOC).
    pub noise: (u32, u32),
}

/// A ground-truth vulnerability record, the oracle the paper's "manual
/// verification by a security expert" plays.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroundTruthEntry {
    /// Stable id; carried vulnerabilities keep the same id across versions.
    pub id: String,
    /// Plugin slug.
    pub plugin: String,
    /// Snapshot version.
    pub version: Version,
    /// Vulnerability class.
    pub class: VulnClass,
    /// Input vector.
    pub vector: SourceKind,
    /// File containing the sink.
    pub file: String,
    /// 1-based sink line.
    pub line: u32,
    /// The flow passes a CMS object method (§V.A OOP vulnerabilities).
    pub oop: bool,
    /// Present in both snapshots (2014 entries only; §V.D inertia).
    pub carried: bool,
    /// The vulnerable variable is numeric-intent (§V.C).
    pub numeric: bool,
}

impl GroundTruthEntry {
    /// Table II row for this entry.
    pub fn vector_class(&self) -> VectorClass {
        self.vector.vector_class()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taint_config::SourceKind as SK;

    #[test]
    fn pattern_truth_classification() {
        assert_eq!(
            Pattern::XssEchoDirect(SK::Get, Placement::TopLevel).truth(),
            Some((VulnClass::Xss, SK::Get, false))
        );
        assert_eq!(
            Pattern::XssWpdbOop.truth(),
            Some((VulnClass::Xss, SK::Database, true))
        );
        assert_eq!(
            Pattern::SqliWpdb(Placement::Method).truth().map(|t| t.0),
            Some(VulnClass::Sqli)
        );
        assert_eq!(Pattern::FpEscapedWp(Placement::TopLevel).truth(), None);
        assert_eq!(Pattern::SafeSanitized.truth(), None);
    }

    #[test]
    fn taxonomy_pattern_truth_classification() {
        assert_eq!(
            Pattern::CmdiShellExec(SK::Post, Placement::TopLevel).truth(),
            Some((VulnClass::CmdInjection, SK::Post, false))
        );
        assert_eq!(
            Pattern::CmdiXssSanitized.truth(),
            Some((VulnClass::CmdInjection, SK::Get, false))
        );
        assert_eq!(
            Pattern::PathTravReadfile(SK::Get, Placement::Method).truth(),
            Some((VulnClass::PathTraversal, SK::Get, false))
        );
        assert_eq!(
            Pattern::SsrfRedirect(SK::Request).truth(),
            Some((VulnClass::Ssrf, SK::Request, false))
        );
        assert_eq!(
            Pattern::SsrfFetch(Placement::FreeFn).truth(),
            Some((VulnClass::Ssrf, SK::Get, false))
        );
        assert_eq!(Pattern::FpCmdiEscaped.truth(), None);
        assert_eq!(Pattern::FpPathBasename.truth(), None);
        assert_eq!(Pattern::FpSsrfEscUrl.truth(), None);
        assert!(Pattern::CmdiShellExec(SK::Get, Placement::Method).emits_oop_syntax());
        assert!(!Pattern::SsrfRedirect(SK::Get).emits_oop_syntax());
    }

    #[test]
    fn oop_syntax_classification() {
        assert!(Pattern::XssWpdbOop.emits_oop_syntax());
        assert!(Pattern::XssEchoDirect(SK::Get, Placement::Method).emits_oop_syntax());
        assert!(!Pattern::XssEchoDirect(SK::Get, Placement::TopLevel).emits_oop_syntax());
        assert!(!Pattern::XssRegisterGlobals.emits_oop_syntax());
    }

    #[test]
    fn carried_is_clamped() {
        let pc = PatternCount::new(Pattern::XssRegisterGlobals, 3, 10, 8);
        assert_eq!(pc.carried, 3);
        let pc = PatternCount::new(Pattern::XssRegisterGlobals, 10, 3, 8);
        assert_eq!(pc.carried, 3);
        assert_eq!(pc.for_version(Version::V2012), 10);
        assert_eq!(pc.for_version(Version::V2014), 3);
    }
}
