//! Corpus-level invariants the evaluation relies on: id uniqueness and
//! stability, file existence, OOP placement, and the mechanical properties
//! the capability gaps are built on.

use phpsafe_corpus::{Corpus, Version};
use std::collections::HashSet;
use std::sync::OnceLock;

fn corpus() -> &'static Corpus {
    static C: OnceLock<Corpus> = OnceLock::new();
    C.get_or_init(Corpus::generate)
}

#[test]
fn ground_truth_ids_are_unique_per_version() {
    for v in Version::ALL {
        let truth = corpus().truth_for(v);
        let ids: HashSet<&str> = truth.iter().map(|t| t.id.as_str()).collect();
        assert_eq!(ids.len(), truth.len(), "{v:?}: duplicate ground-truth ids");
    }
}

#[test]
fn every_truth_file_exists_in_its_project() {
    for p in corpus().plugins() {
        for t in &p.truth {
            assert!(
                p.project(t.version).find_file(&t.file).is_some(),
                "{}/{:?}: missing file {}",
                p.name,
                t.version,
                t.file
            );
        }
    }
}

#[test]
fn file_paths_unique_within_project() {
    for p in corpus().plugins() {
        for v in Version::ALL {
            let paths: HashSet<&str> = p
                .project(v)
                .files()
                .iter()
                .map(|f| f.path.as_str())
                .collect();
            assert_eq!(paths.len(), p.project(v).files().len(), "{} {v:?}", p.name);
        }
    }
}

#[test]
fn carried_entries_keep_class_and_vector() {
    // A carried vulnerability is the *same* vulnerability: class, vector
    // and oop flag must match its 2012 counterpart.
    for p in corpus().plugins() {
        let by_id_2012: std::collections::HashMap<&str, _> = p
            .truth_for(Version::V2012)
            .map(|t| (t.id.as_str(), t))
            .collect();
        for t in p.truth_for(Version::V2014).filter(|t| t.carried) {
            let old = by_id_2012
                .get(t.id.as_str())
                .unwrap_or_else(|| panic!("carried id {} missing in 2012", t.id));
            assert_eq!(old.class, t.class, "{}", t.id);
            assert_eq!(old.vector, t.vector, "{}", t.id);
            assert_eq!(old.oop, t.oop, "{}", t.id);
        }
    }
}

#[test]
fn oop_truth_only_in_files_with_oop_syntax() {
    // Every OOP-flagged ground-truth entry must live in a file that
    // actually contains OOP constructs (so Pixy's rejection story holds).
    for p in corpus().plugins() {
        for t in p.truth.iter().filter(|t| t.oop) {
            let f = p
                .project(t.version)
                .find_file(&t.file)
                .expect("file exists");
            assert!(
                f.content.contains("->") || f.content.contains("::"),
                "{}:{} flagged OOP but file has no object syntax",
                t.file,
                t.line
            );
        }
    }
}

#[test]
fn monster_chain_files_reject_pixy_and_link_forward() {
    let monster = corpus()
        .plugins()
        .iter()
        .find(|p| p.name == "media-archive-pro")
        .expect("monster");
    for v in Version::ALL {
        let proj = monster.project(v);
        let chain: Vec<_> = proj
            .files()
            .iter()
            .filter(|f| f.path.starts_with("lib/chain_"))
            .collect();
        for f in &chain {
            assert!(
                f.content.contains("new stdClass"),
                "{} must contain an OOP marker",
                f.path
            );
        }
        // Every chain file except the last includes the next one.
        let includes = chain
            .iter()
            .filter(|f| f.content.contains("include 'lib/chain_"))
            .count();
        assert_eq!(includes, chain.len() - 1, "{v:?}");
    }
}

#[test]
fn twenty_sixteen_files_have_closures_where_specified() {
    // Hook-heavy plugins gain closures in 2014 only.
    let c = corpus();
    let hook_plugin = c
        .plugins()
        .iter()
        .find(|p| p.name == "hook-notifier")
        .expect("plugin");
    let has_closure = |v: Version| {
        hook_plugin
            .project(v)
            .files()
            .iter()
            .any(|f| f.content.contains("function ($content_cb)"))
    };
    assert!(!has_closure(Version::V2012));
    assert!(has_closure(Version::V2014));
}

#[test]
fn clean_legacy_plugins_stay_oop_free() {
    // Plugins 15..18 (classic-polls, legacy-feedback, retro-sitemap) must
    // remain analyzable by Pixy in both versions.
    let c = corpus();
    for name in ["classic-polls", "legacy-feedback", "retro-sitemap"] {
        let p = c.plugins().iter().find(|p| p.name == name).expect("plugin");
        for v in Version::ALL {
            for f in p.project(v).files() {
                assert!(
                    !f.content.contains("new ") && !f.content.contains("class "),
                    "{name}/{} ({v:?}) must stay OOP-free",
                    f.path
                );
            }
        }
    }
}

#[test]
fn plugin_headers_present_and_versioned() {
    for p in corpus().plugins() {
        let main12 = p
            .v2012
            .files()
            .iter()
            .find(|f| f.path == format!("{}.php", p.name))
            .expect("main file");
        assert!(main12.content.contains("Plugin Name:"));
        assert!(main12.content.contains("Version: 1.4.2"));
        let main14 = p
            .v2014
            .files()
            .iter()
            .find(|f| f.path == format!("{}.php", p.name))
            .expect("main file");
        assert!(main14.content.contains("Version: 2.1.0"));
    }
}

#[test]
fn sink_lines_grow_monotonically_in_truth_order_per_file() {
    // The generator appends; within one file the recorded sink lines must
    // be strictly increasing — a tripwire for line-accounting bugs.
    for p in corpus().plugins() {
        for v in Version::ALL {
            let mut per_file: std::collections::HashMap<&str, u32> = Default::default();
            for t in p.truth.iter().filter(|t| t.version == v) {
                let last = per_file.entry(t.file.as_str()).or_insert(0);
                assert!(
                    t.line > *last,
                    "{}/{} line {} not after {}",
                    p.name,
                    t.file,
                    t.line,
                    last
                );
                *last = t.line;
            }
        }
    }
}
