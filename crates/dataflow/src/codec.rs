//! Binary (de)serialization of [`TaintGraph`]s for the persistent
//! artifact cache's `graph` namespace.
//!
//! [`Symbol`]s are process-local `u32`s and must never hit disk raw: file
//! paths are written through a first-use-order string table and re-interned
//! on decode, so an encoding is stable across processes and interner
//! states. Decoding is corruption-tolerant: every read is bounds-checked,
//! every tag validated, every node id checked against the node count —
//! garbage yields a [`CodecError`], never a panic (the disk cache's digest
//! envelope is the first line of defense; this is the second).

use crate::graph::{Edge, EdgeKind, Node, NodeId, SinkRecord, TaintGraph};
use php_ast::codec::{CodecError, Reader, Writer};
use phpsafe_intern::{FnvHashMap, Symbol};
use phpsafe_obs::TaintEventKind;
use taint_config::{SourceKind, TaintLabels, VulnClass};

/// Bumped on any change to the encoding below.
/// v2: the full taxonomy registry in `enc_class` plus a per-sink label word.
const VERSION: u8 = 2;

type Result<T> = std::result::Result<T, CodecError>;

fn fail<T>(r: &Reader<'_>, what: &'static str) -> Result<T> {
    Err(CodecError {
        what,
        at: r.offset(),
    })
}

fn enc_event_kind(k: TaintEventKind) -> u8 {
    match k {
        TaintEventKind::Introduced => 0,
        TaintEventKind::Propagated => 1,
        TaintEventKind::Sanitized => 2,
        TaintEventKind::Reverted => 3,
        TaintEventKind::SinkHit => 4,
    }
}

fn dec_event_kind(r: &mut Reader<'_>) -> Result<TaintEventKind> {
    Ok(match r.u8()? {
        0 => TaintEventKind::Introduced,
        1 => TaintEventKind::Propagated,
        2 => TaintEventKind::Sanitized,
        3 => TaintEventKind::Reverted,
        4 => TaintEventKind::SinkHit,
        _ => fail(r, "invalid event kind")?,
    })
}

fn enc_edge_kind(k: EdgeKind) -> u8 {
    match k {
        EdgeKind::Assign => 0,
        EdgeKind::Concat => 1,
        EdgeKind::Return => 2,
        EdgeKind::Foreach => 3,
        EdgeKind::Read => 4,
        EdgeKind::Sanitize => 5,
        EdgeKind::Revert => 6,
        EdgeKind::SourceIntro => 7,
        EdgeKind::Flow => 8,
    }
}

fn dec_edge_kind(r: &mut Reader<'_>) -> Result<EdgeKind> {
    Ok(match r.u8()? {
        0 => EdgeKind::Assign,
        1 => EdgeKind::Concat,
        2 => EdgeKind::Return,
        3 => EdgeKind::Foreach,
        4 => EdgeKind::Read,
        5 => EdgeKind::Sanitize,
        6 => EdgeKind::Revert,
        7 => EdgeKind::SourceIntro,
        8 => EdgeKind::Flow,
        _ => fail(r, "invalid edge kind")?,
    })
}

fn enc_class(c: VulnClass) -> u8 {
    match c {
        VulnClass::Xss => 0,
        VulnClass::Sqli => 1,
        VulnClass::CmdInjection => 2,
        VulnClass::PathTraversal => 3,
        VulnClass::Ssrf => 4,
    }
}

fn dec_class(r: &mut Reader<'_>) -> Result<VulnClass> {
    Ok(match r.u8()? {
        0 => VulnClass::Xss,
        1 => VulnClass::Sqli,
        2 => VulnClass::CmdInjection,
        3 => VulnClass::PathTraversal,
        4 => VulnClass::Ssrf,
        _ => fail(r, "invalid vuln class")?,
    })
}

fn dec_labels(r: &mut Reader<'_>) -> Result<TaintLabels> {
    let bits = r.u32()?;
    if bits > u16::MAX as u32 {
        return fail(r, "invalid taint label bits");
    }
    Ok(TaintLabels(bits as u16))
}

fn enc_source_kind(k: SourceKind) -> u8 {
    match k {
        SourceKind::Get => 0,
        SourceKind::Post => 1,
        SourceKind::Cookie => 2,
        SourceKind::Request => 3,
        SourceKind::Server => 4,
        SourceKind::Database => 5,
        SourceKind::File => 6,
        SourceKind::Function => 7,
        SourceKind::Array => 8,
    }
}

fn dec_source_kind(r: &mut Reader<'_>) -> Result<SourceKind> {
    Ok(match r.u8()? {
        0 => SourceKind::Get,
        1 => SourceKind::Post,
        2 => SourceKind::Cookie,
        3 => SourceKind::Request,
        4 => SourceKind::Server,
        5 => SourceKind::Database,
        6 => SourceKind::File,
        7 => SourceKind::Function,
        8 => SourceKind::Array,
        _ => fail(r, "invalid source kind")?,
    })
}

/// Encodes `g` into an existing writer (for embedding in a larger blob).
pub fn encode_graph_into(w: &mut Writer, g: &TaintGraph) {
    w.u8(VERSION);

    // File-path string table, first-use order.
    let mut index: FnvHashMap<Symbol, u32> = FnvHashMap::default();
    let mut table: Vec<Symbol> = Vec::new();
    for n in &g.nodes {
        index.entry(n.file).or_insert_with(|| {
            table.push(n.file);
            (table.len() - 1) as u32
        });
    }
    w.u64(table.len() as u64);
    for sym in &table {
        w.str(sym.as_str());
    }

    w.u64(g.nodes.len() as u64);
    for n in &g.nodes {
        w.u8(enc_event_kind(n.kind));
        w.u32(index[&n.file]);
        w.u32(n.line);
        w.str(&n.what);
        match n.expr {
            Some(raw) => {
                w.bool(true);
                w.u32(raw);
            }
            None => w.bool(false),
        }
        w.bool(n.evented);
    }

    w.u64(g.edges.len() as u64);
    for e in &g.edges {
        w.u32(e.from.0);
        w.u32(e.to.0);
        w.u8(enc_edge_kind(e.kind));
    }

    w.u64(g.sinks.len() as u64);
    for s in &g.sinks {
        w.u8(enc_class(s.class));
        w.str(&s.file);
        w.u32(s.line);
        w.str(&s.sink);
        w.str(&s.var);
        w.u8(enc_source_kind(s.source_kind));
        w.u32(s.labels.0 as u32);
        w.bool(s.via_oop);
        w.bool(s.numeric_hint);
        w.u64(s.path.len() as u64);
        for id in &s.path {
            w.u32(id.0);
        }
    }
}

/// Encodes `g` as a standalone blob.
pub fn encode_graph(g: &TaintGraph) -> Vec<u8> {
    let mut w = Writer::new();
    encode_graph_into(&mut w, g);
    w.into_bytes()
}

/// Guards a declared element count against the bytes actually left.
fn checked_count(r: &mut Reader<'_>, min_elem_size: usize, what: &'static str) -> Result<usize> {
    let count = r.u64()? as usize;
    let Some(need) = count.checked_mul(min_elem_size) else {
        return fail(r, what);
    };
    if r.remaining() < need {
        return fail(r, what);
    }
    Ok(count)
}

/// Decodes a graph from an existing reader (trailing bytes allowed, for
/// embedded use).
pub fn decode_graph_from(r: &mut Reader<'_>) -> Result<TaintGraph> {
    if r.u8()? != VERSION {
        return fail(r, "unsupported graph codec version");
    }

    let table_len = checked_count(r, 4, "file table count exceeds input")?;
    let mut table: Vec<Symbol> = Vec::with_capacity(table_len);
    for _ in 0..table_len {
        table.push(Symbol::intern(&r.str()?));
    }

    let node_count = checked_count(r, 15, "node count exceeds input")?;
    let mut nodes = Vec::with_capacity(node_count);
    for _ in 0..node_count {
        let kind = dec_event_kind(r)?;
        let file_idx = r.u32()? as usize;
        let Some(&file) = table.get(file_idx) else {
            return fail(r, "file index out of range");
        };
        let line = r.u32()?;
        let what = r.str()?;
        let expr = if r.bool()? { Some(r.u32()?) } else { None };
        let evented = r.bool()?;
        nodes.push(Node {
            kind,
            file,
            line,
            what,
            expr,
            evented,
        });
    }

    let node_id = |r: &Reader<'_>, raw: u32| -> Result<NodeId> {
        if (raw as usize) < nodes.len() {
            Ok(NodeId(raw))
        } else {
            Err(CodecError {
                what: "node id out of range",
                at: r.offset(),
            })
        }
    };

    let edge_count = checked_count(r, 9, "edge count exceeds input")?;
    let mut edges = Vec::with_capacity(edge_count);
    for _ in 0..edge_count {
        let from = r.u32()?;
        let to = r.u32()?;
        let from = node_id(r, from)?;
        let to = node_id(r, to)?;
        let kind = dec_edge_kind(r)?;
        edges.push(Edge { from, to, kind });
    }

    let sink_count = checked_count(r, 29, "sink count exceeds input")?;
    let mut sinks = Vec::with_capacity(sink_count);
    for _ in 0..sink_count {
        let class = dec_class(r)?;
        let file = r.str()?;
        let line = r.u32()?;
        let sink = r.str()?;
        let var = r.str()?;
        let source_kind = dec_source_kind(r)?;
        let labels = dec_labels(r)?;
        let via_oop = r.bool()?;
        let numeric_hint = r.bool()?;
        let path_len = checked_count(r, 4, "path count exceeds input")?;
        let mut path = Vec::with_capacity(path_len);
        for _ in 0..path_len {
            let raw = r.u32()?;
            path.push(node_id(r, raw)?);
        }
        sinks.push(SinkRecord {
            class,
            file,
            line,
            sink,
            var,
            source_kind,
            labels,
            via_oop,
            numeric_hint,
            path,
        });
    }

    Ok(TaintGraph {
        nodes,
        edges,
        sinks,
    })
}

/// Decodes a standalone blob produced by [`encode_graph`], rejecting
/// trailing bytes.
pub fn decode_graph(bytes: &[u8]) -> Result<TaintGraph> {
    let mut r = Reader::new(bytes);
    let g = decode_graph_from(&mut r)?;
    if !r.is_at_end() {
        return fail(&r, "trailing bytes after graph");
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Recorder, SinkInfo};

    fn sample_graph() -> TaintGraph {
        let f = Symbol::intern("a.php");
        let g = Symbol::intern("b.php");
        let mut rec = Recorder::new();
        rec.observe(TaintEventKind::Introduced, f, 2, "source $_GET['id']", None);
        rec.observe(
            TaintEventKind::Propagated,
            f,
            3,
            "$id = $_GET['id']",
            Some(7),
        );
        rec.observe(TaintEventKind::Sanitized, g, 4, "sanitized by esc()", None);
        rec.record_sink(
            SinkInfo {
                class: VulnClass::Xss,
                file: "a.php",
                line: 5,
                sink: "echo",
                var: "$id",
                source_kind: SourceKind::Get,
                labels: TaintLabels::single(SourceKind::Get),
                via_oop: false,
                numeric_hint: false,
            },
            [
                (f, 2, "source $_GET['id']"),
                (f, 3, "$id = $_GET['id']"),
                (f, 4, "new C"), // trace-only step: no event at this site
            ]
            .into_iter(),
        );
        rec.record_sink(
            SinkInfo {
                class: VulnClass::Sqli,
                file: "b.php",
                line: 9,
                sink: "mysql_query",
                var: "$q",
                source_kind: SourceKind::Post,
                labels: TaintLabels::single(SourceKind::Post)
                    .union(TaintLabels::single(SourceKind::Database)),
                via_oop: true,
                numeric_hint: true,
            },
            [(f, 2, "source $_GET['id']")].into_iter(),
        );
        rec.finish()
    }

    #[test]
    fn roundtrip_is_identity() {
        let g = sample_graph();
        let blob = encode_graph(&g);
        let back = decode_graph(&blob).expect("decode");
        assert_eq!(g, back);
    }

    #[test]
    fn encoding_is_deterministic() {
        let g = sample_graph();
        assert_eq!(encode_graph(&g), encode_graph(&g));
    }

    #[test]
    fn truncations_fail_cleanly() {
        let blob = encode_graph(&sample_graph());
        for cut in 0..blob.len() {
            assert!(
                decode_graph(&blob[..cut]).is_err(),
                "truncation at {cut} must not decode"
            );
        }
    }

    #[test]
    fn garbage_fails_cleanly() {
        let blob = encode_graph(&sample_graph());
        for i in 0..blob.len() {
            let mut bad = blob.clone();
            bad[i] = bad[i].wrapping_add(0x55);
            // Flipping a byte may still decode (e.g. inside a line number)
            // but must never panic.
            let _ = decode_graph(&bad);
        }
        assert!(decode_graph(b"not a graph").is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut blob = encode_graph(&sample_graph());
        blob.push(0);
        assert!(decode_graph(&blob).is_err());
    }

    #[test]
    fn events_skip_trace_only_nodes_and_paths_resolve() {
        let g = sample_graph();
        let events: Vec<&str> = g.events().map(|n| n.what.as_str()).collect();
        assert_eq!(
            events,
            [
                "source $_GET['id']",
                "$id = $_GET['id']",
                "sanitized by esc()"
            ]
        );
        let steps = g.resolve_path(&g.sinks[0]);
        assert_eq!(steps.len(), 3);
        assert_eq!(steps[2].what, "new C");
        // Both sinks share the source node through the site map.
        assert_eq!(g.sinks[0].path[0], g.sinks[1].path[0]);
    }

    #[test]
    fn query_filters_by_class_and_checks_reachability() {
        let g = sample_graph();
        let xss = g.query(VulnClass::Xss);
        let sqli = g.query(VulnClass::Sqli);
        assert_eq!(xss.len(), 1);
        assert_eq!(sqli.len(), 1);
        assert_eq!(xss[0].seq, 0);
        assert_eq!(sqli[0].seq, 1);
    }

    #[test]
    fn query_labeled_filters_by_source_label() {
        let g = sample_graph();
        // The SQLi sink carries {POST,DB}; a GET mask must drop it while a
        // DB mask keeps it, and the unfiltered query stays the superset.
        let get = TaintLabels::single(SourceKind::Get);
        let db = TaintLabels::single(SourceKind::Database);
        assert!(g.query_labeled(VulnClass::Sqli, get).is_empty());
        assert_eq!(g.query_labeled(VulnClass::Sqli, db).len(), 1);
        assert_eq!(
            g.query_labeled(VulnClass::Sqli, TaintLabels::all()),
            g.query(VulnClass::Sqli)
        );
    }
}
