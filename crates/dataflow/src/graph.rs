//! Graph data model and the per-class reachability queries.

use phpsafe_intern::{FnvHashMap, Symbol};
use phpsafe_obs::TaintEventKind;
use std::collections::VecDeque;
use taint_config::{SourceKind, TaintLabels, VulnClass};

/// Index of a [`Node`] in its graph. Nodes are appended in walk order, so
/// ids double as event sequence numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One taint transition observed during the walk (or a trace-only step
/// that never produced an event, carried for path reconstruction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// What happened to the taint mark at this site.
    pub kind: TaintEventKind,
    /// File the transition happened in (interned path).
    pub file: Symbol,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description, byte-identical to the trace step /
    /// `--explain` event wording recorded at the same site.
    pub what: String,
    /// Arena provenance: the raw [`php_ast::ExprId`] pool index of the
    /// expression this transition was observed on, when one was in hand.
    pub expr: Option<u32>,
    /// Whether this node came from an emitted taint event (replayed by
    /// [`TaintGraph::events`]) or only from a data-flow trace step.
    pub evented: bool,
}

/// How taint moved along an edge; classified from the downstream node's
/// site wording.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Plain assignment (`$a = $b`).
    Assign,
    /// Concatenation (`$a .= $b`, `$a . $b`).
    Concat,
    /// Value returned from a call.
    Return,
    /// Element of a tainted collection.
    Foreach,
    /// Array / property read.
    Read,
    /// A sanitizer cleared the class taint along this edge.
    Sanitize,
    /// A revert function restored sanitized taint.
    Revert,
    /// Taint entered the program.
    SourceIntro,
    /// Any other propagation.
    Flow,
}

impl EdgeKind {
    /// Classifies the edge into `to` from that node's site wording.
    pub fn classify(what: &str) -> EdgeKind {
        if what.starts_with("source ") || what.contains("injected by") {
            EdgeKind::SourceIntro
        } else if what.starts_with("sanitized by") {
            EdgeKind::Sanitize
        } else if what.starts_with("revert ") {
            EdgeKind::Revert
        } else if what.starts_with("returned by") {
            EdgeKind::Return
        } else if what.starts_with("foreach over") {
            EdgeKind::Foreach
        } else if what.starts_with("read ") {
            EdgeKind::Read
        } else if what.contains(" .= ") {
            EdgeKind::Concat
        } else if what.contains(" = ") {
            EdgeKind::Assign
        } else {
            EdgeKind::Flow
        }
    }
}

/// A directed propagation edge between two nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Upstream node.
    pub from: NodeId,
    /// Downstream node.
    pub to: NodeId,
    /// How the taint moved.
    pub kind: EdgeKind,
}

/// One tainted value reaching a sensitive sink, with its provenance path
/// through the graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SinkRecord {
    /// Vulnerability class the sink belongs to.
    pub class: VulnClass,
    /// File the sink call is in.
    pub file: String,
    /// 1-based line of the sink call.
    pub line: u32,
    /// Sink name (e.g. `echo`, `mysql_query`).
    pub sink: String,
    /// Expression that reached the sink.
    pub var: String,
    /// Where the taint originally entered.
    pub source_kind: SourceKind,
    /// Every source kind that contributed to the sunk value's class label
    /// (`source_kind` is this set's highest-priority member).
    pub labels: TaintLabels,
    /// Whether the flow passed through an OOP construct.
    pub via_oop: bool,
    /// Whether the sunk expression looks numerically constrained.
    pub numeric_hint: bool,
    /// Source→sink provenance path (node ids in flow order).
    pub path: Vec<NodeId>,
}

/// One resolved step of a provenance path — the graph-side image of a
/// data-flow trace step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathStep {
    /// File (interned path).
    pub file: Symbol,
    /// 1-based line.
    pub line: u32,
    /// Site wording.
    pub what: String,
}

/// One sink reached by a class query, with its walk-order sequence number
/// (so hits from several queries can be merged back into walk order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryHit {
    /// Index of the sink record in [`TaintGraph::sinks`] (walk order).
    pub seq: usize,
}

/// The finished whole-program taint graph for one project.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TaintGraph {
    /// Every observed taint transition, in walk order.
    pub nodes: Vec<Node>,
    /// Propagation edges between consecutive path nodes (deduplicated).
    pub edges: Vec<Edge>,
    /// Every sink hit, in walk (report) order.
    pub sinks: Vec<SinkRecord>,
}

impl TaintGraph {
    /// The recorded taint-event stream: evented nodes in walk order.
    /// Replaying these through the observability ring buffer reproduces
    /// the exact events a fresh walk of the same project emits.
    pub fn events(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter().filter(|n| n.evented)
    }

    /// Source→sink reachability query for one vulnerability class: every
    /// recorded sink of `class` whose first path node still reaches the
    /// sink site through propagation edges. Records `dataflow.queries`
    /// and one `dataflow.path_hits` per surviving sink.
    pub fn query(&self, class: VulnClass) -> Vec<QueryHit> {
        self.query_where(|rec| rec.class == class)
    }

    /// Like [`TaintGraph::query`], but keeps only sinks whose label set
    /// intersects `mask` — e.g. "every SQLi sink fed (at least partly) by
    /// `$_GET` data". Both queries share the same graph build; only the
    /// sink filter differs.
    pub fn query_labeled(&self, class: VulnClass, mask: TaintLabels) -> Vec<QueryHit> {
        self.query_where(|rec| rec.class == class && rec.labels.intersects(mask))
    }

    fn query_where(&self, keep: impl Fn(&SinkRecord) -> bool) -> Vec<QueryHit> {
        phpsafe_obs::count("dataflow.queries", 1);
        let adj = self.adjacency();
        // One stamped visited buffer shared by every sink's BFS: bumping
        // the stamp invalidates the previous search without re-zeroing.
        let mut seen = vec![0u32; self.nodes.len()];
        let mut queue = VecDeque::new();
        let mut stamp = 0u32;
        let mut hits = Vec::new();
        for (seq, rec) in self.sinks.iter().enumerate() {
            if !keep(rec) {
                continue;
            }
            let reachable = match (rec.path.first(), rec.path.last()) {
                (Some(&src), Some(&dst)) => {
                    stamp += 1;
                    reaches(&adj, src, dst, &mut seen, stamp, &mut queue)
                }
                // A sink with an empty path (trace truncated away) is
                // still a recorded hit.
                _ => true,
            };
            if reachable {
                hits.push(QueryHit { seq });
            }
        }
        phpsafe_obs::count("dataflow.path_hits", hits.len() as u64);
        hits
    }

    /// Resolves a sink's provenance path back into concrete steps.
    pub fn resolve_path(&self, rec: &SinkRecord) -> Vec<PathStep> {
        rec.path
            .iter()
            .map(|id| {
                let n = &self.nodes[id.index()];
                PathStep {
                    file: n.file,
                    line: n.line,
                    what: n.what.clone(),
                }
            })
            .collect()
    }

    /// Forward adjacency list over the edge set.
    fn adjacency(&self) -> FnvHashMap<NodeId, Vec<NodeId>> {
        let mut adj: FnvHashMap<NodeId, Vec<NodeId>> = FnvHashMap::default();
        for e in &self.edges {
            adj.entry(e.from).or_default().push(e.to);
        }
        adj
    }

    /// Records the graph's size into the observability registry.
    pub fn record_size(&self) {
        phpsafe_obs::count("dataflow.nodes", self.nodes.len() as u64);
        phpsafe_obs::count("dataflow.edges", self.edges.len() as u64);
    }
}

/// Breadth-first reachability from `from` to `to` over propagation edges
/// (a node trivially reaches itself). `seen`/`queue` are caller-owned
/// scratch; entries stamped with `stamp` count as visited.
fn reaches(
    adj: &FnvHashMap<NodeId, Vec<NodeId>>,
    from: NodeId,
    to: NodeId,
    seen: &mut [u32],
    stamp: u32,
    queue: &mut VecDeque<NodeId>,
) -> bool {
    if from == to {
        return true;
    }
    queue.clear();
    queue.push_back(from);
    seen[from.index()] = stamp;
    while let Some(n) = queue.pop_front() {
        for &next in adj.get(&n).map(Vec::as_slice).unwrap_or_default() {
            if next == to {
                return true;
            }
            if seen[next.index()] != stamp {
                seen[next.index()] = stamp;
                queue.push_back(next);
            }
        }
    }
    false
}
