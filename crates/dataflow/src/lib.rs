//! Whole-program taint graph for one analyzed plugin project.
//!
//! The analyzer's abstract interpreter performs exactly one taint walk per
//! project; with graph mode enabled it carries a [`Recorder`] that turns
//! every observed taint transition (the same stream `--explain` consumes)
//! into a graph node and every reported sink into a [`SinkRecord`] whose
//! provenance path is a sequence of node ids. The finished [`TaintGraph`]
//! is the persistent artifact: each vulnerability class becomes a
//! source→sink reachability query ([`TaintGraph::query`]) with path
//! reconstruction ([`TaintGraph::resolve_path`]), and the recorded event
//! stream can be replayed verbatim ([`TaintGraph::events`]) so `--explain`
//! chains from a warm graph are byte-identical to a fresh walk.
//!
//! Node identity: nodes are appended in walk order, so the node list *is*
//! the event stream (trace-only steps that never produced an event are
//! carried as un-evented nodes and skipped on replay). A first-occurrence
//! site map `(file, line, what) → NodeId` resolves trace steps to nodes,
//! matching how `--explain` anchors a trace step to the first event
//! emitted at the same site.
//!
//! Counters (all under the `dataflow.` prefix): `nodes` / `edges` are
//! recorded when a build finishes, `queries` / `path_hits` on every class
//! query; the analyzer layers `dataflow.builds` / `dataflow.graph_hits`
//! on top.

#![warn(missing_docs)]

mod codec;
mod graph;
mod recorder;

pub use codec::{decode_graph, decode_graph_from, encode_graph, encode_graph_into};
pub use graph::{Edge, EdgeKind, Node, NodeId, PathStep, QueryHit, SinkRecord, TaintGraph};
pub use recorder::{Recorder, SinkInfo};
