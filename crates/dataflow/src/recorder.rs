//! Builds a [`TaintGraph`] as a side effect of one interpreter walk.

use crate::graph::{Edge, EdgeKind, Node, NodeId, SinkRecord, TaintGraph};
use phpsafe_intern::{FnvHashMap, FnvHashSet, Symbol};
use phpsafe_obs::TaintEventKind;
use taint_config::{SourceKind, TaintLabels, VulnClass};

/// The sink-level fields of one reported vulnerability (everything except
/// the provenance path, which the recorder derives itself).
#[derive(Debug, Clone, Copy)]
pub struct SinkInfo<'a> {
    /// Vulnerability class.
    pub class: VulnClass,
    /// File of the sink call.
    pub file: &'a str,
    /// 1-based line of the sink call.
    pub line: u32,
    /// Sink name.
    pub sink: &'a str,
    /// Expression that reached the sink.
    pub var: &'a str,
    /// Where the taint entered.
    pub source_kind: SourceKind,
    /// Every source kind that contributed to the sunk value's class label.
    pub labels: TaintLabels,
    /// Whether the flow passed through an OOP construct.
    pub via_oop: bool,
    /// Whether the sunk expression looks numerically constrained.
    pub numeric_hint: bool,
}

/// Observes the interpreter's taint transitions and sink reports; call
/// [`Recorder::finish`] after the walk for the immutable [`TaintGraph`].
#[derive(Debug, Default)]
pub struct Recorder {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    edge_seen: FnvHashSet<(NodeId, NodeId)>,
    sinks: Vec<SinkRecord>,
    /// Nodes observed at each `(file, line)` site, in walk order. Bucket
    /// entries disambiguate by node text on lookup, so the first node with
    /// a matching `what` — the anchor `--explain` would pick for a trace
    /// step at the same site — wins without cloning the text into a key
    /// on the hot observe path.
    site: FnvHashMap<(Symbol, u32), Vec<NodeId>>,
}

impl Recorder {
    /// An empty recorder.
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// Records one emitted taint event as a graph node. Must be called in
    /// walk order at exactly the sites that emit `--explain` events, so
    /// the node list replays as that event stream.
    pub fn observe(
        &mut self,
        kind: TaintEventKind,
        file: Symbol,
        line: u32,
        what: &str,
        expr: Option<u32>,
    ) {
        self.push_node(kind, file, line, what, expr, true);
    }

    fn push_node(
        &mut self,
        kind: TaintEventKind,
        file: Symbol,
        line: u32,
        what: &str,
        expr: Option<u32>,
        evented: bool,
    ) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            kind,
            file,
            line,
            what: what.to_string(),
            expr,
            evented,
        });
        let nodes = &self.nodes;
        let bucket = self.site.entry((file, line)).or_default();
        if !bucket.iter().any(|&b| nodes[b.index()].what == what) {
            bucket.push(id);
        }
        id
    }

    /// The node anchored at a trace step's site, creating an un-evented
    /// node for steps that never emitted an event (e.g. `new C`).
    fn site_node(&mut self, file: Symbol, line: u32, what: &str) -> NodeId {
        if let Some(bucket) = self.site.get(&(file, line)) {
            if let Some(&id) = bucket.iter().find(|&&b| self.nodes[b.index()].what == what) {
                return id;
            }
        }
        self.push_node(TaintEventKind::Propagated, file, line, what, None, false)
    }

    /// Records one reported sink: resolves the vulnerability's data-flow
    /// trace into path nodes and adds propagation edges along the path.
    pub fn record_sink<'a>(
        &mut self,
        info: SinkInfo<'_>,
        steps: impl Iterator<Item = (Symbol, u32, &'a str)>,
    ) {
        let path: Vec<NodeId> = steps
            .map(|(file, line, what)| self.site_node(file, line, what))
            .collect();
        for pair in path.windows(2) {
            let (from, to) = (pair[0], pair[1]);
            if self.edge_seen.insert((from, to)) {
                let kind = EdgeKind::classify(&self.nodes[to.index()].what);
                self.edges.push(Edge { from, to, kind });
            }
        }
        self.sinks.push(SinkRecord {
            class: info.class,
            file: info.file.to_string(),
            line: info.line,
            sink: info.sink.to_string(),
            var: info.var.to_string(),
            source_kind: info.source_kind,
            labels: info.labels,
            via_oop: info.via_oop,
            numeric_hint: info.numeric_hint,
            path,
        });
    }

    /// Number of sinks recorded so far (a truncation mark).
    pub fn sinks_len(&self) -> usize {
        self.sinks.len()
    }

    /// Drops sinks recorded after `len` — mirrors the analyzer dropping
    /// findings from a failed entry-file pass. Nodes and edges stay: the
    /// corresponding events were emitted and must replay.
    pub fn truncate_sinks(&mut self, len: usize) {
        self.sinks.truncate(len);
    }

    /// Keeps only sinks whose file passes `keep` — mirrors the analyzer
    /// dropping findings from failed or rejected files.
    pub fn retain_sinks(&mut self, keep: impl Fn(&str) -> bool) {
        self.sinks.retain(|s| keep(&s.file));
    }

    /// Finalizes the graph and records `dataflow.nodes` / `dataflow.edges`.
    pub fn finish(self) -> TaintGraph {
        let graph = TaintGraph {
            nodes: self.nodes,
            edges: self.edges,
            sinks: self.sinks,
        };
        graph.record_size();
        graph
    }
}
