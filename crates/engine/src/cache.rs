//! Keyed artifact caches with hit/miss accounting.
//!
//! [`ArtifactCache`] stores `Arc`-shared artifacts behind a mutex and is
//! safe to share across worker threads. The analyzer uses it for parsed
//! ASTs keyed by [`crate::ContentKey`] (one parse per distinct file
//! content across all tools and versions) and for per-tool function
//! summaries. Counters are atomic so statistics can be read while workers
//! are still running.

use phpsafe_intern::FnvHashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Snapshot of a cache's lookup counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheCounters {
    pub hits: u64,
    pub misses: u64,
}

impl CacheCounters {
    /// Total lookups (hits + misses).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups served from the cache; 0 when never queried.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }

    /// Sums two snapshots (e.g. parse cache across engine runs).
    pub fn merged(&self, other: &CacheCounters) -> CacheCounters {
        CacheCounters {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
        }
    }
}

/// A thread-safe, `Arc`-sharing, hit/miss-counting map from keys to
/// immutable artifacts.
pub struct ArtifactCache<K, V> {
    map: Mutex<FnvHashMap<K, Arc<V>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    generation: AtomicU64,
}

impl<K: Eq + Hash, V> Default for ArtifactCache<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash, V> ArtifactCache<K, V> {
    pub fn new() -> Self {
        ArtifactCache {
            map: Mutex::new(FnvHashMap::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            generation: AtomicU64::new(0),
        }
    }

    /// Looks `key` up, counting a hit or miss.
    pub fn get(&self, key: &K) -> Option<Arc<V>> {
        let found = self.map.lock().unwrap().get(key).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Looks `key` up without touching the hit/miss counters. For
    /// coordinator-side "is it there yet?" checks (e.g. merging
    /// pre-computed artifacts) that must not distort cache statistics.
    pub fn peek(&self, key: &K) -> Option<Arc<V>> {
        self.map.lock().unwrap().get(key).cloned()
    }

    /// Stores an artifact, returning the shared handle. If another worker
    /// raced us to the key, their artifact wins (callers must produce
    /// equivalent artifacts for equal keys).
    pub fn insert(&self, key: K, value: V) -> Arc<V> {
        let mut map = self.map.lock().unwrap();
        match map.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => e.get().clone(),
            std::collections::hash_map::Entry::Vacant(e) => {
                self.generation.fetch_add(1, Ordering::Relaxed);
                e.insert(Arc::new(value)).clone()
            }
        }
    }

    /// Cached lookup around `build`. Returns the artifact and whether it
    /// was served from the cache. `build` runs outside the lock so an
    /// expensive miss (a parse) never blocks other workers' hits.
    pub fn get_or_build(&self, key: K, build: impl FnOnce() -> V) -> (Arc<V>, bool) {
        if let Some(found) = self.get(&key) {
            return (found, true);
        }
        let built = build();
        (self.insert(key, built), false)
    }

    /// Monotonic count of entries ever stored. Two equal readings with no
    /// intervening `insert` guarantee identical contents, so persistence
    /// layers can skip re-serializing a cache that has not grown.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Current counter snapshot.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Clones out the current `(key, artifact)` pairs. Used by the
    /// persistence layer to serialize a cache; the lock is held only for
    /// the copy, never during encoding.
    pub fn entries(&self) -> Vec<(K, Arc<V>)>
    where
        K: Clone,
    {
        self.map
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Number of stored artifacts.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_and_misses_are_counted() {
        let cache: ArtifactCache<u64, String> = ArtifactCache::new();
        assert!(cache.get(&1).is_none());
        cache.insert(1, "one".to_string());
        assert_eq!(cache.get(&1).as_deref().map(String::as_str), Some("one"));
        assert!(cache.get(&2).is_none());
        let c = cache.counters();
        assert_eq!((c.hits, c.misses), (1, 2));
        assert_eq!(c.lookups(), 3);
    }

    #[test]
    fn accounting_invariant_hits_plus_misses_is_lookups() {
        let cache: ArtifactCache<u64, u64> = ArtifactCache::new();
        for i in 0..100u64 {
            let (_v, _hit) = cache.get_or_build(i % 7, || i);
        }
        let c = cache.counters();
        assert_eq!(c.hits + c.misses, c.lookups());
        assert_eq!(c.lookups(), 100);
        assert_eq!(c.misses, 7, "one miss per distinct key");
        assert_eq!(cache.len(), 7);
    }

    #[test]
    fn get_or_build_shares_one_artifact() {
        let cache: ArtifactCache<&'static str, Vec<u32>> = ArtifactCache::new();
        let (a, hit_a) = cache.get_or_build("k", || vec![1, 2, 3]);
        let (b, hit_b) = cache.get_or_build("k", || unreachable!("must be cached"));
        assert!(!hit_a);
        assert!(hit_b);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn generation_moves_only_on_new_entries() {
        let cache: ArtifactCache<u64, u64> = ArtifactCache::new();
        assert_eq!(cache.generation(), 0);
        cache.insert(1, 10);
        cache.insert(2, 20);
        assert_eq!(cache.generation(), 2);
        cache.insert(1, 99); // duplicate key: first writer wins, no growth
        cache.get(&1);
        cache.get(&404);
        assert_eq!(cache.generation(), 2);
        cache.get_or_build(3, || 30);
        assert_eq!(cache.generation(), 3);
    }

    #[test]
    fn hit_rate_bounds() {
        let c = CacheCounters { hits: 3, misses: 1 };
        assert!((c.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheCounters::default().hit_rate(), 0.0);
    }

    #[test]
    fn concurrent_use_is_consistent() {
        let cache: ArtifactCache<u64, u64> = ArtifactCache::new();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let cache = &cache;
                s.spawn(move || {
                    for i in 0..50 {
                        cache.get_or_build(i % 5, || t * 1000 + i);
                    }
                });
            }
        });
        let c = cache.counters();
        assert_eq!(c.lookups(), 200);
        assert_eq!(cache.len(), 5);
    }
}
