//! File-level dependency graph for incremental invalidation.
//!
//! [`DepGraph`] records which files of a project depend on which others —
//! nodes are file paths, edges are `include`/`require` targets and
//! cross-file call/summary uses discovered during model construction. The
//! daemon uses it to answer the only question incrementality needs:
//! *given these dirty files, which files could produce different analysis
//! results?* ([`DepGraph::dependents_of`] — the dirty set plus its
//! transitive dependents, walking reverse edges).
//!
//! The graph is deliberately file-granular and config-independent: it is
//! built from the parsed ASTs and the symbol table alone, so one graph per
//! project content key serves every tool and fingerprint. It serializes
//! into the [`DiskCache`](crate::DiskCache) under its own `depgraph`
//! namespace alongside `ast`/`summary`/`outcome`/`graph`, with the same
//! corruption-tolerant envelope semantics.
//!
//! Like the rest of the engine layer, this module knows nothing about PHP:
//! the analyzer crate extracts the edges (it owns the AST), the engine
//! owns the graph, its closure query and its wire format.

use std::collections::{BTreeSet, HashMap};

/// A file-level dependency graph: `A -> B` means *A depends on B* (A
/// includes B, or calls/uses a symbol declared in B), so an edit to B
/// invalidates A.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct DepGraph {
    /// Node id -> file path, in insertion order.
    files: Vec<String>,
    /// File path -> node id.
    index: HashMap<String, usize>,
    /// `deps[i]` = nodes that `i` depends on (forward edges).
    deps: Vec<BTreeSet<usize>>,
    /// `rdeps[i]` = nodes that depend on `i` (reverse edges).
    rdeps: Vec<BTreeSet<usize>>,
}

impl DepGraph {
    /// An empty graph.
    pub fn new() -> DepGraph {
        DepGraph::default()
    }

    /// Ensures `path` is a node and returns its id.
    pub fn add_file(&mut self, path: &str) -> usize {
        if let Some(&id) = self.index.get(path) {
            return id;
        }
        let id = self.files.len();
        self.files.push(path.to_owned());
        self.index.insert(path.to_owned(), id);
        self.deps.push(BTreeSet::new());
        self.rdeps.push(BTreeSet::new());
        id
    }

    /// Records that `from` depends on `to` (both become nodes if new).
    /// Self-edges are dropped — a file trivially invalidates itself.
    pub fn add_edge(&mut self, from: &str, to: &str) {
        let f = self.add_file(from);
        let t = self.add_file(to);
        if f == t {
            return;
        }
        self.deps[f].insert(t);
        self.rdeps[t].insert(f);
    }

    /// Number of files.
    pub fn node_count(&self) -> usize {
        self.files.len()
    }

    /// Number of dependency edges.
    pub fn edge_count(&self) -> usize {
        self.deps.iter().map(BTreeSet::len).sum()
    }

    /// All node paths, in insertion order.
    pub fn files(&self) -> impl Iterator<Item = &str> {
        self.files.iter().map(String::as_str)
    }

    /// The files `path` directly depends on, sorted.
    pub fn deps_of(&self, path: &str) -> Vec<&str> {
        match self.index.get(path) {
            Some(&id) => self.deps[id]
                .iter()
                .map(|&d| self.files[d].as_str())
                .collect(),
            None => Vec::new(),
        }
    }

    /// The affected set of an edit: every dirty file plus the transitive
    /// closure of its dependents (files that include or call into a dirty
    /// file, directly or through any chain). Sorted and deduplicated;
    /// dirty paths the graph has never seen are passed through unchanged —
    /// a brand-new file can have dependents only after the next build.
    pub fn dependents_of<S: AsRef<str>>(&self, dirty: &[S]) -> Vec<String> {
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        let mut unknown: BTreeSet<&str> = BTreeSet::new();
        let mut stack: Vec<usize> = Vec::new();
        for d in dirty {
            match self.index.get(d.as_ref()) {
                Some(&id) => {
                    if seen.insert(id) {
                        stack.push(id);
                    }
                }
                None => {
                    unknown.insert(d.as_ref());
                }
            }
        }
        while let Some(id) = stack.pop() {
            for &r in &self.rdeps[id] {
                if seen.insert(r) {
                    stack.push(r);
                }
            }
        }
        let mut out: Vec<String> = seen.iter().map(|&id| self.files[id].clone()).collect();
        out.extend(unknown.iter().map(|s| (*s).to_owned()));
        out.sort();
        out
    }

    /// Serializes the graph into a deterministic byte stream for the disk
    /// cache: a magic/version header, the path table, then each node's
    /// forward edge list (reverse edges are rebuilt on decode).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"PDG1");
        out.extend_from_slice(&(self.files.len() as u32).to_le_bytes());
        for path in &self.files {
            out.extend_from_slice(&(path.len() as u32).to_le_bytes());
            out.extend_from_slice(path.as_bytes());
        }
        for deps in &self.deps {
            out.extend_from_slice(&(deps.len() as u32).to_le_bytes());
            for &d in deps {
                out.extend_from_slice(&(d as u32).to_le_bytes());
            }
        }
        out
    }

    /// Decodes a graph written by [`DepGraph::encode`]. Any structural
    /// problem is an error so a damaged cache entry degrades to a rebuild.
    pub fn decode(bytes: &[u8]) -> Result<DepGraph, String> {
        fn take<'a>(bytes: &'a [u8], at: &mut usize, n: usize) -> Result<&'a [u8], String> {
            let end = at
                .checked_add(n)
                .filter(|&e| e <= bytes.len())
                .ok_or_else(|| "truncated depgraph".to_owned())?;
            let s = &bytes[*at..end];
            *at = end;
            Ok(s)
        }
        fn take_u32(bytes: &[u8], at: &mut usize) -> Result<u32, String> {
            Ok(u32::from_le_bytes(take(bytes, at, 4)?.try_into().unwrap()))
        }
        let mut at = 0usize;
        if take(bytes, &mut at, 4)? != b"PDG1" {
            return Err("bad depgraph magic".to_owned());
        }
        let n = take_u32(bytes, &mut at)? as usize;
        let mut g = DepGraph::new();
        for _ in 0..n {
            let len = take_u32(bytes, &mut at)? as usize;
            let path = std::str::from_utf8(take(bytes, &mut at, len)?)
                .map_err(|_| "non-UTF-8 path".to_owned())?;
            if g.index.contains_key(path) {
                return Err("duplicate path".to_owned());
            }
            g.add_file(path);
        }
        for from in 0..n {
            let deg = take_u32(bytes, &mut at)? as usize;
            for _ in 0..deg {
                let to = take_u32(bytes, &mut at)? as usize;
                if to >= n {
                    return Err("edge target out of range".to_owned());
                }
                if from != to {
                    g.deps[from].insert(to);
                    g.rdeps[to].insert(from);
                }
            }
        }
        if at != bytes.len() {
            return Err("trailing depgraph bytes".to_owned());
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// a -> b -> c (a includes b, b includes c), d isolated.
    fn diamond() -> DepGraph {
        let mut g = DepGraph::new();
        g.add_edge("a.php", "b.php");
        g.add_edge("b.php", "c.php");
        g.add_file("d.php");
        g
    }

    #[test]
    fn dependents_walk_reverse_edges_transitively() {
        let g = diamond();
        // Editing c invalidates b (includes c) and a (includes b).
        assert_eq!(g.dependents_of(&["c.php"]), ["a.php", "b.php", "c.php"]);
        // Editing a invalidates only a: nothing depends on it.
        assert_eq!(g.dependents_of(&["a.php"]), ["a.php"]);
        // An isolated file invalidates only itself.
        assert_eq!(g.dependents_of(&["d.php"]), ["d.php"]);
    }

    #[test]
    fn unknown_dirty_paths_pass_through() {
        let g = diamond();
        assert_eq!(g.dependents_of(&["new.php"]), ["new.php"]);
        let mixed = g.dependents_of(&["new.php", "c.php"]);
        assert_eq!(mixed, ["a.php", "b.php", "c.php", "new.php"]);
    }

    #[test]
    fn cycles_terminate() {
        let mut g = DepGraph::new();
        g.add_edge("x.php", "y.php");
        g.add_edge("y.php", "x.php");
        assert_eq!(g.dependents_of(&["x.php"]), ["x.php", "y.php"]);
    }

    #[test]
    fn self_edges_are_dropped() {
        let mut g = DepGraph::new();
        g.add_edge("a.php", "a.php");
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.node_count(), 1);
    }

    #[test]
    fn encode_decode_round_trips() {
        let g = diamond();
        let decoded = DepGraph::decode(&g.encode()).unwrap();
        assert_eq!(decoded, g);
        assert_eq!(decoded.edge_count(), 2);
        assert_eq!(
            decoded.dependents_of(&["c.php"]),
            g.dependents_of(&["c.php"])
        );
    }

    #[test]
    fn encode_is_deterministic_across_insertion_orders_of_edges() {
        let mut g1 = DepGraph::new();
        g1.add_file("a.php");
        g1.add_file("b.php");
        g1.add_file("c.php");
        g1.add_edge("a.php", "b.php");
        g1.add_edge("a.php", "c.php");
        let mut g2 = DepGraph::new();
        g2.add_file("a.php");
        g2.add_file("b.php");
        g2.add_file("c.php");
        g2.add_edge("a.php", "c.php");
        g2.add_edge("a.php", "b.php");
        assert_eq!(g1.encode(), g2.encode());
    }

    #[test]
    fn damaged_bytes_are_rejected() {
        let good = diamond().encode();
        assert!(DepGraph::decode(&good[..good.len() - 1]).is_err());
        assert!(DepGraph::decode(b"XXXX").is_err());
        let mut bad_edge = good.clone();
        let last = bad_edge.len() - 4;
        bad_edge[last..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(DepGraph::decode(&bad_edge).is_err());
        assert!(DepGraph::decode(&[]).is_err());
    }
}
