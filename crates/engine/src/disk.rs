//! Persistent on-disk artifact cache.
//!
//! [`DiskCache`] is the durable tier behind the in-memory
//! [`ArtifactCache`](crate::ArtifactCache)s: artifacts (serialized ASTs,
//! call-summary blobs, rendered analysis outcomes) survive the process, so
//! a fresh daemon — or a batch CLI run pointed at the same `--cache-dir` —
//! warm-starts from a prior run instead of repaying the full parse/analyze
//! cost.
//!
//! The cache never trusts its own files. Every entry is wrapped in a
//! versioned envelope carrying the format version, the writing crate's
//! version, the caller's configuration fingerprint, the content key and an
//! FNV-1a digest of the payload. A load re-validates all of them:
//!
//! * a **stale** entry (format/crate-version/fingerprint/key mismatch) is
//!   evicted — counted in `diskcache.evicted` with a log line;
//! * a **corrupt** entry (truncation, bad magic, digest mismatch) is
//!   removed — counted in `diskcache.corrupt` with a log line;
//!
//! and either way the load reports a miss, so the caller falls back to
//! re-parsing/re-analyzing. Decoding failures *above* the envelope (the
//! payload bytes don't deserialize) are reported back through
//! [`DiskCache::note_corrupt`] and handled the same way.
//!
//! Stores are atomic: the entry is written to a temporary file in the same
//! directory and `rename`d into place, so concurrent readers and a crashed
//! writer can never observe a half-written entry.

use crate::hash::{fnv1a_64, ContentKey};
use std::collections::HashMap;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Magic bytes opening every cache entry.
const MAGIC: &[u8; 4] = b"PSC1";

/// Bumped whenever the envelope layout changes; older entries are evicted.
const FORMAT_VERSION: u32 = 1;

/// Version of the writing crate; payload encodings may change between
/// releases without bumping [`FORMAT_VERSION`], so entries written by a
/// different build are evicted wholesale.
const CRATE_VERSION: &str = env!("CARGO_PKG_VERSION");

/// Snapshot of a disk cache's operation counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DiskCounters {
    /// Loads that returned a validated payload.
    pub hits: u64,
    /// Loads that found no entry.
    pub misses: u64,
    /// Entries written.
    pub stores: u64,
    /// Entries dropped because the envelope or payload failed its digest
    /// or structural check.
    pub corrupt: u64,
    /// Entries dropped because the format version, crate version or
    /// configuration fingerprint no longer matches.
    pub evicted: u64,
    /// Envelope bytes read from disk (all successful reads, including
    /// entries later dropped as stale/corrupt).
    pub bytes_read: u64,
    /// Envelope bytes written to disk.
    pub bytes_written: u64,
    /// Stores that failed to land on disk (I/O errors degrade to a
    /// warning, never into the analysis result).
    pub store_failed: u64,
    /// Hits served through a memory mapping instead of a buffered read
    /// (see [`DiskCache::load_mapped`]).
    pub mmap_loads: u64,
}

/// A persistent, content-addressed artifact store rooted at one directory.
///
/// Entries live under `<root>/<namespace>/<hash>-<len>.psc`; the namespace
/// separates artifact kinds (`"ast"`, `"summary"`, `"outcome"`) that share
/// a content key space. All operations are infallible at the API level:
/// I/O errors degrade to misses (with a warning on stderr), never into the
/// analysis result.
pub struct DiskCache {
    root: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    corrupt: AtomicU64,
    evicted: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    store_failed: AtomicU64,
    mmap_loads: AtomicU64,
    tmp_seq: AtomicU64,
    /// Bytes on disk per namespace, seeded by a directory scan at open
    /// and maintained on every store/evict; published as the
    /// `diskcache.bytes_on_disk.<ns>` gauge family — the bookkeeping a
    /// size-bounded eviction policy needs.
    ns_bytes: Mutex<HashMap<String, u64>>,
}

impl DiskCache {
    /// Opens (creating if needed) a cache rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<DiskCache> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        let ns_bytes = scan_ns_bytes(&root);
        for (ns, total) in &ns_bytes {
            phpsafe_obs::gauge(&format!("diskcache.bytes_on_disk.{ns}"), *total);
        }
        Ok(DiskCache {
            root,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            store_failed: AtomicU64::new(0),
            mmap_loads: AtomicU64::new(0),
            tmp_seq: AtomicU64::new(0),
            ns_bytes: Mutex::new(ns_bytes),
        })
    }

    /// The cache's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Current operation counters.
    pub fn counters(&self) -> DiskCounters {
        DiskCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            store_failed: self.store_failed.load(Ordering::Relaxed),
            mmap_loads: self.mmap_loads.load(Ordering::Relaxed),
        }
    }

    /// Bytes currently on disk per namespace, sorted by namespace. Seeded
    /// by the open-time scan and maintained on store/evict; concurrent
    /// external writers can skew it until the next open.
    pub fn bytes_on_disk(&self) -> Vec<(String, u64)> {
        let map = self.ns_bytes.lock().unwrap();
        let mut out: Vec<(String, u64)> = map.iter().map(|(k, v)| (k.clone(), *v)).collect();
        out.sort();
        out
    }

    /// Applies a size delta to one namespace's on-disk accounting and
    /// republishes its gauge.
    fn adjust_ns_bytes(&self, ns: &str, grew: u64, shrank: u64) {
        let mut map = self.ns_bytes.lock().unwrap();
        let slot = map.entry(ns.to_owned()).or_insert(0);
        *slot = slot.saturating_add(grew).saturating_sub(shrank);
        phpsafe_obs::gauge(&format!("diskcache.bytes_on_disk.{ns}"), *slot);
    }

    fn entry_path(&self, ns: &str, key: ContentKey) -> PathBuf {
        self.root
            .join(ns)
            .join(format!("{:016x}-{:x}.psc", key.hash, key.len))
    }

    /// Loads and validates the entry for `(ns, key)`; `fingerprint` must
    /// match the one the entry was stored with (configuration changes
    /// silently invalidate everything written under the old fingerprint).
    /// Returns the payload bytes, or `None` on miss/stale/corrupt.
    pub fn load(&self, ns: &str, key: ContentKey, fingerprint: u64) -> Option<Vec<u8>> {
        let started = std::time::Instant::now();
        let path = self.entry_path(ns, key);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                phpsafe_obs::count("diskcache.misses", 1);
                return None;
            }
            Err(e) => {
                eprintln!(
                    "phpsafe: warning: disk cache read failed for {}: {e}",
                    path.display()
                );
                self.misses.fetch_add(1, Ordering::Relaxed);
                phpsafe_obs::count("diskcache.misses", 1);
                return None;
            }
        };
        self.bytes_read
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        phpsafe_obs::count("diskcache.bytes_read", bytes.len() as u64);
        let payload = match validate_envelope(&bytes, ns, key, fingerprint) {
            Ok(p) => p.to_vec(),
            Err(reason) => {
                self.drop_entry(&path, reason);
                self.misses.fetch_add(1, Ordering::Relaxed);
                phpsafe_obs::count("diskcache.misses", 1);
                return None;
            }
        };
        self.hits.fetch_add(1, Ordering::Relaxed);
        phpsafe_obs::count("diskcache.hits", 1);
        phpsafe_obs::time("diskcache.load", started.elapsed());
        Some(payload)
    }

    /// Like [`DiskCache::load`], but serves the payload through a private
    /// read-only memory mapping of the entry file when the platform
    /// supports it — the envelope is validated in place and the returned
    /// [`LoadedPayload`] borrows the mapping instead of copying the bytes
    /// into the heap. Any mapping failure falls back to the buffered read
    /// path, so callers see identical semantics everywhere. Mapped hits
    /// are counted as `diskcache.mmap_loads` on top of the usual
    /// hit/miss/bytes accounting.
    pub fn load_mapped(
        &self,
        ns: &str,
        key: ContentKey,
        fingerprint: u64,
    ) -> Option<LoadedPayload> {
        #[cfg(unix)]
        {
            let started = std::time::Instant::now();
            let path = self.entry_path(ns, key);
            match MappedFile::map(&path) {
                Ok(Some(file)) => {
                    let bytes: &[u8] = file.as_ref();
                    self.bytes_read
                        .fetch_add(bytes.len() as u64, Ordering::Relaxed);
                    phpsafe_obs::count("diskcache.bytes_read", bytes.len() as u64);
                    return match validate_envelope(bytes, ns, key, fingerprint) {
                        Ok(payload) => {
                            let offset = payload.as_ptr() as usize - bytes.as_ptr() as usize;
                            let len = payload.len();
                            self.hits.fetch_add(1, Ordering::Relaxed);
                            self.mmap_loads.fetch_add(1, Ordering::Relaxed);
                            phpsafe_obs::count("diskcache.hits", 1);
                            phpsafe_obs::count("diskcache.mmap_loads", 1);
                            phpsafe_obs::time("diskcache.load", started.elapsed());
                            Some(LoadedPayload::Mapped {
                                file: Arc::new(file),
                                offset,
                                len,
                            })
                        }
                        Err(reason) => {
                            self.drop_entry(&path, reason);
                            self.misses.fetch_add(1, Ordering::Relaxed);
                            phpsafe_obs::count("diskcache.misses", 1);
                            None
                        }
                    };
                }
                Ok(None) => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    phpsafe_obs::count("diskcache.misses", 1);
                    return None;
                }
                Err(_) => {
                    // Mapping failed (permissions, exotic filesystem,
                    // zero-length file): degrade to the read path below.
                }
            }
        }
        self.load(ns, key, fingerprint).map(LoadedPayload::Owned)
    }

    /// Atomically stores `payload` for `(ns, key, fingerprint)`. Returns
    /// whether the entry landed on disk; failures only warn — the caller's
    /// in-memory artifact is unaffected.
    pub fn store(&self, ns: &str, key: ContentKey, fingerprint: u64, payload: &[u8]) -> bool {
        let started = std::time::Instant::now();
        let path = self.entry_path(ns, key);
        let dir = path.parent().expect("entry path has a namespace parent");
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!(
                "phpsafe: warning: cannot create cache dir {}: {e}",
                dir.display()
            );
            self.store_failed.fetch_add(1, Ordering::Relaxed);
            phpsafe_obs::count("diskcache.store_failed", 1);
            return false;
        }
        let seq = self.tmp_seq.fetch_add(1, Ordering::Relaxed);
        let tmp = dir.join(format!(
            ".{:016x}-{:x}.tmp.{}.{seq}",
            key.hash,
            key.len,
            std::process::id()
        ));
        let bytes = seal_envelope(ns, key, fingerprint, payload);
        // A successful rename replaces any prior entry at `path`; its size
        // must leave the namespace accounting as the new one enters.
        let replaced = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        let written = std::fs::File::create(&tmp)
            .and_then(|mut f| f.write_all(&bytes))
            .and_then(|()| std::fs::rename(&tmp, &path));
        match written {
            Ok(()) => {
                self.stores.fetch_add(1, Ordering::Relaxed);
                self.bytes_written
                    .fetch_add(bytes.len() as u64, Ordering::Relaxed);
                phpsafe_obs::count("diskcache.stores", 1);
                phpsafe_obs::count("diskcache.bytes_written", bytes.len() as u64);
                phpsafe_obs::time("diskcache.store", started.elapsed());
                self.adjust_ns_bytes(ns, bytes.len() as u64, replaced);
                true
            }
            Err(e) => {
                eprintln!(
                    "phpsafe: warning: disk cache write failed for {}: {e}",
                    path.display()
                );
                let _ = std::fs::remove_file(&tmp);
                self.store_failed.fetch_add(1, Ordering::Relaxed);
                phpsafe_obs::count("diskcache.store_failed", 1);
                false
            }
        }
    }

    /// Reports that a payload [`load`](DiskCache::load) returned could not
    /// be decoded by the caller: the entry is counted corrupt and removed,
    /// exactly as if the envelope digest had failed.
    pub fn note_corrupt(&self, ns: &str, key: ContentKey) {
        // The hit the failed load counted stands; the decode failure is
        // what gets surfaced.
        self.drop_entry(
            &self.entry_path(ns, key),
            EntryFault::Corrupt("payload decode"),
        );
    }

    fn drop_entry(&self, path: &Path, fault: EntryFault) {
        let what = match fault {
            EntryFault::Corrupt(why) => {
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                phpsafe_obs::count("diskcache.corrupt", 1);
                why
            }
            EntryFault::Stale(why) => {
                self.evicted.fetch_add(1, Ordering::Relaxed);
                phpsafe_obs::count("diskcache.evicted", 1);
                why
            }
        };
        eprintln!(
            "phpsafe: warning: dropping cache entry {} ({what}); falling back to re-analysis",
            path.display()
        );
        let size = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        if std::fs::remove_file(path).is_ok() && size > 0 {
            if let Some(ns) = path
                .parent()
                .and_then(|p| p.file_name())
                .and_then(|n| n.to_str())
            {
                self.adjust_ns_bytes(ns, 0, size);
            }
        }
    }
}

/// Sums the `.psc` entry sizes under every namespace directory of `root`.
fn scan_ns_bytes(root: &Path) -> HashMap<String, u64> {
    let mut out = HashMap::new();
    let Ok(entries) = std::fs::read_dir(root) else {
        return out;
    };
    for ns_dir in entries.flatten() {
        let path = ns_dir.path();
        if !path.is_dir() {
            continue;
        }
        let Ok(ns) = ns_dir.file_name().into_string() else {
            continue;
        };
        let mut total = 0u64;
        if let Ok(files) = std::fs::read_dir(&path) {
            for f in files.flatten() {
                let p = f.path();
                if p.extension().is_some_and(|e| e == "psc") {
                    total += f.metadata().map(|m| m.len()).unwrap_or(0);
                }
            }
        }
        out.insert(ns, total);
    }
    out
}

/// A private read-only memory mapping of one cache entry file, unmapped on
/// drop. The mapping stays valid even if the entry is concurrently
/// replaced (rename) or evicted (unlink): both leave the mapped inode
/// alive until the last mapping goes away.
pub struct MappedFile {
    ptr: *mut core::ffi::c_void,
    len: usize,
}

// The mapping is immutable for its whole lifetime, so shared access from
// any thread is safe.
unsafe impl Send for MappedFile {}
unsafe impl Sync for MappedFile {}

impl AsRef<[u8]> for MappedFile {
    fn as_ref(&self) -> &[u8] {
        // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len`
        // bytes, established in `map` and released only in `drop`.
        unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
    }
}

impl Drop for MappedFile {
    fn drop(&mut self) {
        #[cfg(unix)]
        // SAFETY: `ptr`/`len` describe the mapping returned by `mmap`.
        unsafe {
            sys::munmap(self.ptr, self.len);
        }
    }
}

impl MappedFile {
    /// Maps `path` read-only. `Ok(None)` means the file does not exist (a
    /// clean miss); `Err` means mapping is unavailable here and the caller
    /// should fall back to a buffered read.
    #[cfg(unix)]
    fn map(path: &Path) -> io::Result<Option<MappedFile>> {
        use std::os::unix::io::AsRawFd;
        let file = match std::fs::File::open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        let len = file.metadata()?.len() as usize;
        if len == 0 {
            // mmap rejects zero-length mappings; the read path handles the
            // (always-corrupt) empty entry.
            return Err(io::Error::new(io::ErrorKind::InvalidData, "empty entry"));
        }
        // SAFETY: a fresh anonymous-address PROT_READ/MAP_PRIVATE mapping
        // over the open fd; the result is checked against MAP_FAILED.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == sys::MAP_FAILED {
            return Err(io::Error::last_os_error());
        }
        Ok(Some(MappedFile { ptr, len }))
    }
}

/// Raw libc bindings for the mapping syscalls — the workspace is
/// dependency-free by policy, so the two symbols are declared directly.
#[cfg(unix)]
mod sys {
    use core::ffi::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

/// A validated cache payload from [`DiskCache::load_mapped`]: either a
/// window into a live memory mapping (zero-copy) or owned bytes from the
/// read-path fallback.
pub enum LoadedPayload {
    /// `len` payload bytes starting at `offset` inside the mapped entry.
    Mapped {
        /// The mapping keeping the bytes alive.
        file: Arc<MappedFile>,
        /// Payload start inside the mapping.
        offset: usize,
        /// Payload length in bytes.
        len: usize,
    },
    /// Owned payload bytes (platforms or errors where mapping is
    /// unavailable).
    Owned(Vec<u8>),
}

impl LoadedPayload {
    /// The payload bytes, regardless of backing.
    pub fn as_slice(&self) -> &[u8] {
        match self {
            LoadedPayload::Mapped { file, offset, len } => {
                &file.as_ref().as_ref()[*offset..offset + len]
            }
            LoadedPayload::Owned(v) => v,
        }
    }

    /// Whether the payload is served from a memory mapping.
    pub fn is_mapped(&self) -> bool {
        matches!(self, LoadedPayload::Mapped { .. })
    }
}

/// Why an entry was dropped.
enum EntryFault {
    /// The bytes are damaged (truncation, bad magic, digest mismatch).
    Corrupt(&'static str),
    /// The bytes are intact but written under a different format/crate
    /// version or configuration fingerprint.
    Stale(&'static str),
}

fn seal_envelope(ns: &str, key: ContentKey, fingerprint: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 64 + ns.len() + CRATE_VERSION.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.push(CRATE_VERSION.len() as u8);
    out.extend_from_slice(CRATE_VERSION.as_bytes());
    out.push(ns.len() as u8);
    out.extend_from_slice(ns.as_bytes());
    out.extend_from_slice(&fingerprint.to_le_bytes());
    out.extend_from_slice(&key.hash.to_le_bytes());
    out.extend_from_slice(&key.len.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a_64(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// A bounds-checked cursor over envelope bytes; running past the end is a
/// corruption, never a panic.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], EntryFault> {
        let end = self
            .at
            .checked_add(n)
            .ok_or(EntryFault::Corrupt("length overflow"))?;
        let slice = self
            .bytes
            .get(self.at..end)
            .ok_or(EntryFault::Corrupt("truncated envelope"))?;
        self.at = end;
        Ok(slice)
    }

    fn take_u32(&mut self) -> Result<u32, EntryFault> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn take_u64(&mut self) -> Result<u64, EntryFault> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
}

/// Checks every field of the envelope; returns the payload slice on
/// success and the reason the entry must be dropped otherwise.
fn validate_envelope<'a>(
    bytes: &'a [u8],
    ns: &str,
    key: ContentKey,
    fingerprint: u64,
) -> Result<&'a [u8], EntryFault> {
    use EntryFault::{Corrupt, Stale};
    let mut c = Cursor { bytes, at: 0 };
    if c.take(4)? != MAGIC {
        return Err(Corrupt("bad magic"));
    }
    if c.take_u32()? != FORMAT_VERSION {
        return Err(Stale("format version mismatch"));
    }
    let ver_len = c.take(1)?[0] as usize;
    if c.take(ver_len)? != CRATE_VERSION.as_bytes() {
        return Err(Stale("crate version mismatch"));
    }
    let ns_len = c.take(1)?[0] as usize;
    if c.take(ns_len)? != ns.as_bytes() {
        return Err(Stale("namespace mismatch"));
    }
    if c.take_u64()? != fingerprint {
        return Err(Stale("configuration fingerprint mismatch"));
    }
    if c.take_u64()? != key.hash || c.take_u64()? != key.len {
        return Err(Corrupt("content key mismatch"));
    }
    let payload_len = c.take_u64()? as usize;
    let digest = c.take_u64()?;
    let payload = c.take(payload_len)?;
    if c.at != bytes.len() {
        return Err(Corrupt("trailing bytes"));
    }
    if fnv1a_64(payload) != digest {
        return Err(Corrupt("payload digest mismatch"));
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "phpsafe-diskcache-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_hit() {
        let cache = DiskCache::open(tmp_root("roundtrip")).unwrap();
        let key = ContentKey::of(b"<?php echo 1;");
        assert_eq!(cache.load("ast", key, 7), None);
        assert!(cache.store("ast", key, 7, b"payload"));
        assert_eq!(cache.load("ast", key, 7).as_deref(), Some(&b"payload"[..]));
        let c = cache.counters();
        assert_eq!((c.hits, c.misses, c.stores), (1, 1, 1));
        assert_eq!((c.corrupt, c.evicted), (0, 0));
    }

    #[test]
    fn fingerprint_mismatch_evicts() {
        let cache = DiskCache::open(tmp_root("fp")).unwrap();
        let key = ContentKey::of(b"src");
        cache.store("summary", key, 1, b"old-config");
        assert_eq!(cache.load("summary", key, 2), None);
        assert_eq!(cache.counters().evicted, 1);
        // The stale entry is gone — a store under the new fingerprint wins.
        cache.store("summary", key, 2, b"new-config");
        assert_eq!(
            cache.load("summary", key, 2).as_deref(),
            Some(&b"new-config"[..])
        );
    }

    #[test]
    fn truncated_entry_is_corrupt_and_removed() {
        let cache = DiskCache::open(tmp_root("trunc")).unwrap();
        let key = ContentKey::of(b"src2");
        cache.store("ast", key, 0, b"some serialized artifact");
        let path = cache.entry_path("ast", key);
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert_eq!(cache.load("ast", key, 0), None);
        assert_eq!(cache.counters().corrupt, 1);
        assert!(!path.exists(), "corrupt entry must be removed");
        // Subsequent load is a clean miss, not another corruption.
        assert_eq!(cache.load("ast", key, 0), None);
        assert_eq!(cache.counters().corrupt, 1);
    }

    #[test]
    fn flipped_payload_byte_fails_digest() {
        let cache = DiskCache::open(tmp_root("flip")).unwrap();
        let key = ContentKey::of(b"src3");
        cache.store("ast", key, 0, b"payload bytes");
        let path = cache.entry_path("ast", key);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(cache.load("ast", key, 0), None);
        assert_eq!(cache.counters().corrupt, 1);
    }

    #[test]
    fn garbage_file_is_corrupt() {
        let cache = DiskCache::open(tmp_root("garbage")).unwrap();
        let key = ContentKey::of(b"src4");
        let path = cache.entry_path("ast", key);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, b"not an envelope at all").unwrap();
        assert_eq!(cache.load("ast", key, 0), None);
        assert_eq!(cache.counters().corrupt, 1);
    }

    #[test]
    fn note_corrupt_removes_entry() {
        let cache = DiskCache::open(tmp_root("note")).unwrap();
        let key = ContentKey::of(b"src5");
        cache.store("ast", key, 0, b"valid envelope, undecodable payload");
        cache.note_corrupt("ast", key);
        assert_eq!(cache.counters().corrupt, 1);
        assert_eq!(cache.load("ast", key, 0), None);
    }

    #[test]
    fn namespaces_are_separate() {
        let cache = DiskCache::open(tmp_root("ns")).unwrap();
        let key = ContentKey::of(b"shared");
        cache.store("ast", key, 0, b"ast bytes");
        assert_eq!(cache.load("summary", key, 0), None);
        assert_eq!(
            cache.load("ast", key, 0).as_deref(),
            Some(&b"ast bytes"[..])
        );
    }

    #[test]
    fn mapped_load_round_trips_and_counts() {
        let cache = DiskCache::open(tmp_root("mmap")).unwrap();
        let key = ContentKey::of(b"mmap-src");
        assert!(cache.load_mapped("ast", key, 3).is_none(), "clean miss");
        cache.store("ast", key, 3, b"mapped payload");
        let loaded = cache.load_mapped("ast", key, 3).unwrap();
        assert_eq!(loaded.as_slice(), b"mapped payload");
        let c = cache.counters();
        assert_eq!(c.hits, 1);
        if cfg!(unix) {
            assert!(loaded.is_mapped(), "unix must serve through the mapping");
            assert_eq!(c.mmap_loads, 1);
        }
        // The window stays readable after the entry is replaced on disk:
        // rename swaps the directory entry, the mapped inode lives on.
        cache.store("ast", key, 3, b"replaced bytes");
        assert_eq!(loaded.as_slice(), b"mapped payload");
    }

    #[test]
    fn mapped_load_validates_and_drops_corruption() {
        let cache = DiskCache::open(tmp_root("mmap-corrupt")).unwrap();
        let key = ContentKey::of(b"mmap-bad");
        cache.store("ast", key, 0, b"payload");
        let path = cache.entry_path("ast", key);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert!(cache.load_mapped("ast", key, 0).is_none());
        assert_eq!(cache.counters().corrupt, 1);
        assert!(!path.exists(), "corrupt entry must be removed");
        // A stale fingerprint through the mapped path evicts too.
        cache.store("ast", key, 1, b"payload");
        assert!(cache.load_mapped("ast", key, 2).is_none());
        assert_eq!(cache.counters().evicted, 1);
    }

    #[test]
    fn bytes_on_disk_tracks_stores_evictions_and_reopen() {
        let root = tmp_root("nsbytes");
        let cache = DiskCache::open(&root).unwrap();
        assert!(cache.bytes_on_disk().is_empty());
        let k1 = ContentKey::of(b"one");
        let k2 = ContentKey::of(b"two");
        cache.store("ast", k1, 0, b"payload-1");
        cache.store("ast", k2, 0, b"payload-two");
        cache.store("summary", k1, 0, b"s");
        let sizes: std::collections::HashMap<String, u64> =
            cache.bytes_on_disk().into_iter().collect();
        let ast_total = sizes["ast"];
        assert!(ast_total > 0 && sizes["summary"] > 0);
        // Overwriting an entry swaps its size, not accumulates it.
        cache.store("ast", k1, 0, b"payload-1");
        assert_eq!(
            cache
                .bytes_on_disk()
                .into_iter()
                .collect::<std::collections::HashMap<_, _>>()["ast"],
            ast_total
        );
        // Accounting matches what a fresh open rediscovers by scanning.
        let reopened = DiskCache::open(&root).unwrap();
        assert_eq!(reopened.bytes_on_disk(), cache.bytes_on_disk());
        // Eviction subtracts the dropped entry.
        assert_eq!(cache.load("ast", k1, 9), None, "fingerprint mismatch");
        let after: std::collections::HashMap<String, u64> =
            cache.bytes_on_disk().into_iter().collect();
        assert!(after["ast"] < ast_total);
        assert_eq!(
            after["ast"],
            DiskCache::open(&root).unwrap().bytes_on_disk()[0].1
        );
    }

    #[test]
    fn bytes_on_disk_publishes_gauges() {
        let reg = phpsafe_obs::global();
        phpsafe_obs::set_enabled(true);
        let cache = DiskCache::open(tmp_root("nsgauge")).unwrap();
        cache.store("outcome", ContentKey::of(b"g"), 0, b"gauged");
        phpsafe_obs::set_enabled(false);
        let snap = reg.snapshot();
        let level = snap.gauge("diskcache.bytes_on_disk.outcome");
        assert!(level > 0, "store must publish the namespace gauge");
    }

    #[test]
    fn store_leaves_no_temp_files() {
        let root = tmp_root("tmpfiles");
        let cache = DiskCache::open(&root).unwrap();
        let key = ContentKey::of(b"src6");
        cache.store("ast", key, 0, b"bytes");
        let entries: Vec<_> = std::fs::read_dir(root.join("ast"))
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert_eq!(entries.len(), 1);
        assert!(entries[0].ends_with(".psc"), "{entries:?}");
    }
}
