//! Persistent on-disk artifact cache.
//!
//! [`DiskCache`] is the durable tier behind the in-memory
//! [`ArtifactCache`](crate::ArtifactCache)s: artifacts (serialized ASTs,
//! call-summary blobs, rendered analysis outcomes) survive the process, so
//! a fresh daemon — or a batch CLI run pointed at the same `--cache-dir` —
//! warm-starts from a prior run instead of repaying the full parse/analyze
//! cost.
//!
//! The cache never trusts its own files. Every entry is wrapped in a
//! versioned envelope carrying the format version, the writing crate's
//! version, the caller's configuration fingerprint, the content key and an
//! FNV-1a digest of the payload. A load re-validates all of them:
//!
//! * a **stale** entry (format/crate-version/fingerprint/key mismatch) is
//!   evicted — counted in `diskcache.evicted` with a log line;
//! * a **corrupt** entry (truncation, bad magic, digest mismatch) is
//!   removed — counted in `diskcache.corrupt` with a log line;
//!
//! and either way the load reports a miss, so the caller falls back to
//! re-parsing/re-analyzing. Decoding failures *above* the envelope (the
//! payload bytes don't deserialize) are reported back through
//! [`DiskCache::note_corrupt`] and handled the same way.
//!
//! Stores are atomic: the entry is written to a temporary file in the same
//! directory and `rename`d into place, so concurrent readers and a crashed
//! writer can never observe a half-written entry.

use crate::hash::{fnv1a_64, ContentKey};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Magic bytes opening every cache entry.
const MAGIC: &[u8; 4] = b"PSC1";

/// Bumped whenever the envelope layout changes; older entries are evicted.
const FORMAT_VERSION: u32 = 1;

/// Version of the writing crate; payload encodings may change between
/// releases without bumping [`FORMAT_VERSION`], so entries written by a
/// different build are evicted wholesale.
const CRATE_VERSION: &str = env!("CARGO_PKG_VERSION");

/// Snapshot of a disk cache's operation counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DiskCounters {
    /// Loads that returned a validated payload.
    pub hits: u64,
    /// Loads that found no entry.
    pub misses: u64,
    /// Entries written.
    pub stores: u64,
    /// Entries dropped because the envelope or payload failed its digest
    /// or structural check.
    pub corrupt: u64,
    /// Entries dropped because the format version, crate version or
    /// configuration fingerprint no longer matches.
    pub evicted: u64,
    /// Envelope bytes read from disk (all successful reads, including
    /// entries later dropped as stale/corrupt).
    pub bytes_read: u64,
    /// Envelope bytes written to disk.
    pub bytes_written: u64,
    /// Stores that failed to land on disk (I/O errors degrade to a
    /// warning, never into the analysis result).
    pub store_failed: u64,
}

/// A persistent, content-addressed artifact store rooted at one directory.
///
/// Entries live under `<root>/<namespace>/<hash>-<len>.psc`; the namespace
/// separates artifact kinds (`"ast"`, `"summary"`, `"outcome"`) that share
/// a content key space. All operations are infallible at the API level:
/// I/O errors degrade to misses (with a warning on stderr), never into the
/// analysis result.
pub struct DiskCache {
    root: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    corrupt: AtomicU64,
    evicted: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    store_failed: AtomicU64,
    tmp_seq: AtomicU64,
}

impl DiskCache {
    /// Opens (creating if needed) a cache rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<DiskCache> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(DiskCache {
            root,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            store_failed: AtomicU64::new(0),
            tmp_seq: AtomicU64::new(0),
        })
    }

    /// The cache's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Current operation counters.
    pub fn counters(&self) -> DiskCounters {
        DiskCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            store_failed: self.store_failed.load(Ordering::Relaxed),
        }
    }

    fn entry_path(&self, ns: &str, key: ContentKey) -> PathBuf {
        self.root
            .join(ns)
            .join(format!("{:016x}-{:x}.psc", key.hash, key.len))
    }

    /// Loads and validates the entry for `(ns, key)`; `fingerprint` must
    /// match the one the entry was stored with (configuration changes
    /// silently invalidate everything written under the old fingerprint).
    /// Returns the payload bytes, or `None` on miss/stale/corrupt.
    pub fn load(&self, ns: &str, key: ContentKey, fingerprint: u64) -> Option<Vec<u8>> {
        let started = std::time::Instant::now();
        let path = self.entry_path(ns, key);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                phpsafe_obs::count("diskcache.misses", 1);
                return None;
            }
            Err(e) => {
                eprintln!(
                    "phpsafe: warning: disk cache read failed for {}: {e}",
                    path.display()
                );
                self.misses.fetch_add(1, Ordering::Relaxed);
                phpsafe_obs::count("diskcache.misses", 1);
                return None;
            }
        };
        self.bytes_read
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        phpsafe_obs::count("diskcache.bytes_read", bytes.len() as u64);
        let payload = match validate_envelope(&bytes, ns, key, fingerprint) {
            Ok(p) => p.to_vec(),
            Err(reason) => {
                self.drop_entry(&path, reason);
                self.misses.fetch_add(1, Ordering::Relaxed);
                phpsafe_obs::count("diskcache.misses", 1);
                return None;
            }
        };
        self.hits.fetch_add(1, Ordering::Relaxed);
        phpsafe_obs::count("diskcache.hits", 1);
        phpsafe_obs::time("diskcache.load", started.elapsed());
        Some(payload)
    }

    /// Atomically stores `payload` for `(ns, key, fingerprint)`. Returns
    /// whether the entry landed on disk; failures only warn — the caller's
    /// in-memory artifact is unaffected.
    pub fn store(&self, ns: &str, key: ContentKey, fingerprint: u64, payload: &[u8]) -> bool {
        let started = std::time::Instant::now();
        let path = self.entry_path(ns, key);
        let dir = path.parent().expect("entry path has a namespace parent");
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!(
                "phpsafe: warning: cannot create cache dir {}: {e}",
                dir.display()
            );
            self.store_failed.fetch_add(1, Ordering::Relaxed);
            phpsafe_obs::count("diskcache.store_failed", 1);
            return false;
        }
        let seq = self.tmp_seq.fetch_add(1, Ordering::Relaxed);
        let tmp = dir.join(format!(
            ".{:016x}-{:x}.tmp.{}.{seq}",
            key.hash,
            key.len,
            std::process::id()
        ));
        let bytes = seal_envelope(ns, key, fingerprint, payload);
        let written = std::fs::File::create(&tmp)
            .and_then(|mut f| f.write_all(&bytes))
            .and_then(|()| std::fs::rename(&tmp, &path));
        match written {
            Ok(()) => {
                self.stores.fetch_add(1, Ordering::Relaxed);
                self.bytes_written
                    .fetch_add(bytes.len() as u64, Ordering::Relaxed);
                phpsafe_obs::count("diskcache.stores", 1);
                phpsafe_obs::count("diskcache.bytes_written", bytes.len() as u64);
                phpsafe_obs::time("diskcache.store", started.elapsed());
                true
            }
            Err(e) => {
                eprintln!(
                    "phpsafe: warning: disk cache write failed for {}: {e}",
                    path.display()
                );
                let _ = std::fs::remove_file(&tmp);
                self.store_failed.fetch_add(1, Ordering::Relaxed);
                phpsafe_obs::count("diskcache.store_failed", 1);
                false
            }
        }
    }

    /// Reports that a payload [`load`](DiskCache::load) returned could not
    /// be decoded by the caller: the entry is counted corrupt and removed,
    /// exactly as if the envelope digest had failed.
    pub fn note_corrupt(&self, ns: &str, key: ContentKey) {
        // The hit the failed load counted stands; the decode failure is
        // what gets surfaced.
        self.drop_entry(
            &self.entry_path(ns, key),
            EntryFault::Corrupt("payload decode"),
        );
    }

    fn drop_entry(&self, path: &Path, fault: EntryFault) {
        let what = match fault {
            EntryFault::Corrupt(why) => {
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                phpsafe_obs::count("diskcache.corrupt", 1);
                why
            }
            EntryFault::Stale(why) => {
                self.evicted.fetch_add(1, Ordering::Relaxed);
                phpsafe_obs::count("diskcache.evicted", 1);
                why
            }
        };
        eprintln!(
            "phpsafe: warning: dropping cache entry {} ({what}); falling back to re-analysis",
            path.display()
        );
        let _ = std::fs::remove_file(path);
    }
}

/// Why an entry was dropped.
enum EntryFault {
    /// The bytes are damaged (truncation, bad magic, digest mismatch).
    Corrupt(&'static str),
    /// The bytes are intact but written under a different format/crate
    /// version or configuration fingerprint.
    Stale(&'static str),
}

fn seal_envelope(ns: &str, key: ContentKey, fingerprint: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 64 + ns.len() + CRATE_VERSION.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.push(CRATE_VERSION.len() as u8);
    out.extend_from_slice(CRATE_VERSION.as_bytes());
    out.push(ns.len() as u8);
    out.extend_from_slice(ns.as_bytes());
    out.extend_from_slice(&fingerprint.to_le_bytes());
    out.extend_from_slice(&key.hash.to_le_bytes());
    out.extend_from_slice(&key.len.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a_64(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// A bounds-checked cursor over envelope bytes; running past the end is a
/// corruption, never a panic.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], EntryFault> {
        let end = self
            .at
            .checked_add(n)
            .ok_or(EntryFault::Corrupt("length overflow"))?;
        let slice = self
            .bytes
            .get(self.at..end)
            .ok_or(EntryFault::Corrupt("truncated envelope"))?;
        self.at = end;
        Ok(slice)
    }

    fn take_u32(&mut self) -> Result<u32, EntryFault> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn take_u64(&mut self) -> Result<u64, EntryFault> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
}

/// Checks every field of the envelope; returns the payload slice on
/// success and the reason the entry must be dropped otherwise.
fn validate_envelope<'a>(
    bytes: &'a [u8],
    ns: &str,
    key: ContentKey,
    fingerprint: u64,
) -> Result<&'a [u8], EntryFault> {
    use EntryFault::{Corrupt, Stale};
    let mut c = Cursor { bytes, at: 0 };
    if c.take(4)? != MAGIC {
        return Err(Corrupt("bad magic"));
    }
    if c.take_u32()? != FORMAT_VERSION {
        return Err(Stale("format version mismatch"));
    }
    let ver_len = c.take(1)?[0] as usize;
    if c.take(ver_len)? != CRATE_VERSION.as_bytes() {
        return Err(Stale("crate version mismatch"));
    }
    let ns_len = c.take(1)?[0] as usize;
    if c.take(ns_len)? != ns.as_bytes() {
        return Err(Stale("namespace mismatch"));
    }
    if c.take_u64()? != fingerprint {
        return Err(Stale("configuration fingerprint mismatch"));
    }
    if c.take_u64()? != key.hash || c.take_u64()? != key.len {
        return Err(Corrupt("content key mismatch"));
    }
    let payload_len = c.take_u64()? as usize;
    let digest = c.take_u64()?;
    let payload = c.take(payload_len)?;
    if c.at != bytes.len() {
        return Err(Corrupt("trailing bytes"));
    }
    if fnv1a_64(payload) != digest {
        return Err(Corrupt("payload digest mismatch"));
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "phpsafe-diskcache-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_hit() {
        let cache = DiskCache::open(tmp_root("roundtrip")).unwrap();
        let key = ContentKey::of(b"<?php echo 1;");
        assert_eq!(cache.load("ast", key, 7), None);
        assert!(cache.store("ast", key, 7, b"payload"));
        assert_eq!(cache.load("ast", key, 7).as_deref(), Some(&b"payload"[..]));
        let c = cache.counters();
        assert_eq!((c.hits, c.misses, c.stores), (1, 1, 1));
        assert_eq!((c.corrupt, c.evicted), (0, 0));
    }

    #[test]
    fn fingerprint_mismatch_evicts() {
        let cache = DiskCache::open(tmp_root("fp")).unwrap();
        let key = ContentKey::of(b"src");
        cache.store("summary", key, 1, b"old-config");
        assert_eq!(cache.load("summary", key, 2), None);
        assert_eq!(cache.counters().evicted, 1);
        // The stale entry is gone — a store under the new fingerprint wins.
        cache.store("summary", key, 2, b"new-config");
        assert_eq!(
            cache.load("summary", key, 2).as_deref(),
            Some(&b"new-config"[..])
        );
    }

    #[test]
    fn truncated_entry_is_corrupt_and_removed() {
        let cache = DiskCache::open(tmp_root("trunc")).unwrap();
        let key = ContentKey::of(b"src2");
        cache.store("ast", key, 0, b"some serialized artifact");
        let path = cache.entry_path("ast", key);
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert_eq!(cache.load("ast", key, 0), None);
        assert_eq!(cache.counters().corrupt, 1);
        assert!(!path.exists(), "corrupt entry must be removed");
        // Subsequent load is a clean miss, not another corruption.
        assert_eq!(cache.load("ast", key, 0), None);
        assert_eq!(cache.counters().corrupt, 1);
    }

    #[test]
    fn flipped_payload_byte_fails_digest() {
        let cache = DiskCache::open(tmp_root("flip")).unwrap();
        let key = ContentKey::of(b"src3");
        cache.store("ast", key, 0, b"payload bytes");
        let path = cache.entry_path("ast", key);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(cache.load("ast", key, 0), None);
        assert_eq!(cache.counters().corrupt, 1);
    }

    #[test]
    fn garbage_file_is_corrupt() {
        let cache = DiskCache::open(tmp_root("garbage")).unwrap();
        let key = ContentKey::of(b"src4");
        let path = cache.entry_path("ast", key);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, b"not an envelope at all").unwrap();
        assert_eq!(cache.load("ast", key, 0), None);
        assert_eq!(cache.counters().corrupt, 1);
    }

    #[test]
    fn note_corrupt_removes_entry() {
        let cache = DiskCache::open(tmp_root("note")).unwrap();
        let key = ContentKey::of(b"src5");
        cache.store("ast", key, 0, b"valid envelope, undecodable payload");
        cache.note_corrupt("ast", key);
        assert_eq!(cache.counters().corrupt, 1);
        assert_eq!(cache.load("ast", key, 0), None);
    }

    #[test]
    fn namespaces_are_separate() {
        let cache = DiskCache::open(tmp_root("ns")).unwrap();
        let key = ContentKey::of(b"shared");
        cache.store("ast", key, 0, b"ast bytes");
        assert_eq!(cache.load("summary", key, 0), None);
        assert_eq!(
            cache.load("ast", key, 0).as_deref(),
            Some(&b"ast bytes"[..])
        );
    }

    #[test]
    fn store_leaves_no_temp_files() {
        let root = tmp_root("tmpfiles");
        let cache = DiskCache::open(&root).unwrap();
        let key = ContentKey::of(b"src6");
        cache.store("ast", key, 0, b"bytes");
        let entries: Vec<_> = std::fs::read_dir(root.join("ast"))
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert_eq!(entries.len(), 1);
        assert!(entries[0].ends_with(".psc"), "{entries:?}");
    }
}
