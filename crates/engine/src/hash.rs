//! Content hashing for cache keys.
//!
//! A 64-bit FNV-1a implementation written in-crate (the container vendors
//! no hashing crates). FNV-1a is a multiply-xor hash with good avalanche
//! behaviour on short keys; cache keys additionally carry the input length
//! so a collision must match both digest and size.

/// FNV-1a offset basis (64-bit).
const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hashes `bytes` with 64-bit FNV-1a.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = OFFSET_BASIS;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// A content-derived cache key: FNV-1a digest plus input length.
///
/// Two sources map to the same key only if both their 64-bit digest and
/// their byte length agree — good enough to treat "same key" as "same
/// content" for cache purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ContentKey {
    /// FNV-1a digest of the content.
    pub hash: u64,
    /// Content length in bytes.
    pub len: u64,
}

impl ContentKey {
    /// Keys the given content.
    pub fn of(bytes: &[u8]) -> ContentKey {
        ContentKey {
            hash: fnv1a_64(bytes),
            len: bytes.len() as u64,
        }
    }
}

/// Extends a digest with more data (order-sensitive), for keys built from
/// several parts.
pub fn fnv1a_64_extend(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = if seed == 0 { OFFSET_BASIS } else { seed };
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_bytes_same_hash() {
        let a = fnv1a_64(b"<?php echo $_GET['x'];");
        let b = fnv1a_64(b"<?php echo $_GET['x'];");
        assert_eq!(a, b);
        assert_eq!(
            ContentKey::of(b"<?php echo $_GET['x'];"),
            ContentKey::of(b"<?php echo $_GET['x'];")
        );
    }

    #[test]
    fn one_byte_edit_changes_hash() {
        let a = fnv1a_64(b"<?php echo $_GET['x'];");
        let b = fnv1a_64(b"<?php echo $_GET['y'];");
        assert_ne!(a, b);
    }

    #[test]
    fn known_vector() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn length_disambiguates() {
        let short = ContentKey::of(b"ab");
        let long = ContentKey::of(b"abab");
        assert_ne!(short, long);
    }

    #[test]
    fn extend_matches_oneshot() {
        let whole = fnv1a_64(b"hello world");
        let parts = fnv1a_64_extend(fnv1a_64(b"hello "), b"world");
        assert_eq!(whole, parts);
    }
}
