//! Content hashing for cache keys.
//!
//! The FNV-1a implementation used to live here; it is now the shared
//! `phpsafe-intern::fnv` module (tests included) so `core` can use the same
//! digest — and its `BuildHasher` — without depending on the engine. This
//! module re-exports the pieces under their historical `phpsafe_engine::`
//! paths.

pub use phpsafe_intern::{fnv1a_64, fnv1a_64_extend, ContentKey};
