//! The execution layer of the phpSAFE reproduction: *how* analyses run,
//! independent of *what* an analysis is.
//!
//! The paper's 2015 artifact analyzed one file at a time on one core,
//! re-parsing every file for every tool even though the 2014 plugin
//! snapshots carry most 2012 files over unchanged. This crate supplies the
//! three pieces a production-scale runner needs, with no dependencies on
//! the analysis crates (they depend on us):
//!
//! * [`pool`] — a `std::thread` worker pool that fans jobs out across `N`
//!   workers and joins results in submission order, so downstream table
//!   output is byte-identical to a serial run;
//! * [`cache`] + [`hash`] — content-hash-keyed artifact stores with
//!   hit/miss counters, used by the analyzer for shared token-stream/AST
//!   artifacts and per-tool function summaries;
//! * [`disk`] — a persistent on-disk tier under those caches (versioned
//!   envelopes, atomic writes, corruption-tolerant loads) so artifacts
//!   survive the process and a daemon or `--cache-dir` CLI run
//!   warm-starts from a prior one.
//!
//! Observability lives in `phpsafe-obs`: each [`run_ordered`] call records
//! its scheduler statistics (`engine.*` counters, `engine.wall` /
//! `engine.queue_wait` histograms) into the global registry when
//! instrumentation is enabled, and the cache counters are folded in by the
//! analyzer's cache layer — one stats story surfaced by the `repro` and
//! `phpsafe` binaries.

pub mod cache;
pub mod depgraph;
pub mod disk;
pub mod hash;
pub mod pool;

pub use cache::{ArtifactCache, CacheCounters};
pub use depgraph::DepGraph;
pub use disk::{DiskCache, DiskCounters, LoadedPayload, MappedFile};
pub use hash::{fnv1a_64, fnv1a_64_extend, ContentKey};
pub use pool::{effective_jobs, effective_jobs_reported, run_ordered, PoolStats};
