//! A `std::thread` worker pool with deterministic join order.
//!
//! Jobs are pulled from a shared queue by `N` scoped workers; each result
//! is written into the slot matching its submission index, so
//! [`run_ordered`] returns outputs in exactly the order the jobs were
//! passed in — regardless of scheduling. Downstream consumers (the table
//! renderers) therefore produce byte-identical output at any worker count.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Scheduler-level statistics for one [`run_ordered`] call.
#[derive(Debug, Default, Clone, Copy)]
pub struct PoolStats {
    /// Jobs executed.
    pub jobs_run: u64,
    /// Workers the pool ran with.
    pub workers: usize,
    /// Total time jobs spent queued before a worker picked them up,
    /// summed across jobs.
    pub queue_wait: Duration,
    /// Wall time from submission to the last join.
    pub wall: Duration,
}

impl PoolStats {
    /// Records this run into the global observability registry (no-op
    /// while instrumentation is disabled). `engine.workers` accumulates
    /// across runs; divide by `engine.runs` for the mean pool width.
    fn record(&self) {
        if !phpsafe_obs::enabled() {
            return;
        }
        phpsafe_obs::count("engine.runs", 1);
        phpsafe_obs::count("engine.jobs_run", self.jobs_run);
        phpsafe_obs::count("engine.workers", self.workers as u64);
        phpsafe_obs::time("engine.queue_wait", self.queue_wait);
        phpsafe_obs::time("engine.wall", self.wall);
    }
}

/// Resolves a user-requested worker count against the machine.
///
/// `--jobs 0` (or an absent value defaulted to 0) and `--jobs` beyond the
/// available parallelism both clamp to [`available_parallelism`]; the
/// second element is a warning for the CLI to surface when clamping
/// happened. Shared by the `repro`, `phpsafe` and `phpsafe serve` front
/// ends so every entry point resolves `--jobs` identically.
///
/// [`available_parallelism`]: std::thread::available_parallelism
pub fn effective_jobs(requested: usize) -> (usize, Option<String>) {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if requested == 0 {
        (
            cores,
            Some(format!(
                "--jobs 0 is not a worker count; using the available parallelism ({cores})"
            )),
        )
    } else if requested > cores {
        (
            cores,
            Some(format!(
                "--jobs {requested} exceeds the available parallelism; clamping to {cores} \
                 to avoid oversubscription"
            )),
        )
    } else {
        (requested, None)
    }
}

/// [`effective_jobs`] with the clamp warning printed to stderr in the
/// shared `warning: …` CLI format. The batch front ends (`repro`,
/// `phpsafe`, `phpsafe serve` startup) all surface clamping this way;
/// the daemon's per-request path keeps the raw pair so it can report
/// warnings in-band instead.
pub fn effective_jobs_reported(requested: usize) -> usize {
    let (jobs, warning) = effective_jobs(requested);
    if let Some(w) = warning {
        eprintln!("warning: {w}");
    }
    jobs
}

/// Runs `jobs` on `workers` threads; `run` receives each job plus its
/// submission index. Results come back in submission order.
///
/// With `workers <= 1` the jobs run inline on the calling thread (the
/// serial mode the Table III timing methodology compares against).
pub fn run_ordered<I, O, F>(jobs: Vec<I>, workers: usize, run: F) -> (Vec<O>, PoolStats)
where
    I: Send,
    O: Send,
    F: Fn(usize, I) -> O + Sync,
{
    let started = Instant::now();
    let n = jobs.len();
    let workers = workers.max(1).min(n.max(1));

    if workers == 1 {
        let mut queue_wait = Duration::ZERO;
        let outputs: Vec<O> = jobs
            .into_iter()
            .enumerate()
            .map(|(i, job)| {
                // A job "waits" from submission until it starts running.
                queue_wait += started.elapsed();
                run(i, job)
            })
            .collect();
        let stats = PoolStats {
            jobs_run: n as u64,
            workers: 1,
            queue_wait,
            wall: started.elapsed(),
        };
        stats.record();
        return (outputs, stats);
    }

    let queue: Mutex<VecDeque<(usize, I)>> = Mutex::new(jobs.into_iter().enumerate().collect());
    let slots: Vec<Mutex<Option<O>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let waited_ns = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let job = queue.lock().unwrap().pop_front();
                let Some((idx, item)) = job else { break };
                waited_ns.fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
                let out = run(idx, item);
                *slots[idx].lock().unwrap() = Some(out);
            });
        }
    });

    let outputs: Vec<O> = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("worker completed every dequeued job")
        })
        .collect();
    let stats = PoolStats {
        jobs_run: n as u64,
        workers,
        queue_wait: Duration::from_nanos(waited_ns.load(Ordering::Relaxed)),
        wall: started.elapsed(),
    };
    stats.record();
    (outputs, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_submission_order() {
        let jobs: Vec<u64> = (0..64).collect();
        for workers in [1, 2, 4, 8] {
            let (out, stats) = run_ordered(jobs.clone(), workers, |i, j| {
                // Vary per-job latency so fast jobs finish out of order.
                let spin = (j % 7) * 1000;
                std::hint::black_box((0..spin).sum::<u64>());
                (i, j * 2)
            });
            assert_eq!(out.len(), 64);
            for (i, (idx, doubled)) in out.iter().enumerate() {
                assert_eq!(*idx, i, "workers={workers}");
                assert_eq!(*doubled, jobs[i] * 2);
            }
            assert_eq!(stats.jobs_run, 64);
        }
    }

    #[test]
    fn identical_results_across_worker_counts() {
        let work = |_, j: u64| j.wrapping_mul(0x9e37).rotate_left(7);
        let jobs: Vec<u64> = (0..40).collect();
        let (serial, _) = run_ordered(jobs.clone(), 1, work);
        for workers in [2, 4, 8] {
            let (parallel, _) = run_ordered(jobs.clone(), workers, work);
            assert_eq!(serial, parallel, "workers={workers}");
        }
    }

    #[test]
    fn empty_job_list() {
        let (out, stats) = run_ordered(Vec::<u8>::new(), 4, |_, j| j);
        assert!(out.is_empty());
        assert_eq!(stats.jobs_run, 0);
    }

    #[test]
    fn worker_count_capped_by_jobs() {
        let (out, stats) = run_ordered(vec![1, 2], 16, |_, j| j);
        assert_eq!(out, vec![1, 2]);
        assert!(stats.workers <= 2);
    }

    #[test]
    fn effective_jobs_clamps_zero_and_oversubscription() {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let (jobs, warn) = effective_jobs(0);
        assert_eq!(jobs, cores);
        assert!(warn.is_some(), "jobs=0 must warn");
        let (jobs, warn) = effective_jobs(cores + 100);
        assert_eq!(jobs, cores);
        assert!(warn.is_some(), "oversubscription must warn");
        let (jobs, warn) = effective_jobs(1);
        assert_eq!(jobs, 1);
        assert!(warn.is_none(), "a sane request passes through silently");
    }

    #[test]
    fn queue_wait_accumulates() {
        let (_, stats) = run_ordered((0..8).collect::<Vec<u64>>(), 2, |_, j| {
            std::thread::sleep(Duration::from_millis(1));
            j
        });
        // Later jobs waited while earlier ones ran.
        assert!(stats.queue_wait > Duration::ZERO);
        assert!(stats.wall > Duration::ZERO);
    }
}
