//! Engine observability: what ran, where time went, what the caches did.

use crate::cache::CacheCounters;
use crate::pool::PoolStats;
use std::fmt;
use std::time::Duration;

/// Wall time attributed to each pipeline stage, summed across jobs (on a
/// multi-worker run the stage times can exceed the wall clock).
#[derive(Debug, Default, Clone, Copy)]
pub struct StageTimes {
    /// Tokenization of source files (cache misses only).
    pub lex: Duration,
    /// Token-stream-to-AST parsing (cache misses only).
    pub parse: Duration,
    /// Taint analysis proper.
    pub analyze: Duration,
    /// Oracle verification against ground truth (outside the timed
    /// Table III region).
    pub verify: Duration,
}

impl StageTimes {
    pub fn merged(&self, other: &StageTimes) -> StageTimes {
        StageTimes {
            lex: self.lex + other.lex,
            parse: self.parse + other.parse,
            analyze: self.analyze + other.analyze,
            verify: self.verify + other.verify,
        }
    }
}

/// One engine run's statistics: scheduler, stages and caches.
#[derive(Debug, Default, Clone, Copy)]
pub struct EngineStats {
    /// Jobs the scheduler executed.
    pub jobs_run: u64,
    /// Worker threads used.
    pub workers: usize,
    /// Total queue wait, summed across jobs.
    pub queue_wait: Duration,
    /// Wall time of the whole run.
    pub wall: Duration,
    /// Per-stage attribution.
    pub stages: StageTimes,
    /// Shared token-stream/AST cache counters.
    pub parse_cache: CacheCounters,
    /// Per-tool function-summary cache counters (summed over tools).
    pub summary_cache: CacheCounters,
}

impl EngineStats {
    /// Folds scheduler-level stats in.
    pub fn absorb_pool(&mut self, pool: &PoolStats) {
        self.jobs_run += pool.jobs_run;
        self.workers = self.workers.max(pool.workers);
        self.queue_wait += pool.queue_wait;
        self.wall += pool.wall;
    }
}

fn secs(d: Duration) -> String {
    format!("{:.3}s", d.as_secs_f64())
}

impl fmt::Display for EngineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "engine stats")?;
        writeln!(
            f,
            "  scheduler : {} jobs on {} worker(s), wall {}, queue wait {}",
            self.jobs_run,
            self.workers,
            secs(self.wall),
            secs(self.queue_wait)
        )?;
        writeln!(
            f,
            "  stages    : lex {} | parse {} | analyze {} | verify {}",
            secs(self.stages.lex),
            secs(self.stages.parse),
            secs(self.stages.analyze),
            secs(self.stages.verify)
        )?;
        writeln!(
            f,
            "  parse cache   : {} hits / {} lookups ({:.1}% hit rate, misses {})",
            self.parse_cache.hits,
            self.parse_cache.lookups(),
            self.parse_cache.hit_rate() * 100.0,
            self.parse_cache.misses
        )?;
        write!(
            f,
            "  summary cache : {} hits / {} lookups ({:.1}% hit rate, misses {})",
            self.summary_cache.hits,
            self.summary_cache.lookups(),
            self.summary_cache.hit_rate() * 100.0,
            self.summary_cache.misses
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_pool_accumulates() {
        let mut stats = EngineStats::default();
        stats.absorb_pool(&PoolStats {
            jobs_run: 6,
            workers: 4,
            queue_wait: Duration::from_millis(10),
            wall: Duration::from_millis(100),
        });
        stats.absorb_pool(&PoolStats {
            jobs_run: 6,
            workers: 2,
            queue_wait: Duration::from_millis(5),
            wall: Duration::from_millis(50),
        });
        assert_eq!(stats.jobs_run, 12);
        assert_eq!(stats.workers, 4);
        assert_eq!(stats.queue_wait, Duration::from_millis(15));
    }

    #[test]
    fn display_mentions_cache_hit_rate() {
        let stats = EngineStats {
            parse_cache: CacheCounters { hits: 3, misses: 1 },
            ..EngineStats::default()
        };
        let text = stats.to_string();
        assert!(text.contains("75.0% hit rate"), "{text}");
        assert!(text.contains("engine stats"));
    }

    #[test]
    fn stage_times_merge() {
        let a = StageTimes {
            lex: Duration::from_millis(1),
            parse: Duration::from_millis(2),
            analyze: Duration::from_millis(3),
            verify: Duration::from_millis(4),
        };
        let m = a.merged(&a);
        assert_eq!(m.lex, Duration::from_millis(2));
        assert_eq!(m.verify, Duration::from_millis(8));
    }
}
