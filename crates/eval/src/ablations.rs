//! Ablation study: phpSAFE with each headline capability disabled, run
//! over the full corpus. This quantifies *why* phpSAFE wins — the
//! capability deltas the paper attributes its results to (§V.A: "one of
//! the reasons for the detection performance of phpSAFE is its ability to
//! cope with OOP and its out-of-the-box configuration for WordPress").

use crate::oracle::verify;
use phpsafe::{AnalyzerOptions, PhpSafe};
use phpsafe_corpus::{Corpus, GroundTruthEntry, Version};
use std::fmt::Write as _;
use taint_config::generic_php;

/// One ablation variant of phpSAFE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ablation {
    /// The full tool (baseline).
    Full,
    /// OOP resolution disabled (§III.E off).
    NoOop,
    /// WordPress profile removed (generic PHP config only).
    NoWordPressProfile,
    /// Include resolution disabled (per-file analysis).
    NoIncludeResolution,
    /// Never-called functions skipped (§III.C coverage off).
    NoUncalledAnalysis,
    /// Call memoization (function summaries) disabled.
    NoSummaries,
}

impl Ablation {
    /// All variants, baseline first.
    pub const ALL: [Ablation; 6] = [
        Ablation::Full,
        Ablation::NoOop,
        Ablation::NoWordPressProfile,
        Ablation::NoIncludeResolution,
        Ablation::NoUncalledAnalysis,
        Ablation::NoSummaries,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Ablation::Full => "full phpSAFE",
            Ablation::NoOop => "without OOP resolution",
            Ablation::NoWordPressProfile => "without WordPress profile",
            Ablation::NoIncludeResolution => "without include resolution",
            Ablation::NoUncalledAnalysis => "without uncalled-function analysis",
            Ablation::NoSummaries => "without function summaries",
        }
    }

    /// Builds the corresponding analyzer.
    pub fn analyzer(self) -> PhpSafe {
        let base = PhpSafe::new();
        match self {
            Ablation::Full => base,
            Ablation::NoOop => base.with_options(AnalyzerOptions {
                oop: false,
                ..AnalyzerOptions::default()
            }),
            Ablation::NoWordPressProfile => base.with_config(generic_php()),
            Ablation::NoIncludeResolution => base.with_options(AnalyzerOptions {
                resolve_includes: false,
                ..AnalyzerOptions::default()
            }),
            Ablation::NoUncalledAnalysis => base.with_options(AnalyzerOptions {
                analyze_uncalled: false,
                ..AnalyzerOptions::default()
            }),
            Ablation::NoSummaries => base.with_options(AnalyzerOptions {
                summaries: false,
                ..AnalyzerOptions::default()
            }),
        }
    }
}

/// Result of one ablation run over one corpus version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AblationResult {
    /// Variant measured.
    pub ablation: Ablation,
    /// True positives (ground-truth findings detected).
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// Total abstract work units (cost proxy; summaries ablation shows up
    /// here).
    pub work_units: u64,
}

/// Runs every ablation variant over one corpus version.
pub fn run_ablations(corpus: &Corpus, version: Version) -> Vec<AblationResult> {
    Ablation::ALL
        .iter()
        .map(|&a| {
            let tool = a.analyzer();
            let mut tp = 0;
            let mut fp = 0;
            let mut work = 0;
            for plugin in corpus.plugins() {
                let outcome = tool.analyze(plugin.project(version));
                let truth: Vec<&GroundTruthEntry> = plugin.truth_for(version).collect();
                let m = verify(&outcome, &truth);
                tp += m.tp();
                fp += m.fp();
                work += outcome.stats.work_units;
            }
            AblationResult {
                ablation: a,
                tp,
                fp,
                work_units: work,
            }
        })
        .collect()
}

/// Renders the ablation table for both versions.
pub fn ablation_report(corpus: &Corpus) -> String {
    let mut out = String::from("ABLATIONS — phpSAFE capability deltas\n");
    for version in Version::ALL {
        let _ = writeln!(out, "{version}:");
        let results = run_ablations(corpus, version);
        let base = results[0];
        for r in &results {
            let _ = writeln!(
                out,
                "  {:36} TP {:>4} ({:+5}) FP {:>4} ({:+5}) work {:>12}",
                r.ablation.label(),
                r.tp,
                r.tp as i64 - base.tp as i64,
                r.fp,
                r.fp as i64 - base.fp as i64,
                r.work_units,
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn corpus() -> &'static Corpus {
        static C: OnceLock<Corpus> = OnceLock::new();
        C.get_or_init(Corpus::generate)
    }

    fn results() -> &'static Vec<AblationResult> {
        static R: OnceLock<Vec<AblationResult>> = OnceLock::new();
        R.get_or_init(|| run_ablations(corpus(), Version::V2012))
    }

    fn get(a: Ablation) -> AblationResult {
        *results().iter().find(|r| r.ablation == a).expect("variant")
    }

    #[test]
    fn oop_ablation_loses_the_most_detections() {
        let full = get(Ablation::Full);
        let no_oop = get(Ablation::NoOop);
        assert!(
            full.tp - no_oop.tp >= 140,
            "OOP resolution accounts for the wpdb vulnerabilities: {} -> {}",
            full.tp,
            no_oop.tp
        );
    }

    #[test]
    fn wp_profile_ablation_loses_tp_and_gains_fp() {
        let full = get(Ablation::Full);
        let no_wp = get(Ablation::NoWordPressProfile);
        assert!(no_wp.tp < full.tp, "{} !< {}", no_wp.tp, full.tp);
        assert!(
            no_wp.fp > full.fp,
            "unknown esc_html() must create false positives: {} !> {}",
            no_wp.fp,
            full.fp
        );
    }

    #[test]
    fn include_ablation_trades_split_flows_for_robustness() {
        // Disabling include resolution loses the cross-file flows (the
        // include-split vulnerabilities) but *gains* the monster-chain
        // findings, because per-file analysis never exhausts the include
        // budget — exactly the phpSAFE-vs-RIPS robustness trade-off the
        // paper observes in §V.A/§V.E.
        let full = get(Ablation::Full);
        let no_inc = get(Ablation::NoIncludeResolution);
        let split_lost = 8; // 2012 include-split vulnerabilities
        let monster_gained = 65; // 2012 monster-chain vulnerabilities
        assert_eq!(
            no_inc.tp as i64 - full.tp as i64,
            monster_gained - split_lost,
            "full {} vs no-includes {}",
            full.tp,
            no_inc.tp
        );
    }

    #[test]
    fn uncalled_ablation_loses_hook_handlers() {
        let full = get(Ablation::Full);
        let no_unc = get(Ablation::NoUncalledAnalysis);
        assert!(
            full.tp - no_unc.tp >= 50,
            "hook handlers dominate plugin attack surface: {} -> {}",
            full.tp,
            no_unc.tp
        );
    }

    #[test]
    fn summaries_ablation_keeps_detections_but_costs_work() {
        let full = get(Ablation::Full);
        let no_sum = get(Ablation::NoSummaries);
        assert_eq!(
            no_sum.tp, full.tp,
            "summaries are a performance feature, not a precision feature"
        );
        assert!(
            no_sum.work_units >= full.work_units,
            "re-analysis costs at least as much work: {} vs {}",
            no_sum.work_units,
            full.work_units
        );
    }

    #[test]
    fn report_renders() {
        // Render for one version only (cheap): reuse run_ablations output.
        let r = ablation_report(corpus());
        assert!(r.contains("without OOP resolution"));
    }
}
