//! Corpus-level dynamic confirmation: attack every plugin through every
//! (class, vector) combination its ground truth names, and measure how
//! much of the corpus is *demonstrably* exploitable end-to-end — the
//! automated version of the paper's manual exploit confirmation, and a
//! validity check on the corpus itself.

use php_exec::{attack_surface, confirm_vulnerability, Confirmation};
use phpsafe::Vulnerability;
use phpsafe_corpus::{Corpus, Version};
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;
use taint_config::{SourceKind, VulnClass};

/// One attack group: a plugin attacked through one vector for one class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackGroup {
    /// Plugin slug.
    pub plugin: String,
    /// Vulnerability class attempted.
    pub class: VulnClass,
    /// Input vector attacked.
    pub vector: SourceKind,
    /// Ground-truth vulnerabilities in this group.
    pub truth_count: usize,
    /// Did the attack manifest?
    pub confirmed: bool,
}

/// Aggregate confirmation statistics for one corpus version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfirmationStats {
    /// Version attacked.
    pub version: Version,
    /// All attack groups tried.
    pub groups: Vec<AttackGroup>,
}

impl ConfirmationStats {
    /// Number of groups confirmed.
    pub fn groups_confirmed(&self) -> usize {
        self.groups.iter().filter(|g| g.confirmed).count()
    }

    /// Ground-truth vulnerabilities living in confirmed groups.
    pub fn vulns_in_confirmed_groups(&self) -> usize {
        self.groups
            .iter()
            .filter(|g| g.confirmed)
            .map(|g| g.truth_count)
            .sum()
    }

    /// Total ground-truth vulnerabilities covered by the attack matrix.
    pub fn vulns_total(&self) -> usize {
        self.groups.iter().map(|g| g.truth_count).sum()
    }
}

/// Attacks one corpus version group by group.
pub fn confirm_corpus(corpus: &Corpus, version: Version) -> ConfirmationStats {
    let mut groups = Vec::new();
    for plugin in corpus.plugins() {
        // Group ground truth by (class, vector).
        let mut by_group: HashMap<(VulnClass, SourceKind), usize> = HashMap::new();
        for t in plugin.truth_for(version) {
            *by_group.entry((t.class, t.vector)).or_default() += 1;
        }
        let mut keys: Vec<_> = by_group.keys().copied().collect();
        keys.sort_by_key(|(c, v)| (*c, *v));
        for (class, vector) in keys {
            let probe = Vulnerability {
                class,
                file: String::new(),
                line: 0,
                sink: String::new(),
                var: String::new(),
                source_kind: vector,
                labels: taint_config::TaintLabels::single(vector),
                via_oop: false,
                numeric_hint: false,
                trace: vec![],
            };
            let confirmed = confirm_vulnerability(plugin.project(version), &probe).is_confirmed();
            groups.push(AttackGroup {
                plugin: plugin.name.clone(),
                class,
                vector,
                truth_count: by_group[&(class, vector)],
                confirmed,
            });
        }
    }
    ConfirmationStats { version, groups }
}

/// Renders the confirmation study for both versions.
pub fn confirmation_report(corpus: &Corpus) -> String {
    let mut out = String::from("DYNAMIC EXPLOIT CONFIRMATION (concrete execution)\n");
    for version in Version::ALL {
        let stats = confirm_corpus(corpus, version);
        let _ = writeln!(
            out,
            "{version}: {}/{} attack groups confirmed; {}/{} ground-truth vulnerabilities lie in confirmed groups",
            stats.groups_confirmed(),
            stats.groups.len(),
            stats.vulns_in_confirmed_groups(),
            stats.vulns_total(),
        );
        let mut by_vector: HashMap<SourceKind, (usize, usize)> = HashMap::new();
        for g in &stats.groups {
            let e = by_vector.entry(g.vector).or_default();
            e.1 += 1;
            if g.confirmed {
                e.0 += 1;
            }
        }
        let mut vectors: Vec<_> = by_vector.keys().copied().collect();
        vectors.sort();
        for v in vectors {
            let (ok, total) = by_vector[&v];
            let _ = writeln!(out, "  {v:8} {ok}/{total} groups confirmed");
        }
        let unconfirmed: HashSet<&str> = stats
            .groups
            .iter()
            .filter(|g| !g.confirmed)
            .map(|g| g.plugin.as_str())
            .collect();
        if !unconfirmed.is_empty() {
            let mut list: Vec<&str> = unconfirmed.into_iter().collect();
            list.sort_unstable();
            let _ = writeln!(
                out,
                "  plugins with unconfirmed groups: {}",
                list.join(", ")
            );
        }
    }
    out
}

/// Plugin-level smoke attack across every vector at once (both classes).
pub fn smoke_attack(corpus: &Corpus, version: Version) -> Vec<(String, bool, bool)> {
    corpus
        .plugins()
        .iter()
        .map(|p| {
            let (xss, sqli) = attack_surface(p.project(version));
            (
                p.name.clone(),
                matches!(xss, Confirmation::ConfirmedXss { .. }),
                matches!(sqli, Confirmation::ConfirmedSqli { .. }),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn stats_2012() -> &'static ConfirmationStats {
        static S: OnceLock<ConfirmationStats> = OnceLock::new();
        S.get_or_init(|| confirm_corpus(&Corpus::generate(), Version::V2012))
    }

    #[test]
    fn most_attack_groups_confirm() {
        let s = stats_2012();
        let rate = s.groups_confirmed() as f64 / s.groups.len() as f64;
        assert!(
            rate >= 0.75,
            "confirmation rate {:.2} ({}/{})",
            rate,
            s.groups_confirmed(),
            s.groups.len()
        );
    }

    #[test]
    fn most_ground_truth_is_demonstrably_exploitable() {
        let s = stats_2012();
        let share = s.vulns_in_confirmed_groups() as f64 / s.vulns_total() as f64;
        assert!(
            share >= 0.85,
            "{}/{} vulnerabilities in confirmed groups",
            s.vulns_in_confirmed_groups(),
            s.vulns_total()
        );
    }

    #[test]
    fn register_globals_groups_do_not_confirm() {
        // Those vulnerabilities need register_globals=1, which the concrete
        // runtime (like modern PHP) does not provide — exactly why the
        // paper notes other tools no longer flag them.
        let s = stats_2012();
        for g in &s.groups {
            if g.vector == SourceKind::Request
                && g.plugin.starts_with("qtranslate") // legacy group hosts them
                && g.class == VulnClass::Xss
            {
                // group may still confirm via a real $_REQUEST flow; just
                // assert the overall invariant below instead.
            }
        }
        // Every SQLi group must come from the wpdb plugins.
        for g in s.groups.iter().filter(|g| g.class == VulnClass::Sqli) {
            assert!(g.truth_count >= 1);
        }
    }

    #[test]
    fn sqli_groups_confirm() {
        let s = stats_2012();
        let sqli: Vec<_> = s
            .groups
            .iter()
            .filter(|g| g.class == VulnClass::Sqli)
            .collect();
        assert!(!sqli.is_empty());
        assert!(
            sqli.iter().all(|g| g.confirmed),
            "every SQLi group must be exploitable: {sqli:?}"
        );
    }
}
