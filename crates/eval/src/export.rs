//! Machine-readable exports of the evaluation — CSV for the tables and a
//! per-plugin breakdown. The paper's methodology step 5 normalizes "all of
//! them into a single repository"; these exporters are that feature for
//! downstream analysis (spreadsheets, plotting).

use crate::metrics::RecallMode;
use crate::oracle::verify;
use crate::runner::{Evaluation, TOOLS};
use phpsafe_baselines::paper_tools;
use phpsafe_corpus::{Corpus, GroundTruthEntry, Version};
use std::fmt::Write as _;
use taint_config::VulnClass;

/// Table I as CSV: one row per (tool, version, class) with TP/FP/FN and
/// the derived metrics.
pub fn table1_csv(e: &Evaluation, mode: RecallMode) -> String {
    let mut out = String::from("tool,version,class,tp,fp,fn,precision,recall,f_score\n");
    for tool in TOOLS {
        for version in Version::ALL {
            for (class, label) in [
                (Some(VulnClass::Xss), "xss"),
                (Some(VulnClass::Sqli), "sqli"),
                (None, "global"),
            ] {
                let m = e.metrics(tool, version, class, mode);
                let fmt = |v: Option<f64>| v.map(|x| format!("{x:.4}")).unwrap_or_default();
                let _ = writeln!(
                    out,
                    "{tool},{},{label},{},{},{},{},{},{}",
                    match version {
                        Version::V2012 => "2012",
                        Version::V2014 => "2014",
                    },
                    m.tp,
                    m.fp,
                    m.fn_,
                    fmt(m.precision()),
                    fmt(m.recall()),
                    fmt(m.f_score()),
                );
            }
        }
    }
    out
}

/// Per-plugin detection breakdown: one row per (plugin, version, tool).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PluginCell {
    /// Plugin slug.
    pub plugin: String,
    /// Version.
    pub version: Version,
    /// Tool name.
    pub tool: String,
    /// Ground-truth vulnerabilities present.
    pub truth: usize,
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// Files the tool failed on.
    pub failed_files: usize,
}

/// Computes the per-plugin breakdown by re-running the tools plugin by
/// plugin (cheap relative to generation; used by the CSV export and tests).
pub fn per_plugin(corpus: &Corpus) -> Vec<PluginCell> {
    let mut out = Vec::new();
    for tool in paper_tools() {
        for version in Version::ALL {
            for plugin in corpus.plugins() {
                let outcome = tool.analyze(plugin.project(version));
                let truth: Vec<&GroundTruthEntry> = plugin.truth_for(version).collect();
                let m = verify(&outcome, &truth);
                out.push(PluginCell {
                    plugin: plugin.name.clone(),
                    version,
                    tool: tool.name().to_string(),
                    truth: truth.len(),
                    tp: m.tp(),
                    fp: m.fp(),
                    failed_files: outcome.failed_files(),
                });
            }
        }
    }
    out
}

/// Per-plugin breakdown as CSV.
pub fn per_plugin_csv(corpus: &Corpus) -> String {
    let mut out = String::from("plugin,version,tool,truth,tp,fp,failed_files\n");
    for c in per_plugin(corpus) {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{}",
            c.plugin,
            match c.version {
                Version::V2012 => "2012",
                Version::V2014 => "2014",
            },
            c.tool,
            c.truth,
            c.tp,
            c.fp,
            c.failed_files
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn eval() -> &'static Evaluation {
        static E: OnceLock<Evaluation> = OnceLock::new();
        E.get_or_init(Evaluation::run)
    }

    #[test]
    fn csv_has_expected_shape() {
        let csv = table1_csv(eval(), RecallMode::PaperOptimistic);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + 3 * 2 * 3, "header + 18 rows");
        assert!(lines[0].starts_with("tool,version,class"));
        assert!(lines.iter().any(|l| l.starts_with("phpSAFE,2012,xss")));
        // undefined metrics serialize as empty cells, not NaN
        assert!(!csv.contains("NaN"));
    }

    #[test]
    fn csv_values_match_metrics() {
        let e = eval();
        let csv = table1_csv(e, RecallMode::PaperOptimistic);
        let m = e.metrics("phpSAFE", Version::V2012, None, RecallMode::PaperOptimistic);
        let row = csv
            .lines()
            .find(|l| l.starts_with("phpSAFE,2012,global"))
            .expect("row");
        let cols: Vec<&str> = row.split(',').collect();
        assert_eq!(cols[3].parse::<usize>().unwrap(), m.tp);
        assert_eq!(cols[4].parse::<usize>().unwrap(), m.fp);
    }

    #[test]
    fn per_plugin_totals_match_cells() {
        let e = eval();
        let rows = per_plugin(e.corpus());
        assert_eq!(rows.len(), 3 * 2 * 35);
        for tool in TOOLS {
            for version in Version::ALL {
                let sum_tp: usize = rows
                    .iter()
                    .filter(|r| r.tool == tool && r.version == version)
                    .map(|r| r.tp)
                    .sum();
                assert_eq!(
                    sum_tp,
                    e.cell(tool, version).detected.len(),
                    "{tool} {version:?}"
                );
            }
        }
    }

    #[test]
    fn per_plugin_truth_sums_to_corpus() {
        let e = eval();
        let rows = per_plugin(e.corpus());
        let t2012: usize = rows
            .iter()
            .filter(|r| r.tool == "phpSAFE" && r.version == Version::V2012)
            .map(|r| r.truth)
            .sum();
        assert_eq!(t2012, 394);
    }
}
