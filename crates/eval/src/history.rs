//! Plugin security evolution over time — the paper's future-work feature
//! (§VI: *"we also intend to study the evolution of plugin security and
//! plugin updates over time by enabling historic data in phpSAFE"*).
//!
//! For every plugin, the two snapshots are compared by ground-truth id:
//! a 2012 vulnerability is **fixed** if absent from 2014, **carried** if
//! still present; a 2014 vulnerability not present in 2012 is
//! **introduced**.

use phpsafe_corpus::{Corpus, Version};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt::Write as _;

/// Evolution record for one plugin.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PluginEvolution {
    /// Plugin slug.
    pub plugin: String,
    /// Ground-truth vulnerabilities in the 2012 snapshot.
    pub vulns_2012: usize,
    /// Ground-truth vulnerabilities in the 2014 snapshot.
    pub vulns_2014: usize,
    /// 2012 vulnerabilities no longer present in 2014.
    pub fixed: usize,
    /// Present in both snapshots (disclosed in 2013, never fixed).
    pub carried: usize,
    /// New in 2014.
    pub introduced: usize,
    /// OOP (CMS-object) vulnerabilities per snapshot.
    pub oop_2012: usize,
    /// OOP vulnerabilities in 2014.
    pub oop_2014: usize,
}

impl PluginEvolution {
    /// Did the plugin get safer (strictly fewer vulnerabilities)?
    pub fn improved(&self) -> bool {
        self.vulns_2014 < self.vulns_2012
    }

    /// Net change in vulnerability count.
    pub fn net_change(&self) -> i64 {
        self.vulns_2014 as i64 - self.vulns_2012 as i64
    }
}

/// Computes per-plugin evolution from the corpus ground truth.
pub fn evolution(corpus: &Corpus) -> Vec<PluginEvolution> {
    corpus
        .plugins()
        .iter()
        .map(|p| {
            let ids12: HashSet<&str> = p.truth_for(Version::V2012).map(|t| t.id.as_str()).collect();
            let t14: Vec<_> = p.truth_for(Version::V2014).collect();
            let carried = t14.iter().filter(|t| ids12.contains(t.id.as_str())).count();
            PluginEvolution {
                plugin: p.name.clone(),
                vulns_2012: ids12.len(),
                vulns_2014: t14.len(),
                fixed: ids12.len() - carried,
                carried,
                introduced: t14.len() - carried,
                oop_2012: p.truth_for(Version::V2012).filter(|t| t.oop).count(),
                oop_2014: t14.iter().filter(|t| t.oop).count(),
            }
        })
        .collect()
}

/// Renders the evolution study as a table plus aggregate trends.
pub fn evolution_report(corpus: &Corpus) -> String {
    let rows = evolution(corpus);
    let mut out = String::from("PLUGIN SECURITY EVOLUTION 2012 -> 2014 (ground truth)\n");
    let _ = writeln!(
        out,
        "{:22}|{:>6}|{:>6}|{:>6}|{:>8}|{:>11}|{:>5}",
        "Plugin", "2012", "2014", "fixed", "carried", "introduced", "net"
    );
    for r in &rows {
        let _ = writeln!(
            out,
            "{:22}|{:>6}|{:>6}|{:>6}|{:>8}|{:>11}|{:>+5}",
            r.plugin,
            r.vulns_2012,
            r.vulns_2014,
            r.fixed,
            r.carried,
            r.introduced,
            r.net_change()
        );
    }
    let total12: usize = rows.iter().map(|r| r.vulns_2012).sum();
    let total14: usize = rows.iter().map(|r| r.vulns_2014).sum();
    let fixed: usize = rows.iter().map(|r| r.fixed).sum();
    let carried: usize = rows.iter().map(|r| r.carried).sum();
    let improved = rows.iter().filter(|r| r.improved()).count();
    let worsened = rows.iter().filter(|r| r.net_change() > 0).count();
    let _ = writeln!(
        out,
        "totals: {total12} -> {total14} ({:+.0}%); fixed {fixed} ({:.0}% of 2012), carried {carried}; \
         {improved} plugins improved, {worsened} worsened",
        (total14 as f64 / total12 as f64 - 1.0) * 100.0,
        100.0 * fixed as f64 / total12.max(1) as f64,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn rows() -> &'static Vec<PluginEvolution> {
        static R: OnceLock<Vec<PluginEvolution>> = OnceLock::new();
        R.get_or_init(|| evolution(&Corpus::generate()))
    }

    #[test]
    fn accounting_identities_hold() {
        for r in rows() {
            assert_eq!(r.fixed + r.carried, r.vulns_2012, "{}", r.plugin);
            assert_eq!(r.carried + r.introduced, r.vulns_2014, "{}", r.plugin);
        }
    }

    #[test]
    fn totals_match_corpus_ground_truth() {
        let total12: usize = rows().iter().map(|r| r.vulns_2012).sum();
        let total14: usize = rows().iter().map(|r| r.vulns_2014).sum();
        assert_eq!(total12, 394);
        assert_eq!(total14, 585);
    }

    #[test]
    fn three_oop_plugins_fixed_their_object_vulns() {
        // Catalog: 10 OOP-vuln plugins in 2012, 7 in 2014.
        let fixed_all_oop = rows()
            .iter()
            .filter(|r| r.oop_2012 > 0 && r.oop_2014 == 0)
            .count();
        assert_eq!(fixed_all_oop, 3);
    }

    #[test]
    fn most_plugins_worsen() {
        // The paper's trend: vulnerability counts increase over time.
        let worsened = rows().iter().filter(|r| r.net_change() > 0).count();
        let improved = rows().iter().filter(|r| r.improved()).count();
        assert!(
            worsened > improved,
            "worsened {worsened} vs improved {improved}"
        );
    }

    #[test]
    fn report_renders_all_plugins() {
        let report = evolution_report(&Corpus::generate());
        assert!(report.contains("mail-subscribe-list"));
        assert!(report.contains("totals: 394 -> 585"));
        assert_eq!(report.lines().count(), 35 + 3);
    }
}
