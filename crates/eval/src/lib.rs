//! # phpsafe-eval
//!
//! The evaluation harness reproducing the phpSAFE paper's methodology
//! (§IV): run phpSAFE, RIPS and Pixy over the 35-plugin corpus (both
//! versions), verify every report against the generator's ground truth
//! (the exact stand-in for the paper's manual expert verification), and
//! regenerate every table and figure of §V.
//!
//! ```no_run
//! use phpsafe_eval::{Evaluation, tables};
//!
//! let eval = Evaluation::run();
//! println!("{}", tables::full_report(&eval));
//! ```

#![warn(missing_docs)]

pub mod ablations;
pub mod confirm;
pub mod export;
pub mod history;
pub mod metrics;
pub mod oracle;
pub mod runner;
pub mod tables;
pub mod taxonomy;

pub use ablations::{ablation_report, run_ablations, Ablation, AblationResult};
pub use confirm::{confirm_corpus, confirmation_report, smoke_attack, ConfirmationStats};
pub use export::{per_plugin, per_plugin_csv, table1_csv, PluginCell};
pub use history::{evolution, evolution_report, PluginEvolution};
pub use metrics::{pct, Metrics, RecallMode};
pub use oracle::{verify, MatchResult};
pub use phpsafe_obs::Snapshot;
pub use runner::{Evaluation, ToolCell, TOOLS};
pub use taxonomy::{record_taxonomy_metrics, run_taxonomy, taxonomy_report};
