//! Detection metrics (§IV.A): TP / FP / FN, Precision, Recall and F-score,
//! including the paper's *optimistic* FN rule — the false negatives of a
//! tool are the confirmed vulnerabilities *other tools* found that it
//! missed, because no exhaustive manual audit existed.

use serde::{Deserialize, Serialize};

/// How false negatives are determined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecallMode {
    /// The paper's rule: FN = (union of all tools' confirmed findings) −
    /// (this tool's confirmed findings).
    PaperOptimistic,
    /// FN against the full generator ground truth (available only because
    /// our "expert" is exact).
    FullGroundTruth,
}

/// Classification metrics for one (tool, version, class) cell of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives (per the chosen [`RecallMode`]).
    pub fn_: usize,
}

impl Metrics {
    /// Builds a metrics cell.
    pub fn new(tp: usize, fp: usize, fn_: usize) -> Self {
        Metrics { tp, fp, fn_ }
    }

    /// Precision = TP / (TP + FP); `None` when the tool reported nothing
    /// (the paper prints `-`).
    pub fn precision(&self) -> Option<f64> {
        let d = self.tp + self.fp;
        (d > 0).then(|| self.tp as f64 / d as f64)
    }

    /// Recall = TP / (TP + FN); `None` when there is nothing to find.
    pub fn recall(&self) -> Option<f64> {
        let d = self.tp + self.fn_;
        (d > 0).then(|| self.tp as f64 / d as f64)
    }

    /// F-score = harmonic mean of precision and recall; `None` when either
    /// is undefined or both are zero.
    pub fn f_score(&self) -> Option<f64> {
        let p = self.precision()?;
        let r = self.recall()?;
        if p + r == 0.0 {
            return None;
        }
        Some(2.0 * p * r / (p + r))
    }

    /// Adds another cell (e.g. XSS + SQLi = Global).
    pub fn merged(self, other: Metrics) -> Metrics {
        Metrics {
            tp: self.tp + other.tp,
            fp: self.fp + other.fp,
            fn_: self.fn_ + other.fn_,
        }
    }
}

/// Formats an optional ratio as a percentage the way the paper's tables do
/// (`83%`, or `-` when undefined).
pub fn pct(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{:.0}%", x * 100.0),
        None => "-".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_2012_phpsafe_xss_cell() {
        // Table I: TP=307, FP=63 → Precision 83%; Recall 85% with FN=55.
        let m = Metrics::new(307, 63, 55);
        assert_eq!(pct(m.precision()), "83%");
        assert_eq!(pct(m.recall()), "85%");
        assert_eq!(pct(m.f_score()), "84%");
    }

    #[test]
    fn undefined_cells_render_dash() {
        let m = Metrics::new(0, 0, 0);
        assert_eq!(pct(m.precision()), "-");
        assert_eq!(pct(m.recall()), "-");
        assert_eq!(pct(m.f_score()), "-");
    }

    #[test]
    fn zero_tp_with_fp_gives_zero_precision() {
        let m = Metrics::new(0, 1, 5);
        assert_eq!(pct(m.precision()), "0%");
        assert_eq!(pct(m.recall()), "0%");
        assert_eq!(m.f_score(), None, "p + r == 0");
    }

    #[test]
    fn bounds_hold() {
        for tp in 0..6 {
            for fp in 0..6 {
                for fn_ in 0..6 {
                    let m = Metrics::new(tp, fp, fn_);
                    for v in [m.precision(), m.recall(), m.f_score()]
                        .into_iter()
                        .flatten()
                    {
                        assert!((0.0..=1.0).contains(&v));
                    }
                }
            }
        }
    }

    #[test]
    fn merged_adds_counts() {
        let a = Metrics::new(1, 2, 3).merged(Metrics::new(4, 5, 6));
        assert_eq!((a.tp, a.fp, a.fn_), (5, 7, 9));
    }
}
