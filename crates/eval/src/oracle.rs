//! The verification oracle: plays the role of the paper's "security expert"
//! who manually verified every report (methodology step 5) — except exact,
//! because the corpus generator knows where it planted every vulnerability.

use phpsafe::{AnalysisOutcome, Vulnerability};
use phpsafe_corpus::GroundTruthEntry;
use std::collections::HashSet;

/// Line tolerance when matching a report to a ground-truth sink (tools may
/// anchor a multi-line statement on a neighbouring line).
const LINE_TOLERANCE: u32 = 1;

/// Result of verifying one tool outcome against ground truth.
#[derive(Debug, Clone, Default)]
pub struct MatchResult {
    /// Ground-truth ids confirmed as detected (true positives).
    pub detected: HashSet<String>,
    /// Reports with no ground-truth counterpart (false positives).
    pub false_positives: Vec<Vulnerability>,
}

impl MatchResult {
    /// True-positive count (distinct ground-truth findings).
    pub fn tp(&self) -> usize {
        self.detected.len()
    }

    /// False-positive count.
    pub fn fp(&self) -> usize {
        self.false_positives.len()
    }
}

/// Does a report hit a ground-truth entry?
fn hits(report: &Vulnerability, truth: &GroundTruthEntry) -> bool {
    report.class == truth.class
        && report.line.abs_diff(truth.line) <= LINE_TOLERANCE
        && (report.file == truth.file
            || report.file.ends_with(&truth.file)
            || truth.file.ends_with(&report.file))
}

/// Verifies a tool outcome for one plugin against that plugin's ground
/// truth (entries must already be filtered to the right version).
pub fn verify(outcome: &AnalysisOutcome, truth: &[&GroundTruthEntry]) -> MatchResult {
    let mut result = MatchResult::default();
    for report in &outcome.vulns {
        let mut matched = false;
        for t in truth {
            if hits(report, t) {
                result.detected.insert(t.id.clone());
                matched = true;
                // keep scanning: one echo inside a loop can witness a single
                // ground-truth sink only, but tolerance windows may overlap —
                // first match wins for attribution, others are duplicates.
                break;
            }
        }
        if !matched {
            result.false_positives.push(report.clone());
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use phpsafe_corpus::Version;
    use taint_config::{SourceKind, VulnClass};

    fn truth(id: &str, file: &str, line: u32, class: VulnClass) -> GroundTruthEntry {
        GroundTruthEntry {
            id: id.into(),
            plugin: "p".into(),
            version: Version::V2012,
            class,
            vector: SourceKind::Get,
            file: file.into(),
            line,
            oop: false,
            carried: false,
            numeric: false,
        }
    }

    fn report(file: &str, line: u32, class: VulnClass) -> Vulnerability {
        Vulnerability {
            class,
            file: file.into(),
            line,
            sink: "echo".into(),
            var: "$x".into(),
            source_kind: SourceKind::Get,
            labels: taint_config::TaintLabels::single(SourceKind::Get),
            via_oop: false,
            numeric_hint: false,
            trace: vec![],
        }
    }

    fn outcome(vulns: Vec<Vulnerability>) -> AnalysisOutcome {
        AnalysisOutcome {
            tool: "t".into(),
            plugin: "p".into(),
            vulns,
            files: vec![],
            stats: Default::default(),
        }
    }

    #[test]
    fn exact_match_is_tp() {
        let t = truth("a", "f.php", 10, VulnClass::Xss);
        let r = verify(&outcome(vec![report("f.php", 10, VulnClass::Xss)]), &[&t]);
        assert_eq!(r.tp(), 1);
        assert_eq!(r.fp(), 0);
    }

    #[test]
    fn line_tolerance_window() {
        let t = truth("a", "f.php", 10, VulnClass::Xss);
        let near = verify(&outcome(vec![report("f.php", 11, VulnClass::Xss)]), &[&t]);
        assert_eq!(near.tp(), 1);
        let far = verify(&outcome(vec![report("f.php", 13, VulnClass::Xss)]), &[&t]);
        assert_eq!(far.tp(), 0);
        assert_eq!(far.fp(), 1);
    }

    #[test]
    fn class_mismatch_is_fp() {
        let t = truth("a", "f.php", 10, VulnClass::Xss);
        let r = verify(&outcome(vec![report("f.php", 10, VulnClass::Sqli)]), &[&t]);
        assert_eq!(r.tp(), 0);
        assert_eq!(r.fp(), 1);
    }

    #[test]
    fn duplicate_reports_count_one_tp() {
        let t = truth("a", "f.php", 10, VulnClass::Xss);
        let r = verify(
            &outcome(vec![
                report("f.php", 10, VulnClass::Xss),
                report("f.php", 11, VulnClass::Xss),
            ]),
            &[&t],
        );
        assert_eq!(r.tp(), 1, "same ground-truth id detected once");
        assert_eq!(r.fp(), 0);
    }

    #[test]
    fn suffix_path_matching() {
        let t = truth("a", "includes/f.php", 5, VulnClass::Xss);
        let r = verify(&outcome(vec![report("f.php", 5, VulnClass::Xss)]), &[&t]);
        assert_eq!(r.tp(), 1);
    }
}
