//! Runs the three tools over the full corpus (methodology step 4),
//! verifies every report with the oracle (step 5), and aggregates the
//! per-tool, per-version cells the tables are built from.

use crate::metrics::{Metrics, RecallMode};
use crate::oracle::{verify, MatchResult};
use phpsafe::{AnalysisOutcome, EngineCaches, FileFailure, Vulnerability};
use phpsafe_baselines::{paper_tools, AnalysisTool};
use phpsafe_corpus::{Corpus, GroundTruthEntry, Version};
use phpsafe_engine::run_ordered;
use phpsafe_obs::Snapshot;
use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};
use taint_config::VulnClass;

/// The three tool names, in the paper's column order.
pub const TOOLS: [&str; 3] = ["phpSAFE", "RIPS", "Pixy"];

/// Aggregated results for one (tool, version) pair across all 35 plugins.
#[derive(Debug, Clone)]
pub struct ToolCell {
    /// Tool name.
    pub tool: String,
    /// Plugin snapshot version.
    pub version: Version,
    /// Ground-truth ids confirmed detected.
    pub detected: HashSet<String>,
    /// Reports that matched no ground truth.
    pub false_positives: Vec<Vulnerability>,
    /// Wall-clock seconds to analyze all 35 plugins.
    pub seconds: f64,
    /// Files failed for resource limits (phpSAFE's include blow-ups).
    pub failed_resource: usize,
    /// Files rejected by the front end (Pixy's OOP/closure failures).
    pub failed_unsupported: usize,
    /// Total abstract work units.
    pub work_units: u64,
}

/// The full evaluation: corpus + six tool cells.
#[derive(Debug, Clone)]
pub struct Evaluation {
    corpus: Corpus,
    cells: Vec<ToolCell>,
}

impl Evaluation {
    /// Generates the corpus and runs all three tools on both versions.
    pub fn run() -> Evaluation {
        Self::run_with(Corpus::generate())
    }

    /// Runs all tools over a prepared corpus, serially and uncached — the
    /// Table III timing methodology (each tool meets each plugin cold).
    pub fn run_with(corpus: Corpus) -> Evaluation {
        Self::run_tools_with(corpus, paper_tools())
    }

    /// [`Evaluation::run_with`] on the taint-graph analysis path: every
    /// tool records one whole-program graph per plugin and answers both
    /// vulnerability classes from it. Every rendered artifact must be
    /// byte-identical to the walker's.
    pub fn run_graph_with(corpus: Corpus) -> Evaluation {
        Self::run_tools_with(corpus, phpsafe_baselines::paper_tools_graph())
    }

    fn run_tools_with(corpus: Corpus, tools: Vec<Box<dyn AnalysisTool>>) -> Evaluation {
        let mut cells = Vec::new();
        for tool in tools {
            for version in Version::ALL {
                // The clock covers only the analyses; oracle verification
                // is evaluation bookkeeping the paper's timings exclude.
                let start = Instant::now();
                let outcomes: Vec<AnalysisOutcome> = corpus
                    .plugins()
                    .iter()
                    .map(|plugin| tool.analyze(plugin.project(version)))
                    .collect();
                let seconds = start.elapsed().as_secs_f64();
                let mut cell = Self::fold_cell(&corpus, tool.name(), version, &outcomes);
                cell.seconds = seconds;
                cells.push(cell);
            }
        }
        Evaluation { corpus, cells }
    }

    /// Generates the corpus and runs the engine-scheduled evaluation on
    /// `jobs` workers.
    pub fn run_engine(jobs: usize) -> (Evaluation, Snapshot) {
        Self::run_engine_with(Corpus::generate(), jobs)
    }

    /// Runs all tools over a prepared corpus through the
    /// [`phpsafe_engine`] worker pool, sharing one parse cache across the
    /// 3 tools × 2 versions and a per-tool summary cache across plugins
    /// and versions.
    ///
    /// Jobs are `(tool, version, plugin)` triples; results are joined in
    /// submission order, so the produced cells — and everything rendered
    /// from them except wall-clock seconds — are identical to
    /// [`Evaluation::run_with`] at any worker count. Each cell's `seconds`
    /// is the summed analysis time of its 35 jobs (per-cell wall clock is
    /// meaningless when cells interleave across workers).
    ///
    /// The returned [`Snapshot`] is the observability delta of this run:
    /// `engine.*` scheduler counters, `cache.*` hit/miss counters and the
    /// `stage.*` timing histograms. It is empty unless
    /// [`phpsafe_obs::set_enabled`] was switched on.
    pub fn run_engine_with(corpus: Corpus, jobs: usize) -> (Evaluation, Snapshot) {
        Self::run_engine_cached(corpus, jobs, &EngineCaches::new())
    }

    /// [`Evaluation::run_engine_with`] against caller-owned caches —
    /// typically `EngineCaches::with_disk` so a repeated run warm-starts
    /// from persisted ASTs and summaries. Cells (and therefore every
    /// rendered table) are byte-identical to the cold run; only timing
    /// changes.
    pub fn run_engine_cached(
        corpus: Corpus,
        jobs: usize,
        caches: &EngineCaches,
    ) -> (Evaluation, Snapshot) {
        Self::run_engine_tools(corpus, jobs, caches, paper_tools())
    }

    /// [`Evaluation::run_engine_cached`] on the taint-graph analysis path.
    /// With a disk-backed cache set, a warm restart answers every plugin
    /// from its persisted graph without re-walking.
    pub fn run_engine_cached_graph(
        corpus: Corpus,
        jobs: usize,
        caches: &EngineCaches,
    ) -> (Evaluation, Snapshot) {
        Self::run_engine_tools(corpus, jobs, caches, phpsafe_baselines::paper_tools_graph())
    }

    fn run_engine_tools(
        corpus: Corpus,
        jobs: usize,
        caches: &EngineCaches,
        tools: Vec<Box<dyn AnalysisTool>>,
    ) -> (Evaluation, Snapshot) {
        let before = phpsafe_obs::snapshot();

        // Submission order = cell order = the serial loop's order.
        let mut specs: Vec<(usize, Version, usize)> = Vec::new();
        for t in 0..tools.len() {
            for version in Version::ALL {
                for p in 0..corpus.plugins().len() {
                    specs.push((t, version, p));
                }
            }
        }

        let (results, _pool) = run_ordered(specs, jobs, |_, (t, version, p)| {
            let plugin = &corpus.plugins()[p];
            let started = Instant::now();
            let outcome = tools[t].analyze_cached(plugin.project(version), caches);
            (outcome, started.elapsed())
        });

        caches.record();
        // Flush fresh summaries to the disk tier, if one is attached.
        caches.persist();

        // Verification runs after the pool has drained — outside both the
        // per-cell timings and the engine's analyze stage. The `stage.eval`
        // span covers exactly this oracle/fold step.
        let span_eval = phpsafe_obs::span!("stage.eval");
        let mut cells = Vec::new();
        let mut results = results.into_iter();
        for tool in &tools {
            for version in Version::ALL {
                let mut outcomes = Vec::with_capacity(corpus.plugins().len());
                let mut analyze_time = Duration::ZERO;
                for _ in 0..corpus.plugins().len() {
                    let (outcome, spent) = results.next().expect("one result per job");
                    outcomes.push(outcome);
                    analyze_time += spent;
                }
                let mut cell = Self::fold_cell(&corpus, tool.name(), version, &outcomes);
                cell.seconds = analyze_time.as_secs_f64();
                cells.push(cell);
            }
        }
        drop(span_eval);

        let snapshot = phpsafe_obs::snapshot().since(&before);
        (Evaluation { corpus, cells }, snapshot)
    }

    /// Oracle-verifies one (tool, version) run and aggregates its cell.
    /// `outcomes` must be in corpus plugin order. Leaves `seconds` at zero
    /// for the caller to fill in.
    fn fold_cell(
        corpus: &Corpus,
        tool: &str,
        version: Version,
        outcomes: &[AnalysisOutcome],
    ) -> ToolCell {
        let mut cell = ToolCell {
            tool: tool.to_string(),
            version,
            detected: HashSet::new(),
            false_positives: Vec::new(),
            seconds: 0.0,
            failed_resource: 0,
            failed_unsupported: 0,
            work_units: 0,
        };
        for (plugin, outcome) in corpus.plugins().iter().zip(outcomes) {
            let truth: Vec<&GroundTruthEntry> = plugin.truth_for(version).collect();
            let MatchResult {
                detected,
                false_positives,
            } = verify(outcome, &truth);
            cell.detected.extend(detected);
            cell.false_positives.extend(false_positives);
            for f in &outcome.files {
                match &f.failure {
                    Some(FileFailure::ResourceLimit(_)) => cell.failed_resource += 1,
                    Some(FileFailure::Unsupported(_)) => cell.failed_unsupported += 1,
                    None => {}
                }
            }
            cell.work_units += outcome.stats.work_units;
        }
        cell
    }

    /// The corpus analyzed.
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// All six cells.
    pub fn cells(&self) -> &[ToolCell] {
        &self.cells
    }

    /// The cell for a tool/version.
    ///
    /// # Panics
    ///
    /// Panics if `tool` is not one of [`TOOLS`].
    pub fn cell(&self, tool: &str, version: Version) -> &ToolCell {
        self.cells
            .iter()
            .find(|c| c.tool == tool && c.version == version)
            .unwrap_or_else(|| panic!("no cell for {tool}/{version:?}"))
    }

    /// Ground-truth lookup by id for a version.
    pub fn truth_map(&self, version: Version) -> HashMap<&str, &GroundTruthEntry> {
        self.corpus
            .truth_for(version)
            .into_iter()
            .map(|t| (t.id.as_str(), t))
            .collect()
    }

    /// Confirmed findings of all tools combined (the denominator of the
    /// paper's optimistic recall, and Fig. 2's universe).
    pub fn union_detected(&self, version: Version) -> HashSet<&str> {
        let mut u = HashSet::new();
        for c in self.cells.iter().filter(|c| c.version == version) {
            u.extend(c.detected.iter().map(|s| s.as_str()));
        }
        u
    }

    /// Detected ids of a tool restricted to a vulnerability class.
    fn detected_of_class<'a>(
        &'a self,
        tool: &str,
        version: Version,
        class: Option<VulnClass>,
    ) -> HashSet<&'a str> {
        let truth = self.truth_map(version);
        self.cell(tool, version)
            .detected
            .iter()
            .filter(|id| match class {
                None => true,
                Some(c) => truth
                    .get(id.as_str())
                    .map(|t| t.class == c)
                    .unwrap_or(false),
            })
            .map(|s| s.as_str())
            .collect()
    }

    /// Computes a Table I metrics cell.
    pub fn metrics(
        &self,
        tool: &str,
        version: Version,
        class: Option<VulnClass>,
        mode: RecallMode,
    ) -> Metrics {
        let truth = self.truth_map(version);
        let mine = self.detected_of_class(tool, version, class);
        let fp = self
            .cell(tool, version)
            .false_positives
            .iter()
            .filter(|v| class.map(|c| v.class == c).unwrap_or(true))
            .count();
        let missed = match mode {
            RecallMode::PaperOptimistic => {
                let mut union: HashSet<&str> = HashSet::new();
                for t in TOOLS {
                    union.extend(self.detected_of_class(t, version, class));
                }
                union.difference(&mine).count()
            }
            RecallMode::FullGroundTruth => truth
                .values()
                .filter(|t| class.map(|c| t.class == c).unwrap_or(true))
                .filter(|t| !mine.contains(t.id.as_str()))
                .count(),
        };
        Metrics::new(mine.len(), fp, missed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // A single full evaluation shared by the assertions below (running the
    // 3×2 matrix once keeps the test suite fast).
    fn eval() -> &'static Evaluation {
        use std::sync::OnceLock;
        static EVAL: OnceLock<Evaluation> = OnceLock::new();
        EVAL.get_or_init(Evaluation::run)
    }

    #[test]
    fn six_cells_produced() {
        assert_eq!(eval().cells().len(), 6);
    }

    #[test]
    fn phpsafe_detects_most_in_both_versions() {
        let e = eval();
        for v in Version::ALL {
            let p = e.cell("phpSAFE", v).detected.len();
            let r = e.cell("RIPS", v).detected.len();
            let x = e.cell("Pixy", v).detected.len();
            assert!(p > r && r > x, "{v:?}: phpSAFE {p} > RIPS {r} > Pixy {x}");
        }
    }

    #[test]
    fn only_phpsafe_finds_sqli_true_positives() {
        let e = eval();
        for v in Version::ALL {
            let p = e.metrics(
                "phpSAFE",
                v,
                Some(VulnClass::Sqli),
                RecallMode::FullGroundTruth,
            );
            let r = e.metrics(
                "RIPS",
                v,
                Some(VulnClass::Sqli),
                RecallMode::FullGroundTruth,
            );
            let x = e.metrics(
                "Pixy",
                v,
                Some(VulnClass::Sqli),
                RecallMode::FullGroundTruth,
            );
            assert!(p.tp >= 8, "phpSAFE SQLi TPs {v:?}: {}", p.tp);
            assert_eq!(r.tp, 0, "RIPS finds no SQLi");
            assert_eq!(x.tp, 0, "Pixy finds no SQLi");
        }
    }

    #[test]
    fn precision_ranking_matches_paper() {
        let e = eval();
        for v in Version::ALL {
            let p = e
                .metrics("phpSAFE", v, None, RecallMode::PaperOptimistic)
                .precision()
                .expect("phpSAFE precision");
            let r = e
                .metrics("RIPS", v, None, RecallMode::PaperOptimistic)
                .precision()
                .expect("RIPS precision");
            let x = e
                .metrics("Pixy", v, None, RecallMode::PaperOptimistic)
                .precision()
                .expect("Pixy precision");
            assert!(p > r, "{v:?} precision phpSAFE {p:.2} > RIPS {r:.2}");
            assert!(r > x, "{v:?} precision RIPS {r:.2} > Pixy {x:.2}");
            assert!(x < 0.45, "Pixy precision is low: {x:.2}");
        }
    }

    #[test]
    fn pixy_detection_collapses_in_2014() {
        let e = eval();
        let p12 = e.cell("Pixy", Version::V2012).detected.len();
        let p14 = e.cell("Pixy", Version::V2014).detected.len();
        assert!(p14 < p12, "Pixy 2014 ({p14}) must fall below 2012 ({p12})");
    }

    #[test]
    fn rips_grows_sharply_in_2014() {
        let e = eval();
        let r12 = e.cell("RIPS", Version::V2012).detected.len();
        let r14 = e.cell("RIPS", Version::V2014).detected.len();
        assert!(
            r14 as f64 / r12 as f64 > 1.5,
            "RIPS detections should grow sharply: {r12} -> {r14}"
        );
    }

    #[test]
    fn robustness_shape() {
        let e = eval();
        // phpSAFE: 1 failed file in 2012, 3 in 2014 (the include monster).
        assert_eq!(e.cell("phpSAFE", Version::V2012).failed_resource, 1);
        assert_eq!(e.cell("phpSAFE", Version::V2014).failed_resource, 3);
        // RIPS completes everything.
        assert_eq!(e.cell("RIPS", Version::V2012).failed_resource, 0);
        assert_eq!(e.cell("RIPS", Version::V2014).failed_resource, 0);
        assert_eq!(e.cell("RIPS", Version::V2012).failed_unsupported, 0);
        // Pixy fails dozens of OOP files and errors on 2014 closures.
        let px12 = e.cell("Pixy", Version::V2012).failed_unsupported;
        let px14 = e.cell("Pixy", Version::V2014).failed_unsupported;
        assert!(px12 >= 20, "Pixy 2012 failures: {px12}");
        assert!(px14 > px12, "2014 adds closure errors: {px12} -> {px14}");
    }

    #[test]
    fn union_grows_about_fifty_percent() {
        let e = eval();
        let u12 = e.union_detected(Version::V2012).len();
        let u14 = e.union_detected(Version::V2014).len();
        let growth = u14 as f64 / u12 as f64;
        assert!(
            (1.3..=1.8).contains(&growth),
            "distinct confirmed growth {u12} -> {u14} ({growth:.2}x)"
        );
    }

    #[test]
    fn only_phpsafe_finds_oop_vulns() {
        let e = eval();
        for v in Version::ALL {
            let truth = e.truth_map(v);
            let oop_count = |tool: &str| {
                e.cell(tool, v)
                    .detected
                    .iter()
                    .filter(|id| truth.get(id.as_str()).map(|t| t.oop).unwrap_or(false))
                    .count()
            };
            assert_eq!(oop_count("RIPS"), 0, "{v:?}");
            assert_eq!(oop_count("Pixy"), 0, "{v:?}");
            assert!(
                oop_count("phpSAFE") >= 140,
                "{v:?}: {}",
                oop_count("phpSAFE")
            );
        }
    }
}
