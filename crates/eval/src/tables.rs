//! Renderers that regenerate every table and figure of the paper's
//! evaluation section from an [`Evaluation`]:
//!
//! * [`table1`] — Table I (TP/FP/Precision/Recall/F-score per tool,
//!   version and vulnerability class);
//! * [`fig2`] / [`venn_counts`] — Fig. 2 (detection-overlap Venn);
//! * [`table2`] — Table II (malicious input-vector types);
//! * [`table3`] — Table III (detection time) plus the §V.E robustness
//!   paragraph (files, LOC, failures);
//! * [`oop_breakdown`] — §V.A (OOP vulnerabilities per version);
//! * [`inertia`] — §V.D (unfixed disclosed vulnerabilities);
//! * [`root_cause`] — §V.C (vector classes + numeric-variable share).

use crate::metrics::{pct, RecallMode};
use crate::runner::{Evaluation, TOOLS};
use phpsafe_corpus::Version;
use std::collections::HashSet;
use std::fmt::Write as _;
use taint_config::{VectorClass, VulnClass};

/// Renders Table I.
pub fn table1(e: &Evaluation, mode: RecallMode) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "TABLE I. VULNERABILITIES OF 2012 AND 2014 PLUGIN VERSIONS ({})",
        match mode {
            RecallMode::PaperOptimistic => "paper-optimistic FN",
            RecallMode::FullGroundTruth => "full ground-truth FN",
        }
    );
    let _ = writeln!(
        out,
        "{:24}|{:>10}|{:>10}|{:>10}|{:>10}|{:>10}|{:>10}|",
        "", "phpSAFE/12", "phpSAFE/14", "RIPS/12", "RIPS/14", "Pixy/12", "Pixy/14"
    );
    let classes: [(Option<VulnClass>, &str); 3] = [
        (Some(VulnClass::Xss), "XSS"),
        (Some(VulnClass::Sqli), "SQLi"),
        (None, "Global"),
    ];
    for (class, label) in classes {
        let cells: Vec<_> = TOOLS
            .iter()
            .flat_map(|t| Version::ALL.map(|v| e.metrics(t, v, class, mode)))
            .collect();
        let row = |name: &str, f: &dyn Fn(&crate::metrics::Metrics) -> String| {
            let mut line = format!("{:24}|", format!("{label} {name}"));
            for c in &cells {
                let _ = write!(line, "{:>10}|", f(c));
            }
            line
        };
        let _ = writeln!(out, "{}", row("True Positives", &|m| m.tp.to_string()));
        let _ = writeln!(out, "{}", row("False Positives", &|m| m.fp.to_string()));
        let _ = writeln!(out, "{}", row("Precision", &|m| pct(m.precision())));
        let _ = writeln!(out, "{}", row("Recall", &|m| pct(m.recall())));
        let _ = writeln!(out, "{}", row("F-score", &|m| pct(m.f_score())));
        let _ = writeln!(out, "{}", "-".repeat(24 + 11 * 6));
    }
    out
}

/// The seven regions of the Fig. 2 Venn diagram plus the total.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VennCounts {
    /// Detected only by phpSAFE.
    pub only_phpsafe: usize,
    /// Detected only by RIPS.
    pub only_rips: usize,
    /// Detected only by Pixy.
    pub only_pixy: usize,
    /// phpSAFE ∩ RIPS (not Pixy).
    pub phpsafe_rips: usize,
    /// phpSAFE ∩ Pixy (not RIPS).
    pub phpsafe_pixy: usize,
    /// RIPS ∩ Pixy (not phpSAFE).
    pub rips_pixy: usize,
    /// All three.
    pub all_three: usize,
    /// Distinct confirmed vulnerabilities.
    pub total: usize,
}

/// Computes the Fig. 2 overlap counts for a version.
pub fn venn_counts(e: &Evaluation, version: Version) -> VennCounts {
    let p: HashSet<&str> = e
        .cell("phpSAFE", version)
        .detected
        .iter()
        .map(|s| s.as_str())
        .collect();
    let r: HashSet<&str> = e
        .cell("RIPS", version)
        .detected
        .iter()
        .map(|s| s.as_str())
        .collect();
    let x: HashSet<&str> = e
        .cell("Pixy", version)
        .detected
        .iter()
        .map(|s| s.as_str())
        .collect();
    let mut v = VennCounts {
        only_phpsafe: 0,
        only_rips: 0,
        only_pixy: 0,
        phpsafe_rips: 0,
        phpsafe_pixy: 0,
        rips_pixy: 0,
        all_three: 0,
        total: 0,
    };
    let universe: HashSet<&str> = p
        .union(&r)
        .copied()
        .collect::<HashSet<_>>()
        .union(&x)
        .copied()
        .collect();
    v.total = universe.len();
    for id in universe {
        match (p.contains(id), r.contains(id), x.contains(id)) {
            (true, true, true) => v.all_three += 1,
            (true, true, false) => v.phpsafe_rips += 1,
            (true, false, true) => v.phpsafe_pixy += 1,
            (false, true, true) => v.rips_pixy += 1,
            (true, false, false) => v.only_phpsafe += 1,
            (false, true, false) => v.only_rips += 1,
            (false, false, true) => v.only_pixy += 1,
            (false, false, false) => unreachable!("id came from the union"),
        }
    }
    v
}

/// Renders Fig. 2 as region counts for both versions.
pub fn fig2(e: &Evaluation) -> String {
    let mut out = String::from("FIG. 2. TOOLS VULNERABILITY DETECTION OVERLAP\n");
    for version in Version::ALL {
        let v = venn_counts(e, version);
        let _ = writeln!(
            out,
            "{}: {} distinct confirmed vulnerabilities",
            version, v.total
        );
        let _ = writeln!(out, "  phpSAFE only          : {:>4}", v.only_phpsafe);
        let _ = writeln!(out, "  RIPS only             : {:>4}", v.only_rips);
        let _ = writeln!(out, "  Pixy only             : {:>4}", v.only_pixy);
        let _ = writeln!(out, "  phpSAFE ∩ RIPS        : {:>4}", v.phpsafe_rips);
        let _ = writeln!(out, "  phpSAFE ∩ Pixy        : {:>4}", v.phpsafe_pixy);
        let _ = writeln!(out, "  RIPS ∩ Pixy           : {:>4}", v.rips_pixy);
        let _ = writeln!(out, "  all three             : {:>4}", v.all_three);
    }
    let u12 = venn_counts(e, Version::V2012).total;
    let u14 = venn_counts(e, Version::V2014).total;
    if u12 > 0 {
        let _ = writeln!(
            out,
            "growth 2012 -> 2014: {:+.0}% (paper: +51%)",
            (u14 as f64 / u12 as f64 - 1.0) * 100.0
        );
    }
    out
}

/// Table II data: confirmed-vulnerability counts per input-vector row.
pub fn table2_counts(e: &Evaluation) -> Vec<(VectorClass, usize, usize, usize)> {
    let mut rows = Vec::new();
    let t12 = e.truth_map(Version::V2012);
    let t14 = e.truth_map(Version::V2014);
    let u12 = e.union_detected(Version::V2012);
    let u14 = e.union_detected(Version::V2014);
    for vc in VectorClass::ALL {
        let c12 = u12
            .iter()
            .filter(|id| {
                t12.get(**id)
                    .map(|t| t.vector_class() == vc)
                    .unwrap_or(false)
            })
            .count();
        let c14 = u14
            .iter()
            .filter(|id| {
                t14.get(**id)
                    .map(|t| t.vector_class() == vc)
                    .unwrap_or(false)
            })
            .count();
        // "Both versions": 2014-confirmed entries carried over from 2012.
        let both = u14
            .iter()
            .filter(|id| {
                t14.get(**id)
                    .map(|t| t.vector_class() == vc && t.carried)
                    .unwrap_or(false)
            })
            .count();
        rows.push((vc, c12, c14, both));
    }
    rows
}

/// Renders Table II.
pub fn table2(e: &Evaluation) -> String {
    let mut out = String::from("TABLE II. MALICIOUS INPUT VECTOR TYPE\n");
    let _ = writeln!(
        out,
        "{:22}|{:>14}|{:>14}|{:>14}|",
        "Input Vectors", "Version 2012", "Version 2014", "Both versions"
    );
    for (vc, c12, c14, both) in table2_counts(e) {
        let _ = writeln!(
            out,
            "{:22}|{:>14}|{:>14}|{:>14}|",
            vc.label(),
            c12,
            c14,
            both
        );
    }
    out
}

/// Renders Table III plus the §V.E robustness facts.
pub fn table3(e: &Evaluation) -> String {
    let mut out = String::from("TABLE III. DETECTION TIME OF ALL PLUGINS IN SECONDS\n");
    let _ = writeln!(
        out,
        "{:10}|{:>12}|{:>12}|",
        "Tool", "Ver. 2012", "Ver. 2014"
    );
    for tool in TOOLS {
        let s12 = e.cell(tool, Version::V2012).seconds;
        let s14 = e.cell(tool, Version::V2014).seconds;
        let _ = writeln!(out, "{:10}|{:>12.3}|{:>12.3}|", tool, s12, s14);
    }
    for version in Version::ALL {
        let (files, loc) = e.corpus().size_of(version);
        let _ = writeln!(out, "{version}: {files} files, {loc} LOC");
        for tool in TOOLS {
            let c = e.cell(tool, version);
            let kloc = loc as f64 / 1000.0;
            let _ = writeln!(
                out,
                "  {:8} {:>8.4} s/KLOC, failed files: {} (resource) + {} (unsupported)",
                tool,
                c.seconds / kloc,
                c.failed_resource,
                c.failed_unsupported
            );
        }
    }
    out
}

/// §V.A: OOP vulnerabilities found per version (paper: phpSAFE found 151
/// in 10 plugins in 2012, 179 in 7 plugins in 2014; RIPS/Pixy none).
pub fn oop_breakdown(e: &Evaluation) -> String {
    let mut out = String::from("OOP (WordPress-object) VULNERABILITIES — §V.A\n");
    for version in Version::ALL {
        let truth = e.truth_map(version);
        for tool in TOOLS {
            let detected_oop: Vec<&str> = e
                .cell(tool, version)
                .detected
                .iter()
                .filter(|id| truth.get(id.as_str()).map(|t| t.oop).unwrap_or(false))
                .map(|s| s.as_str())
                .collect();
            let plugins: HashSet<&str> = detected_oop
                .iter()
                .filter_map(|id| truth.get(id).map(|t| t.plugin.as_str()))
                .collect();
            let _ = writeln!(
                out,
                "{version} {tool:8}: {:>4} OOP vulnerabilities in {:>2} plugins",
                detected_oop.len(),
                plugins.len()
            );
        }
    }
    out
}

/// §V.D inertia facts: carried (disclosed-yet-unfixed) share and the
/// easy-to-exploit subset.
pub fn inertia_counts(e: &Evaluation) -> (usize, usize, usize) {
    let t14 = e.truth_map(Version::V2014);
    let u14 = e.union_detected(Version::V2014);
    let total = u14.len();
    let carried: Vec<&str> = u14
        .iter()
        .filter(|id| t14.get(**id).map(|t| t.carried).unwrap_or(false))
        .copied()
        .collect();
    let easy = carried
        .iter()
        .filter(|id| {
            t14.get(**id)
                .map(|t| t.vector.directly_exploitable())
                .unwrap_or(false)
        })
        .count();
    (total, carried.len(), easy)
}

/// Renders the §V.D paragraph.
pub fn inertia(e: &Evaluation) -> String {
    let (total, carried, easy) = inertia_counts(e);
    let mut out = String::from("INERTIA IN FIXING VULNERABILITIES — §V.D\n");
    let _ = writeln!(
        out,
        "{carried} of {total} 2014 vulnerabilities ({:.0}%) were already disclosed in 2012 (paper: 249/586 = 42%)",
        100.0 * carried as f64 / total.max(1) as f64
    );
    let _ = writeln!(
        out,
        "{easy} of those ({:.0}%) are trivially exploitable via GET/POST/COOKIE (paper: 59 = 24%)",
        100.0 * easy as f64 / carried.max(1) as f64
    );
    out
}

/// Renders the §V.C root-cause analysis (vector classes + numeric share).
pub fn root_cause(e: &Evaluation) -> String {
    let mut out = String::from("ROOT CAUSE OF THE VULNERABILITIES — §V.C\n");
    let t14 = e.truth_map(Version::V2014);
    let u14 = e.union_detected(Version::V2014);
    let direct = u14
        .iter()
        .filter(|id| {
            t14.get(**id)
                .map(|t| t.vector.directly_exploitable())
                .unwrap_or(false)
        })
        .count();
    let db = u14
        .iter()
        .filter(|id| {
            t14.get(**id)
                .map(|t| t.vector_class() == VectorClass::Database)
                .unwrap_or(false)
        })
        .count();
    let numeric = u14
        .iter()
        .filter(|id| t14.get(**id).map(|t| t.numeric).unwrap_or(false))
        .count();
    let n = u14.len().max(1);
    let _ = writeln!(
        out,
        "directly manipulable (GET/POST/COOKIE): {direct} ({:.0}%; paper: 36%)",
        100.0 * direct as f64 / n as f64
    );
    let _ = writeln!(
        out,
        "database-mediated: {db} ({:.0}%; paper: 62%)",
        100.0 * db as f64 / n as f64
    );
    let _ = writeln!(
        out,
        "numeric-intent vulnerable variables: {numeric} ({:.0}%; paper: 39%)",
        100.0 * numeric as f64 / n as f64
    );
    out
}

/// Renders every table and figure in one report (the `repro` binary's
/// default output; EXPERIMENTS.md records a run of this).
pub fn full_report(e: &Evaluation) -> String {
    let mut out = String::new();
    out.push_str(&table1(e, RecallMode::PaperOptimistic));
    out.push('\n');
    out.push_str(&table1(e, RecallMode::FullGroundTruth));
    out.push('\n');
    out.push_str(&fig2(e));
    out.push('\n');
    out.push_str(&table2(e));
    out.push('\n');
    out.push_str(&table3(e));
    out.push('\n');
    out.push_str(&oop_breakdown(e));
    out.push('\n');
    out.push_str(&inertia(e));
    out.push('\n');
    out.push_str(&root_cause(e));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn eval() -> &'static Evaluation {
        static EVAL: OnceLock<Evaluation> = OnceLock::new();
        EVAL.get_or_init(Evaluation::run)
    }

    #[test]
    fn venn_regions_partition_the_union() {
        for v in Version::ALL {
            let c = venn_counts(eval(), v);
            let sum = c.only_phpsafe
                + c.only_rips
                + c.only_pixy
                + c.phpsafe_rips
                + c.phpsafe_pixy
                + c.rips_pixy
                + c.all_three;
            assert_eq!(sum, c.total, "{v:?}");
            assert_eq!(c.total, eval().union_detected(v).len());
        }
    }

    #[test]
    fn each_tool_has_exclusive_findings_2012() {
        // Fig. 2: every tool contributes vulnerabilities the others miss.
        let c = venn_counts(eval(), Version::V2012);
        assert!(c.only_phpsafe > 0, "{c:?}");
        assert!(c.only_rips > 0, "{c:?}");
        assert!(c.only_pixy > 0, "{c:?}");
    }

    #[test]
    fn table2_db_dominates_2014() {
        let rows = table2_counts(eval());
        let get = |vc: VectorClass| rows.iter().find(|r| r.0 == vc).expect("row");
        let db = get(VectorClass::Database);
        let total: usize = rows.iter().map(|r| r.2).sum();
        assert!(
            db.2 as f64 / total as f64 > 0.5,
            "DB share 2014: {}/{total}",
            db.2
        );
        // GET outnumbers POST, as in the paper.
        assert!(get(VectorClass::Get).2 > get(VectorClass::Post).2);
    }

    #[test]
    fn inertia_share_in_paper_band() {
        let (total, carried, easy) = inertia_counts(eval());
        let share = carried as f64 / total as f64;
        assert!(
            (0.30..=0.55).contains(&share),
            "carried share {carried}/{total}"
        );
        assert!(easy > 0 && easy < carried);
    }

    #[test]
    fn reports_render_nonempty() {
        let e = eval();
        for s in [
            table1(e, RecallMode::PaperOptimistic),
            fig2(e),
            table2(e),
            table3(e),
            oop_breakdown(e),
            inertia(e),
            root_cause(e),
        ] {
            assert!(s.len() > 80, "report too short:\n{s}");
        }
    }

    #[test]
    fn full_report_contains_all_sections() {
        let r = full_report(eval());
        for needle in [
            "TABLE I.",
            "FIG. 2.",
            "TABLE II.",
            "TABLE III.",
            "§V.A",
            "§V.D",
            "§V.C",
        ] {
            assert!(r.contains(needle), "missing {needle}");
        }
    }
}
