//! Per-class evaluation of the vulnerability-class taxonomy (the three
//! extension classes plus the paper's two) over the dedicated taxonomy
//! corpus ([`phpsafe_corpus::Corpus::generate_taxonomy`]).
//!
//! The paper's corpus and its pinned aggregates (Tables I–III, Fig. 2)
//! are deliberately untouched: the extension classes are measured on
//! their own seeded plugin set, with the same exact oracle.

use crate::metrics::{pct, Metrics, RecallMode};
use crate::runner::{Evaluation, TOOLS};
use phpsafe_corpus::{Corpus, Version};
use std::fmt::Write as _;
use taint_config::VulnClass;

/// Runs the three tools over the taxonomy extension corpus.
pub fn run_taxonomy() -> Evaluation {
    Evaluation::run_with(Corpus::generate_taxonomy())
}

/// Per-class metrics of one tool on the taxonomy corpus (full
/// ground-truth recall — the seeded oracle is exhaustive by construction,
/// so the paper's optimistic union denominator is unnecessary here).
pub fn class_metrics(e: &Evaluation, tool: &str, version: Version, class: VulnClass) -> Metrics {
    e.metrics(tool, version, Some(class), RecallMode::FullGroundTruth)
}

/// Renders the per-class precision/recall table over the taxonomy corpus.
pub fn taxonomy_report(e: &Evaluation) -> String {
    let mut out = String::from(
        "TAXONOMY. PER-CLASS DETECTION ON THE EXTENSION CORPUS (full ground-truth FN)\n",
    );
    let _ = writeln!(
        out,
        "{:16}{:10}|{:>6}|{:>6}|{:>6}|{:>8}|{:>8}|{:>8}|",
        "Class", "Tool", "Truth", "TP", "FP", "Prec.", "Recall", "F-score"
    );
    for version in Version::ALL {
        let _ = writeln!(out, "-- {version} --");
        for class in VulnClass::ALL {
            let truth = e
                .corpus()
                .truth_for(version)
                .iter()
                .filter(|t| t.class == class)
                .count();
            for tool in TOOLS {
                let m = class_metrics(e, tool, version, class);
                let _ = writeln!(
                    out,
                    "{:16}{:10}|{:>6}|{:>6}|{:>6}|{:>8}|{:>8}|{:>8}|",
                    class.slug(),
                    tool,
                    truth,
                    m.tp,
                    m.fp,
                    pct(m.precision()),
                    pct(m.recall()),
                    pct(m.f_score())
                );
            }
        }
    }
    out
}

/// Publishes the `taxonomy.*` metric family from a taxonomy evaluation:
/// the registry size as a counter, and per class the 2014 ground-truth
/// size and phpSAFE's TP/FP counts as gauges (gauge names may be runtime
/// strings). No-op unless [`phpsafe_obs::set_enabled`] is on.
pub fn record_taxonomy_metrics(e: &Evaluation) {
    phpsafe_obs::count("taxonomy.classes", VulnClass::COUNT as u64);
    for class in VulnClass::ALL {
        let truth = e
            .corpus()
            .truth_for(Version::V2014)
            .iter()
            .filter(|t| t.class == class)
            .count();
        let m = class_metrics(e, "phpSAFE", Version::V2014, class);
        let slug = class.slug();
        phpsafe_obs::gauge(&format!("taxonomy.truth.{slug}"), truth as u64);
        phpsafe_obs::gauge(&format!("taxonomy.tp.{slug}"), m.tp as u64);
        phpsafe_obs::gauge(&format!("taxonomy.fp.{slug}"), m.fp as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn eval() -> &'static Evaluation {
        static EVAL: OnceLock<Evaluation> = OnceLock::new();
        EVAL.get_or_init(run_taxonomy)
    }

    #[test]
    fn phpsafe_has_perfect_recall_on_extension_classes() {
        let e = eval();
        for class in [
            VulnClass::CmdInjection,
            VulnClass::PathTraversal,
            VulnClass::Ssrf,
        ] {
            for v in Version::ALL {
                let m = class_metrics(e, "phpSAFE", v, class);
                assert_eq!(
                    m.recall(),
                    Some(1.0),
                    "{class:?} {v:?}: tp={} fn={}",
                    m.tp,
                    m.fn_
                );
            }
        }
    }

    #[test]
    fn phpsafe_respects_class_specific_sanitizers() {
        // escapeshellarg / basename / esc_url_raw negatives must not be
        // reported: per-class precision stays perfect.
        let e = eval();
        for class in [
            VulnClass::CmdInjection,
            VulnClass::PathTraversal,
            VulnClass::Ssrf,
        ] {
            for v in Version::ALL {
                let m = class_metrics(e, "phpSAFE", v, class);
                assert_eq!(m.fp, 0, "{class:?} {v:?} false positives");
            }
        }
    }

    #[test]
    fn wordpress_only_sinks_separate_the_tools() {
        // wp_redirect / wp_remote_get need the WordPress profile: phpSAFE
        // confirms strictly more SSRF findings than either baseline.
        let e = eval();
        for v in Version::ALL {
            let p = class_metrics(e, "phpSAFE", v, VulnClass::Ssrf).tp;
            let r = class_metrics(e, "RIPS", v, VulnClass::Ssrf).tp;
            let x = class_metrics(e, "Pixy", v, VulnClass::Ssrf).tp;
            assert!(p > r, "{v:?}: phpSAFE {p} vs RIPS {r}");
            assert!(p > x, "{v:?}: phpSAFE {p} vs Pixy {x}");
        }
    }

    #[test]
    fn report_covers_every_class_and_tool() {
        let text = taxonomy_report(eval());
        for class in VulnClass::ALL {
            assert!(text.contains(class.slug()), "missing {class:?}:\n{text}");
        }
        for tool in TOOLS {
            assert!(text.contains(tool), "missing {tool}");
        }
    }

    #[test]
    fn metric_keys_published() {
        phpsafe_obs::set_enabled(true);
        let before = phpsafe_obs::snapshot();
        record_taxonomy_metrics(eval());
        let delta = phpsafe_obs::snapshot().since(&before);
        phpsafe_obs::set_enabled(false);
        assert_eq!(delta.counter("taxonomy.classes"), VulnClass::COUNT as u64);
        for class in VulnClass::ALL {
            let slug = class.slug();
            assert!(
                delta.gauge(&format!("taxonomy.truth.{slug}")) > 0,
                "taxonomy.truth.{slug}"
            );
        }
        assert!(delta.gauge("taxonomy.tp.cmd-injection") > 0);
    }
}
