//! The flat-AST contract: nodes are arena indices (`ExprId`/`StmtId`) that
//! depend on parse order within one file, and slice pools store `(start,
//! len)` ranges — none of which may leak into rendered artifacts. Every
//! printed value must come from node *content* (names, literals, spans),
//! never from handle values, and the per-file arenas must produce the same
//! analysis whether files are parsed serially or by racing workers
//! (handles are file-local, so scheduling cannot renumber anything a
//! report shows). This test pins that down: Table I/II/III artifacts and
//! the `--explain` provenance chains must be byte-identical across worker
//! counts and across repeated runs against warm shared caches.

use phpsafe::{AnalyzerOptions, PhpSafe, PluginProject, SourceFile};
use phpsafe_corpus::Corpus;
use phpsafe_eval::{tables, Evaluation, RecallMode};

/// Renders every timing-free artifact into one string.
fn artifacts(e: &Evaluation) -> String {
    let mut out = String::new();
    out.push_str(&tables::table1(e, RecallMode::PaperOptimistic));
    out.push_str(&tables::table1(e, RecallMode::FullGroundTruth));
    out.push_str(&tables::fig2(e));
    out.push_str(&tables::table2(e));
    out.push_str(&tables::oop_breakdown(e));
    out.push_str(&tables::inertia(e));
    out.push_str(&tables::root_cause(e));
    out.push_str(&phpsafe_eval::table1_csv(e, RecallMode::PaperOptimistic));
    out
}

/// Renders the `--explain` provenance chains for a probe plugin. The taint
/// event stream exercises `print_expr` on arena handles at every source /
/// propagation / sink step, so a single mis-resolved id shows up here as a
/// wrong expression string.
fn explain_chains() -> String {
    let project = PluginProject::new("ast-inv-probe")
        .with_file(SourceFile::new(
            "ast_inv_entry.php",
            "<?php
            include 'ast_inv_lib.php';
            $id = $_GET['id'];
            $row = inv_helper($id);
            echo $row;
            class InvPage { public $title;
                function show() { echo $this->title; } }
            $p = new InvPage();
            $p->title = $_POST['t'];
            $p->show();
            ",
        ))
        .with_file(SourceFile::new(
            "ast_inv_lib.php",
            "<?php function inv_helper($x) { return 'v' . $x; }",
        ));
    phpsafe_obs::set_events_enabled(true);
    let _ = phpsafe_obs::drain_events();
    let outcome = PhpSafe::new()
        .with_options(AnalyzerOptions::default())
        .analyze(&project);
    let events: Vec<_> = phpsafe_obs::drain_events()
        .into_iter()
        .filter(|e| e.file.starts_with("ast_inv_"))
        .collect();
    phpsafe_obs::set_events_enabled(false);
    assert!(
        !outcome.vulns.is_empty(),
        "probe plugin must report vulnerabilities"
    );
    phpsafe::explain_outcome(&outcome, &events)
}

// One test function: the event buffer and the events-enabled flag are
// process-global, so the explain phase must not race the engine runs.
#[test]
fn artifacts_and_explain_identical_across_worker_counts() {
    // --- --explain chains: byte-stable across repeated runs ---
    let first = explain_chains();
    assert!(
        first.contains("source $_GET"),
        "expected a chain naming the superglobal source, got:\n{first}"
    );
    assert!(
        first.contains("reaches"),
        "expected a sink-hit line, got:\n{first}"
    );
    // A second run uses a warm interner and freshly built arenas; the
    // printed chains must not change byte-for-byte.
    let second = explain_chains();
    assert_eq!(first, second, "--explain chains diverged between runs");

    // --- Table I/II/III artifacts across schedules ---
    let corpus = Corpus::generate();

    // Serial first: one thread allocates every per-file arena in order.
    let serial = artifacts(&Evaluation::run_with(corpus.clone()));

    // One worker through the engine: same job order, shared parse cache.
    let one = artifacts(&Evaluation::run_engine_with(corpus.clone(), 1).0);

    // Eight workers: files parse in racing order; arenas are file-local,
    // so ids never renumber across schedules.
    let eight = artifacts(&Evaluation::run_engine_with(corpus.clone(), 8).0);

    assert_eq!(
        serial, one,
        "serial vs 1-worker artifacts diverged: an arena handle or range \
         leaked into rendered output"
    );
    assert_eq!(
        one, eight,
        "1-worker vs 8-worker artifacts diverged: parallel parsing \
         changed rendered output"
    );

    // Second 8-worker run against the warm shared parse/summary caches
    // must replay identically (cached ParsedFiles are shared via Arc).
    let eight_again = artifacts(&Evaluation::run_engine_with(corpus, 8).0);
    assert_eq!(eight, eight_again, "rerun with warm caches diverged");
}
