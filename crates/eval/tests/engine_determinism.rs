//! The engine contract: scheduling and caching may change *when* work
//! happens, never *what* comes out. The serial evaluation and the engine
//! evaluation at any worker count must agree on every result — and on
//! every rendered artifact that doesn't embed wall-clock time.

use phpsafe_corpus::{Corpus, Version};
use phpsafe_eval::{tables, Evaluation, RecallMode};

#[test]
fn engine_is_deterministic_and_matches_serial() {
    let corpus = Corpus::generate();
    let serial = Evaluation::run_with(corpus.clone());

    // Counters only record while the observability switch is on; the
    // snapshot returned by each run is a per-run delta, so runs don't
    // contaminate each other.
    phpsafe_obs::set_enabled(true);

    for workers in [1, 2, 8] {
        let (engine, snap) = Evaluation::run_engine_with(corpus.clone(), workers);

        for tool in phpsafe_eval::TOOLS {
            for version in Version::ALL {
                let s = serial.cell(tool, version);
                let e = engine.cell(tool, version);
                assert_eq!(s.detected, e.detected, "{tool}/{version:?} x{workers}");
                assert_eq!(
                    s.false_positives, e.false_positives,
                    "{tool}/{version:?} x{workers}"
                );
                assert_eq!(
                    (s.failed_resource, s.failed_unsupported),
                    (e.failed_resource, e.failed_unsupported),
                    "{tool}/{version:?} x{workers}"
                );
                assert_eq!(s.work_units, e.work_units, "{tool}/{version:?} x{workers}");
            }
        }

        // Every timing-free artifact is byte-identical (Table III embeds
        // seconds, so it is compared through the cell fields above).
        for (name, a, b) in [
            (
                "table1",
                tables::table1(&serial, RecallMode::PaperOptimistic),
                tables::table1(&engine, RecallMode::PaperOptimistic),
            ),
            ("fig2", tables::fig2(&serial), tables::fig2(&engine)),
            ("table2", tables::table2(&serial), tables::table2(&engine)),
            (
                "oop",
                tables::oop_breakdown(&serial),
                tables::oop_breakdown(&engine),
            ),
            (
                "inertia",
                tables::inertia(&serial),
                tables::inertia(&engine),
            ),
            (
                "rootcause",
                tables::root_cause(&serial),
                tables::root_cause(&engine),
            ),
        ] {
            assert_eq!(a, b, "artifact {name} differs at {workers} workers");
        }

        // The 3 tools × 2 versions see mostly identical file contents, so
        // the shared parse cache must demonstrate real reuse.
        assert_eq!(
            snap.counter("engine.jobs_run"),
            6 * corpus.plugins().len() as u64
        );
        assert!(
            snap.counter("cache.parse.hits") > snap.counter("cache.parse.misses"),
            "parse cache should be dominated by hits: {} hits / {} misses",
            snap.counter("cache.parse.hits"),
            snap.counter("cache.parse.misses")
        );
        assert!(
            snap.counter("cache.summary.hits") > 0,
            "pure-leaf summaries should carry across versions"
        );
    }

    phpsafe_obs::set_enabled(false);
}
