//! The taint-graph contract: `--taint-graph` swaps the analysis
//! *mechanics* — one recorded walk builds a whole-program graph, then
//! each vulnerability class becomes a source→sink reachability query —
//! but must never change a rendered byte. This test pins Table I/II,
//! Fig. 2, the §V robustness facts and the `--explain` provenance chains
//! byte-identical between the walker and the graph path, across worker
//! counts, and across a warm `--cache-dir` restart that answers from the
//! persisted graph without re-walking. Table III cells are wall-clock and
//! compared structurally (timings stripped).

use phpsafe::{EngineCaches, PhpSafe, PluginProject, SourceFile};
use phpsafe_corpus::Corpus;
use phpsafe_engine::DiskCache;
use phpsafe_eval::{tables, Evaluation, RecallMode};
use std::sync::Arc;

/// Renders every timing-free artifact into one string.
fn artifacts(e: &Evaluation) -> String {
    let mut out = String::new();
    out.push_str(&tables::table1(e, RecallMode::PaperOptimistic));
    out.push_str(&tables::table1(e, RecallMode::FullGroundTruth));
    out.push_str(&tables::fig2(e));
    out.push_str(&tables::table2(e));
    out.push_str(&tables::oop_breakdown(e));
    out.push_str(&tables::inertia(e));
    out.push_str(&tables::root_cause(e));
    out.push_str(&phpsafe_eval::table1_csv(e, RecallMode::PaperOptimistic));
    out
}

/// Table III with wall-clock numbers masked: structure, failed-file
/// counts and corpus sizes must match between analysis paths; seconds
/// never can.
fn table3_shape(e: &Evaluation) -> String {
    let mut out = String::new();
    for ch in tables::table3(e).chars() {
        out.push(ch);
    }
    // Mask every decimal number (timings and s/KLOC rates); integers
    // (failed-file counts, corpus sizes) stay.
    let mut masked = String::new();
    let mut chars = out.chars().peekable();
    let mut num = String::new();
    while let Some(c) = chars.next() {
        if c.is_ascii_digit() || (c == '.' && chars.peek().is_some_and(|n| n.is_ascii_digit())) {
            num.push(c);
            continue;
        }
        if !num.is_empty() {
            masked.push_str(if num.contains('.') { "#" } else { &num });
            num.clear();
        }
        masked.push(c);
    }
    if !num.is_empty() {
        masked.push_str(if num.contains('.') { "#" } else { &num });
    }
    masked
}

fn probe_project() -> PluginProject {
    PluginProject::new("graph-inv-probe")
        .with_file(SourceFile::new(
            "graph_inv_entry.php",
            "<?php
            include 'graph_inv_lib.php';
            $id = $_GET['id'];
            $row = ginv_helper($id);
            echo $row;
            mysql_query(\"SELECT * WHERE id = $id\");
            class GinvPage { public $title;
                function show() { echo $this->title; } }
            $p = new GinvPage();
            $p->title = $_POST['t'];
            $p->show();
            ",
        ))
        .with_file(SourceFile::new(
            "graph_inv_lib.php",
            "<?php function ginv_helper($x) { return 'v' . $x; }",
        ))
}

/// Renders the `--explain` provenance chains for the probe plugin with
/// the given tool, optionally through shared caches (the daemon's warm
/// path replays graph nodes as synthetic events).
fn explain_chains(tool: &PhpSafe, caches: Option<&EngineCaches>) -> String {
    let project = probe_project();
    phpsafe_obs::set_events_enabled(true);
    let _ = phpsafe_obs::drain_events();
    let outcome = tool.analyze_with_caches(&project, caches);
    let events: Vec<_> = phpsafe_obs::drain_events()
        .into_iter()
        .filter(|e| e.file.starts_with("graph_inv_"))
        .collect();
    phpsafe_obs::set_events_enabled(false);
    assert!(
        !outcome.vulns.is_empty(),
        "probe plugin must report vulnerabilities"
    );
    phpsafe::explain_outcome(&outcome, &events)
}

// One test function: the event buffer and the events-enabled flag are
// process-global, so the explain phase must not race the engine runs.
#[test]
fn graph_path_is_byte_identical_to_walker() {
    // --- --explain chains: walker vs graph, cold and warm ---
    let walker = PhpSafe::new();
    let graph = PhpSafe::new().with_taint_graph(true);
    let walked = explain_chains(&walker, None);
    assert!(
        walked.contains("source $_GET"),
        "expected a chain naming the superglobal source, got:\n{walked}"
    );
    let cold = explain_chains(&graph, None);
    assert_eq!(
        walked, cold,
        "--explain chains diverged between walker and cold graph build"
    );
    // A warm rerun against shared caches answers from the stored graph
    // and must replay the identical event stream.
    let caches = EngineCaches::new();
    let _ = explain_chains(&graph, Some(&caches));
    let warm = explain_chains(&graph, Some(&caches));
    assert_eq!(
        walked, warm,
        "--explain chains diverged on the warm graph path"
    );

    // --- Tables/figure across analysis paths and worker counts ---
    let corpus = Corpus::generate();

    let serial_walk = Evaluation::run_with(corpus.clone());
    let serial_graph = Evaluation::run_graph_with(corpus.clone());
    assert_eq!(
        artifacts(&serial_walk),
        artifacts(&serial_graph),
        "serial artifacts diverged between walker and graph paths"
    );
    assert_eq!(
        table3_shape(&serial_walk),
        table3_shape(&serial_graph),
        "Table III structure (failed files, corpus sizes) diverged"
    );

    let expected = artifacts(&serial_walk);
    let caches = EngineCaches::new();
    let one = Evaluation::run_engine_cached_graph(corpus.clone(), 1, &caches).0;
    assert_eq!(
        expected,
        artifacts(&one),
        "1-worker graph artifacts diverged from the serial walker"
    );
    let eight = Evaluation::run_engine_cached_graph(corpus.clone(), 8, &caches).0;
    assert_eq!(
        expected,
        artifacts(&eight),
        "8-worker graph artifacts diverged (scheduling leaked into output)"
    );

    // --- Warm --cache-dir restart: answered from the persisted graph ---
    let dir = std::env::temp_dir().join(format!("phpsafe-graph-inv-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    phpsafe_obs::set_enabled(true);
    let disk = Arc::new(DiskCache::open(&dir).unwrap());
    let cold_run =
        Evaluation::run_engine_cached_graph(corpus.clone(), 8, &EngineCaches::with_disk(disk)).0;
    assert_eq!(
        expected,
        artifacts(&cold_run),
        "disk-backed cold run diverged"
    );

    // Fresh process, in effect: new caches over the same directory.
    let disk2 = Arc::new(DiskCache::open(&dir).unwrap());
    let (warm_run, snap) = Evaluation::run_engine_cached_graph(
        corpus,
        8,
        &EngineCaches::with_disk(Arc::clone(&disk2)),
    );
    phpsafe_obs::set_enabled(false);
    assert_eq!(
        expected,
        artifacts(&warm_run),
        "warm cache-dir restart diverged from the cold walker artifacts"
    );
    assert!(
        snap.counter("dataflow.graph_hits") > 0,
        "warm restart must answer from stored graphs: {}",
        snap.to_json()
    );
    assert!(disk2.counters().hits >= 1, "{:?}", disk2.counters());

    let _ = std::fs::remove_dir_all(&dir);
}
