//! Incremental invariance: the daemon's `invalidate` and dirty-buffer
//! paths are pure *latency* optimizations — every reply must stay
//! byte-identical to a cold batch analysis of the same (effective)
//! contents, the evaluation tables must not move after an
//! invalidate-heavy daemon session, and `--explain` chains must match
//! between a cold analyzer and one warmed through an invalidate cycle.
//! The efficiency claim is asserted too: a single-file edit on the
//! 35-plugin corpus re-parses fewer than 5% of the corpus's files.

use phpsafe::{load_project, AnalysisServer, EngineCaches, PhpSafe, PluginProject, SourceFile};
use phpsafe_corpus::{Corpus, Version};
use phpsafe_engine::DiskCache;
use phpsafe_eval::{tables, Evaluation, RecallMode};
use phpsafe_serve::{parse, Daemon, InvalidateRequest, Json, RequestCtx, ServerConfig, Service};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("phpsafe-incr-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Writes every 2014 plugin of the corpus under `root` and returns the
/// plugin directories in corpus order.
fn dump_2014(corpus: &Corpus, root: &Path) -> Vec<PathBuf> {
    let mut dirs = Vec::new();
    for plugin in corpus.plugins() {
        let project = plugin.project(Version::V2014);
        let dir = root.join(project.name());
        for f in project.files() {
            let path = dir.join(&f.path);
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &f.content).unwrap();
        }
        dirs.push(dir);
    }
    dirs
}

fn analyze_line(paths: &[&Path]) -> String {
    Json::Obj(vec![
        ("cmd".to_owned(), Json::Str("analyze".into())),
        (
            "paths".to_owned(),
            Json::Arr(
                paths
                    .iter()
                    .map(|p| Json::Str(p.display().to_string()))
                    .collect(),
            ),
        ),
        ("jobs".to_owned(), Json::Num(1.0)),
    ])
    .emit()
}

fn buffered_analyze_line(dir: &Path, buffers: &[(String, String)]) -> String {
    Json::Obj(vec![
        ("cmd".to_owned(), Json::Str("analyze".into())),
        (
            "paths".to_owned(),
            Json::Arr(vec![Json::Str(dir.display().to_string())]),
        ),
        ("jobs".to_owned(), Json::Num(1.0)),
        (
            "buffers".to_owned(),
            Json::Obj(
                buffers
                    .iter()
                    .map(|(p, c)| (p.clone(), Json::Str(c.clone())))
                    .collect(),
            ),
        ),
    ])
    .emit()
}

fn invalidate_line(paths: &[PathBuf]) -> String {
    Json::Obj(vec![
        ("cmd".to_owned(), Json::Str("invalidate".into())),
        (
            "paths".to_owned(),
            Json::Arr(
                paths
                    .iter()
                    .map(|p| Json::Str(p.display().to_string()))
                    .collect(),
            ),
        ),
    ])
    .emit()
}

fn reports_of(response: &str) -> Vec<String> {
    let v = parse(response).unwrap();
    assert_eq!(
        v.get("ok"),
        Some(&Json::Bool(true)),
        "request failed: {response}"
    );
    v.get("result")
        .and_then(|r| r.get("reports"))
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .map(|item| {
            item.get("report")
                .and_then(Json::as_str)
                .unwrap()
                .to_owned()
        })
        .collect()
}

fn fully_cached(response: &str) -> bool {
    parse(response)
        .unwrap()
        .get("result")
        .and_then(|r| r.get("fully_cached"))
        == Some(&Json::Bool(true))
}

fn disk_server(cache_dir: &Path) -> AnalysisServer {
    let disk = Arc::new(DiskCache::open(cache_dir).unwrap());
    AnalysisServer::with_caches(EngineCaches::with_disk(disk)).with_default_jobs(1)
}

#[test]
fn single_file_edit_invalidates_under_five_percent_and_stays_byte_identical() {
    let corpus = Corpus::generate();
    let root = temp_dir("edit");
    let plugin_dirs = dump_2014(&corpus, &root.join("plugins"));
    let total_files: usize = corpus
        .plugins()
        .iter()
        .map(|p| p.project(Version::V2014).files().len())
        .sum();

    let daemon = Daemon::start(
        Arc::new(disk_server(&root.join("cache"))),
        ServerConfig::default(),
    );
    // Cold pass over the whole corpus; the daemon records per-root state
    // and builds one dependency graph per project.
    let mut cold = Vec::new();
    for dir in &plugin_dirs {
        cold.push(reports_of(&daemon.handle_line(&analyze_line(&[dir])).0));
    }

    // Edit one file of the largest plugin (append — stays valid PHP, the
    // content hash changes).
    let (victim, _) = plugin_dirs
        .iter()
        .zip(corpus.plugins())
        .max_by_key(|(_, p)| p.project(Version::V2014).files().len())
        .unwrap();
    let victim_index = plugin_dirs.iter().position(|d| d == victim).unwrap();
    let victim_project = load_project(victim).unwrap();
    let edited_rel = victim_project.files()[0].path.clone();
    let edited_path = victim.join(&edited_rel);
    let mut content = std::fs::read_to_string(&edited_path).unwrap();
    content.push_str("\n// touched by incremental test\n");
    std::fs::write(&edited_path, &content).unwrap();

    let (response, _) = daemon.handle_line(&invalidate_line(&[edited_path]));
    let v = parse(&response).unwrap();
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "got: {response}");
    let projects = v
        .get("result")
        .and_then(|r| r.get("projects"))
        .and_then(Json::as_arr)
        .unwrap();
    assert_eq!(projects.len(), 1, "one root affected: {response}");
    let item = &projects[0];
    let num = |k: &str| item.get(k).and_then(Json::as_num).unwrap() as usize;
    assert_eq!(num("dirty"), 1, "exactly one file changed: {response}");
    assert_eq!(item.get("reanalyzed"), Some(&Json::Bool(true)));
    let affected = num("affected");
    let reparsed = num("reparsed");
    assert!(affected >= 1, "the edited file is always affected");
    // The milestone: a one-file edit touches < 5% of the corpus's files —
    // both by the graph's affected set and by the *measured* re-parses.
    assert!(
        affected * 20 < total_files,
        "affected {affected} files of {total_files} — not incremental"
    );
    assert!(
        reparsed * 20 < total_files,
        "re-parsed {reparsed} files of {total_files} — not incremental"
    );

    // The invalidate re-warm already stored the new outcome: the next
    // analyze is a pure cache hit and byte-identical to a cold batch run
    // over the edited tree.
    let (warm, _) = daemon.handle_line(&analyze_line(&[victim]));
    assert!(fully_cached(&warm), "invalidate must pre-warm: {warm}");
    let batch = PhpSafe::new()
        .analyze(&load_project(victim).unwrap())
        .to_json()
        .unwrap();
    assert_eq!(reports_of(&warm)[0], batch, "warm reply diverged");

    // Untouched plugins still answer from cache, bytes unchanged.
    for (di, dir) in plugin_dirs.iter().enumerate().take(3) {
        if di == victim_index {
            continue;
        }
        let (response, _) = daemon.handle_line(&analyze_line(&[dir]));
        assert!(fully_cached(&response), "unrelated plugin lost its cache");
        assert_eq!(reports_of(&response), cold[di]);
    }
    daemon.shutdown();
    daemon.join();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn dirty_buffer_overlay_is_byte_identical_to_saving_the_edit() {
    let root = temp_dir("buffer");
    let plugin = root.join("plugins").join("probe");
    let original = "<?php echo $_GET['q'];\n";
    let edited = "<?php echo htmlentities($_GET['q']);\n";
    std::fs::create_dir_all(&plugin).unwrap();
    std::fs::write(plugin.join("index.php"), original).unwrap();

    let daemon = Daemon::start(
        Arc::new(disk_server(&root.join("cache"))),
        ServerConfig::default(),
    );
    let (cold, _) = daemon.handle_line(&analyze_line(&[&plugin]));
    let cold_report = reports_of(&cold)[0].clone();

    // Analyze with the edit held only in an unsaved buffer.
    let buffers = vec![(
        plugin.join("index.php").display().to_string(),
        edited.to_owned(),
    )];
    let (overlaid, _) = daemon.handle_line(&buffered_analyze_line(&plugin, &buffers));
    assert!(!fully_cached(&overlaid), "new buffer contents must analyze");
    let overlaid_report = reports_of(&overlaid)[0].clone();

    // Reference: the same edit saved to a directory of the same name.
    let alt = root.join("alt").join("probe");
    std::fs::create_dir_all(&alt).unwrap();
    std::fs::write(alt.join("index.php"), edited).unwrap();
    let batch = PhpSafe::new()
        .analyze(&load_project(&alt).unwrap())
        .to_json()
        .unwrap();
    assert_eq!(
        overlaid_report, batch,
        "buffer overlay must match the saved edit byte for byte"
    );

    // The overlaid outcome is keyed on effective contents: repeating the
    // same buffered request is a pure cache hit with identical bytes.
    let (again, _) = daemon.handle_line(&buffered_analyze_line(&plugin, &buffers));
    assert!(fully_cached(&again), "same buffers must hit the cache");
    assert_eq!(reports_of(&again)[0], overlaid_report);

    // Dropping the buffer falls back to the unchanged on-disk contents.
    let (disk_again, _) = daemon.handle_line(&analyze_line(&[&plugin]));
    assert!(fully_cached(&disk_again));
    assert_eq!(reports_of(&disk_again)[0], cold_report);
    daemon.shutdown();
    daemon.join();
    let _ = std::fs::remove_dir_all(&root);
}

/// A probe plugin whose files cross-reference through an include and a
/// function call, with paths prefixed `inc_` so event filtering stays
/// immune to concurrent tests in this binary.
fn probe_project() -> PluginProject {
    PluginProject::new("inc-probe")
        .with_file(SourceFile::new(
            "inc_main.php",
            "<?php require 'inc_lib.php'; echo inc_render($_GET['q']);\n",
        ))
        .with_file(SourceFile::new(
            "inc_lib.php",
            "<?php function inc_render($s) { return $s; }\n",
        ))
}

fn explain_chains(
    tool: &PhpSafe,
    project: &PluginProject,
    caches: Option<&EngineCaches>,
) -> String {
    phpsafe_obs::set_events_enabled(true);
    let _ = phpsafe_obs::drain_events();
    let outcome = tool.analyze_with_caches(project, caches);
    let events: Vec<_> = phpsafe_obs::drain_events()
        .into_iter()
        .filter(|e| e.file.starts_with("inc_"))
        .collect();
    phpsafe_obs::set_events_enabled(false);
    assert!(
        !outcome.vulns.is_empty(),
        "probe plugin must report vulnerabilities"
    );
    phpsafe::explain_outcome(&outcome, &events)
}

#[test]
fn explain_chains_match_between_cold_and_invalidate_warmed_analyzers() {
    let root = temp_dir("explain");
    let dir = root.join("plugins").join("inc-probe");
    let project = probe_project();
    for f in project.files() {
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(&f.path), &f.content).unwrap();
    }

    let server = disk_server(&root.join("cache"));
    let ctx = RequestCtx::detached();
    server
        .analyze(
            &ctx,
            &phpsafe_serve::AnalyzeRequest {
                paths: vec![dir.display().to_string()],
                tools: Vec::new(),
                jobs: Some(1),
                buffers: Vec::new(),
            },
        )
        .unwrap();

    // Edit the library, run an invalidate cycle, then compare explain
    // chains of a cold analyzer vs one using the invalidate-warmed caches.
    std::fs::write(
        dir.join("inc_lib.php"),
        "<?php function inc_render($s) { return strval($s); }\n",
    )
    .unwrap();
    server
        .invalidate(
            &ctx,
            &InvalidateRequest {
                paths: vec![dir.join("inc_lib.php").display().to_string()],
            },
        )
        .unwrap();

    let edited = load_project(&dir).unwrap();
    let tool = PhpSafe::new();
    let cold = explain_chains(&tool, &edited, None);
    let warmed = explain_chains(&tool, &edited, Some(server.caches()));
    assert_eq!(
        cold, warmed,
        "--explain chains must not depend on how the caches were warmed"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn tables_survive_an_incremental_daemon_session() {
    let root = temp_dir("tables");
    let cache_dir = root.join("cache");
    let run = || {
        let disk = Arc::new(DiskCache::open(&cache_dir).unwrap());
        Evaluation::run_engine_cached(Corpus::generate(), 2, &EngineCaches::with_disk(disk)).0
    };
    let cold = run();

    // An invalidate-heavy daemon session sharing the same cache dir:
    // analyze, edit, invalidate, re-analyze one dumped plugin.
    let corpus = Corpus::generate();
    let plugin_dirs = dump_2014(&corpus, &root.join("plugins"));
    let dir = &plugin_dirs[0];
    let daemon = Daemon::start(Arc::new(disk_server(&cache_dir)), ServerConfig::default());
    daemon.handle_line(&analyze_line(&[dir]));
    let edited = dir.join(load_project(dir).unwrap().files()[0].path.clone());
    let mut content = std::fs::read_to_string(&edited).unwrap();
    content.push_str("\n// table session edit\n");
    std::fs::write(&edited, content).unwrap();
    daemon.handle_line(&invalidate_line(&[edited]));
    daemon.handle_line(&analyze_line(&[dir]));
    daemon.shutdown();
    daemon.join();

    // The session must not have disturbed what the evaluation reads.
    let warm = run();
    assert_eq!(
        tables::table1(&cold, RecallMode::PaperOptimistic),
        tables::table1(&warm, RecallMode::PaperOptimistic),
        "Table I changed after an incremental daemon session"
    );
    assert_eq!(
        tables::table2(&cold),
        tables::table2(&warm),
        "Table II changed after an incremental daemon session"
    );
    assert_eq!(
        tables::fig2(&cold),
        tables::fig2(&warm),
        "Fig. 2 changed after an incremental daemon session"
    );
    let _ = std::fs::remove_dir_all(&root);
}
