//! The observability contract: instrumentation may watch the pipeline,
//! never steer it. Every deterministic artifact must be byte-identical
//! whether the metrics/span switch and the taint-event stream are on,
//! off, or toggled between runs.

use phpsafe_corpus::Corpus;
use phpsafe_eval::{tables, Evaluation, RecallMode};

/// Renders every timing-free artifact into one string.
fn artifacts(e: &Evaluation) -> String {
    let mut out = String::new();
    out.push_str(&tables::table1(e, RecallMode::PaperOptimistic));
    out.push_str(&tables::table1(e, RecallMode::FullGroundTruth));
    out.push_str(&tables::fig2(e));
    out.push_str(&tables::table2(e));
    out.push_str(&tables::oop_breakdown(e));
    out.push_str(&tables::inertia(e));
    out.push_str(&tables::root_cause(e));
    out.push_str(&phpsafe_eval::table1_csv(e, RecallMode::PaperOptimistic));
    out
}

#[test]
fn artifacts_identical_with_and_without_instrumentation() {
    let corpus = Corpus::generate();

    phpsafe_obs::set_enabled(false);
    phpsafe_obs::set_events_enabled(false);
    let dark = artifacts(&Evaluation::run_engine_with(corpus.clone(), 4).0);

    phpsafe_obs::set_enabled(true);
    phpsafe_obs::set_events_enabled(true);
    let lit_eval = Evaluation::run_engine_with(corpus.clone(), 4).0;
    let lit = artifacts(&lit_eval);
    phpsafe_obs::set_enabled(false);
    phpsafe_obs::set_events_enabled(false);
    phpsafe_obs::drain_events();

    assert_eq!(
        dark, lit,
        "instrumentation changed a rendered artifact byte-for-byte"
    );

    // And the serial path, for completeness: instrumentation must not
    // perturb the uncached single-thread run either.
    let serial_dark = artifacts(&Evaluation::run_with(corpus.clone()));
    phpsafe_obs::set_enabled(true);
    let serial_lit = artifacts(&Evaluation::run_with(corpus));
    phpsafe_obs::set_enabled(false);
    assert_eq!(serial_dark, serial_lit);
}
