//! Property tests for the oracle and metrics: matching is sound (every TP
//! corresponds to a ground-truth entry), counting is conserved, and the
//! two recall modes relate the way theory says they must.

use phpsafe::{AnalysisOutcome, Vulnerability};
use phpsafe_corpus::{GroundTruthEntry, Version};
use phpsafe_eval::{verify, Metrics};
use proptest::prelude::*;
use taint_config::{SourceKind, VulnClass};

fn class_strategy() -> impl Strategy<Value = VulnClass> {
    prop_oneof![Just(VulnClass::Xss), Just(VulnClass::Sqli)]
}

fn truth_strategy() -> impl Strategy<Value = GroundTruthEntry> {
    (0u32..4, 1u32..60, class_strategy(), any::<bool>()).prop_map(|(file, line, class, oop)| {
        GroundTruthEntry {
            id: format!("gt-{file}-{line}-{class:?}"),
            plugin: "p".into(),
            version: Version::V2012,
            class,
            vector: SourceKind::Get,
            file: format!("f{file}.php"),
            line: line * 5, // spaced so tolerance windows never overlap
            oop,
            carried: false,
            numeric: false,
        }
    })
}

fn report_strategy() -> impl Strategy<Value = Vulnerability> {
    (0u32..4, 1u32..300, class_strategy()).prop_map(|(file, line, class)| Vulnerability {
        class,
        file: format!("f{file}.php"),
        line,
        sink: "echo".into(),
        var: "$x".into(),
        source_kind: SourceKind::Get,
        labels: taint_config::TaintLabels::single(SourceKind::Get),
        via_oop: false,
        numeric_hint: false,
        trace: vec![],
    })
}

fn outcome(vulns: Vec<Vulnerability>) -> AnalysisOutcome {
    AnalysisOutcome {
        tool: "t".into(),
        plugin: "p".into(),
        vulns,
        files: vec![],
        stats: Default::default(),
    }
}

proptest! {
    /// Every report is classified exactly once: TP ids + FP reports
    /// account for all reports (up to duplicate-TP merging).
    #[test]
    fn verification_conserves_reports(
        truths in prop::collection::vec(truth_strategy(), 0..12),
        reports in prop::collection::vec(report_strategy(), 0..24),
    ) {
        let refs: Vec<&GroundTruthEntry> = truths.iter().collect();
        let o = outcome(reports.clone());
        let m = verify(&o, &refs);
        prop_assert!(m.tp() + m.fp() <= reports.len());
        // Every detected id exists in ground truth.
        for id in &m.detected {
            prop_assert!(truths.iter().any(|t| &t.id == id));
        }
        // Every FP report genuinely misses all ground truth by >1 line or
        // class or file.
        for fpv in &m.false_positives {
            for t in &truths {
                let hit = fpv.class == t.class
                    && fpv.file == t.file
                    && fpv.line.abs_diff(t.line) <= 1;
                prop_assert!(!hit, "fp {fpv:?} actually hits {t:?}");
            }
        }
    }

    /// An empty report set yields no TPs and no FPs.
    #[test]
    fn empty_reports_verify_empty(truths in prop::collection::vec(truth_strategy(), 0..12)) {
        let refs: Vec<&GroundTruthEntry> = truths.iter().collect();
        let m = verify(&outcome(vec![]), &refs);
        prop_assert_eq!(m.tp(), 0);
        prop_assert_eq!(m.fp(), 0);
    }

    /// Reporting the exact ground truth yields 100% precision and recall.
    #[test]
    fn perfect_reports_verify_perfect(truths in prop::collection::vec(truth_strategy(), 1..12)) {
        // Deduplicate ids (strategy can collide on (file, line, class)).
        let mut seen = std::collections::HashSet::new();
        let truths: Vec<GroundTruthEntry> =
            truths.into_iter().filter(|t| seen.insert(t.id.clone())).collect();
        let refs: Vec<&GroundTruthEntry> = truths.iter().collect();
        let reports: Vec<Vulnerability> = truths
            .iter()
            .map(|t| Vulnerability {
                class: t.class,
                file: t.file.clone(),
                line: t.line,
                sink: "echo".into(),
                var: "$x".into(),
                source_kind: t.vector,
                labels: taint_config::TaintLabels::single(t.vector),
                via_oop: t.oop,
                numeric_hint: false,
                trace: vec![],
            })
            .collect();
        let m = verify(&outcome(reports), &refs);
        prop_assert_eq!(m.tp(), truths.len());
        prop_assert_eq!(m.fp(), 0);
        let metrics = Metrics::new(m.tp(), m.fp(), 0);
        prop_assert_eq!(metrics.precision(), Some(1.0));
        prop_assert_eq!(metrics.recall(), Some(1.0));
        prop_assert_eq!(metrics.f_score(), Some(1.0));
    }

    /// Paper-optimistic recall is never lower than full-ground-truth
    /// recall for the same tool (the optimistic denominator is a subset).
    #[test]
    fn optimistic_recall_dominates(tp in 0usize..100, others in 0usize..100, gt_extra in 0usize..100) {
        // union-detected = tp + others; full GT = tp + others + gt_extra.
        let optimistic = Metrics::new(tp, 0, others);
        let full = Metrics::new(tp, 0, others + gt_extra);
        match (optimistic.recall(), full.recall()) {
            (Some(o), Some(f)) => prop_assert!(o >= f - 1e-12),
            (None, None) => {}
            (Some(_), None) | (None, Some(_)) => {
                // Defined-ness may differ only when there is nothing to
                // find in one denominator.
                prop_assert!(tp + others == 0 || tp + others + gt_extra == 0);
            }
        }
    }
}
