//! Daemon invariance: responses from `phpsafe serve`'s service layer must
//! be byte-identical to batch analysis of the same plugins — including
//! after a warm restart that answers purely from the on-disk artifact
//! cache — and the evaluation tables must be byte-identical between a
//! cold run and a warm-from-disk run. A corrupted cache must degrade to
//! re-analysis, never to wrong answers.

use phpsafe::{load_project, AnalysisOutcome, AnalysisServer, EngineCaches, PhpSafe, ServeTool};
use phpsafe_baselines::paper_tools;
use phpsafe_corpus::{Corpus, Version};
use phpsafe_engine::{fnv1a_64, DiskCache};
use phpsafe_eval::{tables, Evaluation, RecallMode};
use phpsafe_serve::{parse, Daemon, Json, ServerConfig};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("phpsafe-serve-inv-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Writes every 2014 plugin of the corpus under `root` (the corpus-dump
/// layout) and returns the plugin directories in corpus order.
fn dump_2014(corpus: &Corpus, root: &Path) -> Vec<PathBuf> {
    let mut dirs = Vec::new();
    for plugin in corpus.plugins() {
        let project = plugin.project(Version::V2014);
        let dir = root.join(project.name());
        for f in project.files() {
            let path = dir.join(&f.path);
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &f.content).unwrap();
        }
        dirs.push(dir);
    }
    dirs
}

fn analyze_line(paths: &[&Path], tools: &[&str]) -> String {
    let mut fields = vec![
        ("cmd".to_owned(), Json::Str("analyze".into())),
        (
            "paths".to_owned(),
            Json::Arr(
                paths
                    .iter()
                    .map(|p| Json::Str(p.display().to_string()))
                    .collect(),
            ),
        ),
        ("jobs".to_owned(), Json::Num(2.0)),
    ];
    if !tools.is_empty() {
        fields.push((
            "tools".to_owned(),
            Json::Arr(tools.iter().map(|t| Json::Str((*t).into())).collect()),
        ));
    }
    Json::Obj(fields).emit()
}

/// Extracts the embedded report strings of one analyze response.
fn reports_of(response: &str) -> Vec<String> {
    let v = parse(response).unwrap();
    assert_eq!(
        v.get("ok"),
        Some(&Json::Bool(true)),
        "analyze failed: {response}"
    );
    v.get("result")
        .and_then(|r| r.get("reports"))
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .map(|item| {
            item.get("report")
                .and_then(Json::as_str)
                .unwrap()
                .to_owned()
        })
        .collect()
}

fn fully_cached(response: &str) -> bool {
    parse(response)
        .unwrap()
        .get("result")
        .and_then(|r| r.get("fully_cached"))
        == Some(&Json::Bool(true))
}

fn disk_server(cache_dir: &Path) -> (Arc<DiskCache>, AnalysisServer) {
    let disk = Arc::new(DiskCache::open(cache_dir).unwrap());
    let server = AnalysisServer::with_caches(EngineCaches::with_disk(Arc::clone(&disk)))
        .with_default_jobs(2);
    (disk, server)
}

#[test]
fn daemon_reports_match_batch_and_survive_warm_restart() {
    let corpus = Corpus::generate();
    let root = temp_dir("restart");
    let plugin_dirs = dump_2014(&corpus, &root.join("plugins"));
    let cache_dir = root.join("cache");

    // Cold daemon: every report must equal a direct batch analysis.
    let (_, server) = disk_server(&cache_dir);
    let daemon = Daemon::start(Arc::new(server), ServerConfig::default());
    let tool = PhpSafe::new();
    let mut cold = Vec::new();
    for dir in &plugin_dirs {
        let (response, _) = daemon.handle_line(&analyze_line(&[dir], &[]));
        let reports = reports_of(&response);
        assert_eq!(reports.len(), 1);
        let batch = tool.analyze(&load_project(dir).unwrap()).to_json().unwrap();
        assert_eq!(reports[0], batch, "daemon diverged for {}", dir.display());
        cold.push(reports[0].clone());
    }
    daemon.shutdown();
    daemon.join();

    // Fresh daemon process over the same cache dir: answers must come
    // from disk and stay byte-identical.
    let (disk, server) = disk_server(&cache_dir);
    let daemon = Daemon::start(Arc::new(server), ServerConfig::default());
    for (dir, cold_report) in plugin_dirs.iter().zip(&cold) {
        let (response, _) = daemon.handle_line(&analyze_line(&[dir], &[]));
        assert!(
            fully_cached(&response),
            "warm restart missed the outcome cache for {}",
            dir.display()
        );
        assert_eq!(&reports_of(&response)[0], cold_report);
    }
    assert!(disk.counters().hits > 0, "disk tier never hit");
    daemon.shutdown();
    daemon.join();
    let _ = std::fs::remove_dir_all(&root);
}

/// Adapts the evaluation's `AnalysisTool`s (RIPS, Pixy) to the daemon's
/// tool registry.
struct Adapter(Box<dyn phpsafe_baselines::AnalysisTool>);

impl ServeTool for Adapter {
    fn fingerprint(&self) -> u64 {
        fnv1a_64(self.0.name().as_bytes())
    }

    fn analyze_cached(
        &self,
        project: &phpsafe::PluginProject,
        caches: &EngineCaches,
    ) -> AnalysisOutcome {
        self.0.analyze_cached(project, caches)
    }
}

#[test]
fn daemon_dispatches_all_three_paper_tools() {
    let corpus = Corpus::generate();
    let root = temp_dir("tools");
    let plugin_dirs = dump_2014(&corpus, &root.join("plugins"));
    let dir = &plugin_dirs[0];

    let mut server = AnalysisServer::new().with_default_jobs(2);
    for tool in paper_tools() {
        server.register(tool.name().to_owned(), Box::new(Adapter(tool)));
    }
    let daemon = Daemon::start(Arc::new(server), ServerConfig::default());
    let (response, _) = daemon.handle_line(&analyze_line(&[dir], &["phpSAFE", "RIPS", "Pixy"]));
    let reports = reports_of(&response);
    assert_eq!(reports.len(), 3);

    let project = load_project(dir).unwrap();
    let caches = EngineCaches::new();
    for (tool, report) in paper_tools().iter().zip(&reports) {
        let direct = tool.analyze_cached(&project, &caches).to_json().unwrap();
        assert_eq!(report, &direct, "daemon diverged for {}", tool.name());
    }
    daemon.shutdown();
    daemon.join();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn tables_are_byte_identical_cold_vs_warm_disk() {
    let root = temp_dir("tables");
    let cache_dir = root.join("cache");
    let run = || {
        let disk = Arc::new(DiskCache::open(&cache_dir).unwrap());
        Evaluation::run_engine_cached(Corpus::generate(), 2, &EngineCaches::with_disk(disk)).0
    };
    let cold = run();
    let warm = run();
    assert_eq!(
        tables::table1(&cold, RecallMode::PaperOptimistic),
        tables::table1(&warm, RecallMode::PaperOptimistic),
        "Table I changed across a warm-from-disk restart"
    );
    assert_eq!(
        tables::table2(&cold),
        tables::table2(&warm),
        "Table II changed across a warm-from-disk restart"
    );
    assert_eq!(
        tables::fig2(&cold),
        tables::fig2(&warm),
        "Fig. 2 changed across a warm-from-disk restart"
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// Overwrites the tail of every cache file with garbage (keeping a valid
/// magic prefix in place so the corruption is in the payload, not just
/// the header).
fn garble_dir(dir: &Path) -> usize {
    let mut garbled = 0;
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if path.is_dir() {
            garbled += garble_dir(&path);
        } else {
            let mut bytes = std::fs::read(&path).unwrap();
            let start = bytes.len() / 2;
            for b in &mut bytes[start..] {
                *b = 0xFF;
            }
            std::fs::write(&path, &bytes).unwrap();
            garbled += 1;
        }
    }
    garbled
}

#[test]
fn corrupted_cache_files_fall_back_to_reanalysis() {
    let corpus = Corpus::generate();
    let root = temp_dir("corrupt");
    let plugin_dirs = dump_2014(&corpus, &root.join("plugins"));
    let dir = &plugin_dirs[0];
    let cache_dir = root.join("cache");

    let (_, server) = disk_server(&cache_dir);
    let daemon = Daemon::start(Arc::new(server), ServerConfig::default());
    let (cold_response, _) = daemon.handle_line(&analyze_line(&[dir], &[]));
    let cold = reports_of(&cold_response);
    daemon.shutdown();
    daemon.join();

    assert!(garble_dir(&cache_dir) > 0, "cache dir is empty");

    let (disk, server) = disk_server(&cache_dir);
    let daemon = Daemon::start(Arc::new(server), ServerConfig::default());
    let (response, _) = daemon.handle_line(&analyze_line(&[dir], &[]));
    assert!(
        !fully_cached(&response),
        "corrupt outcome entry must not count as a cache hit"
    );
    assert_eq!(
        reports_of(&response),
        cold,
        "fallback re-analysis diverged from the cold run"
    );
    assert!(
        disk.counters().corrupt > 0,
        "corruption must be counted, not silent: {:?}",
        disk.counters()
    );
    daemon.shutdown();
    daemon.join();
    let _ = std::fs::remove_dir_all(&root);
}
