//! The interning contract: `Symbol` ids are assigned in first-intern
//! order, which differs between a serial run and any parallel schedule
//! — so no id may ever leak into a rendered artifact. Everything the
//! pipeline prints must go through `Symbol::as_str()`/`Display`, and
//! every map keyed by symbols must produce order-independent joins.
//! This test pins that down: the full artifact set must be
//! byte-identical across worker counts and across repeated runs (which
//! reuse the already-populated global arena, shifting every id).

use phpsafe_corpus::Corpus;
use phpsafe_eval::{tables, Evaluation, RecallMode};

/// Renders every timing-free artifact into one string.
fn artifacts(e: &Evaluation) -> String {
    let mut out = String::new();
    out.push_str(&tables::table1(e, RecallMode::PaperOptimistic));
    out.push_str(&tables::table1(e, RecallMode::FullGroundTruth));
    out.push_str(&tables::fig2(e));
    out.push_str(&tables::table2(e));
    out.push_str(&tables::oop_breakdown(e));
    out.push_str(&tables::inertia(e));
    out.push_str(&tables::root_cause(e));
    out.push_str(&phpsafe_eval::table1_csv(e, RecallMode::PaperOptimistic));
    out
}

#[test]
fn artifacts_identical_across_worker_counts_and_intern_order() {
    let corpus = Corpus::generate();

    // Serial first: this populates the interner arena in source order.
    let serial = artifacts(&Evaluation::run_with(corpus.clone()));

    // One worker through the engine: same schedule order as serial jobs,
    // but a warm arena — every Symbol id differs from a cold process.
    let one = artifacts(&Evaluation::run_engine_with(corpus.clone(), 1).0);

    // Eight workers: nondeterministic intern interleaving across threads.
    let eight = artifacts(&Evaluation::run_engine_with(corpus.clone(), 8).0);

    assert_eq!(
        serial, one,
        "serial vs 1-worker artifacts diverged: a Symbol id or map \
         iteration order leaked into rendered output"
    );
    assert_eq!(
        one, eight,
        "1-worker vs 8-worker artifacts diverged: parallel interning \
         changed rendered output"
    );

    // Second 8-worker run on the now fully-warm arena must also agree.
    let eight_again = artifacts(&Evaluation::run_engine_with(corpus, 8).0);
    assert_eq!(eight, eight_again, "rerun with warm arena diverged");
}
