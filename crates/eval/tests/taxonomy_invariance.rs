//! Taxonomy invariance: registering the extension vulnerability classes
//! (command injection, path traversal, SSRF) must not move a byte of the
//! paper-class results. Analyzing the paper-shape corpus with the full
//! five-class registry and with the registry restricted to the paper's
//! two classes must produce identical outcomes — and therefore identical
//! Table I/II/III, Fig. 2 and `--explain` artifacts, which are all pure
//! functions of those outcomes.
//!
//! One test function on purpose: the explain phase toggles the global
//! taint-event stream, which must not interleave with a concurrently
//! running analysis from a sibling test.

use phpsafe::{explain_outcome, PhpSafe};
use phpsafe_corpus::{Corpus, Version};
use taint_config::VulnClass;

#[test]
fn paper_class_artifacts_survive_registry_extension() {
    let corpus = Corpus::generate();
    let full = PhpSafe::new();
    let restricted_config = full.config().restricted_to(&VulnClass::PAPER);
    let restricted = PhpSafe::new().with_config(restricted_config);

    // Phase 1: every outcome over the paper-shape corpus is identical —
    // the extension sinks never fire there, and labels/traces of the
    // paper classes are untouched by the registry extension.
    for plugin in corpus.plugins() {
        for v in Version::ALL {
            let a = full.analyze(plugin.project(v));
            let b = restricted.analyze(plugin.project(v));
            assert_eq!(a, b, "outcome drifted: {} {v:?}", plugin.name);
        }
    }

    // Phase 2: --explain chains for a vulnerable plugin are byte-identical
    // and carry no taxonomy tag (the `[slug ← labels]` marker is reserved
    // for extension-class findings).
    let plugin = corpus
        .plugins()
        .iter()
        .find(|p| !full.analyze(p.project(Version::V2014)).vulns.is_empty())
        .expect("a vulnerable 2014 plugin");
    phpsafe_obs::set_events_enabled(true);
    phpsafe_obs::drain_events();
    let outcome_full = full.analyze(plugin.project(Version::V2014));
    let events_full = phpsafe_obs::drain_events();
    let outcome_restricted = restricted.analyze(plugin.project(Version::V2014));
    let events_restricted = phpsafe_obs::drain_events();
    phpsafe_obs::set_events_enabled(false);

    let text_full = explain_outcome(&outcome_full, &events_full);
    let text_restricted = explain_outcome(&outcome_restricted, &events_restricted);
    assert!(
        text_full.contains("reaches sink"),
        "explain produced no chain:\n{text_full}"
    );
    assert_eq!(text_full, text_restricted, "--explain bytes drifted");
    assert!(
        !text_full.contains('←'),
        "paper-class chains must not carry the taxonomy tag:\n{text_full}"
    );
}
