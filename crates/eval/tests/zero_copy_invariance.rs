//! The zero-copy warm-path and per-function parallelism gate: an analysis
//! must be byte-identical no matter how its ASTs arrived (cold parse,
//! PAST v1 streaming decode, ZAST v2 borrowed view) and no matter how its
//! work was scheduled (serial, 1 or 8 engine workers, per-file or
//! per-function jobs). The `ast` disk namespace is a cost channel only:
//! corrupting, mixing or deleting entries may slow a run down but can
//! never change a table, a figure or an `--explain` chain.

use phpsafe::caching::{AST_FINGERPRINT, AST_NAMESPACE};
use phpsafe::{EngineCaches, PhpSafe, PluginProject, SourceFile};
use phpsafe_corpus::Corpus;
use phpsafe_engine::{ContentKey, DiskCache};
use phpsafe_eval::{tables, Evaluation, RecallMode};
use std::path::PathBuf;
use std::sync::Arc;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("phpsafe-zcinv-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A multi-file probe with real findings, shareable leaf functions (the
/// per-function pass picks those up), an include edge, and a class — so
/// every load path exercises non-trivial arenas.
fn probe_project() -> PluginProject {
    PluginProject::new("zc-probe")
        .with_file(SourceFile::new(
            "zc_entry.php",
            "<?php
            include 'zc_lib.php';
            $id = $_GET['id'];
            echo zc_tag($id);
            $q = \"SELECT * FROM t WHERE id = '$id'\";
            mysql_query($q);
            class ZcPage { public $title;
                function show() { echo $this->title; } }
            $p = new ZcPage();
            $p->title = $_POST['t'];
            $p->show();
            ",
        ))
        .with_file(SourceFile::new(
            "zc_lib.php",
            "<?php
            function zc_tag($x) { return '<b>' . $x . '</b>'; }
            function zc_leaf($a, $b) { $s = strtolower($a) . trim($b); return $s; }
            function zc_leaf2($v) { if (is_array($v)) { return count($v); } return strlen($v); }
            function zc_hook() { return zc_leaf('a', 'b'); }
            ",
        ))
}

/// Renders every timing-free artifact into one string (Table I both
/// recall modes, Fig. 2, Table II, and the derived breakdowns).
fn artifacts(e: &Evaluation) -> String {
    let mut out = String::new();
    out.push_str(&tables::table1(e, RecallMode::PaperOptimistic));
    out.push_str(&tables::table1(e, RecallMode::FullGroundTruth));
    out.push_str(&tables::fig2(e));
    out.push_str(&tables::table2(e));
    out.push_str(&tables::oop_breakdown(e));
    out.push_str(&tables::inertia(e));
    out.push_str(&tables::root_cause(e));
    out
}

/// The `--explain` provenance chains of the probe under a given tool and
/// cache set. Exercises arena-handle printing on whatever AST objects the
/// load path produced.
fn explain_chains(
    tool: &PhpSafe,
    project: &PluginProject,
    caches: Option<&EngineCaches>,
) -> String {
    phpsafe_obs::set_events_enabled(true);
    let _ = phpsafe_obs::drain_events();
    let outcome = tool.analyze_with_caches(project, caches);
    let events: Vec<_> = phpsafe_obs::drain_events()
        .into_iter()
        .filter(|e| e.file.starts_with("zc_"))
        .collect();
    phpsafe_obs::set_events_enabled(false);
    assert!(
        !outcome.vulns.is_empty(),
        "probe plugin must report vulnerabilities"
    );
    phpsafe::explain_outcome(&outcome, &events)
}

// One test function: the obs counters and the events-enabled flag are
// process-global, so phases must not race each other.
#[test]
fn outcomes_identical_across_load_paths_and_function_jobs() {
    phpsafe_obs::set_enabled(true);
    let project = probe_project();
    let tool = PhpSafe::new();
    let cold = tool.analyze(&project).to_json().unwrap();

    // --- ZAST v2 borrowed-view path ---
    let dir = temp_dir("zast");
    {
        // Seeding run: fresh parses, written back in the ZAST layout.
        let caches = EngineCaches::with_disk(Arc::new(DiskCache::open(&dir).unwrap()));
        let seeded = tool
            .analyze_with_caches(&project, Some(&caches))
            .to_json()
            .unwrap();
        assert_eq!(cold, seeded, "disk-backed cold run diverged from plain run");
    }
    let before = phpsafe_obs::snapshot();
    let disk = Arc::new(DiskCache::open(&dir).unwrap());
    let caches = EngineCaches::with_disk(Arc::clone(&disk));
    let borrowed = tool
        .analyze_with_caches(&project, Some(&caches))
        .to_json()
        .unwrap();
    assert_eq!(
        cold, borrowed,
        "borrowed-view warm run diverged from cold parse"
    );
    let delta = phpsafe_obs::snapshot().since(&before);
    assert!(
        delta.counter("diskcache.borrowed_loads") >= 2,
        "warm run must serve both probe files as borrowed ZAST views, got {}",
        delta.counter("diskcache.borrowed_loads")
    );
    let dc = disk.counters();
    assert_eq!(dc.corrupt, 0, "no entry may be dropped as corrupt");
    assert_eq!(dc.evicted, 0, "no entry may be dropped as stale");
    assert!(dc.bytes_read > 0, "warm loads must count bytes_read");

    // --- mixed-version dir: PAST v1 entries fall back to decode_file ---
    let dir2 = temp_dir("mixed");
    let disk2 = Arc::new(DiskCache::open(&dir2).unwrap());
    // Seed *one* file in the legacy PAST v1 layout, as an old process
    // would have; leave the other to be freshly parsed and stored as
    // ZAST v2 — after which the namespace holds both formats at once.
    let legacy = &project.files()[0];
    let key = ContentKey::of(legacy.content.as_bytes());
    let encoded = php_ast::codec::encode_file(&php_ast::parse(&legacy.content));
    assert!(disk2.store(AST_NAMESPACE, key, AST_FINGERPRINT, &encoded));
    let before = phpsafe_obs::snapshot();
    {
        let caches = EngineCaches::with_disk(Arc::clone(&disk2));
        let mixed_cold = tool
            .analyze_with_caches(&project, Some(&caches))
            .to_json()
            .unwrap();
        assert_eq!(cold, mixed_cold, "PAST v1 decode path diverged");
    }
    let delta = phpsafe_obs::snapshot().since(&before);
    assert_eq!(
        delta.counter("diskcache.borrowed_loads"),
        0,
        "the PAST entry must decode, the missing one must parse — neither borrows"
    );
    let before = phpsafe_obs::snapshot();
    {
        let caches = EngineCaches::with_disk(Arc::clone(&disk2));
        let mixed_warm = tool
            .analyze_with_caches(&project, Some(&caches))
            .to_json()
            .unwrap();
        assert_eq!(cold, mixed_warm, "mixed-version warm run diverged");
    }
    let delta = phpsafe_obs::snapshot().since(&before);
    assert_eq!(
        delta.counter("diskcache.borrowed_loads"),
        1,
        "exactly the ZAST entry borrows; the PAST entry keeps decoding"
    );
    let dc2 = disk2.counters();
    assert_eq!(dc2.corrupt, 0, "a PAST v1 entry must never read as corrupt");
    assert_eq!(dc2.evicted, 0, "a PAST v1 entry must never read as stale");

    // --- a truncated ZAST entry degrades to a re-parse, not a panic ---
    let dir3 = temp_dir("trunc");
    let disk3 = Arc::new(DiskCache::open(&dir3).unwrap());
    {
        let caches = EngineCaches::with_disk(Arc::clone(&disk3));
        let _ = tool.analyze_with_caches(&project, Some(&caches));
    }
    // DiskCache validates its envelope digest before the payload reaches
    // the ZAST validator, so flip bytes at the *payload* level instead:
    // store a ZAST prefix under a fresh key and load it through the
    // analysis path via a content whose entry we corrupt in place is not
    // addressable here — the digest catches file-level tampering. Store
    // a syntactically valid envelope around a truncated ZAST payload.
    let good = php_ast::zast::encode_file(&php_ast::parse(&project.files()[1].content));
    let key3 = ContentKey::of(project.files()[1].content.as_bytes());
    assert!(disk3.store(
        AST_NAMESPACE,
        key3,
        AST_FINGERPRINT,
        &good[..good.len() / 2]
    ));
    {
        let caches = EngineCaches::with_disk(Arc::clone(&disk3));
        let survived = tool
            .analyze_with_caches(&project, Some(&caches))
            .to_json()
            .unwrap();
        assert_eq!(cold, survived, "truncated ZAST entry changed the outcome");
    }
    assert!(
        disk3.counters().corrupt >= 1,
        "the truncated payload must be dropped and counted"
    );

    // --- per-function jobs: same bytes at any worker count ---
    assert_eq!(
        tool.fingerprint(),
        PhpSafe::new().with_function_jobs(8).fingerprint(),
        "function_jobs is a scheduling knob and must not change the fingerprint"
    );
    for jobs in [2usize, 8] {
        let caches = EngineCaches::new();
        let fj = PhpSafe::new()
            .with_function_jobs(jobs)
            .analyze_with_caches(&project, Some(&caches))
            .to_json()
            .unwrap();
        assert_eq!(cold, fj, "function_jobs={jobs} diverged from serial");
    }

    // --- --explain chains across load paths and schedules ---
    let chains_cold = explain_chains(&tool, &project, None);
    assert!(
        chains_cold.contains("source $_GET"),
        "expected a chain naming the superglobal source, got:\n{chains_cold}"
    );
    let warm = EngineCaches::with_disk(Arc::new(DiskCache::open(&dir).unwrap()));
    let chains_borrowed = explain_chains(&tool, &project, Some(&warm));
    assert_eq!(
        chains_cold, chains_borrowed,
        "--explain chains diverged between cold parse and borrowed load"
    );
    let fj_tool = PhpSafe::new().with_function_jobs(8);
    let chains_fj = explain_chains(&fj_tool, &project, Some(&EngineCaches::new()));
    assert_eq!(
        chains_cold, chains_fj,
        "--explain chains diverged under per-function jobs"
    );

    // --- corpus artifacts across schedules and load paths ---
    let corpus = Corpus::generate();
    let serial = artifacts(&Evaluation::run_with(corpus.clone()));
    let dir4 = temp_dir("tables");
    let open = || Arc::new(DiskCache::open(&dir4).unwrap());
    let cold_cached = artifacts(
        &Evaluation::run_engine_cached(corpus.clone(), 8, &EngineCaches::with_disk(open())).0,
    );
    // A fresh process over the same dir: every AST arrives borrowed.
    let warm_cached =
        artifacts(&Evaluation::run_engine_cached(corpus, 1, &EngineCaches::with_disk(open())).0);
    assert_eq!(
        serial, cold_cached,
        "serial vs 8-worker disk-backed artifacts diverged"
    );
    assert_eq!(
        cold_cached, warm_cached,
        "cold vs borrowed-load artifacts diverged"
    );

    for d in [dir, dir2, dir3, dir4] {
        let _ = std::fs::remove_dir_all(&d);
    }
}
