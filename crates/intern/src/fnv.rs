//! FNV-1a hashing: the one-shot digest used for content-derived cache keys
//! and a [`std::hash::BuildHasher`] for hot-path maps and sets.
//!
//! Written in-crate (the container vendors no hashing crates). FNV-1a is a
//! multiply-xor hash with good avalanche behaviour on the short keys the
//! analyzer hashes constantly — interned [`crate::Symbol`] ids, small
//! tuples, file paths. Unlike the std `HashMap` default (SipHash, keyed
//! and DoS-resistant), FNV is unkeyed and much cheaper per byte; the
//! analyzer only ever hashes its own deterministic data, so the trade is
//! free.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasher, Hasher};

/// FNV-1a offset basis (64-bit).
const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hashes `bytes` with 64-bit FNV-1a.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    fnv1a_64_extend(OFFSET_BASIS, bytes)
}

/// Extends a digest with more data (order-sensitive), for keys built from
/// several parts.
pub fn fnv1a_64_extend(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = if seed == 0 { OFFSET_BASIS } else { seed };
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// A content-derived cache key: FNV-1a digest plus input length.
///
/// Two sources map to the same key only if both their 64-bit digest and
/// their byte length agree — good enough to treat "same key" as "same
/// content" for cache purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ContentKey {
    /// FNV-1a digest of the content.
    pub hash: u64,
    /// Content length in bytes.
    pub len: u64,
}

impl ContentKey {
    /// Keys the given content.
    pub fn of(bytes: &[u8]) -> ContentKey {
        ContentKey {
            hash: fnv1a_64(bytes),
            len: bytes.len() as u64,
        }
    }
}

/// Streaming FNV-1a [`Hasher`] for `HashMap`/`HashSet` use.
#[derive(Debug, Clone)]
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(OFFSET_BASIS)
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
        self.0 = h;
    }
}

/// [`BuildHasher`] producing [`FnvHasher`]s; `Default` so the map aliases
/// below work with `::default()`/`::new`-style construction.
#[derive(Debug, Clone, Copy, Default)]
pub struct FnvBuildHasher;

impl BuildHasher for FnvBuildHasher {
    type Hasher = FnvHasher;

    fn build_hasher(&self) -> FnvHasher {
        FnvHasher::default()
    }
}

/// A `HashMap` keyed with FNV-1a instead of SipHash.
pub type FnvHashMap<K, V> = HashMap<K, V, FnvBuildHasher>;

/// A `HashSet` hashed with FNV-1a instead of SipHash.
pub type FnvHashSet<T> = HashSet<T, FnvBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_bytes_same_hash() {
        let a = fnv1a_64(b"<?php echo $_GET['x'];");
        let b = fnv1a_64(b"<?php echo $_GET['x'];");
        assert_eq!(a, b);
        assert_eq!(
            ContentKey::of(b"<?php echo $_GET['x'];"),
            ContentKey::of(b"<?php echo $_GET['x'];")
        );
    }

    #[test]
    fn one_byte_edit_changes_hash() {
        let a = fnv1a_64(b"<?php echo $_GET['x'];");
        let b = fnv1a_64(b"<?php echo $_GET['y'];");
        assert_ne!(a, b);
    }

    #[test]
    fn known_vector() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn length_disambiguates() {
        let short = ContentKey::of(b"ab");
        let long = ContentKey::of(b"abab");
        assert_ne!(short, long);
    }

    #[test]
    fn extend_matches_oneshot() {
        let whole = fnv1a_64(b"hello world");
        let parts = fnv1a_64_extend(fnv1a_64(b"hello "), b"world");
        assert_eq!(whole, parts);
    }

    #[test]
    fn hasher_streams_like_oneshot() {
        let mut h = FnvHasher::default();
        h.write(b"hello ");
        h.write(b"world");
        assert_eq!(h.finish(), fnv1a_64(b"hello world"));
    }

    #[test]
    fn fnv_map_and_set_work() {
        let mut m: FnvHashMap<&str, u32> = FnvHashMap::default();
        m.insert("a", 1);
        m.insert("b", 2);
        assert_eq!(m.get("a"), Some(&1));
        let mut s: FnvHashSet<u64> = FnvHashSet::default();
        s.insert(42);
        assert!(s.contains(&42));
    }
}
