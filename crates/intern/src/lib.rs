//! # phpsafe-intern
//!
//! Shared leaf crate for the two primitives the whole pipeline hashes with:
//!
//! - [`Symbol`]: a global string interner handing out `Copy` `u32` handles
//!   for PHP identifiers, variable names, classes, methods and properties.
//!   Interned once at lex/parse time, threaded end to end so the
//!   interpreter keys its taint environments by `u32` instead of
//!   heap-allocated `String`s.
//! - [`fnv`]: the FNV-1a digest previously private to `phpsafe-engine`,
//!   promoted here so `core` and `engine` can share it without a dep
//!   cycle, plus [`FnvBuildHasher`] to replace SipHash in hot-path maps.
//!
//! Depends only on `phpsafe-obs` (for `intern.*` counters) and the vendored
//! `serde` shim, so every other crate can sit on top of it.

pub mod fnv;
pub mod sym;

pub use fnv::{
    fnv1a_64, fnv1a_64_extend, ContentKey, FnvBuildHasher, FnvHashMap, FnvHashSet, FnvHasher,
};
pub use sym::Symbol;
