//! Global string interner and the [`Symbol`] handle it hands out.
//!
//! Mirrors the rustc `Symbol` design at the scale this project needs: a
//! process-wide, append-only arena of unique strings, addressed by a dense
//! `u32` id. Interning a string that is already present is a single
//! FNV-hashed map probe; the returned [`Symbol`] is `Copy`, compares by id,
//! and resolves back to `&'static str` without allocating (the arena leaks
//! its strings — total leakage is bounded by the number of *distinct* names
//! in the analyzed source text, which the `intern.bytes` counter tracks).
//!
//! Determinism: ids are assigned in first-intern order, which varies when
//! files are lexed in parallel. Anything ordered for output therefore
//! compares **resolved strings**, not ids — that is why [`Ord`] on `Symbol`
//! is string order. Equality is id equality (the arena guarantees one id
//! per distinct string), so map lookups stay O(1) on a `u32`.

use crate::fnv::FnvHashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock, RwLock};

/// An interned string: a `Copy` handle resolving to `&'static str`.
///
/// `Default` is the empty string. Hash/Eq are by id; `Ord` is by resolved
/// string so sorted output never depends on intern order.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Symbol(u32);

struct Interner {
    /// string → id, for `intern` probes.
    lookup: Mutex<FnvHashMap<&'static str, u32>>,
    /// id → string, for `as_str`. Append-only.
    arena: RwLock<Vec<&'static str>>,
}

fn interner() -> &'static Interner {
    static INTERNER: OnceLock<Interner> = OnceLock::new();
    INTERNER.get_or_init(|| {
        // Pre-seed id 0 with "" so `Symbol::default()` resolves.
        let mut lookup = FnvHashMap::default();
        lookup.insert("", 0u32);
        Interner {
            lookup: Mutex::new(lookup),
            arena: RwLock::new(vec![""]),
        }
    })
}

impl Symbol {
    /// The empty-string symbol (id 0), same as `Symbol::default()`.
    pub const EMPTY: Symbol = Symbol(0);

    /// Interns `s`, returning the existing id if it was seen before.
    pub fn intern(s: &str) -> Symbol {
        let int = interner();
        let mut lookup = int.lookup.lock().unwrap();
        if let Some(&id) = lookup.get(s) {
            phpsafe_obs::count("intern.hits", 1);
            return Symbol(id);
        }
        // New entry: leak one copy, register it under the lookup lock so id
        // assignment and arena order stay consistent.
        let owned: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let mut arena = int.arena.write().unwrap();
        let id = u32::try_from(arena.len()).expect("interner overflow");
        arena.push(owned);
        drop(arena);
        lookup.insert(owned, id);
        phpsafe_obs::count("intern.symbols", 1);
        phpsafe_obs::count("intern.bytes", owned.len() as u64);
        Symbol(id)
    }

    /// Resolves the symbol to its string. Never allocates.
    pub fn as_str(self) -> &'static str {
        interner().arena.read().unwrap()[self.0 as usize]
    }

    /// The dense id, for diagnostics.
    pub fn index(self) -> u32 {
        self.0
    }

    /// True if this is the empty string.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// ASCII-lowercased variant, interned. Already-lowercase strings (the
    /// common case for PHP code that calls functions as written) return
    /// `self` without touching the arena.
    pub fn to_lowercase(self) -> Symbol {
        let s = self.as_str();
        if s.bytes().any(|b| b.is_ascii_uppercase()) {
            Symbol::intern(&s.to_ascii_lowercase())
        } else {
            self
        }
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Debug-print the resolved string (like `String`), not the id: ids
        // vary run to run under parallel lexing and would make test failure
        // output unreadable.
        fmt::Debug::fmt(self.as_str(), f)
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<&String> for Symbol {
    fn from(s: &String) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol::intern(&s)
    }
}

impl PartialEq<str> for Symbol {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Symbol {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<String> for Symbol {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other.as_str()
    }
}

impl PartialEq<Symbol> for str {
    fn eq(&self, other: &Symbol) -> bool {
        self == other.as_str()
    }
}

impl PartialEq<Symbol> for &str {
    fn eq(&self, other: &Symbol) -> bool {
        *self == other.as_str()
    }
}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Symbol) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    fn cmp(&self, other: &Symbol) -> std::cmp::Ordering {
        // String order, not id order: intern order is a lexing accident.
        if self.0 == other.0 {
            std::cmp::Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

impl serde::Serialize for Symbol {
    fn serialize(&self, s: &mut serde::Serializer) {
        s.string(self.as_str());
    }
}

impl serde::Deserialize for Symbol {
    fn deserialize(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::Str(t) => Ok(Symbol::intern(t)),
            _ => Err(serde::Error::expected("string", "Symbol")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("foo_bar");
        let b = Symbol::intern("foo_bar");
        assert_eq!(a, b);
        assert_eq!(a.index(), b.index());
        assert_eq!(a.as_str(), "foo_bar");
    }

    #[test]
    fn distinct_strings_distinct_ids() {
        let a = Symbol::intern("alpha_x");
        let b = Symbol::intern("alpha_y");
        assert_ne!(a, b);
        assert_ne!(a.index(), b.index());
    }

    #[test]
    fn default_is_empty() {
        assert_eq!(Symbol::default(), Symbol::EMPTY);
        assert_eq!(Symbol::default().as_str(), "");
        assert!(Symbol::default().is_empty());
        assert_eq!(Symbol::intern(""), Symbol::EMPTY);
    }

    #[test]
    fn str_comparisons_work() {
        let s = Symbol::intern("$variable");
        assert_eq!(s, "$variable");
        assert_eq!("$variable", s);
        let owned = String::from("$variable");
        assert!(s == owned);
        assert_ne!(s, "$other");
    }

    #[test]
    fn ord_is_string_order_not_id_order() {
        // Intern in reverse alphabetical order; sort must still come out
        // alphabetical.
        let z = Symbol::intern("zzz_ord_test");
        let a = Symbol::intern("aaa_ord_test");
        let m = Symbol::intern("mmm_ord_test");
        let mut v = vec![z, m, a];
        v.sort();
        assert_eq!(v, vec![a, m, z]);
    }

    #[test]
    fn lowercase_fast_path_and_slow_path() {
        let lower = Symbol::intern("already_lower");
        assert_eq!(lower.to_lowercase(), lower);
        let mixed = Symbol::intern("MixedCase");
        assert_eq!(mixed.to_lowercase(), Symbol::intern("mixedcase"));
        assert_ne!(mixed.to_lowercase(), mixed);
    }

    #[test]
    fn display_and_debug_resolve() {
        let s = Symbol::intern("printMe");
        assert_eq!(format!("{s}"), "printMe");
        assert_eq!(format!("{s:?}"), "\"printMe\"");
    }

    #[test]
    fn serde_roundtrip_as_string() {
        let s = Symbol::intern("roundtrip_sym");
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(json, "\"roundtrip_sym\"");
        let back: Symbol = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn concurrent_interning_agrees() {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(|| {
                    (0..64)
                        .map(|i| Symbol::intern(&format!("concurrent_{i}")))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let results: Vec<Vec<Symbol>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for w in results.windows(2) {
            assert_eq!(w[0], w[1], "same strings must yield same symbols");
        }
        for (i, s) in results[0].iter().enumerate() {
            assert_eq!(s.as_str(), format!("concurrent_{i}"));
        }
    }
}
