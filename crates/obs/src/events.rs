//! Structured taint events in a bounded ring buffer.
//!
//! The interpreter emits one [`TaintEvent`] per interesting taint
//! transition; the buffer keeps the most recent [`DEFAULT_CAPACITY`]
//! of them so `--explain` can reconstruct the provenance chain
//! (source → propagation → sanitizer → sink) behind each reported
//! vulnerability without unbounded memory growth.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default capacity of the global ring buffer: large enough to hold every
/// event of a plugin-sized analysis, small enough to bound memory on
/// corpus-scale runs.
pub const DEFAULT_CAPACITY: usize = 65_536;

/// What happened to a taint mark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaintEventKind {
    /// Taint entered the program (superglobal read, source function, ...).
    Introduced,
    /// Taint flowed through an assignment, index, property or call.
    Propagated,
    /// A sanitizer cleared the taint for its vulnerability class.
    Sanitized,
    /// A revert function (e.g. `stripslashes`) restored cleared taint.
    Reverted,
    /// Tainted data reached a sink — a vulnerability is reported.
    SinkHit,
}

impl TaintEventKind {
    /// Short lowercase label used in `--explain` output.
    pub fn label(self) -> &'static str {
        match self {
            TaintEventKind::Introduced => "introduced",
            TaintEventKind::Propagated => "propagated",
            TaintEventKind::Sanitized => "sanitized",
            TaintEventKind::Reverted => "reverted",
            TaintEventKind::SinkHit => "sink-hit",
        }
    }
}

/// One taint transition, ordered process-wide by `seq`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaintEvent {
    /// Global emission order (monotonic across threads and buffers).
    pub seq: u64,
    /// The kind of transition.
    pub kind: TaintEventKind,
    /// File the transition happened in.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable description; matches the wording of the data-flow
    /// trace steps so events and traces can be correlated.
    pub detail: String,
}

/// A bounded FIFO of taint events; the oldest events are dropped once the
/// capacity is reached.
pub struct RingBuffer {
    capacity: usize,
    seq: AtomicU64,
    dropped: AtomicU64,
    buf: Mutex<VecDeque<TaintEvent>>,
}

impl RingBuffer {
    /// An empty buffer holding at most `capacity` events (minimum 1).
    pub fn with_capacity(capacity: usize) -> RingBuffer {
        RingBuffer {
            capacity: capacity.max(1),
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            buf: Mutex::new(VecDeque::new()),
        }
    }

    /// Appends an event, evicting the oldest if the buffer is full.
    /// Returns `true` when an event was evicted to make room — truncation
    /// of `--explain` provenance input must be counted, never silent.
    pub fn emit(&self, kind: TaintEventKind, file: &str, line: u32, detail: String) -> bool {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut buf = self.buf.lock().unwrap();
        let evicted = buf.len() == self.capacity;
        if evicted {
            buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        buf.push_back(TaintEvent {
            seq,
            kind,
            file: file.to_string(),
            line,
            detail,
        });
        evicted
    }

    /// Clones the buffered events, oldest first.
    pub fn events(&self) -> Vec<TaintEvent> {
        self.buf.lock().unwrap().iter().cloned().collect()
    }

    /// Removes and returns the buffered events, oldest first. The sequence
    /// counter keeps running, so later events still order after these.
    pub fn drain(&self) -> Vec<TaintEvent> {
        self.buf.lock().unwrap().drain(..).collect()
    }

    /// Discards all buffered events and resets the overwrite counter (a
    /// clean slate for benches and tests; the sequence counter keeps
    /// running).
    pub fn clear(&self) {
        let mut buf = self.buf.lock().unwrap();
        buf.clear();
        self.dropped.store(0, Ordering::Relaxed);
    }

    /// Number of currently buffered events.
    pub fn len(&self) -> usize {
        self.buf.lock().unwrap().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever emitted, including evicted ones.
    pub fn emitted(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Events overwritten (evicted to make room) since the last
    /// [`RingBuffer::clear`]. Nonzero means `--explain` saw a truncated
    /// event stream; surfaced globally as the `events.dropped` counter.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraparound_keeps_newest_and_seq_stays_monotonic() {
        let ring = RingBuffer::with_capacity(4);
        for i in 0..6u32 {
            ring.emit(TaintEventKind::Propagated, "a.php", i, format!("step {i}"));
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.emitted(), 6);
        assert_eq!(ring.dropped(), 2, "both overwrites must be counted");
        let events = ring.events();
        assert_eq!(events.first().unwrap().seq, 2, "two oldest evicted");
        assert_eq!(events.last().unwrap().seq, 5);
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(events[0].line, 2);
        assert_eq!(events[0].detail, "step 2");
    }

    #[test]
    fn drain_empties_but_keeps_counting() {
        let ring = RingBuffer::with_capacity(8);
        ring.emit(TaintEventKind::Introduced, "a.php", 1, "src".into());
        let drained = ring.drain();
        assert_eq!(drained.len(), 1);
        assert!(ring.is_empty());
        ring.emit(TaintEventKind::SinkHit, "a.php", 9, "echo".into());
        let after = ring.events();
        assert_eq!(after.len(), 1);
        assert!(after[0].seq > drained[0].seq);
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.emitted(), 2);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let ring = RingBuffer::with_capacity(0);
        ring.emit(TaintEventKind::SinkHit, "a.php", 1, "echo".into());
        assert_eq!(ring.len(), 1);
    }

    #[test]
    fn emit_reports_eviction_and_clear_resets_the_drop_count() {
        let ring = RingBuffer::with_capacity(2);
        assert!(!ring.emit(TaintEventKind::Introduced, "a.php", 1, "a".into()));
        assert!(!ring.emit(TaintEventKind::Propagated, "a.php", 2, "b".into()));
        assert!(ring.emit(TaintEventKind::SinkHit, "a.php", 3, "c".into()));
        assert_eq!(ring.dropped(), 1);
        ring.clear();
        assert_eq!(ring.dropped(), 0);
        assert!(!ring.emit(TaintEventKind::Introduced, "a.php", 4, "d".into()));
    }

    #[test]
    fn kind_labels_are_stable() {
        assert_eq!(TaintEventKind::Introduced.label(), "introduced");
        assert_eq!(TaintEventKind::SinkHit.label(), "sink-hit");
        assert_eq!(TaintEventKind::Reverted.label(), "reverted");
    }
}
