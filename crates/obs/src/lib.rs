//! # phpsafe-obs
//!
//! The unified tracing & metrics layer of the phpSAFE reproduction. Every
//! crate in the workspace records into this one (zero-dependency,
//! thread-safe) subsystem, so there is a single stats story from the lexer
//! to the evaluation runner:
//!
//! * [`metrics`] — a global registry of named counters and microsecond
//!   histograms (interpolated p50/p90/p95/p99 plus exact max), snapshotted
//!   into a [`Snapshot`] that serializes to JSON (`--metrics-out`), to the
//!   Prometheus text exposition format ([`Snapshot::to_prometheus`]), and
//!   diffs against an earlier snapshot for per-run statistics;
//! * [`span`] — lightweight RAII spans ([`span!`]) that record per-stage
//!   wall time into the registry and nest into a self-profile tree
//!   (`--trace`);
//! * [`events`] — a structured ring buffer of taint events (introduced /
//!   propagated / sanitized / reverted / sink-hit) that powers the
//!   `--explain` provenance chains; overwrites surface as the
//!   `events.dropped` counter;
//! * [`wide`] — one [`WideEvent`] per served request (id, method, queue
//!   wait, stage timings, cache hits, outcome) with a [`TailSampler`]
//!   retaining the slowest-K and errored requests;
//! * [`out`] — crash-safe artifact output: [`write_atomic`] (temp file +
//!   rename) and the [`TelemetrySink`] NDJSON wide-event stream behind
//!   `--telemetry-out`.
//!
//! Everything is off by default: the disabled hot path is a single relaxed
//! atomic load per site ([`enabled`] / [`events_enabled`]), so
//! instrumentation can stay compiled into release binaries. Flip the
//! switches with [`set_enabled`] / [`set_events_enabled`].
//!
//! The span names follow the paper's four pipeline stages (configuration,
//! model construction, analysis, results processing): `stage.lex` and
//! `stage.parse` cover model construction, `stage.analyze` the analysis
//! proper (with `analyze.model` / `analyze.taint` / `analyze.results`
//! children), and `stage.eval` the results-processing/oracle step.
//!
//! ```
//! phpsafe_obs::set_enabled(true);
//! {
//!     let _span = phpsafe_obs::span!("stage.lex");
//!     phpsafe_obs::count("lex.files", 1);
//! }
//! let snap = phpsafe_obs::snapshot();
//! assert_eq!(snap.counter("lex.files"), 1);
//! assert!(snap.histogram("stage.lex").is_some());
//! ```

#![warn(missing_docs)]

pub mod events;
pub mod metrics;
pub mod out;
pub mod span;
pub mod wide;

pub use events::{RingBuffer, TaintEvent, TaintEventKind};
pub use metrics::{Histogram, HistogramSnapshot, Percentiles, Registry, Snapshot};
pub use out::{write_atomic, TelemetrySink};
pub use span::Span;
pub use wide::{TailSampler, WideEvent};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

static ENABLED: AtomicBool = AtomicBool::new(false);
static EVENTS_ENABLED: AtomicBool = AtomicBool::new(false);

/// Master switch for metrics and spans. Off by default; when off, every
/// recording call returns after one relaxed atomic load.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether metrics and spans are being recorded.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Switch for the taint-event ring buffer (costlier than metrics: events
/// carry formatted strings). Off by default.
pub fn set_events_enabled(on: bool) {
    EVENTS_ENABLED.store(on, Ordering::Relaxed);
}

/// Whether taint events are being recorded.
pub fn events_enabled() -> bool {
    EVENTS_ENABLED.load(Ordering::Relaxed)
}

/// The process-wide registry behind [`count`], [`time`] and [`snapshot`].
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

fn global_events() -> &'static RingBuffer {
    static EVENTS: OnceLock<RingBuffer> = OnceLock::new();
    EVENTS.get_or_init(|| RingBuffer::with_capacity(events::DEFAULT_CAPACITY))
}

/// Adds `delta` to the named global counter (no-op while disabled).
pub fn count(name: &'static str, delta: u64) {
    if enabled() {
        global().count(name, delta);
    }
}

/// Records one duration sample into the named global histogram (no-op
/// while disabled).
pub fn time(name: &'static str, d: Duration) {
    if enabled() {
        global().time(name, d);
    }
}

/// Sets the named global gauge to an absolute level (no-op while
/// disabled). Gauge names are runtime strings because the interesting
/// levels — e.g. `diskcache.bytes_on_disk.<namespace>` — are keyed by
/// values only known at runtime.
pub fn gauge(name: &str, value: u64) {
    if enabled() {
        global().gauge(name, value);
    }
}

/// Snapshot of the global registry. Subtract an earlier snapshot with
/// [`Snapshot::since`] for per-run deltas.
pub fn snapshot() -> Snapshot {
    global().snapshot()
}

/// Pre-registers a global counter at zero (no-op while disabled), so a
/// daemon's full metric surface is scrapeable before its first request.
pub fn declare_counter(name: &'static str) {
    if enabled() {
        global().declare_counter(name);
    }
}

/// Pre-registers an empty global histogram (see [`declare_counter`]).
pub fn declare_histogram(name: &'static str) {
    if enabled() {
        global().declare_histogram(name);
    }
}

/// Appends a taint event to the global ring buffer (no-op while taint
/// events are disabled). An overwrite of a buffered event — truncation of
/// the `--explain` provenance input — is recorded as the `events.dropped`
/// counter regardless of the metrics switch, so the loss is never silent.
pub fn emit(kind: TaintEventKind, file: &str, line: u32, detail: String) {
    if events_enabled() && global_events().emit(kind, file, line, detail) {
        global().count("events.dropped", 1);
    }
}

/// Clones the currently buffered taint events, oldest first.
pub fn events() -> Vec<TaintEvent> {
    global_events().events()
}

/// Removes and returns the buffered taint events, oldest first.
pub fn drain_events() -> Vec<TaintEvent> {
    global_events().drain()
}

/// Renders the global span self-profile tree (see [`span`]).
pub fn span_tree_text() -> String {
    span::tree_text()
}

/// Clears the global registry, span tree and event buffer. Intended for
/// benches and tests that need a clean slate; concurrent recorders simply
/// start accumulating again.
pub fn reset() {
    global().clear();
    span::clear_tree();
    global_events().clear();
}

/// Serializes tests that toggle the process-wide switches, across all of
/// this crate's test modules.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Opens a named RAII span: records wall time into the histogram of the
/// same name and into the self-profile tree when the guard drops. A second
/// argument (e.g. the file being parsed) is accepted and discarded without
/// being evaluated, so call sites can document what the span covers at
/// zero cost.
///
/// Bind the guard (`let _span = span!("stage.parse");`) — an unbound span
/// drops immediately and measures nothing.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::Span::enter($name)
    };
    ($name:expr, $($detail:expr),+ $(,)?) => {{
        let _ = || {
            $(let _ = &$detail;)+
        };
        $crate::Span::enter($name)
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing_enabled_records() {
        let _guard = test_lock();
        set_enabled(false);
        count("lib.test.counter", 5);
        assert_eq!(snapshot().counter("lib.test.counter"), 0);

        set_enabled(true);
        count("lib.test.counter", 5);
        time("lib.test.hist", Duration::from_micros(100));
        {
            let _s = span!("lib.test.span");
        }
        {
            let _s = span!("lib.test.span", "with a detail that is not evaluated");
        }
        let snap = snapshot();
        assert_eq!(snap.counter("lib.test.counter"), 5);
        assert_eq!(snap.histogram("lib.test.hist").unwrap().count, 1);
        assert_eq!(snap.histogram("lib.test.span").unwrap().count, 2);
        assert!(span_tree_text().contains("lib.test.span"));
        set_enabled(false);
    }

    #[test]
    fn ring_overwrites_surface_as_events_dropped() {
        let _guard = test_lock();
        set_events_enabled(true);
        global_events().clear();
        let before = snapshot().counter("events.dropped");
        // Fill the global buffer to capacity, then push three more: each
        // overwrite must land in the registry even though the metrics
        // switch is off.
        for i in 0..(events::DEFAULT_CAPACITY as u32 + 3) {
            emit(TaintEventKind::Propagated, "drop.php", i, String::new());
        }
        assert_eq!(snapshot().counter("events.dropped"), before + 3);
        assert_eq!(global_events().dropped(), 3);
        global_events().clear();
        set_events_enabled(false);
    }

    #[test]
    fn events_respect_their_switch() {
        let _guard = test_lock();
        set_events_enabled(false);
        emit(TaintEventKind::Introduced, "off.php", 1, "ignored".into());
        assert!(!events().iter().any(|e| e.file == "off.php"));

        set_events_enabled(true);
        emit(TaintEventKind::SinkHit, "on.php", 2, "echo".into());
        assert!(events()
            .iter()
            .any(|e| e.file == "on.php" && e.kind == TaintEventKind::SinkHit));
        set_events_enabled(false);
    }
}
