//! Named counters and microsecond histograms with JSON-serializable,
//! diffable snapshots.
//!
//! A [`Registry`] maps static names to atomic counters and to log2-bucketed
//! [`Histogram`]s of microsecond durations. Recording is lock-light (one
//! mutex lookup to fetch the handle, atomics after that) and reading is
//! always safe while recorders are running. [`Snapshot`] freezes the whole
//! registry; [`Snapshot::since`] subtracts an earlier snapshot so callers
//! can attribute counts and timings to one run of a long-lived process.

use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Number of log2 buckets: bucket `i` holds values whose bit length is `i`
/// (bucket 0 is exactly zero), so the largest representable value class is
/// `2^63..`. 64 buckets cover every `u64` microsecond count.
pub const BUCKETS: usize = 64;

/// Bucket index of a microsecond value: its bit length, clamped.
fn bucket_of(us: u64) -> usize {
    ((64 - us.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Inclusive upper bound of a bucket, used as the reported quantile value.
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 63 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Inclusive lower bound of a bucket (bucket `i` holds values of bit
/// length `i`, so the smallest is `2^(i-1)`; bucket 0 is exactly zero).
fn bucket_lower(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// A thread-safe histogram of microsecond durations.
///
/// Values land in power-of-two buckets, so quantiles are approximate (the
/// reported value is the bucket's upper bound, capped at the exact
/// maximum) while count/sum/max are exact.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }

    /// Records one duration sample.
    pub fn record(&self, d: Duration) {
        self.record_us(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Records one sample given in microseconds.
    pub fn record_us(&self, us: u64) {
        self.buckets[bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Freezes the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (slot, bucket) in buckets.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum_us: self.sum_us.load(Ordering::Relaxed),
            max_us: self.max_us.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Frozen histogram state with quantile accessors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples, microseconds.
    pub sum_us: u64,
    /// Largest sample, microseconds. After [`Snapshot::since`] this is the
    /// process-lifetime maximum capped to the delta's occupied buckets.
    pub max_us: u64,
    /// Per-bucket sample counts (see [`BUCKETS`]).
    pub buckets: [u64; BUCKETS],
}

/// The standard latency summary of one histogram, extracted with
/// [`HistogramSnapshot::percentiles`]: interpolated p50/p90/p95/p99 plus
/// the exact count, sum and maximum.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Percentiles {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples, microseconds.
    pub sum_us: u64,
    /// Interpolated median, microseconds.
    pub p50_us: u64,
    /// Interpolated 90th percentile, microseconds.
    pub p90_us: u64,
    /// Interpolated 95th percentile, microseconds.
    pub p95_us: u64,
    /// Interpolated 99th percentile, microseconds.
    pub p99_us: u64,
    /// Largest sample, microseconds (exact).
    pub max_us: u64,
}

impl HistogramSnapshot {
    /// The `q`-quantile (`0.0..=1.0`) in microseconds: the upper bound of
    /// the bucket holding the `ceil(q * count)`-th sample, capped at the
    /// exact maximum. Returns 0 for an empty histogram. This is the
    /// conservative (never under-reporting) bound; [`Self::quantile_us`]
    /// interpolates inside the bucket instead.
    pub fn quantile_upper_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(i).min(self.max_us);
            }
        }
        self.max_us
    }

    /// The `q`-quantile (`0.0..=1.0`) in microseconds with linear
    /// interpolation inside the bucket that holds the
    /// `ceil(q * count)`-th sample: the sample's position among the
    /// bucket's occupants picks a proportional point between the bucket's
    /// lower and upper bound. The result is always capped at the exact
    /// maximum, so a saturated top bucket (`2^63..`) reports `max_us`
    /// rather than `u64::MAX`. Returns 0 for an empty histogram, and is
    /// monotone in `q` by construction.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let lo = bucket_lower(i);
                let hi = bucket_upper(i).min(self.max_us);
                let position = (rank - seen) as f64 / n as f64; // in (0, 1]
                let span = (hi.saturating_sub(lo)) as f64;
                // f64 rounding on huge spans can exceed the true span, so
                // saturate rather than trust the sum.
                return lo
                    .saturating_add((span * position).round() as u64)
                    .min(self.max_us);
            }
            seen += n;
        }
        self.max_us
    }

    /// Interpolated median, microseconds.
    pub fn p50_us(&self) -> u64 {
        self.quantile_us(0.50)
    }

    /// Interpolated 90th percentile, microseconds.
    pub fn p90_us(&self) -> u64 {
        self.quantile_us(0.90)
    }

    /// Interpolated 95th percentile, microseconds.
    pub fn p95_us(&self) -> u64 {
        self.quantile_us(0.95)
    }

    /// Interpolated 99th percentile, microseconds.
    pub fn p99_us(&self) -> u64 {
        self.quantile_us(0.99)
    }

    /// Extracts the full latency summary in one pass-per-quantile.
    pub fn percentiles(&self) -> Percentiles {
        Percentiles {
            count: self.count,
            sum_us: self.sum_us,
            p50_us: self.p50_us(),
            p90_us: self.p90_us(),
            p95_us: self.p95_us(),
            p99_us: self.p99_us(),
            max_us: self.max_us,
        }
    }

    /// Samples recorded since `earlier`. `max_us` cannot be diffed exactly;
    /// it is capped to the highest bucket that gained samples.
    pub fn since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        let mut top = 0usize;
        for (i, b) in buckets.iter_mut().enumerate() {
            *b = self.buckets[i].saturating_sub(earlier.buckets[i]);
            if *b > 0 {
                top = i;
            }
        }
        HistogramSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum_us: self.sum_us.saturating_sub(earlier.sum_us),
            max_us: self.max_us.min(bucket_upper(top)),
            buckets,
        }
    }
}

/// A registry of named counters and histograms.
///
/// The process-wide instance lives behind [`crate::global`]; independent
/// instances exist for tests and embedding.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<HashMap<&'static str, Arc<AtomicU64>>>,
    histograms: Mutex<HashMap<&'static str, Arc<Histogram>>>,
    /// Gauges are set-absolute levels (not monotone counts) with runtime
    /// names — e.g. `diskcache.bytes_on_disk.<namespace>` where the
    /// namespace set is only known once a cache directory is opened.
    gauges: Mutex<HashMap<String, Arc<AtomicU64>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Adds `delta` to the named counter, creating it at zero on first use.
    pub fn count(&self, name: &'static str, delta: u64) {
        let counter = self
            .counters
            .lock()
            .unwrap()
            .entry(name)
            .or_default()
            .clone();
        counter.fetch_add(delta, Ordering::Relaxed);
    }

    /// Records a duration into the named histogram, creating it on first
    /// use.
    pub fn time(&self, name: &'static str, d: Duration) {
        let hist = self
            .histograms
            .lock()
            .unwrap()
            .entry(name)
            .or_default()
            .clone();
        hist.record(d);
    }

    /// Sets the named gauge to an absolute level, creating it on first
    /// use. Unlike counters, gauge names are runtime strings and the
    /// stored value is the latest level, not a running sum.
    pub fn gauge(&self, name: &str, value: u64) {
        let slot = {
            let mut gauges = self.gauges.lock().unwrap();
            match gauges.get(name) {
                Some(g) => g.clone(),
                None => gauges.entry(name.to_owned()).or_default().clone(),
            }
        };
        slot.store(value, Ordering::Relaxed);
    }

    /// Creates the named counter at zero without counting anything, so it
    /// shows up in snapshots (and scrape output) before its first
    /// increment. Long-running daemons pre-register their metric surface
    /// this way; an existing counter is left untouched.
    pub fn declare_counter(&self, name: &'static str) {
        self.counters.lock().unwrap().entry(name).or_default();
    }

    /// Creates the named histogram empty without recording a sample (see
    /// [`Registry::declare_counter`]). An existing histogram is left
    /// untouched.
    pub fn declare_histogram(&self, name: &'static str) {
        self.histograms.lock().unwrap().entry(name).or_default();
    }

    /// Freezes every counter and histogram.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(name, v)| (name.to_string(), v.load(Ordering::Relaxed)))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(name, h)| (name.to_string(), h.snapshot()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(name, v)| (name.clone(), v.load(Ordering::Relaxed)))
            .collect();
        Snapshot {
            counters,
            histograms,
            gauges,
        }
    }

    /// Drops every counter, histogram and gauge.
    pub fn clear(&self) {
        self.counters.lock().unwrap().clear();
        self.histograms.lock().unwrap().clear();
        self.gauges.lock().unwrap().clear();
    }
}

/// A frozen, ordered view of a [`Registry`]: the one stats story the CLIs
/// print (`--engine-stats`), serialize (`--metrics-out`,
/// `--engine-stats-json`) and diff per run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Gauge levels by name (set-absolute, latest value wins).
    pub gauges: BTreeMap<String, u64>,
}

impl Snapshot {
    /// The named counter's value, zero if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named gauge's level, zero if absent.
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// The named histogram, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// What changed since `earlier`: counters keep their positive deltas,
    /// histograms keep the samples gained. Entries that did not move are
    /// dropped.
    pub fn since(&self, earlier: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .filter_map(|(name, &v)| {
                let delta = v.saturating_sub(earlier.counter(name));
                (delta > 0).then(|| (name.clone(), delta))
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .filter_map(|(name, h)| {
                let delta = match earlier.histograms.get(name) {
                    Some(e) => h.since(e),
                    None => h.clone(),
                };
                (delta.count > 0).then(|| (name.clone(), delta))
            })
            .collect();
        // Gauges are levels, not accumulations: the current level is the
        // meaningful value for any window, so deltas carry it unchanged.
        Snapshot {
            counters,
            histograms,
            gauges: self.gauges.clone(),
        }
    }

    /// Keeps only entries whose name starts with one of `prefixes`.
    pub fn filtered(&self, prefixes: &[&str]) -> Snapshot {
        let keep = |name: &str| prefixes.iter().any(|p| name.starts_with(p));
        Snapshot {
            counters: self
                .counters
                .iter()
                .filter(|(n, _)| keep(n))
                .map(|(n, v)| (n.clone(), *v))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .filter(|(n, _)| keep(n))
                .map(|(n, h)| (n.clone(), h.clone()))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .filter(|(n, _)| keep(n))
                .map(|(n, v)| (n.clone(), *v))
                .collect(),
        }
    }

    /// Serializes as JSON: `{"counters": {...}, "gauges": {...},
    /// "histograms": {name:
    /// {"count","sum_us","p50_us","p90_us","p95_us","p99_us","max_us"}}}`.
    /// Deterministic key order (lexicographic); percentiles are the
    /// interpolated extraction of [`HistogramSnapshot::quantile_us`].
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    {}: {v}", json_string(name));
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    {}: {v}", json_string(name));
        }
        if !self.gauges.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let p = h.percentiles();
            let _ = write!(
                out,
                "{sep}\n    {}: {{\"count\": {}, \"sum_us\": {}, \"p50_us\": {}, \"p90_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \"max_us\": {}}}",
                json_string(name),
                p.count,
                p.sum_us,
                p.p50_us,
                p.p90_us,
                p.p95_us,
                p.p99_us,
                p.max_us
            );
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (version 0.0.4), so an external scraper can consume the registry
    /// without speaking the NDJSON protocol. Counter names are prefixed
    /// with `phpsafe_` and dots become underscores; histograms emit
    /// cumulative `_bucket{le="..."}` series over the occupied log2
    /// buckets plus `le="+Inf"`, `_sum` and `_count`, all in microseconds.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let metric = prom_name(name);
            let _ = writeln!(out, "# TYPE {metric} counter");
            let _ = writeln!(out, "{metric} {v}");
        }
        for (name, v) in &self.gauges {
            let metric = prom_name(name);
            let _ = writeln!(out, "# TYPE {metric} gauge");
            let _ = writeln!(out, "{metric} {v}");
        }
        for (name, h) in &self.histograms {
            let metric = format!("{}_us", prom_name(name));
            let _ = writeln!(out, "# TYPE {metric} histogram");
            let mut cumulative = 0u64;
            for (i, &n) in h.buckets.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                cumulative += n;
                let _ = writeln!(
                    out,
                    "{metric}_bucket{{le=\"{}\"}} {cumulative}",
                    bucket_upper(i).min(h.max_us)
                );
            }
            let _ = writeln!(out, "{metric}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{metric}_sum {}", h.sum_us);
            let _ = writeln!(out, "{metric}_count {}", h.count);
        }
        out
    }

    /// Renders a human-readable table of the entries matching `prefixes`
    /// (all entries when empty) — the `--engine-stats` output.
    pub fn render(&self, prefixes: &[&str]) -> String {
        let view = if prefixes.is_empty() {
            self.clone()
        } else {
            self.filtered(prefixes)
        };
        let mut out = String::from("observability snapshot\n");
        if !view.counters.is_empty() {
            out.push_str("  counters:\n");
            let width = view.counters.keys().map(|n| n.len()).max().unwrap_or(0);
            for (name, v) in &view.counters {
                let _ = writeln!(out, "    {name:width$}  {v}");
            }
        }
        if !view.gauges.is_empty() {
            out.push_str("  gauges:\n");
            let width = view.gauges.keys().map(|n| n.len()).max().unwrap_or(0);
            for (name, v) in &view.gauges {
                let _ = writeln!(out, "    {name:width$}  {v}");
            }
        }
        if !view.histograms.is_empty() {
            out.push_str("  timings:\n");
            let width = view.histograms.keys().map(|n| n.len()).max().unwrap_or(0);
            for (name, h) in &view.histograms {
                let _ = writeln!(
                    out,
                    "    {name:width$}  count {}  total {:.3}s  p50 {}us  p95 {}us  p99 {}us  max {}us",
                    h.count,
                    h.sum_us as f64 / 1e6,
                    h.p50_us(),
                    h.p95_us(),
                    h.p99_us(),
                    h.max_us
                );
            }
        }
        if view.counters.is_empty() && view.gauges.is_empty() && view.histograms.is_empty() {
            out.push_str("  (empty — was instrumentation enabled?)\n");
        }
        out
    }
}

/// A registry name as a Prometheus metric name: `phpsafe_` prefix, every
/// non-alphanumeric character replaced by `_`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 8);
    out.push_str("phpsafe_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escapes a string as a JSON string literal.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_consistent() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        for us in [0u64, 1, 2, 3, 7, 8, 1000, u64::MAX] {
            assert!(us <= bucket_upper(bucket_of(us)), "{us}");
        }
    }

    #[test]
    fn quantiles_of_uniform_samples() {
        let h = Histogram::new();
        for us in 1..=1000u64 {
            h.record_us(us);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.max_us, 1000);
        assert_eq!(s.sum_us, 500_500);
        // Bucket interpolation recovers exact quantiles for a uniform
        // population: rank position inside the bucket maps linearly onto
        // the bucket's value range.
        assert_eq!(s.p50_us(), 500);
        assert_eq!(s.p90_us(), 900);
        assert_eq!(s.p95_us(), 950);
        assert_eq!(s.p99_us(), 990);
        assert_eq!(s.quantile_us(1.0), 1000);
        assert_eq!(s.quantile_us(0.0), 1);
        // The conservative bound never under-reports.
        assert_eq!(s.quantile_upper_us(0.50), 511);
        assert_eq!(s.quantile_upper_us(0.95), 1000);
    }

    #[test]
    fn single_sample_reports_itself_at_every_quantile() {
        let h = Histogram::new();
        h.record_us(37);
        let s = h.snapshot();
        for q in [0.0, 0.5, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(s.quantile_us(q), 37, "q={q}");
        }
        let p = s.percentiles();
        assert_eq!((p.count, p.sum_us, p.max_us), (1, 37, 37));
        assert_eq!((p.p50_us, p.p90_us, p.p95_us, p.p99_us), (37, 37, 37, 37));
    }

    #[test]
    fn all_one_bucket_interpolates_within_the_bucket() {
        // 100 samples all in bucket 7 (64..127); interpolation must stay
        // inside [lower, max] and rise with q.
        let h = Histogram::new();
        for _ in 0..50 {
            h.record_us(64);
        }
        for _ in 0..50 {
            h.record_us(100);
        }
        let s = h.snapshot();
        let p50 = s.p50_us();
        let p99 = s.p99_us();
        assert!((64..=100).contains(&p50), "p50={p50}");
        assert!((64..=100).contains(&p99), "p99={p99}");
        assert!(p50 <= p99);
        assert_eq!(s.quantile_us(1.0), 100, "top of the bucket is the max");
    }

    #[test]
    fn saturated_top_bucket_caps_at_the_exact_max() {
        // u64::MAX lands in the last bucket, whose upper bound is
        // unrepresentable; every quantile must cap at the recorded max.
        let h = Histogram::new();
        h.record_us(10);
        h.record_us(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.max_us, u64::MAX);
        assert_eq!(s.quantile_us(1.0), u64::MAX);
        assert_eq!(s.p99_us(), u64::MAX);
        assert!(s.p50_us() <= 15, "median stays in the 10-sample's bucket");
        assert_eq!(s.quantile_upper_us(1.0), u64::MAX);
    }

    #[test]
    fn percentiles_are_monotone_p50_to_max() {
        // A long-tailed population: the extraction must preserve
        // p50 <= p90 <= p95 <= p99 <= max.
        let h = Histogram::new();
        for i in 0..1000u64 {
            h.record_us(i * i % 7919);
        }
        h.record_us(1_000_000);
        let p = h.snapshot().percentiles();
        assert!(p.p50_us <= p.p90_us);
        assert!(p.p90_us <= p.p95_us);
        assert!(p.p95_us <= p.p99_us);
        assert!(p.p99_us <= p.max_us);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let h = Histogram::new();
        for us in [3u64, 5, 9, 17, 33, 65, 129, 1025, 70_000] {
            h.record_us(us);
        }
        let s = h.snapshot();
        let mut prev = 0;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            let v = s.quantile_us(q);
            assert!(v >= prev, "quantiles must not decrease (q={q})");
            assert!(v <= s.max_us);
            prev = v;
        }
        assert_eq!(s.quantile_us(1.0), 70_000);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!((s.count, s.sum_us, s.max_us), (0, 0, 0));
        assert_eq!(s.p50_us(), 0);
        assert_eq!(s.p95_us(), 0);
        assert_eq!(s.p99_us(), 0);
        assert_eq!(s.quantile_upper_us(0.99), 0);
        assert_eq!(s.percentiles(), Percentiles::default());
    }

    #[test]
    fn histogram_since_subtracts_samples() {
        let h = Histogram::new();
        h.record_us(10);
        h.record_us(1000);
        let before = h.snapshot();
        h.record_us(20);
        h.record_us(30);
        let delta = h.snapshot().since(&before);
        assert_eq!(delta.count, 2);
        assert_eq!(delta.sum_us, 50);
        // The delta only gained samples in the 16..31 bucket.
        assert!(delta.max_us <= 31, "max capped to gained buckets");
        assert!(delta.p95_us() <= 31);
    }

    #[test]
    fn registry_snapshot_and_since() {
        let r = Registry::new();
        r.count("a.hits", 3);
        r.time("a.time", Duration::from_micros(7));
        let before = r.snapshot();
        r.count("a.hits", 2);
        r.count("b.new", 1);
        r.time("a.time", Duration::from_micros(9));
        let delta = r.snapshot().since(&before);
        assert_eq!(delta.counter("a.hits"), 2);
        assert_eq!(delta.counter("b.new"), 1);
        assert_eq!(delta.histogram("a.time").unwrap().count, 1);
        // Unchanged entries disappear from the delta.
        r.count("c.idle", 1);
        let snap = r.snapshot();
        assert!(!snap.since(&snap).counters.contains_key("a.hits"));
    }

    #[test]
    fn json_shape_and_escaping() {
        let r = Registry::new();
        r.count("cache.parse.hits", 12);
        r.time("stage.lex", Duration::from_micros(100));
        let j = r.snapshot().to_json();
        assert!(j.contains("\"cache.parse.hits\": 12"));
        assert!(j.contains("\"stage.lex\""));
        assert!(j.contains("\"p95_us\""));
        assert!(j.contains("\"p90_us\""));
        assert!(j.contains("\"p99_us\""));
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        let empty = Snapshot::default().to_json();
        assert!(empty.contains("\"counters\": {}"));
    }

    #[test]
    fn declared_entries_appear_without_samples() {
        let r = Registry::new();
        r.declare_counter("serve.test.declared");
        r.declare_histogram("serve.test.latency");
        let snap = r.snapshot();
        assert_eq!(snap.counter("serve.test.declared"), 0);
        assert_eq!(snap.histogram("serve.test.latency").unwrap().count, 0);
        assert!(snap.to_json().contains("\"serve.test.declared\": 0"));
        // Declaring again never resets accumulated values.
        r.count("serve.test.declared", 3);
        r.declare_counter("serve.test.declared");
        assert_eq!(r.snapshot().counter("serve.test.declared"), 3);
    }

    #[test]
    fn prometheus_exposition_has_counters_and_cumulative_buckets() {
        let r = Registry::new();
        r.count("serve.requests", 7);
        r.time("serve.request", Duration::from_micros(100));
        r.time("serve.request", Duration::from_micros(200));
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("# TYPE phpsafe_serve_requests counter"));
        assert!(text.contains("phpsafe_serve_requests 7"));
        assert!(text.contains("# TYPE phpsafe_serve_request_us histogram"));
        assert!(text.contains("phpsafe_serve_request_us_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("phpsafe_serve_request_us_sum 300"));
        assert!(text.contains("phpsafe_serve_request_us_count 2"));
        // Bucket series are cumulative: the 128..255 bucket line counts
        // both samples' buckets up to its bound.
        assert!(text.contains("phpsafe_serve_request_us_bucket{le=\"127\"} 1"));
        assert!(text.contains("phpsafe_serve_request_us_bucket{le=\"200\"} 2"));
    }

    #[test]
    fn gauges_are_set_absolute_levels() {
        let r = Registry::new();
        let ns = format!("diskcache.bytes_on_disk.{}", "ast");
        r.gauge(&ns, 100);
        r.gauge(&ns, 40); // a gauge can go down
        r.gauge("diskcache.bytes_on_disk.summary", 7);
        let snap = r.snapshot();
        assert_eq!(snap.gauge(&ns), 40);
        assert_eq!(snap.gauge("diskcache.bytes_on_disk.summary"), 7);
        assert_eq!(snap.gauge("missing"), 0);
        // Deltas carry the current level, not a difference.
        let before = snap.clone();
        r.gauge(&ns, 55);
        let delta = r.snapshot().since(&before);
        assert_eq!(delta.gauge(&ns), 55);
        // JSON and Prometheus expositions surface gauges.
        let j = r.snapshot().to_json();
        assert!(j.contains("\"diskcache.bytes_on_disk.ast\": 55"));
        let p = r.snapshot().to_prometheus();
        assert!(p.contains("# TYPE phpsafe_diskcache_bytes_on_disk_ast gauge"));
        assert!(p.contains("phpsafe_diskcache_bytes_on_disk_ast 55"));
        // Prefix filtering and the rendered table keep gauges too.
        let filtered = r.snapshot().filtered(&["diskcache.bytes_on_disk.a"]);
        assert_eq!(filtered.gauges.len(), 1);
        assert!(r.snapshot().render(&[]).contains("gauges:"));
    }

    #[test]
    fn render_filters_by_prefix() {
        let r = Registry::new();
        r.count("cache.parse.hits", 1);
        r.count("span.other", 2);
        let text = r.snapshot().render(&["cache."]);
        assert!(text.contains("cache.parse.hits"));
        assert!(!text.contains("span.other"));
        let empty = Snapshot::default().render(&[]);
        assert!(empty.contains("empty"));
    }
}
