//! Crash-safe file output for telemetry artifacts.
//!
//! `--metrics-out`, `--engine-stats-json` and `--telemetry-out` are read
//! by harnesses and dashboards; a run killed mid-write must never leave a
//! half-written JSON behind. [`write_atomic`] follows the `DiskCache`
//! convention — write the full contents to a sibling temp file, then
//! `rename` into place — and [`TelemetrySink`] layers an NDJSON
//! wide-event stream on top of it, rewriting the file atomically on each
//! flush so the sink's file is a valid NDJSON document at every instant.

use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// How many appended lines a [`TelemetrySink`] buffers before flushing.
const FLUSH_EVERY: usize = 64;

static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Writes `contents` to `path` atomically: the bytes land in a sibling
/// temp file (same directory, so the rename never crosses filesystems)
/// that is `rename`d over `path`. Readers see either the old complete
/// file or the new complete file, never a torn write.
pub fn write_atomic(path: &Path, contents: &[u8]) -> io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let tmp_name = format!(
        ".{}.tmp.{}.{seq}",
        name.to_string_lossy(),
        std::process::id()
    );
    let tmp = match dir {
        Some(dir) => dir.join(tmp_name),
        None => PathBuf::from(tmp_name),
    };
    let written = std::fs::File::create(&tmp)
        .and_then(|mut f| f.write_all(contents))
        .and_then(|()| std::fs::rename(&tmp, path));
    if written.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    written
}

/// An NDJSON sink for wide events: lines accumulate in memory and the
/// whole stream is rewritten to disk atomically every [`FLUSH_EVERY`]
/// appends and on [`TelemetrySink::flush`] (which the daemon calls at
/// shutdown). A killed daemon therefore leaves the last complete flush,
/// never a torn line.
pub struct TelemetrySink {
    path: PathBuf,
    state: Mutex<SinkState>,
}

struct SinkState {
    buffer: String,
    unflushed: usize,
}

impl TelemetrySink {
    /// A sink writing to `path`. The file itself is created on the first
    /// flush.
    pub fn new(path: impl Into<PathBuf>) -> TelemetrySink {
        TelemetrySink {
            path: path.into(),
            state: Mutex::new(SinkState {
                buffer: String::new(),
                unflushed: 0,
            }),
        }
    }

    /// The sink's target path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one NDJSON line (the newline is added here) and flushes
    /// when enough lines accumulated.
    pub fn append(&self, line: &str) -> io::Result<()> {
        let mut state = self.state.lock().unwrap();
        state.buffer.push_str(line);
        state.buffer.push('\n');
        state.unflushed += 1;
        if state.unflushed >= FLUSH_EVERY {
            return Self::flush_locked(&self.path, &mut state);
        }
        Ok(())
    }

    /// Forces the buffered stream onto disk (atomic rewrite).
    pub fn flush(&self) -> io::Result<()> {
        let mut state = self.state.lock().unwrap();
        Self::flush_locked(&self.path, &mut state)
    }

    fn flush_locked(path: &Path, state: &mut SinkState) -> io::Result<()> {
        state.unflushed = 0;
        write_atomic(path, state.buffer.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("phpsafe-obs-out-{tag}-{}", std::process::id()))
    }

    #[test]
    fn write_atomic_replaces_contents_and_leaves_no_temp_files() {
        let dir = tmp("atomic");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.json");
        write_atomic(&path, b"{\"a\":1}").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"{\"a\":1}");
        write_atomic(&path, b"{\"a\":2}").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"{\"a\":2}");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp."))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_atomic_rejects_directory_targets() {
        let dir = tmp("atomic-dir");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert!(write_atomic(&dir, b"x").is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sink_accumulates_and_flush_writes_complete_stream() {
        let dir = tmp("sink");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("telemetry.ndjson");
        let sink = TelemetrySink::new(&path);
        sink.append("{\"seq\":1}").unwrap();
        sink.append("{\"seq\":2}").unwrap();
        sink.flush().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "{\"seq\":1}\n{\"seq\":2}\n");
        // Later appends keep the earlier lines: the stream grows.
        sink.append("{\"seq\":3}").unwrap();
        sink.flush().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
