//! RAII spans and the self-profile tree.
//!
//! [`Span::enter`] (or the [`crate::span!`] macro) opens a named span; when
//! the guard drops it records the elapsed wall time into the global
//! histogram of the same name and into a call tree keyed by the nesting of
//! open spans. Each thread accumulates into a thread-local tree and merges
//! it into the process-wide tree when its outermost span closes, so the
//! only cross-thread synchronization happens once per root span.
//!
//! While instrumentation is disabled ([`crate::enabled`] is false) entering
//! a span costs one relaxed atomic load and one `Instant::now()` is never
//! taken — the guard is inert.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// One node of the self-profile tree: how often a span ran at this position
/// in the nesting and how long it took in total.
#[derive(Default)]
struct Node {
    count: u64,
    total: Duration,
    children: BTreeMap<&'static str, Node>,
}

impl Node {
    fn at_path(&mut self, path: &[&'static str]) -> &mut Node {
        let mut node = self;
        for name in path {
            node = node.children.entry(name).or_default();
        }
        node
    }

    fn merge(&mut self, other: &Node) {
        self.count += other.count;
        self.total += other.total;
        for (name, child) in &other.children {
            self.children.entry(name).or_default().merge(child);
        }
    }

    fn render(&self, out: &mut String, depth: usize) {
        for (name, child) in &self.children {
            let avg_us = (child.total.as_micros() as u64)
                .checked_div(child.count)
                .unwrap_or(0);
            let _ = writeln!(
                out,
                "{:indent$}{name}  count {}  total {:.3}s  avg {avg_us}us",
                "",
                child.count,
                child.total.as_secs_f64(),
                indent = depth * 2,
            );
            child.render(out, depth + 1);
        }
    }
}

fn global_tree() -> &'static Mutex<Node> {
    static TREE: OnceLock<Mutex<Node>> = OnceLock::new();
    TREE.get_or_init(|| Mutex::new(Node::default()))
}

thread_local! {
    /// Names of the spans currently open on this thread, outermost first.
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    /// This thread's private profile tree, merged globally at root close.
    static LOCAL_TREE: RefCell<Node> = RefCell::new(Node::default());
}

/// Guard for one timed region. Create with [`Span::enter`] or
/// [`crate::span!`] and keep it bound for the region's lifetime.
#[must_use = "an unbound span drops immediately and measures nothing"]
pub struct Span {
    name: &'static str,
    /// `None` when instrumentation was disabled at entry.
    start: Option<Instant>,
}

impl Span {
    /// Opens a span. Inert (no clock read, no stack push) while
    /// instrumentation is disabled.
    pub fn enter(name: &'static str) -> Span {
        if !crate::enabled() {
            return Span { name, start: None };
        }
        STACK.with(|s| s.borrow_mut().push(name));
        Span {
            name,
            start: Some(Instant::now()),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let elapsed = start.elapsed();
        // Record into the histogram unconditionally: the span was entered
        // while enabled, so its sample belongs to this measurement session
        // even if the switch flipped mid-span.
        crate::global().time(self.name, elapsed);
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            stack.pop();
            LOCAL_TREE.with(|t| {
                let mut tree = t.borrow_mut();
                let node = tree.at_path(&stack).children.entry(self.name).or_default();
                node.count += 1;
                node.total += elapsed;
            });
            if stack.is_empty() {
                let local = LOCAL_TREE.with(|t| std::mem::take(&mut *t.borrow_mut()));
                global_tree().lock().unwrap().merge(&local);
            }
        });
    }
}

/// Renders the process-wide self-profile tree, children indented under
/// their parents in name order. Only completed root spans are visible.
pub fn tree_text() -> String {
    let mut out = String::from("span self-profile\n");
    let tree = global_tree().lock().unwrap();
    if tree.children.is_empty() {
        out.push_str("  (no spans recorded — was instrumentation enabled?)\n");
    } else {
        tree.render(&mut out, 1);
    }
    out
}

/// Discards the process-wide tree (thread-local in-progress trees are
/// untouched and will merge into the fresh tree when their roots close).
pub fn clear_tree() {
    *global_tree().lock().unwrap() = Node::default();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_builds_a_tree_and_threads_merge() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        {
            let _root = Span::enter("span.test.root");
            {
                let _child = Span::enter("span.test.child");
            }
            {
                let _child = Span::enter("span.test.child");
            }
        }
        // A second thread contributes the same shape; counts must add up.
        std::thread::spawn(|| {
            let _root = Span::enter("span.test.root");
            let _child = Span::enter("span.test.child");
        })
        .join()
        .unwrap();
        crate::set_enabled(false);

        let tree = global_tree().lock().unwrap();
        let root = tree.children.get("span.test.root").expect("root node");
        assert_eq!(root.count, 2);
        assert_eq!(root.children.get("span.test.child").unwrap().count, 3);
        drop(tree);

        let text = tree_text();
        let root_at = text.find("span.test.root").unwrap();
        let child_at = text.find("span.test.child").unwrap();
        assert!(child_at > root_at, "children render under their parent");
    }

    #[test]
    fn disabled_spans_touch_nothing() {
        let _guard = crate::test_lock();
        crate::set_enabled(false);
        {
            let _s = Span::enter("span.test.disabled");
        }
        assert!(!tree_text().contains("span.test.disabled"));
        assert!(crate::snapshot().histogram("span.test.disabled").is_none());
        STACK.with(|s| assert!(s.borrow().is_empty()));
    }
}
