//! Wide events: one structured record per served request.
//!
//! phpSAFE's `--explain` answers "why was this flow reported?" with a
//! source→sanitizer→sink chain; a [`WideEvent`] answers "why was this
//! request slow?" with the same evidence discipline applied to latency.
//! Each request that passes through the daemon produces exactly one wide
//! event — request id, method, outcome, queue wait, per-stage timings,
//! cache hit counts — serialized as one NDJSON line ([`WideEvent::
//! to_ndjson`]) and streamed to the `--telemetry-out` sink.
//!
//! Keeping every event's full detail would be unbounded, so the
//! [`TailSampler`] retains only the interesting tail: the slowest-K
//! requests plus every errored request (bounded separately). Everything
//! else still contributes its compact line and its latency sample; only
//! the retained records are echoed back by the daemon's `telemetry`
//! command.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::Mutex;

use crate::metrics::json_string;

/// One request's telemetry record: everything needed to explain its
/// latency without correlating logs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WideEvent {
    /// Server-assigned request id (monotonic per daemon).
    pub seq: u64,
    /// The client's `id` field as raw JSON text, if it sent one.
    pub client_id: Option<String>,
    /// Protocol method (`analyze`, `status`, `metrics`, `telemetry`,
    /// `shutdown`, `invalid`).
    pub method: String,
    /// `ok`, or `error:<code>` with the HTTP-flavoured response code.
    pub outcome: String,
    /// Content key of the first analyzed project (hex), when known.
    pub content_key: Option<String>,
    /// Time spent queued before a worker picked the request up, µs.
    pub queue_wait_us: u64,
    /// Time inside the service (analysis proper), µs.
    pub service_us: u64,
    /// End-to-end time from parse to rendered response, µs.
    pub total_us: u64,
    /// Cache hits attributed to this request (all tiers summed).
    pub cache_hits: u64,
    /// Cache misses attributed to this request.
    pub cache_misses: u64,
    /// Named per-stage timings (`load_us`, `cache_probe_us`,
    /// `analyze_us`, `persist_us`, ...), the request-scoped span tree
    /// flattened in recording order.
    pub marks: Vec<(&'static str, u64)>,
}

impl WideEvent {
    /// Whether the request failed (outcome is not `ok`).
    pub fn is_error(&self) -> bool {
        self.outcome != "ok"
    }

    /// Serializes the event as one NDJSON line (no trailing newline):
    /// a flat JSON object with the marks nested under `"marks"`.
    pub fn to_ndjson(&self) -> String {
        let mut out = String::with_capacity(160);
        let _ = write!(
            out,
            "{{\"seq\":{},\"method\":{},\"outcome\":{}",
            self.seq,
            json_string(&self.method),
            json_string(&self.outcome)
        );
        if let Some(id) = &self.client_id {
            let _ = write!(out, ",\"id\":{id}");
        }
        if let Some(key) = &self.content_key {
            let _ = write!(out, ",\"content_key\":{}", json_string(key));
        }
        let _ = write!(
            out,
            ",\"queue_wait_us\":{},\"service_us\":{},\"total_us\":{},\"cache_hits\":{},\"cache_misses\":{}",
            self.queue_wait_us, self.service_us, self.total_us, self.cache_hits, self.cache_misses
        );
        if !self.marks.is_empty() {
            out.push_str(",\"marks\":{");
            for (i, (name, us)) in self.marks.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}:{us}", json_string(name));
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

/// Bounded tail retention: keeps the slowest-K wide events plus the most
/// recent K errored ones, so "why was this one call slow?" stays
/// answerable without retaining every request's detail.
pub struct TailSampler {
    keep: usize,
    state: Mutex<TailState>,
}

#[derive(Default)]
struct TailState {
    /// Slowest events, sorted by `total_us` descending, at most `keep`.
    slow: Vec<WideEvent>,
    /// Most recent errored events, oldest first, at most `keep`.
    errors: VecDeque<WideEvent>,
}

impl TailSampler {
    /// A sampler retaining at most `keep` slow and `keep` errored events
    /// (minimum 1 each).
    pub fn new(keep: usize) -> TailSampler {
        TailSampler {
            keep: keep.max(1),
            state: Mutex::new(TailState::default()),
        }
    }

    /// Offers an event for retention; returns `true` when it was kept
    /// (errored, or among the slowest-K seen so far).
    pub fn offer(&self, event: &WideEvent) -> bool {
        let mut state = self.state.lock().unwrap();
        if event.is_error() {
            if state.errors.len() == self.keep {
                state.errors.pop_front();
            }
            state.errors.push_back(event.clone());
            return true;
        }
        if state.slow.len() == self.keep
            && state
                .slow
                .last()
                .is_some_and(|e| e.total_us >= event.total_us)
        {
            return false;
        }
        let at = state.slow.partition_point(|e| e.total_us >= event.total_us);
        state.slow.insert(at, event.clone());
        state.slow.truncate(self.keep);
        true
    }

    /// The retained tail: errored events first (oldest to newest), then
    /// the slowest-K successes (slowest first).
    pub fn samples(&self) -> Vec<WideEvent> {
        let state = self.state.lock().unwrap();
        state
            .errors
            .iter()
            .chain(state.slow.iter())
            .cloned()
            .collect()
    }

    /// Discards everything retained so far.
    pub fn clear(&self) {
        let mut state = self.state.lock().unwrap();
        state.slow.clear();
        state.errors.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(seq: u64, total_us: u64, outcome: &str) -> WideEvent {
        WideEvent {
            seq,
            method: "analyze".into(),
            outcome: outcome.into(),
            total_us,
            ..WideEvent::default()
        }
    }

    #[test]
    fn ndjson_line_is_flat_and_complete() {
        let ev = WideEvent {
            seq: 42,
            client_id: Some("\"req-9\"".into()),
            method: "analyze".into(),
            outcome: "ok".into(),
            content_key: Some("00ff-12".into()),
            queue_wait_us: 5,
            service_us: 90,
            total_us: 100,
            cache_hits: 3,
            cache_misses: 1,
            marks: vec![("load_us", 7), ("analyze_us", 80)],
        };
        let line = ev.to_ndjson();
        assert!(!line.contains('\n'), "must stay on one line");
        assert_eq!(
            line,
            "{\"seq\":42,\"method\":\"analyze\",\"outcome\":\"ok\",\"id\":\"req-9\",\
             \"content_key\":\"00ff-12\",\"queue_wait_us\":5,\"service_us\":90,\
             \"total_us\":100,\"cache_hits\":3,\"cache_misses\":1,\
             \"marks\":{\"load_us\":7,\"analyze_us\":80}}"
        );
        // Optional fields disappear entirely when absent.
        let bare = event(1, 10, "ok").to_ndjson();
        assert!(!bare.contains("\"id\""));
        assert!(!bare.contains("content_key"));
        assert!(!bare.contains("marks"));
    }

    #[test]
    fn sampler_keeps_the_slowest_k() {
        let sampler = TailSampler::new(3);
        for (seq, us) in [(1, 50), (2, 10), (3, 80), (4, 20), (5, 70)] {
            sampler.offer(&event(seq, us, "ok"));
        }
        let kept: Vec<u64> = sampler.samples().iter().map(|e| e.total_us).collect();
        assert_eq!(kept, [80, 70, 50], "slowest three, slowest first");
        assert!(
            !sampler.offer(&event(6, 5, "ok")),
            "a fast request must not displace the tail"
        );
        assert!(sampler.offer(&event(7, 60, "ok")));
        let kept: Vec<u64> = sampler.samples().iter().map(|e| e.total_us).collect();
        assert_eq!(kept, [80, 70, 60]);
    }

    #[test]
    fn errors_are_always_retained_and_bounded_separately() {
        let sampler = TailSampler::new(2);
        sampler.offer(&event(1, 1000, "ok"));
        sampler.offer(&event(2, 900, "ok"));
        assert!(
            sampler.offer(&event(3, 1, "error:429")),
            "errors are retained regardless of latency"
        );
        sampler.offer(&event(4, 2, "error:504"));
        sampler.offer(&event(5, 3, "error:500"));
        let samples = sampler.samples();
        let errors: Vec<u64> = samples
            .iter()
            .filter(|e| e.is_error())
            .map(|e| e.seq)
            .collect();
        assert_eq!(errors, [4, 5], "oldest error evicted at the bound");
        assert_eq!(
            samples.iter().filter(|e| !e.is_error()).count(),
            2,
            "slow successes keep their own budget"
        );
        sampler.clear();
        assert!(sampler.samples().is_empty());
    }
}
