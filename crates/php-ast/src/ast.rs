//! Typed abstract syntax tree for the PHP 5 subset relevant to plugin
//! analysis: full expression grammar, statements, functions, closures and
//! the OOP constructs (classes, interfaces, traits, properties, methods)
//! whose handling distinguishes phpSAFE from RIPS/Pixy.

use phpsafe_intern::Symbol;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A lightweight source position (1-based line). The analyzers report
/// findings by file + line, mirroring the paper's output.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Span {
    /// 1-based line number.
    pub line: u32,
}

impl Span {
    /// Creates a span at `line`.
    pub fn at(line: u32) -> Self {
        Span { line }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}", self.line)
    }
}

/// Literal values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Lit {
    /// Integer literal (kept as text to preserve hex/octal/binary forms).
    Int(String),
    /// Float literal.
    Float(String),
    /// String literal with quotes stripped and escapes left verbatim.
    Str(String),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Pow,
    Concat,
    Eq,
    NotEq,
    Identical,
    NotIdentical,
    Lt,
    Gt,
    Le,
    Ge,
    And,
    Or,
    Xor,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
}

impl BinOp {
    /// PHP spelling of the operator.
    pub fn symbol(self) -> &'static str {
        use BinOp::*;
        match self {
            Add => "+",
            Sub => "-",
            Mul => "*",
            Div => "/",
            Mod => "%",
            Pow => "**",
            Concat => ".",
            Eq => "==",
            NotEq => "!=",
            Identical => "===",
            NotIdentical => "!==",
            Lt => "<",
            Gt => ">",
            Le => "<=",
            Ge => ">=",
            And => "&&",
            Or => "||",
            Xor => "xor",
            BitAnd => "&",
            BitOr => "|",
            BitXor => "^",
            Shl => "<<",
            Shr => ">>",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum UnOp {
    Not,
    Neg,
    Plus,
    BitNot,
}

/// Compound-assignment operators (`$a .= $b` etc.); `None` is plain `=`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum AssignOp {
    Assign,
    AddAssign,
    SubAssign,
    MulAssign,
    DivAssign,
    ModAssign,
    ConcatAssign,
    BitAndAssign,
    BitOrAssign,
    BitXorAssign,
    ShlAssign,
    ShrAssign,
}

impl AssignOp {
    /// PHP spelling.
    pub fn symbol(self) -> &'static str {
        use AssignOp::*;
        match self {
            Assign => "=",
            AddAssign => "+=",
            SubAssign => "-=",
            MulAssign => "*=",
            DivAssign => "/=",
            ModAssign => "%=",
            ConcatAssign => ".=",
            BitAndAssign => "&=",
            BitOrAssign => "|=",
            BitXorAssign => "^=",
            ShlAssign => "<<=",
            ShrAssign => ">>=",
        }
    }

    /// Whether the old value of the target flows into the new value
    /// (true for every compound op; `.=` is the one that matters for taint).
    pub fn reads_target(self) -> bool {
        !matches!(self, AssignOp::Assign)
    }
}

/// Cast kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum CastKind {
    Int,
    Float,
    String,
    Array,
    Object,
    Bool,
    Unset,
}

impl CastKind {
    /// Whether this cast neutralizes injection payloads (numeric/bool casts
    /// sanitize; string/array/object casts do not).
    pub fn sanitizes(self) -> bool {
        matches!(
            self,
            CastKind::Int | CastKind::Float | CastKind::Bool | CastKind::Unset
        )
    }

    /// PHP spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            CastKind::Int => "(int)",
            CastKind::Float => "(float)",
            CastKind::String => "(string)",
            CastKind::Array => "(array)",
            CastKind::Object => "(object)",
            CastKind::Bool => "(bool)",
            CastKind::Unset => "(unset)",
        }
    }
}

/// `include` / `require` family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum IncludeKind {
    Include,
    IncludeOnce,
    Require,
    RequireOnce,
}

impl IncludeKind {
    /// PHP spelling.
    pub fn keyword(self) -> &'static str {
        match self {
            IncludeKind::Include => "include",
            IncludeKind::IncludeOnce => "include_once",
            IncludeKind::Require => "require",
            IncludeKind::RequireOnce => "require_once",
        }
    }
}

/// A member selector after `->` or `::` — either a fixed name or a computed
/// expression (`$obj->$field`, `$obj->{expr}`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Member {
    /// `->name`
    Name(Symbol),
    /// `->$var` or `->{expr}`
    Dynamic(Box<Expr>),
}

impl Member {
    /// The fixed name, if statically known.
    pub fn as_name(&self) -> Option<&str> {
        match self {
            Member::Name(n) => Some(n.as_str()),
            Member::Dynamic(_) => None,
        }
    }
}

/// What is being called in a [`Expr::Call`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Callee {
    /// `foo(...)` — a plain (possibly namespaced) function name.
    Function(Symbol),
    /// `$f(...)` or `($expr)(...)` — dynamic call.
    Dynamic(Box<Expr>),
    /// `$obj->m(...)`
    Method {
        /// The receiver expression.
        base: Box<Expr>,
        /// The method selector.
        name: Member,
    },
    /// `Cls::m(...)` / `self::m(...)` / `static::m(...)`
    StaticMethod {
        /// The class name as written.
        class: Symbol,
        /// The method selector.
        name: Member,
    },
}

/// A call argument (PHP 5: optional by-reference marker).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Arg {
    /// Argument expression.
    pub value: Expr,
    /// `&$x` at the call site.
    pub by_ref: bool,
}

impl Arg {
    /// Positional argument.
    pub fn pos(value: Expr) -> Self {
        Arg {
            value,
            by_ref: false,
        }
    }
}

/// One piece of an interpolated string.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum InterpPart {
    /// Literal fragment.
    Lit(String),
    /// Interpolated expression (`$x`, `$x->p`, `{$expr}`).
    Expr(Expr),
}

/// Expressions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// `$name`
    Var(Symbol, Span),
    /// Variable-variable `$$name` or `${expr}`.
    VarVar(Box<Expr>, Span),
    /// Literal.
    Lit(Lit, Span),
    /// Interpolated double-quoted string / heredoc.
    Interp(Vec<InterpPart>, Span),
    /// Bareword constant fetch (`FOO`, `PHP_EOL`).
    ConstFetch(Symbol, Span),
    /// `CLS::CONST`
    ClassConst(Symbol, Symbol, Span),
    /// `array(...)` / `[...]`
    ArrayLit(Vec<(Option<Expr>, Expr)>, Span),
    /// `$base[index]`; `index` is `None` for push syntax `$a[] = ...`.
    Index(Box<Expr>, Option<Box<Expr>>, Span),
    /// `$base->member`
    Prop(Box<Expr>, Member, Span),
    /// `CLS::$prop`
    StaticProp(Symbol, Symbol, Span),
    /// Assignment (including compound and by-reference).
    Assign {
        /// Assignment target (lvalue).
        target: Box<Expr>,
        /// Operator (plain or compound).
        op: AssignOp,
        /// Right-hand side.
        value: Box<Expr>,
        /// `=& ` reference assignment.
        by_ref: bool,
        /// Location.
        span: Span,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Location.
        span: Span,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
        /// Location.
        span: Span,
    },
    /// `++$x`, `$x--`, …
    IncDec {
        /// Prefix (`++$x`) vs postfix (`$x++`).
        prefix: bool,
        /// Increment vs decrement.
        increment: bool,
        /// Operand.
        expr: Box<Expr>,
        /// Location.
        span: Span,
    },
    /// Function / method / dynamic call.
    Call {
        /// Call target.
        callee: Callee,
        /// Arguments.
        args: Vec<Arg>,
        /// Location.
        span: Span,
    },
    /// `new Cls(args)`; class may be dynamic (`new $cls`).
    New {
        /// Class name if statically known.
        class: Member,
        /// Constructor arguments.
        args: Vec<Arg>,
        /// Location.
        span: Span,
    },
    /// `clone $x`
    Clone(Box<Expr>, Span),
    /// `$c ? $t : $e` (with `$t` optional for the `?:` short form).
    Ternary {
        /// Condition.
        cond: Box<Expr>,
        /// `then` branch (`None` for `?:`).
        then: Option<Box<Expr>>,
        /// `else` branch.
        otherwise: Box<Expr>,
        /// Location.
        span: Span,
    },
    /// Type cast.
    Cast(CastKind, Box<Expr>, Span),
    /// `isset($a, $b)`
    Isset(Vec<Expr>, Span),
    /// `empty($x)`
    Empty(Box<Expr>, Span),
    /// `@expr`
    ErrorSuppress(Box<Expr>, Span),
    /// `print $x` (an expression in PHP).
    Print(Box<Expr>, Span),
    /// `exit($x)` / `die($x)`.
    Exit(Option<Box<Expr>>, Span),
    /// `include`/`require` expression.
    Include(IncludeKind, Box<Expr>, Span),
    /// `$x instanceof Cls`
    Instanceof(Box<Expr>, Symbol, Span),
    /// `list($a, $b) = ...` target.
    ListIntrinsic(Vec<Option<Expr>>, Span),
    /// Anonymous function.
    Closure {
        /// Parameters.
        params: Vec<Param>,
        /// `use (...)` captures: (name, by_ref).
        uses: Vec<(Symbol, bool)>,
        /// Body statements.
        body: Vec<Stmt>,
        /// Location.
        span: Span,
    },
    /// Backtick shell execution.
    ShellExec(Vec<InterpPart>, Span),
    /// `&$x` reference in value position.
    Ref(Box<Expr>, Span),
    /// Placeholder produced by error recovery.
    Error(Span),
}

impl Expr {
    /// The source span of this expression.
    pub fn span(&self) -> Span {
        use Expr::*;
        match self {
            Var(_, s)
            | VarVar(_, s)
            | Lit(_, s)
            | Interp(_, s)
            | ConstFetch(_, s)
            | ClassConst(_, _, s)
            | ArrayLit(_, s)
            | Index(_, _, s)
            | Prop(_, _, s)
            | StaticProp(_, _, s)
            | Clone(_, s)
            | Cast(_, _, s)
            | Isset(_, s)
            | Empty(_, s)
            | ErrorSuppress(_, s)
            | Print(_, s)
            | Exit(_, s)
            | Include(_, _, s)
            | Instanceof(_, _, s)
            | ListIntrinsic(_, s)
            | ShellExec(_, s)
            | Ref(_, s)
            | Error(s) => *s,
            Assign { span, .. }
            | Binary { span, .. }
            | Unary { span, .. }
            | IncDec { span, .. }
            | Call { span, .. }
            | New { span, .. }
            | Ternary { span, .. }
            | Closure { span, .. } => *span,
        }
    }

    /// Convenience: `$name` variable expression.
    pub fn var(name: impl Into<Symbol>, line: u32) -> Expr {
        Expr::Var(name.into(), Span::at(line))
    }

    /// Convenience: string literal.
    pub fn str(value: impl Into<String>, line: u32) -> Expr {
        Expr::Lit(Lit::Str(value.into()), Span::at(line))
    }

    /// If this is `$name`, return the name (with `$`).
    pub fn as_var_name(&self) -> Option<&str> {
        match self {
            Expr::Var(n, _) => Some(n.as_str()),
            _ => None,
        }
    }
}

/// A function / method / closure parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    /// Parameter variable name including `$`.
    pub name: Symbol,
    /// Declared by reference (`&$x`).
    pub by_ref: bool,
    /// Default value, if any.
    pub default: Option<Expr>,
    /// Type hint as written (`array`, class name), if any.
    pub type_hint: Option<String>,
    /// Variadic (`...$args`).
    pub variadic: bool,
}

impl Param {
    /// A plain by-value parameter with no default.
    pub fn simple(name: impl Into<Symbol>) -> Self {
        Param {
            name: name.into(),
            by_ref: false,
            default: None,
            type_hint: None,
            variadic: false,
        }
    }
}

/// Member visibility / modifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Modifiers {
    /// `public` (default), `protected`, or `private`.
    pub visibility: Visibility,
    /// `static`
    pub is_static: bool,
    /// `abstract`
    pub is_abstract: bool,
    /// `final`
    pub is_final: bool,
}

/// Member visibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Visibility {
    /// `public` / `var` / unspecified.
    #[default]
    Public,
    /// `protected`
    Protected,
    /// `private`
    Private,
}

/// A named function declaration (also used for methods).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionDecl {
    /// Function name as written (case preserved; PHP resolves
    /// case-insensitively).
    pub name: Symbol,
    /// Parameters.
    pub params: Vec<Param>,
    /// Returns by reference (`function &f()`).
    pub by_ref: bool,
    /// Body statements (empty for abstract/interface methods).
    pub body: Vec<Stmt>,
    /// Location of the declaration.
    pub span: Span,
}

/// A class / interface / trait declaration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassDecl {
    /// Declared name.
    pub name: Symbol,
    /// Declaration flavor.
    pub kind: ClassKind,
    /// `extends` parent, if any (interfaces may extend several; we keep the
    /// first — enough for method resolution in plugin code).
    pub parent: Option<Symbol>,
    /// `implements` list.
    pub interfaces: Vec<String>,
    /// `abstract class`.
    pub is_abstract: bool,
    /// `final class`.
    pub is_final: bool,
    /// Members in declaration order.
    pub members: Vec<ClassMember>,
    /// Location.
    pub span: Span,
}

impl ClassDecl {
    /// Iterates the methods of the class.
    pub fn methods(&self) -> impl Iterator<Item = (&Modifiers, &FunctionDecl)> {
        self.members.iter().filter_map(|m| match m {
            ClassMember::Method(mods, f) => Some((mods, f)),
            _ => None,
        })
    }

    /// Looks up a method by case-insensitive name.
    pub fn method(&self, name: &str) -> Option<&FunctionDecl> {
        self.methods()
            .find(|(_, f)| f.name.as_str().eq_ignore_ascii_case(name))
            .map(|(_, f)| f)
    }
}

/// `class` vs `interface` vs `trait`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum ClassKind {
    Class,
    Interface,
    Trait,
}

/// A class member.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ClassMember {
    /// `public $x = default;`
    Property {
        /// Property name including `$`.
        name: Symbol,
        /// Default value.
        default: Option<Expr>,
        /// Modifiers.
        modifiers: Modifiers,
        /// Location.
        span: Span,
    },
    /// A method.
    Method(Modifiers, FunctionDecl),
    /// `const NAME = value;`
    Const {
        /// Constant name.
        name: String,
        /// Value expression.
        value: Expr,
        /// Location.
        span: Span,
    },
    /// `use TraitA, TraitB;`
    UseTrait(Vec<String>, Span),
}

/// A `catch (Type $e)` clause.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Catch {
    /// Caught class name.
    pub class: String,
    /// Exception variable including `$`.
    pub var: Symbol,
    /// Handler body.
    pub body: Vec<Stmt>,
}

/// One `case`/`default` arm of a `switch`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwitchCase {
    /// Case value; `None` for `default`.
    pub value: Option<Expr>,
    /// Arm body.
    pub body: Vec<Stmt>,
}

/// Statements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// Expression statement.
    Expr(Expr),
    /// `echo a, b, c;` (also synthesized for `<?= ... ?>`).
    Echo(Vec<Expr>, Span),
    /// Raw HTML between PHP blocks — an *output* in taint terms.
    InlineHtml(String, Span),
    /// `if` with any number of `elseif`s and an optional `else`.
    If {
        /// Condition.
        cond: Expr,
        /// `then` branch.
        then: Vec<Stmt>,
        /// `elseif` chain.
        elseifs: Vec<(Expr, Vec<Stmt>)>,
        /// `else` branch.
        otherwise: Option<Vec<Stmt>>,
        /// Location.
        span: Span,
    },
    /// `while`
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
        /// Location.
        span: Span,
    },
    /// `do { } while ()`
    DoWhile {
        /// Body.
        body: Vec<Stmt>,
        /// Condition.
        cond: Expr,
        /// Location.
        span: Span,
    },
    /// `for (init; cond; step)`
    For {
        /// Init expressions.
        init: Vec<Expr>,
        /// Condition expressions.
        cond: Vec<Expr>,
        /// Step expressions.
        step: Vec<Expr>,
        /// Body.
        body: Vec<Stmt>,
        /// Location.
        span: Span,
    },
    /// `foreach ($subject as $key => $value)`
    Foreach {
        /// Iterated expression.
        subject: Expr,
        /// Key variable, if present.
        key: Option<Expr>,
        /// Value binding target.
        value: Expr,
        /// `as &$v` by-reference binding.
        by_ref: bool,
        /// Body.
        body: Vec<Stmt>,
        /// Location.
        span: Span,
    },
    /// `switch`
    Switch {
        /// Scrutinee.
        subject: Expr,
        /// Arms.
        cases: Vec<SwitchCase>,
        /// Location.
        span: Span,
    },
    /// `break [n];`
    Break(Span),
    /// `continue [n];`
    Continue(Span),
    /// `return [expr];`
    Return(Option<Expr>, Span),
    /// `global $a, $b;`
    Global(Vec<Symbol>, Span),
    /// `static $a = 1;` (function-static variables).
    StaticVars(Vec<(Symbol, Option<Expr>)>, Span),
    /// `unset($a, $b);`
    Unset(Vec<Expr>, Span),
    /// `throw expr;`
    Throw(Expr, Span),
    /// `try { } catch () { } finally { }`
    Try {
        /// Protected body.
        body: Vec<Stmt>,
        /// Catch clauses.
        catches: Vec<Catch>,
        /// Finally block.
        finally: Option<Vec<Stmt>>,
        /// Location.
        span: Span,
    },
    /// A bare `{ ... }` block.
    Block(Vec<Stmt>, Span),
    /// Named function declaration.
    Function(FunctionDecl),
    /// Class / interface / trait declaration.
    Class(ClassDecl),
    /// `const NAME = value;` at top level.
    ConstDecl(Vec<(String, Expr)>, Span),
    /// `;` empty statement.
    Nop(Span),
    /// Placeholder produced by error recovery.
    Error(Span),
}

impl Stmt {
    /// The source span of this statement (best effort).
    pub fn span(&self) -> Span {
        use Stmt::*;
        match self {
            Expr(e) => e.span(),
            Echo(_, s)
            | InlineHtml(_, s)
            | Break(s)
            | Continue(s)
            | Return(_, s)
            | Global(_, s)
            | StaticVars(_, s)
            | Unset(_, s)
            | Block(_, s)
            | ConstDecl(_, s)
            | Nop(s)
            | Error(s) => *s,
            Throw(e, _) => e.span(),
            If { span, .. }
            | While { span, .. }
            | DoWhile { span, .. }
            | For { span, .. }
            | Foreach { span, .. }
            | Switch { span, .. }
            | Try { span, .. } => *span,
            Function(f) => f.span,
            Class(c) => c.span,
        }
    }
}

/// A parse diagnostic: the parser recovers and keeps going, recording these.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParseError {
    /// Human-readable message.
    pub message: String,
    /// Location.
    pub span: Span,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.message, self.span)
    }
}

impl std::error::Error for ParseError {}

/// A fully parsed PHP file: top-level statements plus recovered errors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParsedFile {
    /// Top-level statements (functions/classes appear as statements, as in
    /// PHP).
    pub stmts: Vec<Stmt>,
    /// Parse errors recovered from.
    pub errors: Vec<ParseError>,
}

impl ParsedFile {
    /// Whether the file parsed without any recovered errors.
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cast_sanitization_classes() {
        assert!(CastKind::Int.sanitizes());
        assert!(CastKind::Bool.sanitizes());
        assert!(!CastKind::String.sanitizes());
        assert!(!CastKind::Array.sanitizes());
    }

    #[test]
    fn assign_op_reads_target() {
        assert!(!AssignOp::Assign.reads_target());
        assert!(AssignOp::ConcatAssign.reads_target());
        assert!(AssignOp::AddAssign.reads_target());
    }

    #[test]
    fn expr_spans() {
        let e = Expr::var("$x", 7);
        assert_eq!(e.span().line, 7);
        let call = Expr::Call {
            callee: Callee::Function("f".into()),
            args: vec![Arg::pos(Expr::str("v", 7))],
            span: Span::at(7),
        };
        assert_eq!(call.span().line, 7);
    }

    #[test]
    fn class_method_lookup_is_case_insensitive() {
        let c = ClassDecl {
            name: "C".into(),
            kind: ClassKind::Class,
            parent: None,
            interfaces: vec![],
            is_abstract: false,
            is_final: false,
            members: vec![ClassMember::Method(
                Modifiers::default(),
                FunctionDecl {
                    name: "Render".into(),
                    params: vec![],
                    by_ref: false,
                    body: vec![],
                    span: Span::at(1),
                },
            )],
            span: Span::at(1),
        };
        assert!(c.method("render").is_some());
        assert!(c.method("RENDER").is_some());
        assert!(c.method("missing").is_none());
    }

    #[test]
    fn member_as_name() {
        assert_eq!(Member::Name("p".into()).as_name(), Some("p"));
        assert_eq!(
            Member::Dynamic(Box::new(Expr::var("$f", 1))).as_name(),
            None
        );
    }
}
