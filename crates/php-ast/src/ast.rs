//! Typed abstract syntax tree for the PHP 5 subset relevant to plugin
//! analysis: full expression grammar, statements, functions, closures and
//! the OOP constructs (classes, interfaces, traits, properties, methods)
//! whose handling distinguishes phpSAFE from RIPS/Pixy.
//!
//! Nodes live in per-file [`Arena`] pools and refer to each other through
//! `Copy` index handles ([`ExprId`], [`StmtId`]) instead of `Box` pointers.
//! Child lists (bodies, argument lists, array items, …) are `(start, len)`
//! ranges into shared slice pools, so a whole [`ParsedFile`] is a handful
//! of contiguous buffers: one allocation per pool rather than one per
//! node, in the order the parser — and therefore the taint interpreter —
//! visits them.

use phpsafe_intern::Symbol;
use std::fmt;

/// A lightweight source position (1-based line). The analyzers report
/// findings by file + line, mirroring the paper's output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Span {
    /// 1-based line number.
    pub line: u32,
}

impl Span {
    /// Creates a span at `line`.
    pub fn at(line: u32) -> Self {
        Span { line }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}", self.line)
    }
}

// ------------------------------------------------------------------ handles

/// Index of an [`Expr`] in its file's [`Arena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprId(u32);

impl ExprId {
    /// The raw pool index (for the binary codec).
    pub(crate) fn raw(self) -> u32 {
        self.0
    }

    /// The raw pool index as a provenance handle for downstream consumers
    /// (e.g. taint-graph nodes record which arena expression they were
    /// observed on). File-local and parse-order-deterministic; never
    /// meaningful across files.
    pub fn provenance(self) -> u32 {
        self.0
    }

    /// Rebuilds a handle from a raw pool index (for the binary codec).
    pub(crate) fn from_raw(raw: u32) -> ExprId {
        ExprId(raw)
    }
}

/// Index of a [`Stmt`] in its file's [`Arena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StmtId(u32);

impl StmtId {
    /// The raw pool index (for the binary codec).
    pub(crate) fn raw(self) -> u32 {
        self.0
    }

    /// Rebuilds a handle from a raw pool index (for the binary codec).
    pub(crate) fn from_raw(raw: u32) -> StmtId {
        StmtId(raw)
    }
}

macro_rules! define_range {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        ///
        /// A `(start, len)` window into one of the [`Arena`] slice pools.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        pub struct $name {
            start: u32,
            len: u32,
        }

        impl $name {
            /// The empty range.
            pub const EMPTY: $name = $name { start: 0, len: 0 };

            /// Number of elements in the range.
            pub fn len(self) -> usize {
                self.len as usize
            }

            /// Whether the range is empty.
            pub fn is_empty(self) -> bool {
                self.len == 0
            }

            fn slice(self) -> std::ops::Range<usize> {
                self.start as usize..(self.start + self.len) as usize
            }

            /// The raw `(start, len)` window (for the binary codec).
            pub(crate) fn raw_parts(self) -> (u32, u32) {
                (self.start, self.len)
            }

            /// Rebuilds a range from a raw window (for the binary codec).
            pub(crate) fn from_raw_parts(start: u32, len: u32) -> $name {
                $name { start, len }
            }
        }

        impl Default for $name {
            fn default() -> Self {
                $name::EMPTY
            }
        }
    };
}

define_range!(
    /// A list of expressions (echo arguments, `isset` targets, …).
    ExprRange
);
define_range!(
    /// A list of statements (a body or block).
    StmtRange
);
define_range!(
    /// A call argument list.
    ArgRange
);
define_range!(
    /// A parameter list.
    ParamRange
);
define_range!(
    /// Interpolated-string parts.
    InterpRange
);
define_range!(
    /// `array(...)` items.
    ItemRange
);
define_range!(
    /// `list(...)` slots (holes allowed).
    OptExprRange
);
define_range!(
    /// `elseif` arms.
    ElseifRange
);
define_range!(
    /// `switch` arms.
    CaseRange
);
define_range!(
    /// `catch` clauses.
    CatchRange
);
define_range!(
    /// Plain name lists (`global` names, interfaces, trait uses).
    SymRange
);
define_range!(
    /// `static $a = 1, $b;` declarations.
    StaticVarRange
);
define_range!(
    /// Closure `use (...)` captures.
    UseRange
);
define_range!(
    /// `const NAME = value` items.
    ConstRange
);
define_range!(
    /// Class members.
    MemberRange
);

/// One `array(...)` item: optional key plus value.
pub type ArrayItem = (Option<ExprId>, ExprId);
/// One `elseif` arm: condition plus body.
pub type Elseif = (ExprId, StmtRange);
/// One `static` variable: name plus optional initializer.
pub type StaticVar = (Symbol, Option<ExprId>);
/// One closure capture: name plus by-reference flag.
pub type ClosureUse = (Symbol, bool);
/// One `const` item: name plus value.
pub type ConstItem = (Symbol, ExprId);

// -------------------------------------------------------------------- arena

/// Per-file flat node storage. All [`Expr`]/[`Stmt`] nodes of a parsed file
/// sit in two contiguous pools addressed by [`ExprId`]/[`StmtId`]; child
/// lists are ranges into the typed slice pools. Nodes are appended in parse
/// order, so traversal order matches memory order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Arena {
    pub(crate) exprs: Vec<Expr>,
    pub(crate) stmts: Vec<Stmt>,
    pub(crate) expr_ids: Vec<ExprId>,
    pub(crate) stmt_ids: Vec<StmtId>,
    pub(crate) args: Vec<Arg>,
    pub(crate) params: Vec<Param>,
    pub(crate) interp_parts: Vec<InterpPart>,
    pub(crate) array_items: Vec<ArrayItem>,
    pub(crate) opt_exprs: Vec<Option<ExprId>>,
    pub(crate) elseifs: Vec<Elseif>,
    pub(crate) cases: Vec<SwitchCase>,
    pub(crate) catches: Vec<Catch>,
    pub(crate) syms: Vec<Symbol>,
    pub(crate) static_vars: Vec<StaticVar>,
    pub(crate) closure_uses: Vec<ClosureUse>,
    pub(crate) consts: Vec<ConstItem>,
    pub(crate) members: Vec<ClassMember>,
    pub(crate) slices: u32,
}

macro_rules! pool_range {
    ($alloc:ident, $get:ident, $field:ident, $elem:ty, $range:ident) => {
        /// Moves the items into the pool and returns their range.
        pub fn $alloc(&mut self, items: Vec<$elem>) -> $range {
            if items.is_empty() {
                return $range::EMPTY;
            }
            let start = self.$field.len() as u32;
            let len = items.len() as u32;
            self.$field.extend(items);
            self.slices += 1;
            $range { start, len }
        }

        /// The pool slice addressed by `range`.
        pub fn $get(&self, range: $range) -> &[$elem] {
            &self.$field[range.slice()]
        }
    };
}

impl Arena {
    /// Fresh empty arena.
    pub fn new() -> Arena {
        Arena::default()
    }

    /// Appends an expression node, returning its handle.
    pub fn alloc_expr(&mut self, e: Expr) -> ExprId {
        let id = ExprId(self.exprs.len() as u32);
        self.exprs.push(e);
        id
    }

    /// Appends a statement node, returning its handle.
    pub fn alloc_stmt(&mut self, s: Stmt) -> StmtId {
        let id = StmtId(self.stmts.len() as u32);
        self.stmts.push(s);
        id
    }

    /// The expression node behind `id`.
    pub fn expr(&self, id: ExprId) -> &Expr {
        &self.exprs[id.0 as usize]
    }

    /// The statement node behind `id`.
    pub fn stmt(&self, id: StmtId) -> &Stmt {
        &self.stmts[id.0 as usize]
    }

    pool_range!(alloc_expr_list, expr_list, expr_ids, ExprId, ExprRange);
    pool_range!(alloc_stmt_list, stmt_list, stmt_ids, StmtId, StmtRange);
    pool_range!(alloc_args, args, args, Arg, ArgRange);
    pool_range!(alloc_params, params, params, Param, ParamRange);
    pool_range!(alloc_interp, interp, interp_parts, InterpPart, InterpRange);
    pool_range!(alloc_items, items, array_items, ArrayItem, ItemRange);
    pool_range!(
        alloc_opt_exprs,
        opt_exprs,
        opt_exprs,
        Option<ExprId>,
        OptExprRange
    );
    pool_range!(alloc_elseifs, elseifs, elseifs, Elseif, ElseifRange);
    pool_range!(alloc_cases, cases, cases, SwitchCase, CaseRange);
    pool_range!(alloc_catches, catches, catches, Catch, CatchRange);
    pool_range!(alloc_syms, syms, syms, Symbol, SymRange);
    pool_range!(
        alloc_static_vars,
        static_vars,
        static_vars,
        StaticVar,
        StaticVarRange
    );
    pool_range!(alloc_uses, uses, closure_uses, ClosureUse, UseRange);
    pool_range!(alloc_consts, consts, consts, ConstItem, ConstRange);
    pool_range!(alloc_members, members, members, ClassMember, MemberRange);

    /// Total node count (expressions + statements).
    pub fn node_count(&self) -> usize {
        self.exprs.len() + self.stmts.len()
    }

    /// Number of slice-pool ranges allocated.
    pub fn slice_count(&self) -> usize {
        self.slices as usize
    }

    /// Approximate resident bytes of the flat pools (element sizes × pool
    /// lengths; literal text lives in the shared interner, not here).
    pub fn arena_bytes(&self) -> usize {
        use std::mem::size_of;
        self.exprs.len() * size_of::<Expr>()
            + self.stmts.len() * size_of::<Stmt>()
            + self.expr_ids.len() * size_of::<ExprId>()
            + self.stmt_ids.len() * size_of::<StmtId>()
            + self.args.len() * size_of::<Arg>()
            + self.params.len() * size_of::<Param>()
            + self.interp_parts.len() * size_of::<InterpPart>()
            + self.array_items.len() * size_of::<ArrayItem>()
            + self.opt_exprs.len() * size_of::<Option<ExprId>>()
            + self.elseifs.len() * size_of::<Elseif>()
            + self.cases.len() * size_of::<SwitchCase>()
            + self.catches.len() * size_of::<Catch>()
            + self.syms.len() * size_of::<Symbol>()
            + self.static_vars.len() * size_of::<StaticVar>()
            + self.closure_uses.len() * size_of::<ClosureUse>()
            + self.consts.len() * size_of::<ConstItem>()
            + self.members.len() * size_of::<ClassMember>()
    }

    /// Shrinks every pool to its exact length (done once after parsing, so
    /// cached files don't hold parser headroom).
    pub fn shrink_to_fit(&mut self) {
        self.exprs.shrink_to_fit();
        self.stmts.shrink_to_fit();
        self.expr_ids.shrink_to_fit();
        self.stmt_ids.shrink_to_fit();
        self.args.shrink_to_fit();
        self.params.shrink_to_fit();
        self.interp_parts.shrink_to_fit();
        self.array_items.shrink_to_fit();
        self.opt_exprs.shrink_to_fit();
        self.elseifs.shrink_to_fit();
        self.cases.shrink_to_fit();
        self.catches.shrink_to_fit();
        self.syms.shrink_to_fit();
        self.static_vars.shrink_to_fit();
        self.closure_uses.shrink_to_fit();
        self.consts.shrink_to_fit();
        self.members.shrink_to_fit();
    }
}

impl std::ops::Index<ExprId> for Arena {
    type Output = Expr;
    fn index(&self, id: ExprId) -> &Expr {
        self.expr(id)
    }
}

impl std::ops::Index<StmtId> for Arena {
    type Output = Stmt;
    fn index(&self, id: StmtId) -> &Stmt {
        self.stmt(id)
    }
}

// ---------------------------------------------------------------- literals

/// Literal values. Text-carrying literals hold interned [`Symbol`]s, so
/// every node is a fixed-shape `Copy` value: the arena pools contain no
/// heap pointers, literal equality is an integer compare, and repeated
/// literals across files share one interner entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lit {
    /// Integer literal (kept as text to preserve hex/octal/binary forms).
    Int(Symbol),
    /// Float literal.
    Float(Symbol),
    /// String literal with quotes stripped and escapes left verbatim.
    Str(Symbol),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Pow,
    Concat,
    Eq,
    NotEq,
    Identical,
    NotIdentical,
    Lt,
    Gt,
    Le,
    Ge,
    And,
    Or,
    Xor,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
}

impl BinOp {
    /// PHP spelling of the operator.
    pub fn symbol(self) -> &'static str {
        use BinOp::*;
        match self {
            Add => "+",
            Sub => "-",
            Mul => "*",
            Div => "/",
            Mod => "%",
            Pow => "**",
            Concat => ".",
            Eq => "==",
            NotEq => "!=",
            Identical => "===",
            NotIdentical => "!==",
            Lt => "<",
            Gt => ">",
            Le => "<=",
            Ge => ">=",
            And => "&&",
            Or => "||",
            Xor => "xor",
            BitAnd => "&",
            BitOr => "|",
            BitXor => "^",
            Shl => "<<",
            Shr => ">>",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum UnOp {
    Not,
    Neg,
    Plus,
    BitNot,
}

/// Compound-assignment operators (`$a .= $b` etc.); `Assign` is plain `=`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum AssignOp {
    Assign,
    AddAssign,
    SubAssign,
    MulAssign,
    DivAssign,
    ModAssign,
    ConcatAssign,
    BitAndAssign,
    BitOrAssign,
    BitXorAssign,
    ShlAssign,
    ShrAssign,
}

impl AssignOp {
    /// PHP spelling.
    pub fn symbol(self) -> &'static str {
        use AssignOp::*;
        match self {
            Assign => "=",
            AddAssign => "+=",
            SubAssign => "-=",
            MulAssign => "*=",
            DivAssign => "/=",
            ModAssign => "%=",
            ConcatAssign => ".=",
            BitAndAssign => "&=",
            BitOrAssign => "|=",
            BitXorAssign => "^=",
            ShlAssign => "<<=",
            ShrAssign => ">>=",
        }
    }

    /// Whether the old value of the target flows into the new value
    /// (true for every compound op; `.=` is the one that matters for taint).
    pub fn reads_target(self) -> bool {
        !matches!(self, AssignOp::Assign)
    }
}

/// Cast kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum CastKind {
    Int,
    Float,
    String,
    Array,
    Object,
    Bool,
    Unset,
}

impl CastKind {
    /// Whether this cast neutralizes injection payloads (numeric/bool casts
    /// sanitize; string/array/object casts do not).
    pub fn sanitizes(self) -> bool {
        matches!(
            self,
            CastKind::Int | CastKind::Float | CastKind::Bool | CastKind::Unset
        )
    }

    /// PHP spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            CastKind::Int => "(int)",
            CastKind::Float => "(float)",
            CastKind::String => "(string)",
            CastKind::Array => "(array)",
            CastKind::Object => "(object)",
            CastKind::Bool => "(bool)",
            CastKind::Unset => "(unset)",
        }
    }
}

/// `include` / `require` family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum IncludeKind {
    Include,
    IncludeOnce,
    Require,
    RequireOnce,
}

impl IncludeKind {
    /// PHP spelling.
    pub fn keyword(self) -> &'static str {
        match self {
            IncludeKind::Include => "include",
            IncludeKind::IncludeOnce => "include_once",
            IncludeKind::Require => "require",
            IncludeKind::RequireOnce => "require_once",
        }
    }
}

/// A member selector after `->` or `::` — either a fixed name or a computed
/// expression (`$obj->$field`, `$obj->{expr}`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Member {
    /// `->name`
    Name(Symbol),
    /// `->$var` or `->{expr}`
    Dynamic(ExprId),
}

impl Member {
    /// The fixed name, if statically known.
    pub fn as_name(&self) -> Option<&str> {
        match self {
            Member::Name(n) => Some(n.as_str()),
            Member::Dynamic(_) => None,
        }
    }
}

/// What is being called in a [`Expr::Call`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Callee {
    /// `foo(...)` — a plain (possibly namespaced) function name.
    Function(Symbol),
    /// `$f(...)` or `($expr)(...)` — dynamic call.
    Dynamic(ExprId),
    /// `$obj->m(...)`
    Method {
        /// The receiver expression.
        base: ExprId,
        /// The method selector.
        name: Member,
    },
    /// `Cls::m(...)` / `self::m(...)` / `static::m(...)`
    StaticMethod {
        /// The class name as written.
        class: Symbol,
        /// The method selector.
        name: Member,
    },
}

/// A call argument (PHP 5: optional by-reference marker).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Arg {
    /// Argument expression.
    pub value: ExprId,
    /// `&$x` at the call site.
    pub by_ref: bool,
}

impl Arg {
    /// Positional argument.
    pub fn pos(value: ExprId) -> Self {
        Arg {
            value,
            by_ref: false,
        }
    }
}

/// One piece of an interpolated string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InterpPart {
    /// Literal fragment (interned).
    Lit(Symbol),
    /// Interpolated expression (`$x`, `$x->p`, `{$expr}`).
    Expr(ExprId),
}

/// Expressions. Child nodes are [`ExprId`]/[`StmtId`] handles into the
/// owning [`Arena`]; child lists are ranges into its slice pools. Every
/// variant is `Copy` — the pools are flat `u32`-shaped records, which is
/// what lets the disk codec store them as fixed-width rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Expr {
    /// `$name`
    Var(Symbol, Span),
    /// Variable-variable `$$name` or `${expr}`.
    VarVar(ExprId, Span),
    /// Literal.
    Lit(Lit, Span),
    /// Interpolated double-quoted string / heredoc.
    Interp(InterpRange, Span),
    /// Bareword constant fetch (`FOO`, `PHP_EOL`).
    ConstFetch(Symbol, Span),
    /// `CLS::CONST`
    ClassConst(Symbol, Symbol, Span),
    /// `array(...)` / `[...]`
    ArrayLit(ItemRange, Span),
    /// `$base[index]`; `index` is `None` for push syntax `$a[] = ...`.
    Index(ExprId, Option<ExprId>, Span),
    /// `$base->member`
    Prop(ExprId, Member, Span),
    /// `CLS::$prop`
    StaticProp(Symbol, Symbol, Span),
    /// Assignment (including compound and by-reference).
    Assign {
        /// Assignment target (lvalue).
        target: ExprId,
        /// Operator (plain or compound).
        op: AssignOp,
        /// Right-hand side.
        value: ExprId,
        /// `=& ` reference assignment.
        by_ref: bool,
        /// Location.
        span: Span,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: ExprId,
        /// Right operand.
        rhs: ExprId,
        /// Location.
        span: Span,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: ExprId,
        /// Location.
        span: Span,
    },
    /// `++$x`, `$x--`, …
    IncDec {
        /// Prefix (`++$x`) vs postfix (`$x++`).
        prefix: bool,
        /// Increment vs decrement.
        increment: bool,
        /// Operand.
        expr: ExprId,
        /// Location.
        span: Span,
    },
    /// Function / method / dynamic call.
    Call {
        /// Call target.
        callee: Callee,
        /// Arguments.
        args: ArgRange,
        /// Location.
        span: Span,
    },
    /// `new Cls(args)`; class may be dynamic (`new $cls`).
    New {
        /// Class name if statically known.
        class: Member,
        /// Constructor arguments.
        args: ArgRange,
        /// Location.
        span: Span,
    },
    /// `clone $x`
    Clone(ExprId, Span),
    /// `$c ? $t : $e` (with `$t` optional for the `?:` short form).
    Ternary {
        /// Condition.
        cond: ExprId,
        /// `then` branch (`None` for `?:`).
        then: Option<ExprId>,
        /// `else` branch.
        otherwise: ExprId,
        /// Location.
        span: Span,
    },
    /// Type cast.
    Cast(CastKind, ExprId, Span),
    /// `isset($a, $b)`
    Isset(ExprRange, Span),
    /// `empty($x)`
    Empty(ExprId, Span),
    /// `@expr`
    ErrorSuppress(ExprId, Span),
    /// `print $x` (an expression in PHP).
    Print(ExprId, Span),
    /// `exit($x)` / `die($x)`.
    Exit(Option<ExprId>, Span),
    /// `include`/`require` expression.
    Include(IncludeKind, ExprId, Span),
    /// `$x instanceof Cls`
    Instanceof(ExprId, Symbol, Span),
    /// `list($a, $b) = ...` target.
    ListIntrinsic(OptExprRange, Span),
    /// Anonymous function.
    Closure {
        /// Parameters.
        params: ParamRange,
        /// `use (...)` captures: (name, by_ref).
        uses: UseRange,
        /// Body statements.
        body: StmtRange,
        /// Location.
        span: Span,
    },
    /// Backtick shell execution.
    ShellExec(InterpRange, Span),
    /// `&$x` reference in value position.
    Ref(ExprId, Span),
    /// Placeholder produced by error recovery.
    Error(Span),
}

impl Expr {
    /// The source span of this expression.
    pub fn span(&self) -> Span {
        use Expr::*;
        match self {
            Var(_, s)
            | VarVar(_, s)
            | Lit(_, s)
            | Interp(_, s)
            | ConstFetch(_, s)
            | ClassConst(_, _, s)
            | ArrayLit(_, s)
            | Index(_, _, s)
            | Prop(_, _, s)
            | StaticProp(_, _, s)
            | Clone(_, s)
            | Cast(_, _, s)
            | Isset(_, s)
            | Empty(_, s)
            | ErrorSuppress(_, s)
            | Print(_, s)
            | Exit(_, s)
            | Include(_, _, s)
            | Instanceof(_, _, s)
            | ListIntrinsic(_, s)
            | ShellExec(_, s)
            | Ref(_, s)
            | Error(s) => *s,
            Assign { span, .. }
            | Binary { span, .. }
            | Unary { span, .. }
            | IncDec { span, .. }
            | Call { span, .. }
            | New { span, .. }
            | Ternary { span, .. }
            | Closure { span, .. } => *span,
        }
    }

    /// Convenience: `$name` variable expression.
    pub fn var(name: impl Into<Symbol>, line: u32) -> Expr {
        Expr::Var(name.into(), Span::at(line))
    }

    /// Convenience: string literal.
    pub fn str(value: impl Into<Symbol>, line: u32) -> Expr {
        Expr::Lit(Lit::Str(value.into()), Span::at(line))
    }

    /// If this is `$name`, return the name (with `$`).
    pub fn as_var_name(&self) -> Option<&str> {
        match self {
            Expr::Var(n, _) => Some(n.as_str()),
            _ => None,
        }
    }
}

/// A function / method / closure parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Param {
    /// Parameter variable name including `$`.
    pub name: Symbol,
    /// Declared by reference (`&$x`).
    pub by_ref: bool,
    /// Default value, if any.
    pub default: Option<ExprId>,
    /// Type hint as written (`array`, class name), if any.
    pub type_hint: Option<Symbol>,
    /// Variadic (`...$args`).
    pub variadic: bool,
}

impl Param {
    /// A plain by-value parameter with no default.
    pub fn simple(name: impl Into<Symbol>) -> Self {
        Param {
            name: name.into(),
            by_ref: false,
            default: None,
            type_hint: None,
            variadic: false,
        }
    }
}

/// Member visibility / modifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Modifiers {
    /// `public` (default), `protected`, or `private`.
    pub visibility: Visibility,
    /// `static`
    pub is_static: bool,
    /// `abstract`
    pub is_abstract: bool,
    /// `final`
    pub is_final: bool,
}

/// Member visibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Visibility {
    /// `public` / `var` / unspecified.
    #[default]
    Public,
    /// `protected`
    Protected,
    /// `private`
    Private,
}

/// A named function declaration (also used for methods). `Copy`: the body
/// and parameter list are ranges into the declaring file's [`Arena`], so
/// symbol tables and call sites hand declarations around by value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FunctionDecl {
    /// Function name as written (case preserved; PHP resolves
    /// case-insensitively).
    pub name: Symbol,
    /// Parameters.
    pub params: ParamRange,
    /// Returns by reference (`function &f()`).
    pub by_ref: bool,
    /// Body statements (empty for abstract/interface methods).
    pub body: StmtRange,
    /// Location of the declaration.
    pub span: Span,
}

/// A class / interface / trait declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClassDecl {
    /// Declared name.
    pub name: Symbol,
    /// Declaration flavor.
    pub kind: ClassKind,
    /// `extends` parent, if any (interfaces may extend several; we keep the
    /// first — enough for method resolution in plugin code).
    pub parent: Option<Symbol>,
    /// `implements` list.
    pub interfaces: SymRange,
    /// `abstract class`.
    pub is_abstract: bool,
    /// `final class`.
    pub is_final: bool,
    /// Members in declaration order.
    pub members: MemberRange,
    /// Location.
    pub span: Span,
}

impl ClassDecl {
    /// Iterates the methods of the class.
    pub fn methods<'a>(
        &self,
        a: &'a Arena,
    ) -> impl Iterator<Item = (&'a Modifiers, &'a FunctionDecl)> {
        a.members(self.members).iter().filter_map(|m| match m {
            ClassMember::Method(mods, f) => Some((mods, f)),
            _ => None,
        })
    }

    /// Looks up a method by case-insensitive name.
    pub fn method<'a>(&self, a: &'a Arena, name: &str) -> Option<&'a FunctionDecl> {
        self.methods(a)
            .find(|(_, f)| f.name.as_str().eq_ignore_ascii_case(name))
            .map(|(_, f)| f)
    }
}

/// `class` vs `interface` vs `trait`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum ClassKind {
    Class,
    Interface,
    Trait,
}

/// A class member.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClassMember {
    /// `public $x = default;`
    Property {
        /// Property name including `$`.
        name: Symbol,
        /// Default value.
        default: Option<ExprId>,
        /// Modifiers.
        modifiers: Modifiers,
        /// Location.
        span: Span,
    },
    /// A method.
    Method(Modifiers, FunctionDecl),
    /// `const NAME = value;`
    Const {
        /// Constant name.
        name: Symbol,
        /// Value expression.
        value: ExprId,
        /// Location.
        span: Span,
    },
    /// `use TraitA, TraitB;`
    UseTrait(SymRange, Span),
}

/// A `catch (Type $e)` clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Catch {
    /// Caught class name.
    pub class: Symbol,
    /// Exception variable including `$`.
    pub var: Symbol,
    /// Handler body.
    pub body: StmtRange,
}

/// One `case`/`default` arm of a `switch`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SwitchCase {
    /// Case value; `None` for `default`.
    pub value: Option<ExprId>,
    /// Arm body.
    pub body: StmtRange,
}

/// Statements. Like [`Expr`], every variant is a fixed-shape `Copy` value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stmt {
    /// Expression statement.
    Expr(ExprId, Span),
    /// `echo a, b, c;` (also synthesized for `<?= ... ?>`).
    Echo(ExprRange, Span),
    /// Raw HTML between PHP blocks — an *output* in taint terms.
    InlineHtml(Symbol, Span),
    /// `if` with any number of `elseif`s and an optional `else`.
    If {
        /// Condition.
        cond: ExprId,
        /// `then` branch.
        then: StmtRange,
        /// `elseif` chain.
        elseifs: ElseifRange,
        /// `else` branch.
        otherwise: Option<StmtRange>,
        /// Location.
        span: Span,
    },
    /// `while`
    While {
        /// Condition.
        cond: ExprId,
        /// Body.
        body: StmtRange,
        /// Location.
        span: Span,
    },
    /// `do { } while ()`
    DoWhile {
        /// Body.
        body: StmtRange,
        /// Condition.
        cond: ExprId,
        /// Location.
        span: Span,
    },
    /// `for (init; cond; step)`
    For {
        /// Init expressions.
        init: ExprRange,
        /// Condition expressions.
        cond: ExprRange,
        /// Step expressions.
        step: ExprRange,
        /// Body.
        body: StmtRange,
        /// Location.
        span: Span,
    },
    /// `foreach ($subject as $key => $value)`
    Foreach {
        /// Iterated expression.
        subject: ExprId,
        /// Key variable, if present.
        key: Option<ExprId>,
        /// Value binding target.
        value: ExprId,
        /// `as &$v` by-reference binding.
        by_ref: bool,
        /// Body.
        body: StmtRange,
        /// Location.
        span: Span,
    },
    /// `switch`
    Switch {
        /// Scrutinee.
        subject: ExprId,
        /// Arms.
        cases: CaseRange,
        /// Location.
        span: Span,
    },
    /// `break [n];`
    Break(Span),
    /// `continue [n];`
    Continue(Span),
    /// `return [expr];`
    Return(Option<ExprId>, Span),
    /// `global $a, $b;`
    Global(SymRange, Span),
    /// `static $a = 1;` (function-static variables).
    StaticVars(StaticVarRange, Span),
    /// `unset($a, $b);`
    Unset(ExprRange, Span),
    /// `throw expr;`
    Throw(ExprId, Span),
    /// `try { } catch () { } finally { }`
    Try {
        /// Protected body.
        body: StmtRange,
        /// Catch clauses.
        catches: CatchRange,
        /// Finally block.
        finally: Option<StmtRange>,
        /// Location.
        span: Span,
    },
    /// A bare `{ ... }` block.
    Block(StmtRange, Span),
    /// Named function declaration.
    Function(FunctionDecl),
    /// Class / interface / trait declaration.
    Class(ClassDecl),
    /// `const NAME = value;` at top level.
    ConstDecl(ConstRange, Span),
    /// `;` empty statement.
    Nop(Span),
    /// Placeholder produced by error recovery.
    Error(Span),
}

impl Stmt {
    /// The source span of this statement (best effort).
    pub fn span(&self) -> Span {
        use Stmt::*;
        match self {
            Expr(_, s)
            | Echo(_, s)
            | InlineHtml(_, s)
            | Break(s)
            | Continue(s)
            | Return(_, s)
            | Global(_, s)
            | StaticVars(_, s)
            | Unset(_, s)
            | Throw(_, s)
            | Block(_, s)
            | ConstDecl(_, s)
            | Nop(s)
            | Error(s) => *s,
            If { span, .. }
            | While { span, .. }
            | DoWhile { span, .. }
            | For { span, .. }
            | Foreach { span, .. }
            | Switch { span, .. }
            | Try { span, .. } => *span,
            Function(f) => f.span,
            Class(c) => c.span,
        }
    }
}

/// A parse diagnostic: the parser recovers and keeps going, recording these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable message.
    pub message: String,
    /// Location.
    pub span: Span,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.message, self.span)
    }
}

impl std::error::Error for ParseError {}

/// A fully parsed PHP file: the node arena, the top-level statement list
/// and recovered errors. Dereferences to its [`Arena`], so `file.expr(id)`
/// etc. work directly.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParsedFile {
    /// Flat node storage for everything in the file.
    pub arena: Arena,
    /// Top-level statements (functions/classes appear as statements, as in
    /// PHP).
    pub top: StmtRange,
    /// Parse errors recovered from.
    pub errors: Vec<ParseError>,
}

impl ParsedFile {
    /// Whether the file parsed without any recovered errors.
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }

    /// The top-level statement ids.
    pub fn top_stmts(&self) -> &[StmtId] {
        self.arena.stmt_list(self.top)
    }
}

impl std::ops::Deref for ParsedFile {
    type Target = Arena;
    fn deref(&self) -> &Arena {
        &self.arena
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cast_sanitization_classes() {
        assert!(CastKind::Int.sanitizes());
        assert!(CastKind::Bool.sanitizes());
        assert!(!CastKind::String.sanitizes());
        assert!(!CastKind::Array.sanitizes());
    }

    #[test]
    fn assign_op_reads_target() {
        assert!(!AssignOp::Assign.reads_target());
        assert!(AssignOp::ConcatAssign.reads_target());
        assert!(AssignOp::AddAssign.reads_target());
    }

    #[test]
    fn expr_spans_and_node_ids() {
        let mut a = Arena::new();
        let e = a.alloc_expr(Expr::var("$x", 7));
        assert_eq!(a[e].span().line, 7);
        let arg = a.alloc_expr(Expr::str("v", 7));
        let args = a.alloc_args(vec![Arg::pos(arg)]);
        let call = a.alloc_expr(Expr::Call {
            callee: Callee::Function("f".into()),
            args,
            span: Span::at(7),
        });
        assert_eq!(a[call].span().line, 7);
        assert_eq!(a.node_count(), 3);
        assert_eq!(a.args(args).len(), 1);
        assert_eq!(a.slice_count(), 1);
        assert!(a.arena_bytes() > 0);
    }

    #[test]
    fn empty_ranges_allocate_no_slices() {
        let mut a = Arena::new();
        let r = a.alloc_expr_list(vec![]);
        assert!(r.is_empty());
        assert_eq!(a.slice_count(), 0);
        assert!(a.expr_list(r).is_empty());
    }

    #[test]
    fn class_method_lookup_is_case_insensitive() {
        let mut a = Arena::new();
        let body = StmtRange::EMPTY;
        let members = a.alloc_members(vec![ClassMember::Method(
            Modifiers::default(),
            FunctionDecl {
                name: "Render".into(),
                params: ParamRange::EMPTY,
                by_ref: false,
                body,
                span: Span::at(1),
            },
        )]);
        let c = ClassDecl {
            name: "C".into(),
            kind: ClassKind::Class,
            parent: None,
            interfaces: SymRange::EMPTY,
            is_abstract: false,
            is_final: false,
            members,
            span: Span::at(1),
        };
        assert!(c.method(&a, "render").is_some());
        assert!(c.method(&a, "RENDER").is_some());
        assert!(c.method(&a, "missing").is_none());
    }

    #[test]
    fn member_as_name() {
        let mut a = Arena::new();
        assert_eq!(Member::Name("p".into()).as_name(), Some("p"));
        let dyn_e = a.alloc_expr(Expr::var("$f", 1));
        assert_eq!(Member::Dynamic(dyn_e).as_name(), None);
    }
}
